module nodedp

go 1.22
