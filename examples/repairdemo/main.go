// Repair-demo example: a step-by-step trace of Algorithm 3's "local
// repairs" — the constructive heart of Lemma 1.8 and the subject of
// Figure 1 in the paper.
//
// The demo graph is a fan: center 0 adjacent to rim vertices 1..5, with
// consecutive rim vertices adjacent. Naively growing a spanning forest
// piles all the degree onto the center; whenever its degree exceeds Δ, a
// local repair finds two forest-neighbors a, b of the overloaded vertex
// that are adjacent in G, reroutes b through a, and pushes the overload one
// step along a path until it dissipates — exactly the before/after picture
// of Figure 1.
//
// Run with:
//
//	go run ./examples/repairdemo
package main

import (
	"fmt"
	"log"

	"nodedp"
)

func main() {
	const delta = 2
	g := nodedp.NewGraph(6)
	for _, e := range [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, // spokes
		{1, 2}, {2, 3}, {3, 4}, {4, 5}, // rim
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("fan graph: n=%d m=%d, target spanning-forest degree Δ=%d\n\n", g.N(), g.M(), delta)

	forest, witness, err := nodedp.SpanningForestRepairTrace(g, delta, func(step string) {
		fmt.Println("  ", step)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if witness != nil {
		fmt.Printf("blocked: induced %d-star centered at %d with leaves %v\n",
			len(witness.Leaves), witness.Center, witness.Leaves)
		return
	}
	fmt.Printf("spanning %d-forest found: %v\n", delta, forest)
}
