// Sensor-network example: random geometric graphs (Section 1.1.4 of the
// paper). Sensors are dropped uniformly in the unit square; two sensors
// communicate when within radio range r. The number of connected
// components — how many isolated clusters the deployment fragmented into —
// is the quantity of interest, and the sensor locations are sensitive.
//
// Geometric graphs are the paper's best case: the plane geometry forbids
// induced 6-stars (six points within range of a center cannot be pairwise
// out of range), so by Lemma 1.8 a spanning 6-forest always exists and the
// private error is Õ(ln ln n / ε) — essentially constant in n. This
// example verifies the star bound, builds the degree-≤6 forest with the
// paper's own Algorithm 3, and reports private estimates across radii.
//
// Each deployment is served through a Session with a hard ε budget: the
// operator gets exactly one release per deployment, and the session's
// accountant — not caller-side bookkeeping — refuses anything more.
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"nodedp"
)

func main() {
	rng := nodedp.NewRand(99)
	const n = 400

	fmt.Printf("%8s %8s %10s %12s %12s %10s\n",
		"radius", "edges", "true f_cc", "s(G) (<6?)", "forest deg", "ε=1 est.")
	for _, r := range []float64{0.02, 0.04, 0.08} {
		g := nodedp.GeometricGraph(n, r, rng)

		// Lemma 1.7 / §1.1.4: the largest induced star has at most 5
		// leaves in any geometric graph.
		star, err := nodedp.MaxInducedStar(g, 0)
		if err != nil {
			log.Fatal(err)
		}

		// Lemma 1.8, constructively: Algorithm 3 builds a spanning forest
		// of degree ≤ s(G)+1 ≤ 6.
		forest, witness, err := nodedp.SpanningForestWithRepair(g, star.Size+1)
		if err != nil {
			log.Fatal(err)
		}
		if witness != nil {
			log.Fatalf("repair unexpectedly blocked: %+v", witness)
		}
		maxDeg := 0
		degs := make(map[int]int)
		for _, e := range forest {
			degs[e.U]++
			degs[e.V]++
		}
		for _, d := range degs {
			if d > maxDeg {
				maxDeg = d
			}
		}

		// One serving session per deployment, with the whole ε=1 budget:
		// the first query spends it all, so the accountant guarantees no
		// second release can leak more about these sensor locations.
		ctx := context.Background()
		sess, err := nodedp.Open(ctx, g, nodedp.SessionOptions{TotalBudget: 1, Rand: rng})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.ComponentCount(ctx, nodedp.QueryOptions{Epsilon: 1, Mode: nodedp.ModeKnownN})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.ComponentCount(ctx, nodedp.QueryOptions{Epsilon: 0.1}); !errors.Is(err, nodedp.ErrBudgetExhausted) {
			log.Fatalf("budget accountant failed to refuse a second release: %v", err)
		}
		fmt.Printf("%8.2f %8d %10d %12d %12d %10.1f\n",
			r, g.M(), g.CountComponents(), star.Size, maxDeg, res.Value)
	}
	fmt.Println("\nacross all radii the error stays O(lnln n/ε): geometry caps Δ* at 6;")
	fmt.Println("each deployment's session spent its entire budget on the one release above.")
}
