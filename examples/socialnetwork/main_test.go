package main

import "testing"

// TestSmoke runs the example end to end, guarding the exported API it
// exercises against silent breakage during refactors. The example runs a
// full multi-trial estimation, so it is skipped in -short mode.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow example; skipped in -short mode")
	}
	main()
}
