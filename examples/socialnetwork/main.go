// Social-network example: estimating the number of friend circles
// (connected components) in a friendship graph with a few extremely
// popular accounts.
//
// The point of this example is instance adaptivity. Three estimators, all
// rigorously ε-node-private, differ only in what their noise is calibrated
// to:
//
//   - naive Laplace: global sensitivity n (any new account could merge
//     every circle);
//   - fixed extension at Δ = max degree: rigorous (f_Δ is Δ-Lipschitz,
//     Lemma 3.3) but pays for the celebrities' degree;
//   - Algorithm 1 (this paper): GEM picks Δ̂ near Δ*, the smallest maximum
//     degree over spanning forests — the structural parameter that actually
//     controls how much one node can change the component count.
//
// In this graph the celebrities ARE structurally important (they are the
// only bridges between circles), so Δ* ≈ circles/celebrities ≈ 30 — and
// the algorithm finds and pays exactly that, instead of the celebrities'
// max degree or n. The paper's Theorem 1.3 is an instance-based guarantee:
// you pay for the graph you have, not for the worst graph imaginable.
//
// The expensive half of Algorithm 1 — evaluating the extension family over
// the Δ-grid — is deterministic, so the example opens one serving Session:
// the plan is paid once, each trial's release is a budget-accounted query
// against it, and the session does the composition bookkeeping that earlier
// versions of this example hand-rolled.
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"nodedp"
)

func main() {
	rng := nodedp.NewRand(7)

	// 60 friend circles of 5 people each, plus 2 celebrity accounts
	// followed by ~30% of everyone. The celebrities merge every circle
	// they touch into one giant component.
	sizes := make([]int, 60)
	for i := range sizes {
		sizes[i] = 5
	}
	base := nodedp.SBM(sizes, 0.9, 0, rng)
	g := nodedp.WithHubs(base, 2, 0.3, rng)

	trueCC := g.CountComponents()
	maxDeg := g.MaxDegree()
	_, deltaUB := nodedp.LowDegreeSpanningForest(g)
	fmt.Printf("friendship graph: n=%d m=%d  true components %d\n", g.N(), g.M(), trueCC)
	fmt.Printf("max degree %d (the celebrities), Δ* upper bound %d\n\n", maxDeg, deltaUB)

	eps := 1.0
	const trials = 5
	ctx := context.Background()
	// One session: the Δ-grid evaluations are paid once and shared across
	// trials, and the session's accountant enforces the total budget
	// trials·ε instead of the caller tracking composition by hand.
	sess, err := nodedp.Open(ctx, g, nodedp.SessionOptions{
		TotalBudget: trials * eps,
		Rand:        rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	var ours, fixedMax, naive float64
	var pickedDelta float64
	for i := 0; i < trials; i++ {
		// Each query is an independent ε-node-private release of f_cc with
		// the vertex count treated as public in this scenario.
		res, err := sess.ComponentCount(ctx, nodedp.QueryOptions{Epsilon: eps, Mode: nodedp.ModeKnownN})
		if err != nil {
			log.Fatal(err)
		}
		ours += math.Abs(res.Value - float64(trueCC))
		pickedDelta = res.Delta

		// The rigorous max-degree-calibrated alternative: release
		// n − (f_Δ + Lap(Δ/ε)) with Δ = max degree. f_Δ = f_sf there, so
		// the estimate is unbiased — the cost is pure noise scale.
		noisy, err := nodedp.FixedDeltaComponentCountKnownN(rng, g, float64(maxDeg), eps, nodedp.LipschitzOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fixedMax += math.Abs(noisy - float64(trueCC))

		nv, err := nodedp.NaiveNodeDPComponentCount(rng, g, eps)
		if err != nil {
			log.Fatal(err)
		}
		naive += math.Abs(nv - float64(trueCC))
	}

	fmt.Printf("%-38s %14s\n", "ε=1 estimator (all node-DP)", "mean |error|")
	fmt.Printf("%-38s %14.1f\n", fmt.Sprintf("Algorithm 1 (GEM picked Δ̂=%g)", pickedDelta), ours/trials)
	fmt.Printf("%-38s %14.1f\n", fmt.Sprintf("fixed extension at Δ=maxdeg (%d)", maxDeg), fixedMax/trials)
	fmt.Printf("%-38s %14.1f\n", fmt.Sprintf("naive Laplace (GS=n=%d)", g.N()), naive/trials)
	st := sess.Stats()
	fmt.Printf("\nsession: %d queries on %d plan build(s), spent ε=%g of %g\n",
		st.Admitted, st.PlansBuilt, st.Spent, st.TotalBudget)
	fmt.Println("noise pays for Δ* ≈", deltaUB, "— not for the celebrities' degree and not for n.")
}
