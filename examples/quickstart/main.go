// Quickstart: build a small graph and release a node-differentially
// private estimate of its number of connected components.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nodedp"
)

func main() {
	// A toy "collaboration network": two triangles, one pair, one loner.
	g := nodedp.NewGraph(9)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {2, 0}, // triangle
		{3, 4}, {4, 5}, {5, 3}, // triangle
		{6, 7}, // pair; vertex 8 is isolated
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("graph: %d vertices, %d edges, true component count %d\n",
		g.N(), g.M(), g.CountComponents())

	// One ε=2 node-private release. Passing a seeded Rand makes the demo
	// reproducible; drop the Rand option for crypto-grade noise.
	res, err := nodedp.EstimateComponentCount(g, nodedp.Options{
		Epsilon: 2,
		Rand:    nodedp.NewRand(2023),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε=2 node-private estimate: %.2f\n", res.Value)
	fmt.Printf("(GEM selected Lipschitz parameter Δ̂ = %g)\n", res.Delta)

	// If the vertex count is public in your setting, the whole budget goes
	// to the spanning-forest estimate and the release sharpens:
	known, err := nodedp.EstimateComponentCountKnownN(g, nodedp.Options{
		Epsilon: 2,
		Rand:    nodedp.NewRand(2024),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε=2 estimate with public vertex count: %.2f\n", known.Value)

	// The guarantee (Theorem 1.3) is calibrated to Δ*, the smallest
	// possible maximum degree of a spanning forest — here 2.
	_, deg := nodedp.LowDegreeSpanningForest(g)
	fmt.Printf("spanning forest with max degree %d exists, so the error scale is small\n", deg)
}
