// Entity-resolution example, modeled on the paper's motivating citation
// [CSS18] (estimating the number of documented deaths in the Syrian war):
// several overlapping casualty lists contain duplicate records of the same
// person. Drawing a "same entity" edge between matched records, the number
// of distinct victims is exactly the number of connected components of the
// record-linkage graph — and every record is sensitive, so node-DP is the
// right guarantee (one person contributes a whole cluster of records and
// all its edges... one *record* is a node; protecting a node protects a
// record and all its matches).
//
// We synthesize a linkage graph: each true entity appears on 1–4 lists,
// and matched records of the same entity form a small clique-ish cluster.
// Duplicate-detection noise adds a few spurious matches. The cluster
// structure keeps Δ* small, so the private count is sharp.
//
// Run with:
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"log"
	"math"

	"nodedp"
)

func main() {
	rng := nodedp.NewRand(2018)

	// Synthesize: 500 entities, each with 1-4 duplicate records.
	var clusterSizes []int
	totalRecords := 0
	for i := 0; i < 500; i++ {
		size := 1 + rng.IntN(4)
		clusterSizes = append(clusterSizes, size)
		totalRecords += size
	}
	// Records of one entity form a connected cluster (a path plus a few
	// extra matches).
	g := nodedp.NewGraph(totalRecords)
	base := 0
	for _, size := range clusterSizes {
		for j := 1; j < size; j++ {
			if err := g.AddEdge(base+j-1, base+j); err != nil {
				log.Fatal(err)
			}
		}
		// Extra within-cluster match edges with probability 1/2.
		for a := 0; a < size; a++ {
			for b := a + 2; b < size; b++ {
				if rng.Float64() < 0.5 {
					if err := g.AddEdge(base+a, base+b); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		base += size
	}
	// A handful of false matches between distinct entities.
	for k := 0; k < 10; k++ {
		u, v := rng.IntN(totalRecords), rng.IntN(totalRecords)
		if u != v {
			_, _ = g.EnsureEdge(u, v)
		}
	}

	trueEntities := g.CountComponents()
	fmt.Printf("record-linkage graph: %d records, %d match edges\n", g.N(), g.M())
	fmt.Printf("true number of distinct entities (connected components): %d\n\n", trueEntities)

	fmt.Printf("%6s %14s %14s\n", "ε", "estimate", "|error|")
	for _, eps := range []float64{0.5, 1, 2} {
		res, err := nodedp.EstimateComponentCount(g, nodedp.Options{
			Epsilon: eps,
			Rand:    rng,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f %14.1f %14.1f\n", eps, res.Value, math.Abs(res.Value-float64(trueEntities)))
	}
	fmt.Println("\neach row is an independent ε-node-private release protecting every")
	fmt.Println("record (and all its match edges); total spend is the sum of the ε's.")
}
