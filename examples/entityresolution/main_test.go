package main

import "testing"

// TestSmoke runs the example end to end, guarding the exported API it
// exercises against silent breakage during refactors.
func TestSmoke(t *testing.T) {
	main()
}
