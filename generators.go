package nodedp

import (
	"math/rand/v2"

	"nodedp/internal/generate"
)

// This file re-exports the workload generators so that downstream users and
// the runnable examples can construct the graph families analyzed in the
// paper (Section 1.1.4) without reaching into internal packages.

// NewRand returns a deterministic PRNG for the given seed; all generators
// take an explicit source so experiments are reproducible.
func NewRand(seed uint64) *rand.Rand { return generate.NewRand(seed) }

// ErdosRenyi samples G(n,p) (Section 1.1.4: for p = c/n the private
// estimate has additive error Õ(log n / ε)).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	return generate.ErdosRenyi(n, p, rng)
}

// GeometricGraph samples a random geometric graph on the unit square with
// connection radius r (Section 1.1.4: no induced 6-stars, hence spanning
// 6-forests and error Õ(ln ln n / ε)).
func GeometricGraph(n int, r float64, rng *rand.Rand) *Graph {
	return generate.Geometric(n, r, rng)
}

// SBM samples a stochastic block model with the given block sizes and
// within/between probabilities.
func SBM(sizes []int, pIn, pOut float64, rng *rand.Rand) *Graph {
	return generate.SBM(sizes, pIn, pOut, rng)
}

// PlantedComponents samples a disjoint union of Erdős–Rényi clusters — a
// workload with a planted ground-truth component count.
func PlantedComponents(sizes []int, p float64, rng *rand.Rand) *Graph {
	return generate.PlantedComponents(sizes, p, rng)
}

// WithHubs adds hubCount high-degree hub vertices to a copy of g, each
// adjacent to ≈ frac·n uniform vertices. Hubs blow up the maximum degree
// while barely changing Δ* — the regime separating this paper's guarantee
// from max-degree-based approaches.
func WithHubs(g *Graph, hubCount int, frac float64, rng *rand.Rand) *Graph {
	return generate.WithHubs(g, hubCount, frac, rng)
}

// Star returns the star K_{1,k}; Path, Cycle, Complete and Matching are the
// usual structured families used throughout the paper's examples.
func Star(k int) *Graph { return generate.Star(k) }

// Path returns the path on n vertices.
func Path(n int) *Graph { return generate.Path(n) }

// Cycle returns the cycle on n ≥ 3 vertices.
func Cycle(n int) *Graph { return generate.Cycle(n) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return generate.Complete(n) }

// Matching returns a perfect matching on 2k vertices (f_cc = k, Δ* = 1).
func Matching(k int) *Graph { return generate.Matching(k) }
