package nodedp

// This file wires every experiment of the reproduction suite (DESIGN.md
// section 4) to a `go test -bench` target, plus micro-benchmarks for the
// individual substrates. The experiment benches run the same drivers as
// cmd/experiments in quick mode; their value is (a) regenerating each table
// and (b) tracking the wall-clock cost of the whole pipeline over time.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one table with timing:
//
//	go test -bench=BenchmarkE4 -benchmem

import (
	"math"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/downsens"
	"nodedp/internal/experiments"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/spanning"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := runner(cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkE0RationalCrossCheck(b *testing.B)  { benchExperiment(b, "E0") }
func BenchmarkE1ExtensionProperties(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2AnchorSets(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3MainAlgorithm(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4ErdosRenyi(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5Geometric(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6DownSensitivity(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7LocalRepair(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8LipschitzTightness(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9Optimality(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Baselines(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11GEM(b *testing.B)                { benchExperiment(b, "E11") }
func BenchmarkE12PrivacyAudit(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13GenericExtension(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14LPScaling(b *testing.B)          { benchExperiment(b, "E14") }
func BenchmarkE15EpsilonSweep(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkF1RepairTrace(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2Lemma52(b *testing.B)             { benchExperiment(b, "F2") }
func BenchmarkF3WinDecomposition(b *testing.B)    { benchExperiment(b, "F3") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: the substrates in isolation.

// BenchmarkExtensionGeometric measures one f_Δ evaluation on a geometric
// graph (the paper's best case: spanning 6-forests exist, so the fast path
// dominates).
func BenchmarkExtensionGeometric(b *testing.B) {
	g := generate.Geometric(400, 1.2/math.Sqrt(400), generate.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := forestlp.Value(g, 4, forestlp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionLPPath measures f_Δ where the LP genuinely runs
// (Δ below the component's Δ*).
func BenchmarkExtensionLPPath(b *testing.B) {
	g := generate.ErdosRenyi(150, 2.0/150, generate.NewRand(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := forestlp.Value(g, 2, forestlp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1EndToEnd measures a full private release (grid
// evaluation + GEM + Laplace) on a sparse ER graph.
func BenchmarkAlgorithm1EndToEnd(b *testing.B) {
	g := generate.ErdosRenyi(200, 1.5/200, generate.NewRand(3))
	rng := generate.NewRand(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateSpanningForestSize(g, core.Options{Epsilon: 1, Rand: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1Release measures the amortized release path: the
// extension values are evaluated once, each iteration only pays GEM +
// Laplace.
func BenchmarkAlgorithm1Release(b *testing.B) {
	g := generate.Geometric(300, 1.0/math.Sqrt(300), generate.NewRand(5))
	prep, err := core.PrepareSpanningForest(g, core.Options{Epsilon: 1, Rand: generate.NewRand(6)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepair measures Algorithm 3 on a dense-ish random graph.
func BenchmarkRepair(b *testing.B) {
	g := generate.ErdosRenyi(500, 8.0/500, generate.NewRand(7))
	star, err := downsens.MaxInducedStar(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	delta := star.Size + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest, witness, err := spanning.Repair(g, delta)
		if err != nil || witness != nil || forest == nil {
			b.Fatalf("repair failed: %v %v", err, witness)
		}
	}
}

// BenchmarkMaxInducedStar measures the exact s(G) computation on a
// geometric graph.
func BenchmarkMaxInducedStar(b *testing.B) {
	g := generate.Geometric(500, 1.2/math.Sqrt(500), generate.NewRand(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := downsens.MaxInducedStar(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowDegreeSpanningForest measures the Δ* upper-bound heuristic.
func BenchmarkLowDegreeSpanningForest(b *testing.B) {
	g := generate.ErdosRenyi(400, 3.0/400, generate.NewRand(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanning.LowDegreeSpanningForest(g)
	}
}

// BenchmarkComponents measures the plain f_cc substrate.
func BenchmarkComponents(b *testing.B) {
	g := generate.ErdosRenyi(5000, 1.0/5000, generate.NewRand(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountComponents()
	}
}
