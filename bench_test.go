package nodedp

// This file wires every experiment of the reproduction suite (DESIGN.md
// section 4) to a `go test -bench` target, plus micro-benchmarks for the
// individual substrates. The experiment benches run the same drivers as
// cmd/experiments in quick mode; their value is (a) regenerating each table
// and (b) tracking the wall-clock cost of the whole pipeline over time.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one table with timing:
//
//	go test -bench=BenchmarkE4 -benchmem

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/downsens"
	"nodedp/internal/experiments"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/serve"
	"nodedp/internal/spanning"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := runner(cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkE0RationalCrossCheck(b *testing.B)  { benchExperiment(b, "E0") }
func BenchmarkE1ExtensionProperties(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2AnchorSets(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3MainAlgorithm(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4ErdosRenyi(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5Geometric(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6DownSensitivity(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7LocalRepair(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8LipschitzTightness(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9Optimality(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Baselines(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11GEM(b *testing.B)                { benchExperiment(b, "E11") }
func BenchmarkE12PrivacyAudit(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13GenericExtension(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14LPScaling(b *testing.B)          { benchExperiment(b, "E14") }
func BenchmarkE15EpsilonSweep(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkF1RepairTrace(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2Lemma52(b *testing.B)             { benchExperiment(b, "F2") }
func BenchmarkF3WinDecomposition(b *testing.B)    { benchExperiment(b, "F3") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: the substrates in isolation.

// BenchmarkExtensionGeometric measures one f_Δ evaluation on a geometric
// graph (the paper's best case: spanning 6-forests exist, so the fast path
// dominates).
func BenchmarkExtensionGeometric(b *testing.B) {
	g := generate.Geometric(400, 1.2/math.Sqrt(400), generate.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := forestlp.Value(g, 4, forestlp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionLPPath measures f_Δ where the LP genuinely runs
// (Δ below the component's Δ*).
func BenchmarkExtensionLPPath(b *testing.B) {
	g := generate.ErdosRenyi(150, 2.0/150, generate.NewRand(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := forestlp.Value(g, 2, forestlp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1EndToEnd measures a full private release (grid
// evaluation + GEM + Laplace) on a sparse ER graph.
func BenchmarkAlgorithm1EndToEnd(b *testing.B) {
	g := generate.ErdosRenyi(200, 1.5/200, generate.NewRand(3))
	rng := generate.NewRand(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateSpanningForestSize(g, core.Options{Epsilon: 1, Rand: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1Release measures the amortized release path: the
// extension values are evaluated once, each iteration only pays GEM +
// Laplace.
func BenchmarkAlgorithm1Release(b *testing.B) {
	g := generate.Geometric(300, 1.0/math.Sqrt(300), generate.NewRand(5))
	prep, err := core.PrepareSpanningForest(g, core.Options{Epsilon: 1, Rand: generate.NewRand(6)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepair measures Algorithm 3 on a dense-ish random graph.
func BenchmarkRepair(b *testing.B) {
	g := generate.ErdosRenyi(500, 8.0/500, generate.NewRand(7))
	star, err := downsens.MaxInducedStar(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	delta := star.Size + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest, witness, err := spanning.Repair(g, delta)
		if err != nil || witness != nil || forest == nil {
			b.Fatalf("repair failed: %v %v", err, witness)
		}
	}
}

// BenchmarkMaxInducedStar measures the exact s(G) computation on a
// geometric graph.
func BenchmarkMaxInducedStar(b *testing.B) {
	g := generate.Geometric(500, 1.2/math.Sqrt(500), generate.NewRand(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := downsens.MaxInducedStar(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowDegreeSpanningForest measures the Δ* upper-bound heuristic.
func BenchmarkLowDegreeSpanningForest(b *testing.B) {
	g := generate.ErdosRenyi(400, 3.0/400, generate.NewRand(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanning.LowDegreeSpanningForest(g)
	}
}

// BenchmarkComponents measures the plain f_cc substrate.
func BenchmarkComponents(b *testing.B) {
	g := generate.ErdosRenyi(5000, 1.0/5000, generate.NewRand(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountComponents()
	}
}

// BenchmarkCSRSnapshot measures building the immutable CSR snapshot plus
// its per-component shard decomposition — the planning cost the engine
// pays once per graph and then amortizes across the whole Δ-grid.
func BenchmarkCSRSnapshot(b *testing.B) {
	g := generate.ErdosRenyi(5000, 2.0/5000, generate.NewRand(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr := graph.NewCSR(g)
		csr.ComponentShards()
	}
}

// ---------------------------------------------------------------------------
// Parallel evaluation engine: serial vs. worker-pool benchmarks and the
// machine-readable BENCH_parallel.json emitter.

// parallelBenchFamilies are multi-component workloads for the engine
// benchmarks. Each family yields many independent component LPs, so the
// worker pool has real parallelism to exploit; "planted-er" is LP-heavy
// (Δ=2 defeats the fast path on dense-ish clusters), "geometric-multi" is
// fast-path-heavy (the engine's overhead floor), and "hub-clusters" mixes
// the two.
func parallelBenchFamilies() []struct {
	Name  string
	Graph *graph.Graph
	Delta float64
} {
	rng := generate.NewRand(20)
	planted := make([]int, 16)
	for i := range planted {
		planted[i] = 30
	}
	hubbed := generate.WithHubs(
		generate.PlantedComponents([]int{40, 40, 40, 40}, 2.0/40, rng), 2, 0.1, rng)
	return []struct {
		Name  string
		Graph *graph.Graph
		Delta float64
	}{
		{"planted-er", generate.PlantedComponents(planted, 3.2/30, rng), 2},
		{"hub-clusters", hubbed, 2},
		{"geometric-multi", generate.Geometric(1200, 0.9/math.Sqrt(1200), rng), 4},
	}
}

// benchEngine runs one plan evaluation per iteration at a fixed worker
// count (0 = GOMAXPROCS).
func benchEngine(b *testing.B, g *graph.Graph, delta float64, workers int) {
	b.Helper()
	plan := forestlp.NewPlan(g)
	opts := forestlp.Options{Workers: workers}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.Value(ctx, delta, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSerial and BenchmarkEngineParallel compare the sharded
// evaluator at Workers=1 against the full worker pool on every family.
// With ≥4 cores the LP-heavy families show the headline speedup; on a
// single-core machine the two are within noise of each other, which bounds
// the engine's coordination overhead.
func BenchmarkEngineSerial(b *testing.B) {
	for _, f := range parallelBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchEngine(b, f.Graph, f.Delta, 1) })
	}
}

func BenchmarkEngineParallel(b *testing.B) {
	for _, f := range parallelBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchEngine(b, f.Graph, f.Delta, 0) })
	}
}

// BenchmarkAlgorithm1Workers measures the full private release end to end
// (plan + Δ-grid + GEM + Laplace) at both ends of the worker range.
func BenchmarkAlgorithm1Workers(b *testing.B) {
	g := generate.PlantedComponents([]int{30, 30, 30, 30, 30, 30, 30, 30}, 3.0/30, generate.NewRand(21))
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{Epsilon: 1, Rand: generate.NewRand(22)}
			opts.ForestLP.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateSpanningForestSize(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelBenchRecord is one row of BENCH_parallel.json.
type parallelBenchRecord struct {
	Family   string  `json:"family"`
	N        int     `json:"n"`
	M        int     `json:"m"`
	Shards   int     `json:"shards"`
	Delta    float64 `json:"delta"`
	Workers  int     `json:"workers"`
	NsPerOp  int64   `json:"ns_per_op"`
	Speedup  float64 `json:"speedup_vs_serial"`
	MaxProcs int     `json:"gomaxprocs"`
}

// TestEmitParallelBenchJSON writes BENCH_parallel.json: serial vs. parallel
// ns/op for every benchmark family, to seed the performance trajectory
// across PRs. It is opt-in (it spins real benchmarks), so plain `go test`
// stays fast:
//
//	NODEDP_BENCH_JSON=1 go test -run TestEmitParallelBenchJSON .
func TestEmitParallelBenchJSON(t *testing.T) {
	if os.Getenv("NODEDP_BENCH_JSON") == "" {
		t.Skip("set NODEDP_BENCH_JSON=1 to emit BENCH_parallel.json")
	}
	var records []parallelBenchRecord
	for _, f := range parallelBenchFamilies() {
		plan := forestlp.NewPlan(f.Graph)
		var serialNs int64
		for _, workers := range []int{1, 0} {
			r := testing.Benchmark(func(b *testing.B) {
				benchEngine(b, f.Graph, f.Delta, workers)
			})
			ns := r.NsPerOp()
			speedup := 1.0
			if workers == 1 {
				serialNs = ns
			} else if ns > 0 {
				speedup = float64(serialNs) / float64(ns)
			}
			records = append(records, parallelBenchRecord{
				Family:   f.Name,
				N:        f.Graph.N(),
				M:        f.Graph.M(),
				Shards:   plan.Shards(),
				Delta:    f.Delta,
				Workers:  workers,
				NsPerOp:  ns,
				Speedup:  speedup,
				MaxProcs: runtime.GOMAXPROCS(0),
			})
		}
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json (%d records)", len(records))
}

// ---------------------------------------------------------------------------
// Session serving: throughput benchmarks and the BENCH_session.json emitter.

// sessionBenchGraph is the serving workload: many components with real LP
// work at small Δ, so the one-time plan is expensive relative to a query.
func sessionBenchGraph() *graph.Graph {
	sizes := make([]int, 12)
	for i := range sizes {
		sizes[i] = 30
	}
	return generate.PlantedComponents(sizes, 3.0/30, generate.NewRand(30))
}

// BenchmarkSessionOpenCold measures Open without a plan cache: the full
// snapshot + shard plan + Δ-grid cost a serving deployment pays once per
// distinct graph.
func BenchmarkSessionOpenCold(b *testing.B) {
	g := sessionBenchGraph()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionOpenCached measures Open against a warm plan cache: just
// the CSR snapshot + fingerprint + lookup.
func BenchmarkSessionOpenCached(b *testing.B) {
	g := sessionBenchGraph()
	ctx := context.Background()
	cache := core.NewPlanCache(4)
	if _, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: 1, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: 1, Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionQuery measures one amortized budget-accounted query
// (admission + GEM + Laplace) on an open session.
func BenchmarkSessionQuery(b *testing.B) {
	g := sessionBenchGraph()
	ctx := context.Background()
	sess, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: 1e12})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ComponentCount(ctx, serve.QueryOptions{Epsilon: 0.5, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// sessionDeltaEdge is the i-th edge of a long non-repeating bridge stream
// between the first two blocks of sessionBenchGraph (30×30 distinct
// bridges before the stream cycles), so consecutive mutated graphs have
// distinct fingerprints and each delta measures a genuine component
// re-plan rather than a whole-plan cache cycle hit.
func sessionDeltaEdge(i int) graph.Edge {
	return graph.NewEdge(i%30, 30+(i/30)%30)
}

// BenchmarkSessionDelta measures one live-graph mutation on an open
// session: apply a bridge edge (dropping the previous one), re-plan the
// two touched components through the sub-plan cache, and atomically swap
// the serving snapshot. The ten untouched components are reused verbatim —
// compare BenchmarkSessionDeltaColdReopen for what the delta replaces.
func BenchmarkSessionDelta(b *testing.B) {
	g := sessionBenchGraph()
	ctx := context.Background()
	sess, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: 1, Cache: core.NewPlanCache(4)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adds := []graph.Edge{sessionDeltaEdge(i)}
		var removes []graph.Edge
		if i > 0 {
			removes = append(removes, sessionDeltaEdge(i-1))
		}
		if _, err := sess.ApplyDelta(ctx, adds, removes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionDeltaColdReopen measures the alternative a mutating
// deployment had before deltas: rebuild the mutated graph and cold-open a
// fresh session on it, re-planning every component from scratch.
func BenchmarkSessionDeltaColdReopen(b *testing.B) {
	g := sessionBenchGraph()
	ctx := context.Background()
	// Two prebuilt states (bridge present / absent): cold opens run with no
	// cache, so alternating graphs cannot be served by any cache cycle.
	withBridge := func() *graph.Graph {
		edges := append(g.Edges(), sessionDeltaEdge(0))
		mg, err := graph.FromEdges(g.N(), edges)
		if err != nil {
			b.Fatal(err)
		}
		return mg
	}()
	states := []*graph.Graph{withBridge, g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serve.Open(ctx, states[i%2], serve.SessionOptions{TotalBudget: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// sessionBenchRecord is one row of BENCH_session.json.
type sessionBenchRecord struct {
	Scenario      string  `json:"scenario"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	NsPerOp       int64   `json:"ns_per_op"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	Amortization  float64 `json:"amortization_vs_one_shot,omitempty"`
	// ColdAmortization (delta-apply row) is how many times cheaper one
	// live-graph delta is than cold re-opening the mutated graph.
	ColdAmortization float64 `json:"amortization_vs_cold_open,omitempty"`
	MaxProcs         int     `json:"gomaxprocs"`
}

// TestEmitSessionBenchJSON writes BENCH_session.json: the cost of a cold
// open, a cache-served open, one amortized session query, and one one-shot
// estimate, to track the serving layer's throughput across PRs. Opt-in like
// the parallel emitter:
//
//	NODEDP_BENCH_JSON=1 go test -run TestEmitSessionBenchJSON .
func TestEmitSessionBenchJSON(t *testing.T) {
	if os.Getenv("NODEDP_BENCH_JSON") == "" {
		t.Skip("set NODEDP_BENCH_JSON=1 to emit BENCH_session.json")
	}
	g := sessionBenchGraph()
	scenarios := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"open-cold", BenchmarkSessionOpenCold},
		{"open-cached", BenchmarkSessionOpenCached},
		{"session-query", BenchmarkSessionQuery},
		{"delta-apply", BenchmarkSessionDelta},
		{"delta-cold-reopen", BenchmarkSessionDeltaColdReopen},
		{"one-shot", func(b *testing.B) {
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := core.Options{Epsilon: 0.5, Rand: generate.NewRand(uint64(i) + 1)}
				if _, err := core.EstimateComponentCountCtx(ctx, g, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	ns := make(map[string]int64, len(scenarios))
	var records []sessionBenchRecord
	for _, sc := range scenarios {
		r := testing.Benchmark(sc.run)
		ns[sc.name] = r.NsPerOp()
		rec := sessionBenchRecord{
			Scenario: sc.name,
			N:        g.N(),
			M:        g.M(),
			NsPerOp:  r.NsPerOp(),
			MaxProcs: runtime.GOMAXPROCS(0),
		}
		if sc.name == "session-query" && r.NsPerOp() > 0 {
			rec.QueriesPerSec = 1e9 / float64(r.NsPerOp())
		}
		records = append(records, rec)
	}
	// Amortization: how many session queries fit in one one-shot estimate,
	// and how many live-graph deltas fit in one cold re-open.
	for i := range records {
		if records[i].Scenario == "session-query" && records[i].NsPerOp > 0 {
			records[i].Amortization = float64(ns["one-shot"]) / float64(records[i].NsPerOp)
		}
		if records[i].Scenario == "delta-apply" && records[i].NsPerOp > 0 {
			records[i].ColdAmortization = float64(ns["delta-cold-reopen"]) / float64(records[i].NsPerOp)
		}
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_session.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_session.json (%d records)", len(records))
}
