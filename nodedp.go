// Package nodedp is a production-oriented Go implementation of
//
//	Kalemaj, Raskhodnikova, Smith, Tsourakakis.
//	"Node-Differentially Private Estimation of the Number of Connected
//	Components." PODS 2023.
//
// It releases the number of connected components f_cc(G) (equivalently, the
// spanning-forest size f_sf(G) = |V| − f_cc(G)) of a sensitive graph under
// ε-node-differential privacy: the output distribution is nearly unchanged
// when any single vertex, with all its incident edges, is added or removed
// (Definition 1.2 of the paper).
//
// The estimator is the paper's Algorithm 1: a family of polynomial-time
// Lipschitz extensions f_Δ of f_sf, built from the Δ-bounded forest
// polytope (Definition 3.1) and evaluated by a cutting-plane LP with a
// Padberg–Wolsey separation oracle; the Generalized Exponential Mechanism
// selects the Lipschitz parameter Δ̂; and a Laplace release spends the rest
// of the budget. The additive error is Δ*·Õ(ln ln n / ε) with probability
// 1 − o(1), where Δ* is the smallest possible maximum degree of a spanning
// forest of G (Theorem 1.3) — small on sparse, geometric and bounded-
// degree-forest graphs even when the maximum degree of G is huge.
//
// # Quick start
//
//	g := nodedp.NewGraph(5)
//	g.AddEdge(0, 1)
//	g.AddEdge(2, 3)
//	res, err := nodedp.EstimateComponentCount(g, nodedp.Options{Epsilon: 1})
//	// res.Value ≈ 3 (components {0,1}, {2,3}, {4}) + calibrated noise
//
// To serve many queries against one graph, Open a Session: the expensive
// Δ-grid of LP evaluations is paid once (or fetched from a fingerprint-
// keyed PlanCache) and every query spends its own ε against a total budget
// enforced by the session's composition accountant — sequential
// composition by default, or (ε, δ) advanced composition
// (CompositionAdvanced), which admits many more small queries at equal
// ε_total.
//
// To serve queries over the network instead of in process, run the
// bundled daemon (`ccdp daemon`): it exposes sessions over HTTP/JSON
// (internal/httpapi) with a multi-tenant session registry, per-session
// accountant selection, load-shedding admission control, and /metrics —
// a seeded query over HTTP releases bit-for-bit the value of the
// equivalent in-process Session query.
//
// Estimates returned by this package are node-private releases; all other
// exported analysis helpers (MaxInducedStar, LipschitzExtensionValue, …)
// compute exact data-dependent quantities and are NOT private on their own.
package nodedp

import (
	"context"
	"io"
	"math/rand/v2"

	"nodedp/internal/baseline"
	"nodedp/internal/core"
	"nodedp/internal/downsens"
	"nodedp/internal/forestlp"
	"nodedp/internal/graph"
	"nodedp/internal/privacy"
	"nodedp/internal/serve"
	"nodedp/internal/spanning"
)

// Graph is an undirected simple graph on vertices 0..N-1. See NewGraph and
// GraphFromEdges.
type Graph = graph.Graph

// Edge is an undirected edge with normalized endpoints (U < V).
type Edge = graph.Edge

// NewEdge returns the normalized edge {min(u,v), max(u,v)}.
func NewEdge(u, v int) Edge { return graph.NewEdge(u, v) }

// NewGraph returns an empty graph on n isolated vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromEdges builds a graph on n vertices with the given edge list.
// The list must already be canonical: a self-loop or duplicate edge is an
// error. Use GraphFromEdgesCanonical for noisy inputs.
func GraphFromEdges(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// GraphFromEdgesCanonical builds a graph on n vertices from an arbitrary
// edge list, canonicalizing first: endpoints normalized, self-loops
// dropped, duplicates collapsed. Any two inputs describing the same simple
// graph produce Fingerprint-identical results — the rule every network
// ingress (HTTP upload, PATCH delta) applies, exposed for library callers
// holding raw edge data.
func GraphFromEdgesCanonical(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdgesCanonical(n, edges)
}

// CanonicalizeEdges returns the canonical form of an arbitrary edge list
// over vertices 0..n-1: endpoints normalized so U < V, self-loops dropped,
// duplicates collapsed, sorted. It errors only on an out-of-range
// endpoint.
func CanonicalizeEdges(n int, edges []Edge) ([]Edge, error) {
	return graph.Canonicalize(n, edges)
}

// ReadGraph parses the package's edge-list exchange format ("n <count>"
// header plus one "u v" pair per line; '#' comments allowed).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g in the edge-list exchange format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Options configures the private estimators; see the fields of
// internal/core.Options. Epsilon is required; every other field has a
// sensible default (crypto-grade noise, β = 1/ln ln n, Δmax = n).
// Options.ForestLP.Workers sets how many per-component LPs the evaluation
// engine solves concurrently (0 = runtime.GOMAXPROCS) and
// Options.ForestLP.SepWorkers how many separation-oracle max-flow calls
// run concurrently inside a single component (0 = inherit Workers) — the
// lever for graphs dominated by one giant component; the released value
// is identical for every setting of either. Useful SepWorkers is capped
// at the oracle's maximum wave width, Options.ForestLP.SepWaveWidth
// (default 16; raise it on many-core machines). Grid sweeps warm-start
// adjacent Δ evaluations (cut pool + simplex bases) by default;
// Options.ForestLP.DisableWarmStart turns that off for perf bisection.
type Options = core.Options

// Result is the outcome of a private estimation, including the selected
// Lipschitz parameter Δ̂ and per-Δ diagnostics.
type Result = core.Result

// EstimateSpanningForestSize releases an ε-node-private estimate of
// f_sf(G), the number of edges in a spanning forest of G (Algorithm 1,
// Theorem 1.3).
func EstimateSpanningForestSize(g *Graph, opts Options) (Result, error) {
	return core.EstimateSpanningForestSize(g, opts)
}

// EstimateSpanningForestSizeCtx is EstimateSpanningForestSize with
// cancelation and deadline support: the extension evaluations (the
// long-running part of Algorithm 1) abort promptly with ctx.Err() when ctx
// is done, and a canceled run spends no privacy budget.
func EstimateSpanningForestSizeCtx(ctx context.Context, g *Graph, opts Options) (Result, error) {
	return core.EstimateSpanningForestSizeCtx(ctx, g, opts)
}

// EstimateComponentCount releases an ε-node-private estimate of f_cc(G),
// the number of connected components, via f_cc = |V| − f_sf (Equation (1));
// a configurable share of ε buys the private vertex count.
func EstimateComponentCount(g *Graph, opts Options) (Result, error) {
	return core.EstimateComponentCount(g, opts)
}

// EstimateComponentCountCtx is EstimateComponentCount with cancelation and
// deadline support.
func EstimateComponentCountCtx(ctx context.Context, g *Graph, opts Options) (Result, error) {
	return core.EstimateComponentCountCtx(ctx, g, opts)
}

// EstimateComponentCountKnownN is EstimateComponentCount for settings where
// the vertex count is public; the entire budget then goes to f_sf.
func EstimateComponentCountKnownN(g *Graph, opts Options) (Result, error) {
	return core.EstimateComponentCountKnownN(g, opts)
}

// EstimateComponentCountKnownNCtx is EstimateComponentCountKnownN with
// cancelation and deadline support.
func EstimateComponentCountKnownNCtx(ctx context.Context, g *Graph, opts Options) (Result, error) {
	return core.EstimateComponentCountKnownNCtx(ctx, g, opts)
}

// PreparedEstimator caches the deterministic, expensive half of
// Algorithm 1 — the extension evaluations over the whole Δ-grid, computed
// once on the sharded parallel engine — so repeated releases on the same
// graph only pay GEM selection plus Laplace noise. Each Release is an
// independent release spending Epsilon(); Releases and SpentBudget report
// the sequential-composition cost so far, but nothing is enforced at this
// layer — Open a Session for a hard total budget.
type PreparedEstimator = core.Prepared

// PrepareSpanningForest evaluates the extension family once for g.
func PrepareSpanningForest(g *Graph, opts Options) (*PreparedEstimator, error) {
	return core.PrepareSpanningForest(g, opts)
}

// PrepareSpanningForestCtx is PrepareSpanningForest with cancelation and
// deadline support.
func PrepareSpanningForestCtx(ctx context.Context, g *Graph, opts Options) (*PreparedEstimator, error) {
	return core.PrepareSpanningForestCtx(ctx, g, opts)
}

// Session is a long-lived serving handle on one sensitive graph: Open pays
// the deterministic, expensive half of Algorithm 1 once (CSR snapshot,
// component shard plan, Δ-grid of extension evaluations — reusing a cached
// plan when an identical graph was served before), and every subsequent
// query pays only GEM selection plus Laplace noise and its own ε, debited
// from the session's total budget by a thread-safe sequential-composition
// accountant. All methods are safe for concurrent use.
//
//	sess, err := nodedp.Open(ctx, g, nodedp.SessionOptions{TotalBudget: 4})
//	res, err := sess.ComponentCount(ctx, nodedp.QueryOptions{Epsilon: 0.5})
//	res, err = sess.SpanningForestSize(ctx, nodedp.QueryOptions{Epsilon: 0.5})
//	sess.Remaining() // 3.0
//
// Queries that would overdraw the budget fail with ErrBudgetExhausted and
// spend nothing. A query with an explicit Seed releases bit-for-bit the
// value of the equivalent one-shot Estimate*Ctx call with the same seed
// (testing only — reproducible releases are not private).
//
// Sessions serve live graphs: ApplyDelta mutates the served graph in
// place (edge adds and removes, idempotent set semantics) and re-plans it
// through the plan cache's component-keyed sub-plan layer, reusing every
// untouched component's grid values verbatim. Queries racing a delta see
// the pre- or post-delta snapshot, never a torn one, and the post-delta
// session is bit-identical to a cold open of the mutated graph.
type Session = serve.Session

// SessionOptions configures Open; TotalBudget is required, everything else
// defaults as in Options. Composition selects the budget accountant
// (sequential composition by default; CompositionAdvanced with a Delta
// admits many more small queries at equal ε_total), and Accountant injects
// a caller-owned ledger outright — e.g. one shared by several sessions
// over the same sensitive graph.
type SessionOptions = serve.SessionOptions

// Composition selects a session's budget accountant; see SessionOptions.
type Composition = privacy.Composition

const (
	// CompositionSequential is pure-ε sequential composition (Lemma 2.4):
	// queries are admitted while Σε_i ≤ TotalBudget. The default.
	CompositionSequential = privacy.Sequential
	// CompositionAdvanced is (ε, δ) advanced composition (heterogeneous
	// Dwork–Rothblum–Vadhan): queries are admitted while the
	// √(2 ln(1/δ)·Σε_i²) + Σε_i(e^{ε_i}−1) bound — or Σε_i, whichever is
	// smaller — stays within TotalBudget, with failure probability
	// SessionOptions.Delta. For many small queries the admitted count
	// grows like (ε_total/ε₀)² instead of ε_total/ε₀.
	CompositionAdvanced = privacy.Advanced
)

// Accountant is the pluggable composition ledger interface behind
// sessions; NewSequentialAccountant and NewAdvancedAccountant construct
// the built-in implementations for SessionOptions.Accountant injection.
type Accountant = privacy.Accountant

// NewSequentialAccountant returns a pure-ε sequential-composition ledger.
func NewSequentialAccountant(total float64) (Accountant, error) {
	return privacy.NewSequential(total)
}

// NewAdvancedAccountant returns an (ε_total, δ) advanced-composition
// ledger.
func NewAdvancedAccountant(total, delta float64) (Accountant, error) {
	return privacy.NewAdvanced(total, delta)
}

// QueryOptions configures one Session query: its ε (required), the
// component-count Mode, and an optional reproducibility Seed.
type QueryOptions = serve.QueryOptions

// SessionStats is the snapshot returned by Session.Stats: plans built
// (exactly 1 per distinct graph; 0 on a plan-cache hit), query admission
// counters, and budget state.
type SessionStats = serve.Stats

// QueryMode selects how a component-count query treats the vertex count.
type QueryMode = serve.Mode

const (
	// ModePrivateN buys a private vertex count out of the query ε
	// (the default; the EstimateComponentCount behavior).
	ModePrivateN = serve.PrivateN
	// ModeKnownN treats the vertex count as public
	// (the EstimateComponentCountKnownN behavior).
	ModeKnownN = serve.KnownN
)

// ErrBudgetExhausted is returned by Session queries that would overdraw the
// total budget; the failing query spends nothing. Test with errors.Is.
var ErrBudgetExhausted = serve.ErrBudgetExhausted

// Open snapshots g and starts a serving session with the given total
// privacy budget. Open itself spends no budget; a canceled ctx aborts the
// plan construction promptly.
func Open(ctx context.Context, g *Graph, opts SessionOptions) (*Session, error) {
	return serve.Open(ctx, g, opts)
}

// DeltaResult reports what one Session.ApplyDelta did: applied edge
// counts, the post-delta fingerprint, component bookkeeping (merges,
// touched components), and the component-level plan-reuse counters. A
// session mutated by ApplyDelta releases bit-identically to a session
// cold-opened on the mutated graph under the same options.
type DeltaResult = serve.DeltaResult

// BatchRequest is one query of a Session.Do batch, with per-request
// ε/op/mode/seed.
type BatchRequest = serve.Request

// BatchResponse is the outcome of one BatchRequest, at the same index.
type BatchResponse = serve.Response

// BatchOp selects what a BatchRequest estimates.
type BatchOp = serve.Op

const (
	// OpComponentCount estimates f_cc (honoring the request's Mode).
	OpComponentCount = serve.OpComponentCount
	// OpSpanningForestSize estimates f_sf.
	OpSpanningForestSize = serve.OpSpanningForestSize
)

// PlanCache is a bounded, thread-safe LRU cache of the Δ-grid evaluations,
// keyed by canonical graph fingerprint plus the plan-relevant options.
// Hand the same cache to many Open calls (SessionOptions.Cache) and
// identical graphs — even ones re-read from disk or built in a different
// edge order — skip planning entirely; any one-edge difference misses.
// Invalidate reclaims entries for a mutated graph.
//
// A cache can persist across process restarts: SaveFile snapshots every
// entry to a versioned binary file (atomic write-then-rename), and
// LoadFile merges a snapshot back, skipping corrupt or unknown-version
// entries with typed errors instead of failing. A seeded query answered
// from a reloaded plan is bit-identical to the same query from the cache
// that was saved. Snapshot files hold exact data-dependent values —
// protect them like the graphs themselves.
type PlanCache = core.PlanCache

// PlanCacheStats reports a PlanCache's hit/miss/eviction counters and the
// snapshot save/load counters.
type PlanCacheStats = core.CacheStats

// PlanCacheLoadReport describes what a PlanCache.Load/LoadFile pass merged
// in and what it had to skip.
type PlanCacheLoadReport = core.LoadReport

// NewPlanCache returns an empty plan cache bounded to capacity entries
// (a small default if capacity <= 0).
func NewPlanCache(capacity int) *PlanCache { return core.NewPlanCache(capacity) }

// Fingerprint is the canonical 128-bit digest of a graph's vertex count
// and edge set, independent of construction order; Graph.Fingerprint
// computes it. It keys the PlanCache and identifies sessions.
type Fingerprint = graph.Fingerprint

// LipschitzOptions configures LipschitzExtensionValue.
type LipschitzOptions = forestlp.Options

// LipschitzStats reports the work done by one extension evaluation,
// including the parametric-engine depth counters (Refactorizations,
// ParametricSlides, ParametricCheapSolves, IncrementalFallbacks; see
// LipschitzOptions.DisableIncremental for the switch that zeroes them).
type LipschitzStats = forestlp.Stats

// IncrementalCheapPivots is the pivot budget under which a parametric
// grid-point solve counts as LipschitzStats.ParametricCheapSolves — the
// near-zero-pivot outcome the basis-sliding Δ sweep exists for.
const IncrementalCheapPivots = forestlp.IncrementalCheapPivots

// LipschitzExtensionValue computes f_Δ(G), the paper's Lipschitz extension
// of the spanning-forest size (Definition 3.1), exactly (up to LP
// tolerance). This value is data-dependent and NOT private by itself; feed
// it to your own Laplace release (scale Δ/ε) if you need a fixed-Δ
// mechanism, or use EstimateSpanningForestSize for the full algorithm.
//
// Independent per-component LPs run concurrently when opts.Workers allows
// (0 defaults to runtime.GOMAXPROCS); the result is bit-for-bit identical
// for every worker count.
func LipschitzExtensionValue(g *Graph, delta float64, opts LipschitzOptions) (float64, LipschitzStats, error) {
	return forestlp.Value(g, delta, opts)
}

// LipschitzExtensionValueCtx is LipschitzExtensionValue with cancelation
// and deadline support.
func LipschitzExtensionValueCtx(ctx context.Context, g *Graph, delta float64, opts LipschitzOptions) (float64, LipschitzStats, error) {
	return forestlp.ValueCtx(ctx, g, delta, opts)
}

// LipschitzPlan is the reusable sharded decomposition behind the extension
// evaluator: an immutable CSR snapshot of the graph, split into
// per-component shards with their fast-path certificates precomputed.
// Build one with NewLipschitzPlan and call Value for as many (Δ, options)
// pairs as needed — Algorithm 1 does exactly this across its Δ-grid.
type LipschitzPlan = forestlp.Plan

// ShardTiming is the per-component diagnostic record reported in
// LipschitzStats.Shards.
type ShardTiming = forestlp.ShardTiming

// NewLipschitzPlan snapshots g and plans its component shards for repeated
// f_Δ evaluation.
func NewLipschitzPlan(g *Graph) *LipschitzPlan { return forestlp.NewPlan(g) }

// InducedStar describes an induced star: Center adjacent to every leaf,
// leaves pairwise non-adjacent.
type InducedStar = downsens.Star

// MaxInducedStar computes s(G), the size of the largest induced star, which
// equals the down-sensitivity of f_sf (Lemma 1.7). budget caps the exact
// search (0 = default). NOT private.
func MaxInducedStar(g *Graph, budget int) (InducedStar, error) {
	return downsens.MaxInducedStar(g, budget)
}

// SpanningForestWithRepair runs the constructive proof of Lemma 1.8
// (Algorithm 3): given Δ ≥ 1 it returns a spanning forest of maximum degree
// ≤ Δ, or an induced Δ-star witnessing that s(G) ≥ Δ. Exactly one result is
// non-nil.
func SpanningForestWithRepair(g *Graph, delta int) ([]Edge, *RepairWitness, error) {
	return spanning.Repair(g, delta)
}

// RepairWitness is the induced-star witness returned when Algorithm 3 is
// blocked.
type RepairWitness = spanning.Star

// SpanningForestRepairTrace is SpanningForestWithRepair with a step logger:
// every insertion and local-repair swap (Figure 1 of the paper) is reported
// to trace.
func SpanningForestRepairTrace(g *Graph, delta int, trace func(step string)) ([]Edge, *RepairWitness, error) {
	return spanning.RepairWithTrace(g, delta, trace)
}

// LowDegreeSpanningForest returns a spanning forest of heuristically
// minimized maximum degree together with that degree — an upper bound on
// Δ*, the accuracy parameter of Theorem 1.3. NOT private.
func LowDegreeSpanningForest(g *Graph) ([]Edge, int) {
	return spanning.LowDegreeSpanningForest(g)
}

// Baselines: comparison estimators used by the experiment suite. See
// internal/baseline for the privacy caveats of each (EdgeDP is only
// edge-private; Truncation is a heuristic without a worst-case node-DP
// guarantee).

// EdgeDPComponentCount releases f_cc + Lap(1/ε): ε-EDGE-private only.
func EdgeDPComponentCount(rng *rand.Rand, g *Graph, eps float64) (float64, error) {
	return baseline.EdgeDPComponentCount(rng, g, eps)
}

// NaiveNodeDPComponentCount releases f_cc + Lap(n/ε): node-private but with
// worst-case global-sensitivity noise.
func NaiveNodeDPComponentCount(rng *rand.Rand, g *Graph, eps float64) (float64, error) {
	return baseline.NaiveNodeDPComponentCount(rng, g, eps)
}

// FixedDeltaComponentCountKnownN releases n − (f_Δ(G) + Lap(Δ/ε)) for a
// caller-chosen Lipschitz parameter Δ: the paper's mechanism without the
// GEM selection step. ε-node-private for the f_sf part (n is treated as
// public). Useful as an ablation and as the rigorous "calibrate to max
// degree" baseline (Δ = MaxDegree()).
func FixedDeltaComponentCountKnownN(rng *rand.Rand, g *Graph, delta, eps float64, opts LipschitzOptions) (float64, error) {
	return baseline.FixedDeltaComponentCountKnownN(rng, g, delta, eps, opts)
}
