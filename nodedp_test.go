package nodedp

import (
	"bytes"
	"math"
	"testing"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph(5)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	res, err := EstimateComponentCount(g, Options{Epsilon: 1, Rand: NewRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Value) {
		t.Fatal("NaN release")
	}
}

func TestGraphFromEdgesAndIO(t *testing.T) {
	g, err := GraphFromEdges(4, []Edge{NewEdge(0, 1), NewEdge(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("round trip mismatch")
	}
}

func TestLipschitzExtensionValueFacade(t *testing.T) {
	g := Star(6)
	v, stats, err := LipschitzExtensionValue(g, 3, LipschitzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-3) > 1e-5 {
		t.Fatalf("f_3(K_{1,6}) = %v, want 3", v)
	}
	if stats.Components == 0 {
		t.Fatal("stats should be populated")
	}
}

func TestAnalysisHelpers(t *testing.T) {
	g := Star(5)
	star, err := MaxInducedStar(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if star.Size != 5 {
		t.Fatalf("s(K_{1,5}) = %d, want 5", star.Size)
	}
	forest, witness, err := SpanningForestWithRepair(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if witness != nil || len(forest) != 5 {
		t.Fatalf("repair: forest=%v witness=%+v", forest, witness)
	}
	_, deg := LowDegreeSpanningForest(Complete(6))
	if deg > 3 {
		t.Fatalf("K_6 low-degree forest degree %d", deg)
	}
}

func TestGeneratorsFacade(t *testing.T) {
	rng := NewRand(42)
	if g := ErdosRenyi(50, 0.1, rng); g.N() != 50 {
		t.Fatal("ErdosRenyi facade broken")
	}
	if g := GeometricGraph(30, 0.2, rng); g.N() != 30 {
		t.Fatal("GeometricGraph facade broken")
	}
	if g := SBM([]int{5, 5}, 1, 0, rng); g.CountComponents() != 2 {
		t.Fatal("SBM facade broken")
	}
	if g := PlantedComponents([]int{3, 3}, 1, rng); g.CountComponents() != 2 {
		t.Fatal("PlantedComponents facade broken")
	}
	if g := WithHubs(Matching(5), 1, 1, rng); g.MaxDegree() != 10 {
		t.Fatal("WithHubs facade broken")
	}
	if Path(4).M() != 3 || Cycle(4).M() != 4 || Complete(4).M() != 6 || Matching(4).M() != 4 || Star(4).M() != 4 {
		t.Fatal("structured generators broken")
	}
}

func TestBaselinesFacade(t *testing.T) {
	g := Matching(20)
	rng := NewRand(7)
	edge, err := EdgeDPComponentCount(rng, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(edge-20) > 25 {
		t.Fatalf("edge-DP estimate %v implausible", edge)
	}
	if _, err := NaiveNodeDPComponentCount(rng, g, 1); err != nil {
		t.Fatal(err)
	}
}

func TestKnownNFacade(t *testing.T) {
	g := Matching(25)
	res, err := EstimateComponentCountKnownN(g, Options{Epsilon: 2, Rand: NewRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-25) > 25 {
		t.Fatalf("estimate %v too far from 25", res.Value)
	}
	sf, err := EstimateSpanningForestSize(g, Options{Epsilon: 2, Rand: NewRand(10)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sf.Value-25) > 25 {
		t.Fatalf("f_sf estimate %v too far from 25", sf.Value)
	}
}
