package nodedp

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph(5)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	res, err := EstimateComponentCount(g, Options{Epsilon: 1, Rand: NewRand(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Value) {
		t.Fatal("NaN release")
	}
}

func TestGraphFromEdgesAndIO(t *testing.T) {
	g, err := GraphFromEdges(4, []Edge{NewEdge(0, 1), NewEdge(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("round trip mismatch")
	}
}

func TestLipschitzExtensionValueFacade(t *testing.T) {
	g := Star(6)
	v, stats, err := LipschitzExtensionValue(g, 3, LipschitzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-3) > 1e-5 {
		t.Fatalf("f_3(K_{1,6}) = %v, want 3", v)
	}
	if stats.Components == 0 {
		t.Fatal("stats should be populated")
	}
}

func TestAnalysisHelpers(t *testing.T) {
	g := Star(5)
	star, err := MaxInducedStar(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if star.Size != 5 {
		t.Fatalf("s(K_{1,5}) = %d, want 5", star.Size)
	}
	forest, witness, err := SpanningForestWithRepair(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if witness != nil || len(forest) != 5 {
		t.Fatalf("repair: forest=%v witness=%+v", forest, witness)
	}
	_, deg := LowDegreeSpanningForest(Complete(6))
	if deg > 3 {
		t.Fatalf("K_6 low-degree forest degree %d", deg)
	}
}

func TestGeneratorsFacade(t *testing.T) {
	rng := NewRand(42)
	if g := ErdosRenyi(50, 0.1, rng); g.N() != 50 {
		t.Fatal("ErdosRenyi facade broken")
	}
	if g := GeometricGraph(30, 0.2, rng); g.N() != 30 {
		t.Fatal("GeometricGraph facade broken")
	}
	if g := SBM([]int{5, 5}, 1, 0, rng); g.CountComponents() != 2 {
		t.Fatal("SBM facade broken")
	}
	if g := PlantedComponents([]int{3, 3}, 1, rng); g.CountComponents() != 2 {
		t.Fatal("PlantedComponents facade broken")
	}
	if g := WithHubs(Matching(5), 1, 1, rng); g.MaxDegree() != 10 {
		t.Fatal("WithHubs facade broken")
	}
	if Path(4).M() != 3 || Cycle(4).M() != 4 || Complete(4).M() != 6 || Matching(4).M() != 4 || Star(4).M() != 4 {
		t.Fatal("structured generators broken")
	}
}

func TestBaselinesFacade(t *testing.T) {
	g := Matching(20)
	rng := NewRand(7)
	edge, err := EdgeDPComponentCount(rng, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(edge-20) > 25 {
		t.Fatalf("edge-DP estimate %v implausible", edge)
	}
	if _, err := NaiveNodeDPComponentCount(rng, g, 1); err != nil {
		t.Fatal(err)
	}
}

func TestKnownNFacade(t *testing.T) {
	g := Matching(25)
	res, err := EstimateComponentCountKnownN(g, Options{Epsilon: 2, Rand: NewRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-25) > 25 {
		t.Fatalf("estimate %v too far from 25", res.Value)
	}
	sf, err := EstimateSpanningForestSize(g, Options{Epsilon: 2, Rand: NewRand(10)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sf.Value-25) > 25 {
		t.Fatalf("f_sf estimate %v too far from 25", sf.Value)
	}
}

func TestSessionFacade(t *testing.T) {
	g := Matching(20)
	ctx := context.Background()
	cache := NewPlanCache(0)
	sess, err := Open(ctx, g, SessionOptions{TotalBudget: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	// A seeded session query equals the one-shot call with the same seed.
	oneShot, err := EstimateComponentCountCtx(ctx, g, Options{Epsilon: 0.5, Rand: NewRand(42)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != oneShot.Value {
		t.Fatalf("session release %v != one-shot release %v", res.Value, oneShot.Value)
	}
	if sess.Remaining() != 1.5 {
		t.Fatalf("Remaining = %v, want 1.5", sess.Remaining())
	}

	// Batch with per-request ε/mode/seed on the same plan.
	resps := sess.Do(ctx, []BatchRequest{
		{Op: OpSpanningForestSize, Epsilon: 0.5, Seed: 1},
		{Op: OpComponentCount, Mode: ModeKnownN, Epsilon: 0.5, Seed: 2},
		{Op: OpComponentCount, Epsilon: 9, Seed: 3}, // over budget
	})
	if resps[0].Err != nil || resps[1].Err != nil {
		t.Fatalf("batch errors: %v, %v", resps[0].Err, resps[1].Err)
	}
	if !errors.Is(resps[2].Err, ErrBudgetExhausted) {
		t.Fatalf("over-budget request: err = %v, want ErrBudgetExhausted", resps[2].Err)
	}
	if st := sess.Stats(); st.PlansBuilt != 1 || st.Admitted != 3 || st.Rejected != 1 {
		t.Fatalf("session stats %+v, want 1 plan, 3 admitted, 1 rejected", st)
	}

	// A second session on an equal graph is served from the cache.
	sess2, err := Open(ctx, g.Clone(), SessionOptions{TotalBudget: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if st := sess2.Stats(); st.PlansBuilt != 0 || !st.CacheHit {
		t.Fatalf("second open stats %+v, want a cache hit", st)
	}
	if hits := cache.Stats().Hits; hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if g.Fingerprint() != sess2.Fingerprint() {
		t.Fatal("fingerprint mismatch between graph and session")
	}
}

func TestPreparedIntrospection(t *testing.T) {
	g := Matching(10)
	prep, err := PrepareSpanningForest(g, Options{Epsilon: 1, Rand: NewRand(3)})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Epsilon() != 1 || prep.Releases() != 0 || prep.SpentBudget() != 0 {
		t.Fatalf("fresh estimator: ε=%v releases=%d spent=%v", prep.Epsilon(), prep.Releases(), prep.SpentBudget())
	}
	for i := 0; i < 3; i++ {
		if _, err := prep.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if prep.Releases() != 3 || prep.SpentBudget() != 3 {
		t.Fatalf("after 3 releases: releases=%d spent=%v", prep.Releases(), prep.SpentBudget())
	}
}
