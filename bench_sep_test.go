package nodedp

// Separation-engine benchmarks and the BENCH_sep.json emitter: the
// intra-component cutting-plane engine measured on giant-component
// workloads, where shard-level parallelism (BENCH_parallel.json) has
// nothing to split and the oracle + simplex inner loop is everything.
//
// Four configurations bracket the engine:
//
//	legacy     — warm starts off, exhaustive oracle (the pre-engine work
//	             profile: one fresh max-flow per uncovered forced vertex
//	             per round, every LP solved from the all-slack basis);
//	cold       — warm starts off, screened oracle (support 2-core
//	             screening, ramped waves, gap-pinch termination);
//	warm       — warm starts on, parametric engine off (parked-cut
//	             revival, round-to-round and cross-Δ simplex warm starts;
//	             every LP still rebuilds its tableau from rows);
//	parametric — the default: everything on, including the standing
//	             incremental solvers that slide an optimal basis across
//	             adjacent Δ grid points (see internal/forestlp/parametric).
//
// The JSON records max-flow calls and simplex pivots per Δ-grid evaluation
// (both deterministic), ns/op, the legacy→config reduction ratios, and the
// warm→parametric ratios (the tableau-reuse win in isolation), so the wins
// are visible even on a single-core container. It also certifies the
// determinism contract: seeded releases bit-identical across SepWorkers
// ∈ {1,4,8}, warm-start on/off, and incremental on/off.

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// sepBenchFamily is one benchmark workload. SweepOnly marks the
// spider families measured under the warm and parametric configurations
// only: their hub-forced degree structure keeps the cutting-plane LP
// active across most of the Δ-grid — exactly the workload the parametric
// sweep exists for — but without the cut pool the cold configurations hit
// the stall bailout, whose path-dependent bound would make any comparison
// against them apples-to-oranges.
type sepBenchFamily struct {
	Name      string
	Graph     *graph.Graph
	SweepOnly bool
}

// sepBenchFamilies are giant-component workloads: dense enough that the
// cutting-plane LP runs at several grid points, connected enough that the
// whole graph is (essentially) one shard.
func sepBenchFamilies() []sepBenchFamily {
	// Each family draws from its own source: the instances are chosen to
	// converge (no stalled pieces) under every configuration they are
	// benched on, so those configurations provably reach the same optimum.
	erRng := generate.NewRand(40)
	hubRng := generate.NewRand(41)
	return []sepBenchFamily{
		{Name: "planted-er-giant", Graph: generate.PlantedComponents([]int{120}, 6.0/120, erRng)},
		{Name: "hub-clusters-giant", Graph: generate.WithHubs(
			generate.PlantedComponents([]int{60, 60}, 5.0/60, hubRng), 3, 0.25, hubRng)},
		{Name: "spider-er-a", Graph: spiderGraph(40, 4, 5, 0.65, 54), SweepOnly: true},
		{Name: "spider-er-b", Graph: spiderGraph(40, 4, 5, 0.65, 56), SweepOnly: true},
	}
}

// spiderGraph builds a hub-articulated giant component: k small ER
// clusters, each tied to a central hub by exactly one bridge. The hub is
// the only inter-cluster connection, so every spanning forest carries all
// k bridges and the hub's degree is forced to k — f_Δ stays strictly below
// f_sf (and the LP stays active) until Δ reaches k, across a Δ range where
// the peel-stable piece recurs identically at every grid point. Mixed
// cluster sizes and random bridge endpoints break the symmetry that would
// otherwise make the LP degenerate.
func spiderGraph(k, minSize, spread int, p float64, seed uint64) *graph.Graph {
	rng := generate.NewRand(seed)
	sizes := make([]int, k)
	clusters := make([]*graph.Graph, k)
	for i := range clusters {
		sizes[i] = minSize + rng.IntN(spread)
		clusters[i] = generate.ErdosRenyi(sizes[i], p, rng)
	}
	g := generate.DisjointUnion(clusters...)
	hub := g.AddVertex()
	off := 0
	for i := 0; i < k; i++ {
		if err := g.AddEdge(hub, off+rng.IntN(sizes[i])); err != nil {
			panic(err)
		}
		off += sizes[i]
	}
	return g
}

// sepBenchConfigs are the four engine configurations; order matters (the
// emitter uses the first as the legacy reduction baseline and "warm" as the
// parametric comparison baseline).
func sepBenchConfigs() []struct {
	Name string
	Opts forestlp.Options
} {
	return []struct {
		Name string
		Opts forestlp.Options
	}{
		{"legacy", forestlp.Options{Workers: 1, DisableWarmStart: true, SepExhaustive: true}},
		{"cold", forestlp.Options{Workers: 1, DisableWarmStart: true}},
		{"warm", forestlp.Options{Workers: 1, DisableIncremental: true}},
		{"parametric", forestlp.Options{Workers: 1}},
	}
}

// benchGridSweep runs one full Δ-grid evaluation per iteration.
func benchGridSweep(b *testing.B, g *graph.Graph, opts forestlp.Options) {
	b.Helper()
	plan := forestlp.NewPlan(g)
	grid, err := mechanism.PowerOfTwoGrid(float64(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.GridValues(ctx, grid, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeparationLegacy / Screened / Warm / Parametric sweep the
// Δ-grid on the giant-component families under the four engine
// configurations (the cold configurations skip the sweep-only spiders).
func BenchmarkSeparationLegacy(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		if f.SweepOnly {
			continue
		}
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[0].Opts) })
	}
}

func BenchmarkSeparationScreened(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		if f.SweepOnly {
			continue
		}
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[1].Opts) })
	}
}

func BenchmarkSeparationWarm(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[2].Opts) })
	}
}

func BenchmarkSeparationParametric(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[3].Opts) })
	}
}

// BenchmarkGridWarmStart measures the full private release (plan + Δ-grid
// + GEM + Laplace) on the giant ER family with warm starts on and off.
func BenchmarkGridWarmStart(b *testing.B) {
	g := sepBenchFamilies()[0].Graph
	for _, warm := range []bool{false, true} {
		name := "warm=off"
		if warm {
			name = "warm=on"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{Epsilon: 1, Rand: generate.NewRand(41)}
			opts.ForestLP.Workers = 1
			opts.ForestLP.DisableWarmStart = !warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateSpanningForestSize(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sepBenchRecord is one row of BENCH_sep.json.
type sepBenchRecord struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Config string `json:"config"`
	// Deterministic work counters for one full Δ-grid evaluation.
	MaxFlowCalls  int     `json:"max_flow_calls"`
	FlowsPerSolve float64 `json:"flows_per_lp_solve"`
	SimplexPivots int     `json:"simplex_pivots"`
	LPSolves      int     `json:"lp_solves"`
	CutsRevived   int     `json:"cuts_revived"`
	WarmBasisHits int     `json:"warm_basis_hits"`
	StalledPieces int     `json:"stalled_pieces"`
	// Parametric-engine depth counters (nonzero only for the parametric
	// configuration).
	Refactorizations      int `json:"refactorizations,omitempty"`
	ParametricSlides      int `json:"parametric_slides,omitempty"`
	ParametricCheapSolves int `json:"parametric_cheap_solves,omitempty"`
	IncrementalFallbacks  int `json:"incremental_fallbacks,omitempty"`
	// Reductions vs. the legacy configuration of the same family.
	FlowReduction  float64 `json:"flow_reduction_vs_legacy,omitempty"`
	PivotReduction float64 `json:"pivot_reduction_vs_legacy,omitempty"`
	NsPerOp        int64   `json:"ns_per_op"`
	Speedup        float64 `json:"speedup_vs_legacy,omitempty"`
	// The parametric configuration's wins over "warm" — the previous
	// default — isolating what the standing tableaus buy on top of warm
	// starts.
	SpeedupVsWarm        float64 `json:"speedup_vs_warm,omitempty"`
	PivotReductionVsWarm float64 `json:"pivot_reduction_vs_warm,omitempty"`
	// ReleasesBitIdentical certifies that a seeded release is bit-for-bit
	// equal across SepWorkers ∈ {1,4,8}, warm-start on/off, and
	// incremental on/off.
	ReleasesBitIdentical bool `json:"releases_bit_identical"`
	MaxProcs             int  `json:"gomaxprocs"`
}

// sepReleaseBitIdentical runs a seeded end-to-end release on g under every
// (SepWorkers, warm, incremental) combination and reports whether all are
// bit-equal. Warm-start off implies incremental off, so the matrix has
// three engine variants per worker count. On sweep-only families the cold
// variant is skipped — it stalls, and a stalled piece's bound is
// explicitly solve-path-dependent — leaving the incremental on/off ×
// SepWorkers matrix the parametric engine is contracted on.
func sepReleaseBitIdentical(t *testing.T, g *graph.Graph, sweepOnly bool) bool {
	t.Helper()
	variants := []struct{ noWarm, noIncr bool }{
		{false, false}, // parametric (the default)
		{false, true},  // warm starts without standing tableaus
		{true, true},   // fully cold
	}
	if sweepOnly {
		variants = variants[:2]
	}
	var want float64
	first := true
	for _, sepWorkers := range []int{1, 4, 8} {
		for _, v := range variants {
			opts := core.Options{Epsilon: 1, Rand: generate.NewRand(42)}
			opts.ForestLP.Workers = 1
			opts.ForestLP.SepWorkers = sepWorkers
			opts.ForestLP.DisableWarmStart = v.noWarm
			opts.ForestLP.DisableIncremental = v.noIncr
			res, err := core.EstimateComponentCount(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if first {
				want, first = res.Value, false
			} else if math.Float64bits(res.Value) != math.Float64bits(want) {
				return false
			}
		}
	}
	return true
}

// TestEmitSepBenchJSON writes BENCH_sep.json. Opt-in like the other
// emitters (it spins real benchmarks):
//
//	NODEDP_BENCH_JSON=1 go test -run TestEmitSepBenchJSON .
func TestEmitSepBenchJSON(t *testing.T) {
	if os.Getenv("NODEDP_BENCH_JSON") == "" {
		t.Skip("set NODEDP_BENCH_JSON=1 to emit BENCH_sep.json")
	}
	var records []sepBenchRecord
	for _, f := range sepBenchFamilies() {
		plan := forestlp.NewPlan(f.Graph)
		grid, err := mechanism.PowerOfTwoGrid(float64(f.Graph.N()))
		if err != nil {
			t.Fatal(err)
		}
		bit := sepReleaseBitIdentical(t, f.Graph, f.SweepOnly)
		var legacy, warm sepBenchRecord
		haveLegacy := false
		for _, cfg := range sepBenchConfigs() {
			if f.SweepOnly && cfg.Name != "warm" && cfg.Name != "parametric" {
				continue
			}
			_, stats, err := plan.GridValues(context.Background(), grid, cfg.Opts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.StalledPieces > 0 {
				t.Errorf("%s/%s: %d stalled pieces — bench families must converge, pick another instance",
					f.Name, cfg.Name, stats.StalledPieces)
			}
			r := testing.Benchmark(func(b *testing.B) { benchGridSweep(b, f.Graph, cfg.Opts) })
			rec := sepBenchRecord{
				Family:                f.Name,
				N:                     f.Graph.N(),
				M:                     f.Graph.M(),
				Config:                cfg.Name,
				MaxFlowCalls:          stats.MaxFlowCalls,
				SimplexPivots:         stats.SimplexPivots,
				LPSolves:              stats.LPSolves,
				CutsRevived:           stats.CutsRevived,
				WarmBasisHits:         stats.WarmBasisHits,
				StalledPieces:         stats.StalledPieces,
				Refactorizations:      stats.Refactorizations,
				ParametricSlides:      stats.ParametricSlides,
				ParametricCheapSolves: stats.ParametricCheapSolves,
				IncrementalFallbacks:  stats.IncrementalFallbacks,
				NsPerOp:               r.NsPerOp(),
				ReleasesBitIdentical:  bit,
				MaxProcs:              runtime.GOMAXPROCS(0),
			}
			if stats.LPSolves > 0 {
				rec.FlowsPerSolve = float64(stats.MaxFlowCalls) / float64(stats.LPSolves)
			}
			if cfg.Name == "legacy" {
				legacy, haveLegacy = rec, true
			} else if haveLegacy {
				if rec.MaxFlowCalls > 0 {
					rec.FlowReduction = float64(legacy.MaxFlowCalls) / float64(rec.MaxFlowCalls)
				} else if legacy.MaxFlowCalls > 0 {
					rec.FlowReduction = math.Inf(1)
				}
				if legacy.SimplexPivots > 0 {
					rec.PivotReduction = 1 - float64(rec.SimplexPivots)/float64(legacy.SimplexPivots)
				}
				if rec.NsPerOp > 0 {
					rec.Speedup = float64(legacy.NsPerOp) / float64(rec.NsPerOp)
				}
			}
			if cfg.Name == "warm" {
				warm = rec
			}
			if cfg.Name == "parametric" {
				if rec.NsPerOp > 0 {
					rec.SpeedupVsWarm = float64(warm.NsPerOp) / float64(rec.NsPerOp)
				}
				if warm.SimplexPivots > 0 {
					rec.PivotReductionVsWarm = 1 - float64(rec.SimplexPivots)/float64(warm.SimplexPivots)
				}
			}
			records = append(records, rec)
		}
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sep.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_sep.json (%d records)", len(records))

	// Acceptance bars. Warm (the PR 3 engine, parametric off) must still at
	// least halve the max-flow calls and cut simplex pivots by ≥30%
	// relative to legacy on the full-matrix families. On the sweep-only
	// spiders — the LP-across-the-grid workload the parametric engine
	// targets — the parametric default must beat warm by ≥2× in wall time
	// with ≥40% fewer simplex pivots while actually sliding bases; on every
	// other family it must never pivot more than warm. Seeded releases must
	// be bit-identical across the engine matrix throughout.
	sweepOnly := make(map[string]bool)
	for _, f := range sepBenchFamilies() {
		sweepOnly[f.Name] = f.SweepOnly
	}
	for _, rec := range records {
		switch {
		case rec.Config == "warm" && !sweepOnly[rec.Family]:
			if rec.FlowReduction < 2 {
				t.Errorf("%s: flow reduction %.2f× < 2×", rec.Family, rec.FlowReduction)
			}
			if rec.PivotReduction < 0.30 {
				t.Errorf("%s: pivot reduction %.0f%% < 30%%", rec.Family, 100*rec.PivotReduction)
			}
		case rec.Config == "parametric" && sweepOnly[rec.Family]:
			if rec.SpeedupVsWarm < 2 {
				t.Errorf("%s: parametric speedup %.2f× < 2× vs warm", rec.Family, rec.SpeedupVsWarm)
			}
			if rec.PivotReductionVsWarm < 0.40 {
				t.Errorf("%s: parametric pivot reduction %.0f%% < 40%% vs warm", rec.Family, 100*rec.PivotReductionVsWarm)
			}
			if rec.ParametricSlides == 0 {
				t.Errorf("%s: parametric engine never slid a basis", rec.Family)
			}
		case rec.Config == "parametric":
			if rec.PivotReductionVsWarm < 0 {
				t.Errorf("%s: parametric pivoted MORE than warm (%d vs %d)",
					rec.Family, rec.SimplexPivots, warmPivotsOf(records, rec.Family))
			}
		}
		if !rec.ReleasesBitIdentical {
			t.Errorf("%s: seeded releases not bit-identical across SepWorkers × warm × incremental", rec.Family)
		}
	}
}

// warmPivotsOf finds the warm configuration's pivot count for a family.
func warmPivotsOf(records []sepBenchRecord, family string) int {
	for _, rec := range records {
		if rec.Family == family && rec.Config == "warm" {
			return rec.SimplexPivots
		}
	}
	return 0
}
