package nodedp

// Separation-engine benchmarks and the BENCH_sep.json emitter: the
// intra-component cutting-plane engine measured on giant-component
// workloads, where shard-level parallelism (BENCH_parallel.json) has
// nothing to split and the oracle + simplex inner loop is everything.
//
// Three configurations bracket the engine:
//
//	legacy — warm starts off, exhaustive oracle (the pre-engine work
//	         profile: one fresh max-flow per uncovered forced vertex per
//	         round, every LP solved from the all-slack basis);
//	cold   — warm starts off, screened oracle (support 2-core screening,
//	         ramped waves, gap-pinch termination);
//	warm   — the default: everything on (parked-cut revival, round-to-round
//	         and cross-Δ simplex warm starts).
//
// The JSON records max-flow calls and simplex pivots per Δ-grid evaluation
// (both deterministic), ns/op, and the legacy→warm reduction ratios, so
// the win is visible even on a single-core container. It also certifies
// the determinism contract: seeded releases bit-identical across
// SepWorkers ∈ {1,4,8} and warm-start on/off.

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// sepBenchFamilies are giant-component workloads: dense enough that the
// cutting-plane LP runs at several grid points, connected enough that the
// whole graph is (essentially) one shard.
func sepBenchFamilies() []struct {
	Name  string
	Graph *graph.Graph
} {
	// Each family draws from its own source: the instances are chosen to
	// converge (no stalled pieces) so every configuration provably reaches
	// the same optimum — the stall bailout returns a path-dependent bound
	// and would make cross-configuration comparisons apples-to-oranges.
	erRng := generate.NewRand(40)
	hubRng := generate.NewRand(41)
	return []struct {
		Name  string
		Graph *graph.Graph
	}{
		{"planted-er-giant", generate.PlantedComponents([]int{120}, 6.0/120, erRng)},
		{"hub-clusters-giant", generate.WithHubs(
			generate.PlantedComponents([]int{60, 60}, 5.0/60, hubRng), 3, 0.25, hubRng)},
	}
}

// sepBenchConfigs are the three engine configurations; order matters (the
// emitter uses the first as the reduction baseline).
func sepBenchConfigs() []struct {
	Name string
	Opts forestlp.Options
} {
	return []struct {
		Name string
		Opts forestlp.Options
	}{
		{"legacy", forestlp.Options{Workers: 1, DisableWarmStart: true, SepExhaustive: true}},
		{"cold", forestlp.Options{Workers: 1, DisableWarmStart: true}},
		{"warm", forestlp.Options{Workers: 1}},
	}
}

// benchGridSweep runs one full Δ-grid evaluation per iteration.
func benchGridSweep(b *testing.B, g *graph.Graph, opts forestlp.Options) {
	b.Helper()
	plan := forestlp.NewPlan(g)
	grid, err := mechanism.PowerOfTwoGrid(float64(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.GridValues(ctx, grid, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeparationLegacy / Screened / Warm sweep the Δ-grid on every
// giant-component family under the three engine configurations.
func BenchmarkSeparationLegacy(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[0].Opts) })
	}
}

func BenchmarkSeparationScreened(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[1].Opts) })
	}
}

func BenchmarkSeparationWarm(b *testing.B) {
	for _, f := range sepBenchFamilies() {
		b.Run(f.Name, func(b *testing.B) { benchGridSweep(b, f.Graph, sepBenchConfigs()[2].Opts) })
	}
}

// BenchmarkGridWarmStart measures the full private release (plan + Δ-grid
// + GEM + Laplace) on the giant ER family with warm starts on and off.
func BenchmarkGridWarmStart(b *testing.B) {
	g := sepBenchFamilies()[0].Graph
	for _, warm := range []bool{false, true} {
		name := "warm=off"
		if warm {
			name = "warm=on"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{Epsilon: 1, Rand: generate.NewRand(41)}
			opts.ForestLP.Workers = 1
			opts.ForestLP.DisableWarmStart = !warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateSpanningForestSize(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sepBenchRecord is one row of BENCH_sep.json.
type sepBenchRecord struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Config string `json:"config"`
	// Deterministic work counters for one full Δ-grid evaluation.
	MaxFlowCalls  int     `json:"max_flow_calls"`
	FlowsPerSolve float64 `json:"flows_per_lp_solve"`
	SimplexPivots int     `json:"simplex_pivots"`
	LPSolves      int     `json:"lp_solves"`
	CutsRevived   int     `json:"cuts_revived"`
	WarmBasisHits int     `json:"warm_basis_hits"`
	StalledPieces int     `json:"stalled_pieces"`
	// Reductions vs. the legacy configuration of the same family.
	FlowReduction  float64 `json:"flow_reduction_vs_legacy,omitempty"`
	PivotReduction float64 `json:"pivot_reduction_vs_legacy,omitempty"`
	NsPerOp        int64   `json:"ns_per_op"`
	Speedup        float64 `json:"speedup_vs_legacy,omitempty"`
	// ReleasesBitIdentical certifies that a seeded release is bit-for-bit
	// equal across SepWorkers ∈ {1,4,8} and warm-start on/off.
	ReleasesBitIdentical bool `json:"releases_bit_identical"`
	MaxProcs             int  `json:"gomaxprocs"`
}

// sepReleaseBitIdentical runs a seeded end-to-end release on g under every
// (SepWorkers, warm) combination and reports whether all are bit-equal.
func sepReleaseBitIdentical(t *testing.T, g *graph.Graph) bool {
	t.Helper()
	var want float64
	first := true
	for _, sepWorkers := range []int{1, 4, 8} {
		for _, warm := range []bool{true, false} {
			opts := core.Options{Epsilon: 1, Rand: generate.NewRand(42)}
			opts.ForestLP.Workers = 1
			opts.ForestLP.SepWorkers = sepWorkers
			opts.ForestLP.DisableWarmStart = !warm
			res, err := core.EstimateComponentCount(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if first {
				want, first = res.Value, false
			} else if math.Float64bits(res.Value) != math.Float64bits(want) {
				return false
			}
		}
	}
	return true
}

// TestEmitSepBenchJSON writes BENCH_sep.json. Opt-in like the other
// emitters (it spins real benchmarks):
//
//	NODEDP_BENCH_JSON=1 go test -run TestEmitSepBenchJSON .
func TestEmitSepBenchJSON(t *testing.T) {
	if os.Getenv("NODEDP_BENCH_JSON") == "" {
		t.Skip("set NODEDP_BENCH_JSON=1 to emit BENCH_sep.json")
	}
	var records []sepBenchRecord
	for _, f := range sepBenchFamilies() {
		plan := forestlp.NewPlan(f.Graph)
		grid, err := mechanism.PowerOfTwoGrid(float64(f.Graph.N()))
		if err != nil {
			t.Fatal(err)
		}
		bit := sepReleaseBitIdentical(t, f.Graph)
		var legacy sepBenchRecord
		for i, cfg := range sepBenchConfigs() {
			_, stats, err := plan.GridValues(context.Background(), grid, cfg.Opts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.StalledPieces > 0 {
				t.Errorf("%s/%s: %d stalled pieces — bench families must converge, pick another instance",
					f.Name, cfg.Name, stats.StalledPieces)
			}
			r := testing.Benchmark(func(b *testing.B) { benchGridSweep(b, f.Graph, cfg.Opts) })
			rec := sepBenchRecord{
				Family:               f.Name,
				N:                    f.Graph.N(),
				M:                    f.Graph.M(),
				Config:               cfg.Name,
				MaxFlowCalls:         stats.MaxFlowCalls,
				SimplexPivots:        stats.SimplexPivots,
				LPSolves:             stats.LPSolves,
				CutsRevived:          stats.CutsRevived,
				WarmBasisHits:        stats.WarmBasisHits,
				StalledPieces:        stats.StalledPieces,
				NsPerOp:              r.NsPerOp(),
				ReleasesBitIdentical: bit,
				MaxProcs:             runtime.GOMAXPROCS(0),
			}
			if stats.LPSolves > 0 {
				rec.FlowsPerSolve = float64(stats.MaxFlowCalls) / float64(stats.LPSolves)
			}
			if i == 0 {
				legacy = rec
			} else {
				if rec.MaxFlowCalls > 0 {
					rec.FlowReduction = float64(legacy.MaxFlowCalls) / float64(rec.MaxFlowCalls)
				} else if legacy.MaxFlowCalls > 0 {
					rec.FlowReduction = math.Inf(1)
				}
				if legacy.SimplexPivots > 0 {
					rec.PivotReduction = 1 - float64(rec.SimplexPivots)/float64(legacy.SimplexPivots)
				}
				if rec.NsPerOp > 0 {
					rec.Speedup = float64(legacy.NsPerOp) / float64(rec.NsPerOp)
				}
			}
			records = append(records, rec)
		}
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sep.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_sep.json (%d records)", len(records))

	// The acceptance bar for this engine: on every giant-component family
	// the default configuration must at least halve the max-flow calls and
	// cut simplex pivots by ≥30% relative to legacy, with bit-identical
	// seeded releases throughout.
	for _, rec := range records {
		if rec.Config != "warm" {
			continue
		}
		if rec.FlowReduction < 2 {
			t.Errorf("%s: flow reduction %.2f× < 2×", rec.Family, rec.FlowReduction)
		}
		if rec.PivotReduction < 0.30 {
			t.Errorf("%s: pivot reduction %.0f%% < 30%%", rec.Family, 100*rec.PivotReduction)
		}
		if !rec.ReleasesBitIdentical {
			t.Errorf("%s: seeded releases not bit-identical across SepWorkers × warm", rec.Family)
		}
	}
}
