package nodedp

// Ablation benchmarks for the design choices documented in DESIGN.md: what
// each exact reduction in the f_Δ evaluator buys on a workload where the
// LP would otherwise run. Compare:
//
//	go test -bench=BenchmarkAblation -benchmem
//
// The "Full" variant is the production configuration; each other variant
// disables one layer. All variants compute identical values (asserted by
// TestQuickPeelInvariance and the brute-force cross-checks).

import (
	"math"
	"testing"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

// ablationWorkload: sparse ER giant components (tree fringe + 2-core) at a
// Δ just below the typical heuristic forest degree, so every layer is
// exercised.
func ablationWorkload() []*graph.Graph {
	var gs []*graph.Graph
	for seed := uint64(0); seed < 4; seed++ {
		gs = append(gs, generate.ErdosRenyi(120, 2.0/120, generate.NewRand(900+seed)))
	}
	return gs
}

func runAblation(b *testing.B, opts forestlp.Options) {
	b.Helper()
	gs := ablationWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range gs {
			if _, _, err := forestlp.Value(g, 2, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationFull is the production configuration.
func BenchmarkAblationFull(b *testing.B) {
	runAblation(b, forestlp.Options{})
}

// BenchmarkAblationNoFastPath disables the spanning-forest certificates
// (BFS/greedy/repair forests and the capped-forest certificate).
func BenchmarkAblationNoFastPath(b *testing.B) {
	runAblation(b, forestlp.Options{DisableFastPath: true})
}

// BenchmarkAblationNoPeel disables the leaf-elimination preprocessing.
func BenchmarkAblationNoPeel(b *testing.B) {
	runAblation(b, forestlp.Options{DisablePeel: true})
}

// BenchmarkAblationBare disables both exact reductions: raw cutting planes
// (with cut management) only.
func BenchmarkAblationBare(b *testing.B) {
	runAblation(b, forestlp.Options{DisableFastPath: true, DisablePeel: true})
}

// BenchmarkAblationGEMGridCoarse measures Algorithm 1 with a truncated Δ
// grid (DeltaMax 4 instead of n): cheaper evaluation, weaker adaptivity.
func BenchmarkAblationGEMGridCoarse(b *testing.B) {
	g := generate.Geometric(300, 1.2/math.Sqrt(300), generate.NewRand(905))
	rng := generate.NewRand(906)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: rng, DeltaMax: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGEMGridFull is the paper's DeltaMax = n grid on the
// same input, for comparison with the coarse variant.
func BenchmarkAblationGEMGridFull(b *testing.B) {
	g := generate.Geometric(300, 1.2/math.Sqrt(300), generate.NewRand(905))
	rng := generate.NewRand(907)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: rng}); err != nil {
			b.Fatal(err)
		}
	}
}
