// Command detlint is the repo's determinism-and-privacy multichecker: it
// runs the internal/analysis suite (maporder, rngsource, floatorder,
// wireleak) over the given packages and exits nonzero on any unsuppressed
// finding. CI runs `go run ./cmd/detlint ./...`; the same invocation works
// locally.
//
// Usage:
//
//	detlint [-list] [packages...]
//
// With no packages, ./... is checked. -list prints each analyzer's
// contract and exits.
//
// Findings are one per line, file:line:col: analyzer: message. A site
// that is intentionally nondeterministic (or an intentional secret flow)
// is suppressed with a justified annotation on the line, the line above,
// or the enclosing declaration's doc comment:
//
//	//detlint:allow <analyzer> — <why this site is safe>
//
// A suppression without a justification — or naming an unknown analyzer —
// is itself a finding, so the annotations stay honest.
package main

import (
	"flag"
	"fmt"
	"os"

	"nodedp/internal/analysis"
	"nodedp/internal/analysis/floatorder"
	"nodedp/internal/analysis/maporder"
	"nodedp/internal/analysis/rngsource"
	"nodedp/internal/analysis/wireleak"
)

// Analyzers is the full detlint suite in the order findings are
// attributed.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		rngsource.Analyzer,
		floatorder.Analyzer,
		// Span attributes leave the process via GET /v1/admin/traces, so a
		// //privacy:secret value reaching a span is a wire leak exactly like
		// one reaching a JSON response body.
		wireleak.New(map[string]int{
			"(*nodedp/internal/obs.Span).SetAny": 1,
		}),
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and their contracts, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	findings, err := analysis.Run(cwd, patterns, analyzers, analysis.DefaultScope)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
