package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nodedp/internal/analysis"
)

// TestRepoLintsClean is the contract's meta-test: detlint over the whole
// module must report zero unsuppressed findings. A failure here means
// either a determinism/privacy regression landed, or a new intentional
// site needs a justified //detlint:allow annotation.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	findings, err := analysis.Run(root, []string{"./..."}, Analyzers(), analysis.DefaultScope)
	if err != nil {
		t.Fatalf("detlint ./...: %v", err)
	}
	if len(findings) > 0 {
		var b strings.Builder
		for _, f := range findings {
			b.WriteString("\n  ")
			b.WriteString(f.String())
		}
		t.Fatalf("detlint ./... reported %d unsuppressed finding(s):%s", len(findings), b.String())
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}
