// Command experiments regenerates the reproduction tables described in
// DESIGN.md and recorded in EXPERIMENTS.md. The underlying paper has no
// empirical section, so each table validates one of its analytical claims.
//
// Usage:
//
//	experiments [-id E4] [-full] [-seed 1]
//
// Without -id, the entire suite runs in registry order. -full disables the
// quick (benchmark-sized) configuration and runs the publication-sized
// sweeps, which take minutes rather than seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nodedp/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment (E0..E21, F1..F3); empty runs all")
	full := flag.Bool("full", false, "run publication-sized sweeps instead of the quick configuration")
	seed := flag.Uint64("seed", 1, "base seed for all randomness")
	flag.Parse()

	cfg := experiments.Config{Quick: !*full, Seed: *seed}
	if err := run(cfg, *id); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, id string) error {
	mode := "quick"
	if !cfg.Quick {
		mode = "full"
	}
	fmt.Printf("# node-DP connected components — reproduction suite (%s mode, seed %d)\n\n", mode, cfg.Seed)
	if id != "" {
		runner, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		return runOne(cfg, id, runner)
	}
	for _, entry := range experiments.Registry() {
		if err := runOne(cfg, entry.ID, entry.Run); err != nil {
			return err
		}
	}
	return nil
}

func runOne(cfg experiments.Config, id string, runner experiments.Runner) error {
	start := time.Now()
	table, err := runner(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	table.Fprint(os.Stdout)
	fmt.Printf("   (%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
