package main

import (
	"testing"

	"nodedp/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	cfg := experiments.Config{Quick: true, Seed: 1}
	if err := run(cfg, "E8"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownID(t *testing.T) {
	cfg := experiments.Config{Quick: true, Seed: 1}
	if err := run(cfg, "nope"); err == nil {
		t.Fatal("unknown id should fail")
	}
}
