package main

// End-to-end tests of the privacy audit pipeline: `ccdp serve -audit-log`
// writes the ledger, `ccdp audit` reconciles it, tampering is caught.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// serveWithAudit runs a serve session writing an audit log and returns its
// path. The query mix exercises admissions and a rejection.
func serveWithAudit(t *testing.T, dir string) string {
	t.Helper()
	logPath := filepath.Join(dir, "audit.log")
	queries := writeQueryFile(t, `
cc 0.5 7
sf 0.25 8
cc 4 10
`)
	var out bytes.Buffer
	err := run([]string{"serve", "-budget", "1", "-queries", queries, "-seed", "3", "-audit-log", logPath},
		strings.NewReader("n 9\n0 1\n1 2\n3 4\n5 6\n"), &out)
	if err != nil {
		t.Fatalf("serve: %v\n%s", err, out.String())
	}
	return logPath
}

func TestAuditSubcommandReconciles(t *testing.T) {
	logPath := serveWithAudit(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"audit", "-log", logPath}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("audit: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "audit: OK") {
		t.Fatalf("missing OK verdict:\n%s", got)
	}
	// The two admitted queries spent 0.75 of 1; the third was rejected.
	if !strings.Contains(got, "2 reserves (1 rejected)") && !strings.Contains(got, "3 reserves (1 rejected)") {
		t.Fatalf("unexpected reserve summary:\n%s", got)
	}
	if !strings.Contains(got, "spent ε=0.75 of 1") {
		t.Fatalf("unexpected balance:\n%s", got)
	}
}

func TestAuditSubcommandDetectsTampering(t *testing.T) {
	logPath := serveWithAudit(t, t.TempDir())
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Shave a charged epsilon: the CRC catches a naive edit.
	tampered := bytes.Replace(data, []byte("eps=0.5"), []byte("eps=0.1"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in log")
	}
	if err := os.WriteFile(logPath, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"audit", "-log", logPath}, strings.NewReader(""), &out); err == nil {
		t.Fatalf("tampered log verified:\n%s", out.String())
	} else if !strings.Contains(err.Error(), "crc") {
		t.Fatalf("tampering surfaced as %v, want a CRC failure", err)
	}
}

func TestAuditSubcommandUsage(t *testing.T) {
	if err := run([]string{"audit"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("missing -log accepted")
	}
	if err := run([]string{"audit", "-log", filepath.Join(t.TempDir(), "nope")}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
