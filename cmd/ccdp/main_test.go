package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunFromStdin(t *testing.T) {
	in := strings.NewReader("n 6\n0 1\n2 3\n")
	var out bytes.Buffer
	err := run([]string{"-epsilon", "2", "-seed", "7"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"n=6 m=2", "mode: cc", "private estimate:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"cc", "cc-known-n", "sf"} {
		in := strings.NewReader("0 1\n1 2\n")
		var out bytes.Buffer
		if err := run([]string{"-epsilon", "1", "-seed", "3", "-mode", mode}, in, &out); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunVerboseDiagnostics(t *testing.T) {
	in := strings.NewReader("0 1\n0 2\n0 3\n")
	var out bytes.Buffer
	if err := run([]string{"-epsilon", "1", "-seed", "5", "-v"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "diagnostics") || !strings.Contains(out.String(), "f_1(G)") {
		t.Fatalf("verbose output incomplete:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-epsilon", "1", "-seed", "2", "-input", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=4 m=1") {
		t.Fatalf("file input not parsed:\n%s", out.String())
	}
}

// TestRunWorkersDeterminism checks the engine's contract at the CLI level:
// with a fixed seed the release must be byte-identical for every -workers
// value.
func TestRunWorkersDeterminism(t *testing.T) {
	const input = "n 40\n0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n6 7\n7 8\n8 6\n10 11\n"
	var want string
	for _, workers := range []string{"1", "2", "8"} {
		var out bytes.Buffer
		args := []string{"-epsilon", "1", "-seed", "99", "-workers", workers, "-v"}
		if err := run(args, strings.NewReader(input), &out); err != nil {
			t.Fatalf("workers %s: %v", workers, err)
		}
		// Compare everything up to the engine summary (shard timings are
		// wall-clock measurements and legitimately vary). The config block
		// echoes the -workers value itself, which differs by construction.
		got, _, _ := strings.Cut(out.String(), "  engine:")
		got = regexp.MustCompile(`(?m)^  -(workers|sep-workers)=\d+\n`).ReplaceAllString(got, "")
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers %s output diverged:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestRunTimeout checks that an expired -timeout aborts the estimation
// with a context error instead of releasing anything.
func TestRunTimeout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-epsilon", "1", "-seed", "4", "-timeout", "1ns"},
		strings.NewReader("0 1\n1 2\n2 0\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("want deadline error, got %v (output %q)", err, out.String())
	}
	if strings.Contains(out.String(), "private estimate") {
		t.Fatalf("timed-out run must not print an estimate:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // missing epsilon
		{"-epsilon", "-1"},                  // bad epsilon
		{"-epsilon", "1", "-mode", "bogus"}, // bad mode
		{"-epsilon", "1", "-input", "/nonexistent/file"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader("0 1\n"), &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	// Malformed graph.
	if err := run([]string{"-epsilon", "1"}, strings.NewReader("0 0\n"), &bytes.Buffer{}); err == nil {
		t.Error("self-loop input should fail")
	}
}

func TestRunWorkersNegativeIsUsageError(t *testing.T) {
	for _, args := range [][]string{
		{"-epsilon", "1", "-workers", "-2"},
		{"serve", "-budget", "1", "-queries", "whatever.txt", "-workers", "-2"},
	} {
		err := run(args, strings.NewReader("0 1\n"), &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-workers must be ≥ 0") {
			t.Errorf("args %v: err = %v, want -workers usage error", args, err)
		}
	}
}

func TestRunSepWorkersNegativeIsUsageError(t *testing.T) {
	for _, args := range [][]string{
		{"-epsilon", "1", "-sep-workers", "-3"},
		{"serve", "-budget", "1", "-queries", "whatever.txt", "-sep-workers", "-3"},
	} {
		err := run(args, strings.NewReader("0 1\n"), &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-sep-workers must be ≥ 0") {
			t.Errorf("args %v: err = %v, want -sep-workers usage error", args, err)
		}
	}
}

// TestRunSepWorkersAndWarmStartDeterminism: for a fixed seed, the printed
// release is identical across separation worker counts and with warm
// starts disabled — both knobs move work, never values.
func TestRunSepWorkersAndWarmStartDeterminism(t *testing.T) {
	const input = "n 40\n0 1\n1 2\n2 0\n0 3\n3 4\n4 0\n1 5\n5 6\n6 1\n10 11\n"
	var want string
	for _, args := range [][]string{
		{"-epsilon", "1", "-seed", "99", "-sep-workers", "1"},
		{"-epsilon", "1", "-seed", "99", "-sep-workers", "4"},
		{"-epsilon", "1", "-seed", "99", "-sep-workers", "8"},
		{"-epsilon", "1", "-seed", "99", "-no-warm-start"},
		{"-epsilon", "1", "-seed", "99", "-no-warm-start", "-sep-workers", "8"},
	} {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(input), &out); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		if want == "" {
			want = out.String()
		} else if out.String() != want {
			t.Errorf("args %v output diverged:\n%s\nwant:\n%s", args, out.String(), want)
		}
	}
}

func writeQueryFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServeSubcommand(t *testing.T) {
	queries := writeQueryFile(t, `
# three affordable queries, then one that cannot fit
cc 0.5 7
sf 0.25 8
cc-known-n 0.25 9
cc 4 10
`)
	var out bytes.Buffer
	err := run([]string{"serve", "-budget", "1", "-queries", queries, "-seed", "3"},
		strings.NewReader("n 9\n0 1\n1 2\n3 4\n5 6\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"session: n=9 m=4 fingerprint=",
		"budget ε=1",
		"q1 cc         ε=0.5",
		"q2 sf         ε=0.25",
		"q3 cc-known-n ε=0.25",
		"q4 cc         ε=4      REJECTED: budget exhausted",
		"3/4 queries admitted, spent ε=1 of 1 (remaining 0), plans built 1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("serve output missing %q:\n%s", want, got)
		}
	}
}

// TestServeMatchesOneShot checks the serving determinism contract at the
// CLI level: a seeded serve query prints the same estimate as the one-shot
// invocation with that seed.
func TestServeMatchesOneShot(t *testing.T) {
	const input = "n 6\n0 1\n2 3\n"
	var oneShot bytes.Buffer
	if err := run([]string{"-epsilon", "0.5", "-seed", "7"}, strings.NewReader(input), &oneShot); err != nil {
		t.Fatal(err)
	}
	_, estimate, ok := strings.Cut(oneShot.String(), "private estimate: ")
	if !ok {
		t.Fatalf("unexpected one-shot output: %q", oneShot.String())
	}
	estimate = strings.TrimSpace(estimate)

	queries := writeQueryFile(t, "cc 0.5 7\n")
	var served bytes.Buffer
	if err := run([]string{"serve", "-budget", "1", "-queries", queries},
		strings.NewReader(input), &served); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(served.String(), "estimate "+estimate) {
		t.Fatalf("serve estimate differs from one-shot %s:\n%s", estimate, served.String())
	}
}

func TestServeErrors(t *testing.T) {
	good := writeQueryFile(t, "cc 0.5\n")
	cases := [][]string{
		{"serve"},                 // missing budget
		{"serve", "-budget", "1"}, // missing queries
		{"serve", "-budget", "0", "-queries", good},
		{"serve", "-budget", "1", "-queries", "/nonexistent/queries"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader("0 1\n"), &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	for name, content := range map[string]string{
		"bad-mode":    "bogus 0.5\n",
		"bad-epsilon": "cc nope\n",
		"bad-seed":    "cc 0.5 nope\n",
		"no-epsilon":  "cc\n",
		"extra":       "cc 0.5 1 2\n",
		"empty":       "# nothing\n",
	} {
		bad := writeQueryFile(t, content)
		err := run([]string{"serve", "-budget", "1", "-queries", bad},
			strings.NewReader("0 1\n"), &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s query file should fail", name)
		}
	}
}

// TestServeTimeout: an already-expired deadline aborts the plan build, so
// nothing is released and no budget is spent.
func TestServeTimeout(t *testing.T) {
	queries := writeQueryFile(t, "cc 0.5\n")
	var out bytes.Buffer
	err := run([]string{"serve", "-budget", "1", "-queries", queries, "-timeout", "1ns"},
		strings.NewReader("0 1\n1 2\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("want deadline error, got %v (output %q)", err, out.String())
	}
}

// TestReadQueryFileTable is the line-validation table: every malformed or
// duplicate-field line must fail with a line-numbered error (the CLI turns
// that into a nonzero exit), and valid syntax must parse exactly.
func TestReadQueryFileTable(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantErr string // substring of the error; empty = must succeed
		wantN   int
	}{
		{"valid-mixed", "cc 0.5 7\nsf 0.25\ncc-known-n 1 seed=9\n", "", 3},
		{"valid-comments", "# header\n\ncc 0.5 # trailing\n", "", 1},
		{"unknown-mode", "bogus 0.5\n", ":1: unknown mode \"bogus\"", 0},
		{"missing-epsilon", "cc\n", ":1: missing epsilon", 0},
		{"bad-epsilon", "cc nope\n", ":1: bad epsilon", 0},
		{"zero-epsilon", "cc 0\n", ":1: epsilon 0 must be positive", 0},
		{"negative-epsilon", "cc -0.5\n", ":1: epsilon -0.5 must be positive", 0},
		{"inf-epsilon", "cc +Inf\n", ":1: epsilon +Inf must be positive and finite", 0},
		{"nan-epsilon", "cc NaN\n", ":1: epsilon NaN must be positive", 0},
		{"bad-seed", "cc 0.5 nope\n", ":1: bad seed", 0},
		{"zero-seed", "cc 0.5 0\n", ":1: seed must be nonzero", 0},
		{"zero-seed-kv", "cc 0.5 seed=0\n", ":1: seed must be nonzero", 0},
		{"duplicate-seed", "cc 0.5 7 8\n", ":1: duplicate seed field", 0},
		{"duplicate-seed-kv", "cc 0.5 seed=7 seed=8\n", ":1: duplicate seed field", 0},
		{"duplicate-mixed", "cc 0.5 7 seed=8\n", ":1: duplicate seed field", 0},
		{"unknown-field", "cc 0.5 mode=cc\n", ":1: unknown field \"mode=cc\"", 0},
		{"error-line-number", "cc 0.5 1\nsf 0.2\ncc zero\n", ":3: bad epsilon", 0},
		{"empty", "# nothing here\n", "no queries", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeQueryFile(t, tc.content)
			reqs, err := readQueryFile(path)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(reqs) != tc.wantN {
					t.Fatalf("parsed %d queries, want %d", len(reqs), tc.wantN)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got %d queries", tc.wantErr, len(reqs))
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadQueryFileSeedForms: both seed spellings parse to the same query.
func TestReadQueryFileSeedForms(t *testing.T) {
	bare, err := readQueryFile(writeQueryFile(t, "cc 0.5 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	kv, err := readQueryFile(writeQueryFile(t, "cc 0.5 seed=7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if bare[0] != kv[0] {
		t.Fatalf("seed forms parse differently: %+v vs %+v", bare[0], kv[0])
	}
}

// TestServeAccountantFlag: the advanced accountant admits more small
// queries than sequential at the same -budget, and bad selections are
// usage errors.
func TestServeAccountantFlag(t *testing.T) {
	var lines strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&lines, "cc 0.02 %d\n", i+1)
	}
	queries := writeQueryFile(t, lines.String())
	const input = "n 6\n0 1\n2 3\n"

	admitted := func(extra ...string) int {
		args := append([]string{"serve", "-budget", "1", "-queries", queries}, extra...)
		var out bytes.Buffer
		if err := run(args, strings.NewReader(input), &out); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		_, summary, ok := strings.Cut(out.String(), "session: ")
		_, summary, ok2 := strings.Cut(summary, "session: ")
		if !ok || !ok2 {
			t.Fatalf("no summary in output:\n%s", out.String())
		}
		var adm, total int
		if _, err := fmt.Sscanf(summary, "%d/%d", &adm, &total); err != nil {
			t.Fatalf("unparseable summary %q: %v", summary, err)
		}
		return adm
	}
	seq := admitted()
	adv := admitted("-accountant", "advanced", "-acct-delta", "1e-9")
	if adv <= seq {
		t.Fatalf("advanced admitted %d, sequential %d; want strictly more", adv, seq)
	}

	for _, args := range [][]string{
		{"serve", "-budget", "1", "-queries", queries, "-accountant", "renyi"},
		{"serve", "-budget", "1", "-queries", queries, "-accountant", "advanced"},                     // missing delta
		{"serve", "-budget", "1", "-queries", queries, "-acct-delta", "0.1"},                          // delta without advanced
		{"serve", "-budget", "1", "-queries", queries, "-accountant", "advanced", "-acct-delta", "2"}, // delta out of range
	} {
		if err := run(args, strings.NewReader(input), &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestDaemonLifecycle drives the daemon end to end in process: boot on a
// free port, upload a graph, run a seeded query (bit-identical to the
// one-shot CLI path by the serving contract), check /healthz and /metrics,
// then SIGTERM and assert a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"daemon", "-listen", "127.0.0.1:0", "-max-inflight", "8"}, strings.NewReader(""), pw)
	}()

	// Boot output: the config summary, then the line carrying the bound
	// address.
	sc := bufio.NewScanner(pr)
	var addr string
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "ccdp daemon listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never printed the listening line; exit: %v", <-done)
	}
	go func() { // drain remaining output so the daemon never blocks on the pipe
		for sc.Scan() {
		}
	}()
	base := "http://" + addr

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	code, body := post("/v1/graphs", `{"n":6,"edges":[[0,1],[2,3]],"budget":2}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}

	code, body = post("/v1/sessions/"+created.SessionID+"/query", `{"op":"cc","epsilon":0.5,"seed":7}`)
	if code != http.StatusOK || !strings.Contains(body, `"value"`) {
		t.Fatalf("query: %d %s", code, body)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "nodedp_queries_served_total 1") {
		t.Fatalf("/metrics missing served counter:\n%s", raw)
	}

	// Graceful drain on SIGTERM.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

// TestDaemonFlagValidation: nonsensical daemon limits are usage errors.
func TestDaemonFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"daemon", "-max-inflight", "0"},
		{"daemon", "-read-limit", "-1"},
		{"daemon", "-max-sessions", "0"},
		{"daemon", "-max-per-tenant", "-2"},
	} {
		if err := run(args, strings.NewReader(""), &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestPrintConfigSummarySorted: the summary must come out in sorted flag
// order however the flags were declared — startup logs are diffed across
// runs and deployments.
func TestPrintConfigSummarySorted(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.String("zeta", "z", "")
	fs.Int("alpha", 3, "")
	fs.Bool("mike", true, "")
	fs.Duration("echo", time.Minute, "")
	var out bytes.Buffer
	printConfigSummary(&out, "", fs)
	want := "-alpha=3\n-echo=1m0s\n-mike=true\n-zeta=z\n"
	if out.String() != want {
		t.Fatalf("config summary not sorted:\n got %q\nwant %q", out.String(), want)
	}
}

// TestRunVerboseConfigSummary: ccdp -v prints the effective flags, sorted.
func TestRunVerboseConfigSummary(t *testing.T) {
	in := strings.NewReader("0 1\n0 2\n")
	var out bytes.Buffer
	if err := run([]string{"-epsilon", "1", "-seed", "5", "-v"}, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "[config — effective flags]") {
		t.Fatalf("verbose output missing config block:\n%s", got)
	}
	var flagLines []string
	inBlock := false
	for _, line := range strings.Split(got, "\n") {
		switch {
		case line == "[config — effective flags]":
			inBlock = true
		case inBlock && strings.HasPrefix(line, "  -"):
			flagLines = append(flagLines, line)
		case inBlock:
			inBlock = false
		}
	}
	if len(flagLines) < 5 {
		t.Fatalf("config block too short (%d lines):\n%s", len(flagLines), got)
	}
	if !sort.StringsAreSorted(flagLines) {
		t.Fatalf("config block not sorted:\n%s", strings.Join(flagLines, "\n"))
	}
	for _, want := range []string{"  -epsilon=1", "  -seed=5", "  -v=true"} {
		if !slices.Contains(flagLines, want) {
			t.Fatalf("config block missing %q:\n%s", want, strings.Join(flagLines, "\n"))
		}
	}
}

// TestDaemonBootConfigSummary: the daemon logs its effective configuration
// in sorted flag order before the listening line.
func TestDaemonBootConfigSummary(t *testing.T) {
	d := startDaemon(t, "-max-inflight", "7")
	defer d.stop(t)
	if !strings.Contains(d.bootLog, "ccdp daemon config:") {
		t.Fatalf("boot log missing config header:\n%s", d.bootLog)
	}
	var flagLines []string
	for _, line := range strings.Split(d.bootLog, "\n") {
		if strings.HasPrefix(line, "  -") {
			flagLines = append(flagLines, line)
		}
	}
	if !sort.StringsAreSorted(flagLines) {
		t.Fatalf("daemon config block not sorted:\n%s", strings.Join(flagLines, "\n"))
	}
	for _, want := range []string{"  -max-inflight=7", "  -listen=127.0.0.1:0"} {
		if !slices.Contains(flagLines, want) {
			t.Fatalf("daemon config block missing %q:\n%s", want, d.bootLog)
		}
	}
}
