package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFromStdin(t *testing.T) {
	in := strings.NewReader("n 6\n0 1\n2 3\n")
	var out bytes.Buffer
	err := run([]string{"-epsilon", "2", "-seed", "7"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"n=6 m=2", "mode: cc", "private estimate:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"cc", "cc-known-n", "sf"} {
		in := strings.NewReader("0 1\n1 2\n")
		var out bytes.Buffer
		if err := run([]string{"-epsilon", "1", "-seed", "3", "-mode", mode}, in, &out); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunVerboseDiagnostics(t *testing.T) {
	in := strings.NewReader("0 1\n0 2\n0 3\n")
	var out bytes.Buffer
	if err := run([]string{"-epsilon", "1", "-seed", "5", "-v"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "diagnostics") || !strings.Contains(out.String(), "f_1(G)") {
		t.Fatalf("verbose output incomplete:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 4\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-epsilon", "1", "-seed", "2", "-input", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=4 m=1") {
		t.Fatalf("file input not parsed:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // missing epsilon
		{"-epsilon", "-1"},                  // bad epsilon
		{"-epsilon", "1", "-mode", "bogus"}, // bad mode
		{"-epsilon", "1", "-input", "/nonexistent/file"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader("0 1\n"), &bytes.Buffer{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	// Malformed graph.
	if err := run([]string{"-epsilon", "1"}, strings.NewReader("0 0\n"), &bytes.Buffer{}); err == nil {
		t.Error("self-loop input should fail")
	}
}
