package main

// Tests for the daemon's -cache-file lifecycle: flag validation and boot
// error paths (the table test of the ISSUE), plus the full warm-restart
// round trip — boot, upload, seeded query, SIGTERM drain, reboot on the
// same snapshot, and a bit-identical plan-cache-hit replay.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonCacheFileFlagValidation: nonsensical persistence flags and an
// unwritable snapshot path are boot-time errors, not SIGTERM-time
// surprises.
func TestDaemonCacheFileFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "negative save interval",
			args: []string{"daemon", "-cache-file", filepath.Join(dir, "c.snap"), "-cache-save-interval", "-5s"},
			want: "-cache-save-interval must be ≥ 0",
		},
		{
			name: "save interval without cache file",
			args: []string{"daemon", "-cache-save-interval", "1m"},
			want: "-cache-save-interval requires -cache-file",
		},
		{
			name: "unwritable cache path (missing directory)",
			args: []string{"daemon", "-listen", "127.0.0.1:0", "-cache-file", filepath.Join(dir, "no-such-dir", "c.snap")},
			want: "not writable",
		},
	}
	for _, tc := range cases {
		err := run(tc.args, strings.NewReader(""), &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s: args %v should fail", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDaemonCorruptSnapshotBootsCold: a damaged snapshot file must not
// prevent boot — the daemon logs a warning, serves with a cold cache, and
// overwrites the damage with a healthy snapshot on drain.
func TestDaemonCorruptSnapshotBootsCold(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.snap")
	if err := os.WriteFile(snap, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, "-cache-file", snap)
	if !strings.Contains(d.bootLog, "WARNING") || !strings.Contains(d.bootLog, "cold cache") {
		t.Fatalf("boot log does not warn about the corrupt snapshot:\n%s", d.bootLog)
	}

	// The daemon serves normally despite the damaged file.
	created := d.createSession(t, `{"n":6,"edges":[[0,1],[2,3]],"budget":2}`)
	d.query(t, created, `{"op":"cc","epsilon":0.5,"seed":7}`)

	d.stop(t)
	// Drain replaced the damage with a loadable snapshot.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("NDPSNAP\x00")) {
		t.Fatalf("drain did not rewrite the corrupt snapshot (starts %q)", raw[:min(16, len(raw))])
	}
}

// TestDaemonWarmRestart is the restart-smoke contract end to end in
// process: a seeded query before SIGTERM and the same query after a reboot
// on the same -cache-file must be bit-identical, and the post-restart
// upload must be a plan-cache hit (no replanning).
func TestDaemonWarmRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "plans.snap")
	const graphBody = `{"n":8,"edges":[[0,1],[1,2],[3,4],[5,6],[6,7],[5,7]],"budget":4}`
	const queryBody = `{"op":"cc","epsilon":0.5,"seed":77}`

	d1 := startDaemon(t, "-cache-file", snap)
	created1 := d1.createSession(t, graphBody)
	if created1.CacheHit {
		t.Fatal("first upload reported a cache hit")
	}
	before := d1.query(t, created1, queryBody)
	d1.stop(t)
	if !strings.Contains(d1.log(), "saved 1 cached plans") {
		t.Fatalf("drain did not report the snapshot save:\n%s", d1.log())
	}

	d2 := startDaemon(t, "-cache-file", snap)
	if !strings.Contains(d2.bootLog, "loaded 1 cached plans") {
		t.Fatalf("restart did not report the snapshot load:\n%s", d2.bootLog)
	}
	created2 := d2.createSession(t, graphBody)
	if !created2.CacheHit {
		t.Fatal("post-restart upload was not a plan-cache hit")
	}
	after := d2.query(t, created2, queryBody)
	d2.stop(t)

	if math.Float64bits(before.Value) != math.Float64bits(after.Value) ||
		math.Float64bits(before.DeltaHat) != math.Float64bits(after.DeltaHat) ||
		math.Float64bits(before.NHat) != math.Float64bits(after.NHat) {
		t.Fatalf("seeded release differs across restart:\nbefore %+v\nafter  %+v", before, after)
	}
}

// daemonHandle drives one in-process `ccdp daemon` for the lifecycle tests.
type daemonHandle struct {
	base    string
	bootLog string
	done    chan error
	lines   chan string
	logged  []string
}

// startDaemon boots the daemon on a free port with the extra args and waits
// for the listening line, collecting boot output (warnings precede it).
func startDaemon(t *testing.T, extra ...string) *daemonHandle {
	t.Helper()
	pr, pw := io.Pipe()
	d := &daemonHandle{done: make(chan error, 1), lines: make(chan string, 64)}
	args := append([]string{"daemon", "-listen", "127.0.0.1:0"}, extra...)
	go func() {
		d.done <- run(args, strings.NewReader(""), pw)
		pw.Close()
	}()
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			d.lines <- sc.Text()
		}
		close(d.lines)
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-d.lines:
			if !ok {
				t.Fatalf("daemon exited before listening: %v\nboot log:\n%s", <-d.done, d.bootLog)
			}
			d.logged = append(d.logged, line)
			if addr, found := strings.CutPrefix(line, "ccdp daemon listening on "); found {
				d.base = "http://" + addr
				d.bootLog = strings.Join(d.logged, "\n")
				return d
			}
			d.bootLog = strings.Join(d.logged, "\n")
		case err := <-d.done:
			t.Fatalf("daemon exited before listening: %v\nboot log:\n%s", err, d.bootLog)
		case <-deadline:
			t.Fatalf("daemon did not start listening\nboot log:\n%s", d.bootLog)
		}
	}
}

// stop SIGTERMs the daemon and waits for a clean drain, draining the log.
func (d *daemonHandle) stop(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-d.lines:
			if ok {
				d.logged = append(d.logged, line)
			} else {
				d.lines = nil
			}
		case err := <-d.done:
			if err != nil {
				t.Fatalf("daemon exit: %v\nlog:\n%s", err, d.log())
			}
			// Drain any remaining buffered lines.
			if d.lines != nil {
				for line := range d.lines {
					d.logged = append(d.logged, line)
				}
			}
			return
		case <-deadline:
			t.Fatalf("daemon did not drain after SIGTERM\nlog:\n%s", d.log())
		}
	}
}

func (d *daemonHandle) log() string { return strings.Join(d.logged, "\n") }

type createdSession struct {
	SessionID string `json:"session_id"`
	CacheHit  bool   `json:"cache_hit"`
}

type queryResult struct {
	Value    float64 `json:"value"`
	DeltaHat float64 `json:"delta_hat"`
	NHat     float64 `json:"n_hat"`
}

func (d *daemonHandle) post(t *testing.T, path, body string, out any) {
	t.Helper()
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %s", path, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %s: %v", path, raw, err)
		}
	}
}

func (d *daemonHandle) createSession(t *testing.T, body string) createdSession {
	t.Helper()
	var out createdSession
	d.post(t, "/v1/graphs", body, &out)
	if out.SessionID == "" {
		t.Fatal("create session returned no id")
	}
	return out
}

func (d *daemonHandle) query(t *testing.T, sess createdSession, body string) queryResult {
	t.Helper()
	var out queryResult
	d.post(t, "/v1/sessions/"+sess.SessionID+"/query", body, &out)
	return out
}
