// Command ccdp releases node-differentially private estimates of the
// number of connected components (or the spanning-forest size) of a graph
// read from an edge-list file.
//
// One-shot usage:
//
//	ccdp -epsilon 1.0 [-mode cc|cc-known-n|sf] [-input graph.txt] [-seed 0]
//	     [-workers 0] [-sep-workers 0] [-no-warm-start] [-no-incremental]
//	     [-timeout 0] [-v]
//
// Serving usage (one plan, many budget-accounted queries):
//
//	ccdp serve -budget 4.0 -queries queries.txt [-input graph.txt]
//	     [-accountant sequential|advanced] [-acct-delta 0]
//	     [-seed 0] [-workers 0] [-sep-workers 0] [-no-warm-start]
//	     [-no-incremental] [-timeout 0] [-v]
//
// Daemon usage (multi-tenant HTTP/JSON front end over sessions):
//
//	ccdp daemon [-listen 127.0.0.1:8080] [-max-inflight 64]
//	     [-read-limit 8388608] [-max-sessions 256] [-max-per-tenant 32]
//	     [-idle-ttl 30m] [-cache-weight 4194304] [-drain-timeout 30s]
//	     [-cache-file plans.snap] [-cache-save-interval 5m]
//	     [-audit-log audit.log] [-trace-ring 128] [-trace-seed 0]
//	     [-slow-query 0] [-pprof] [-profile-dir profiles]
//
// Audit reconciliation (offline verification of an -audit-log file):
//
//	ccdp audit -log audit.log [-v]
//
// The daemon serves POST /v1/graphs (upload a graph, open a budgeted
// session), POST /v1/sessions/{id}/query and /batch (private releases),
// GET /v1/sessions/{id} (budget and plan-cache introspection),
// DELETE /v1/sessions/{id}, GET /healthz, and GET /metrics (Prometheus
// text). Requests beyond -max-inflight are shed with 429 + Retry-After;
// SIGTERM/SIGINT drain gracefully: /healthz flips to 503, in-flight
// requests finish, then the listener closes (bounded by -drain-timeout).
//
// -cache-file enables warm restarts: the plan cache — the expensive Δ-grid
// evaluations behind every session — is persisted to the named snapshot
// file on SIGTERM drain, every -cache-save-interval (0 disables the
// timer; an interval in which nothing changed skips the write), and on
// demand via POST /v1/admin/cache/save; on the next boot
// the snapshot is reloaded, so re-uploading a known graph skips planning
// entirely, and a seeded query answered from the reloaded plan is
// bit-identical to the same query before the restart. Persistence implies
// ONE cache shared by every tenant (its hit/miss behavior is an equality
// oracle on uploaded graphs — use it only among mutually trusting
// tenants), and the snapshot file holds exact data-dependent values, so it
// must be protected like the graphs themselves. A missing snapshot is a
// normal cold start; a corrupt or unreadable one is logged and ignored
// (cold cache), and individually damaged entries inside an otherwise
// healthy snapshot are skipped while the rest load. An unwritable
// -cache-file path fails at boot, not at shutdown.
//
// The input format is one "u v" pair per line with an optional "n <count>"
// header for isolated vertices; '#' starts a comment. With -input omitted,
// the graph is read from stdin. -seed 0 (the default) uses cryptographic
// randomness; any other seed makes releases reproducible (for testing
// only — a reproducible release is not private).
//
// -workers sets how many per-component LPs the evaluation engine solves
// concurrently (0 = all CPUs); the released value is identical for every
// setting. Negative values are a usage error.
//
// -sep-workers sets how many max-flow oracle calls run concurrently inside
// a single component's separation round — the lever for graphs whose work
// is one giant component, where -workers has nothing to parallelize
// (0 = inherit -workers). The released value is identical for every
// setting. Negative values are a usage error.
//
// -no-warm-start makes the Δ-grid evaluation solve every grid point from
// scratch instead of carrying subtour cuts and simplex bases between
// adjacent Δ (and between cutting-plane rounds). It exists for performance
// bisection: on graphs whose cutting planes converge the release
// distribution is unchanged and only the work counters move; a component
// that hits the evaluator's stall bailout returns an approximate bound
// whose exact value is solve-path-dependent and may differ across this
// flag (see forestlp.Options.DisableWarmStart).
//
// -no-incremental disables only the parametric layer on top of warm starts:
// the standing incremental LP solvers that slide an optimal basis across
// adjacent Δ grid points instead of rebuilding each tableau. Seeded
// releases are bit-identical with the flag on or off — the parametric
// engine moves pivots, never answers — so the flag exists purely for
// benchmarks and performance bisection (see
// forestlp.Options.DisableIncremental). -no-warm-start implies it.
//
// -timeout bounds the whole run. In one-shot mode an expired deadline
// aborts the single estimation before any noise is drawn, spending no
// budget. In serve mode the deadline covers the one-time session plan
// build plus every query: a query canceled by the deadline fails without
// spending its ε, and the summary reports what the earlier queries spent.
//
// The serve query file has one query per line ('#' comments allowed):
//
//	<mode> <epsilon> [seed | seed=N]
//
// with mode cc, cc-known-n, or sf — e.g. "cc 0.5 7". A malformed line —
// unknown mode, non-positive or non-finite epsilon, zero or duplicate
// seed, extra fields — fails with a line-numbered error and nonzero exit
// before any budget is touched. All queries are admitted against the
// session budget in file order: once a query does not fit, it fails with
// "budget exhausted" and spends nothing.
//
// -accountant selects the session's composition rule: sequential (the
// default, pure-ε Lemma 2.4) or advanced ((ε, δ) advanced composition,
// which admits many more small queries at equal ε_total; -acct-delta is
// then required in (0, 1)).
//
// Observability (daemon and serve): -audit-log appends every privacy-ledger
// operation — opens, reservations, refunds, charges, dedup replays, each
// stamped with the accountant's exact post-operation balance — to a
// CRC-guarded file that `ccdp audit` later replays through a fresh
// accountant, verifying every balance bit-for-bit. The daemon additionally
// retains the last -trace-ring request traces for GET /v1/admin/traces,
// logs requests slower than -slow-query to stderr, mounts net/http/pprof
// when -pprof is set (on its own mux; enable only on trusted listeners),
// and with -profile-dir writes a whole-run CPU profile plus an exit heap
// profile. None of it feeds a release: seeded releases are bit-identical
// with every one of these flags on or off.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nodedp"
	"nodedp/internal/core"
	"nodedp/internal/fault"
	"nodedp/internal/httpapi"
	"nodedp/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccdp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdin, stdout)
	}
	if len(args) > 0 && args[0] == "daemon" {
		return runDaemon(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "audit" {
		return runAudit(args[1:], stdout)
	}

	fs := flag.NewFlagSet("ccdp", flag.ContinueOnError)
	epsilon := fs.Float64("epsilon", 0, "total privacy budget ε (required, > 0)")
	mode := fs.String("mode", "cc", "what to estimate: cc (components), cc-known-n (components, public vertex count), sf (spanning-forest size)")
	input := fs.String("input", "", "edge-list file (default: stdin)")
	seed := fs.Uint64("seed", 0, "0 = crypto randomness; nonzero = reproducible (testing only)")
	workers := fs.Int("workers", 0, "concurrent component LP solves (0 = all CPUs, ≥ 0; result is identical for any value)")
	sepWorkers := fs.Int("sep-workers", 0, "concurrent separation oracle calls within one component (0 = inherit -workers, ≥ 0; result is identical for any value)")
	noWarm := fs.Bool("no-warm-start", false, "evaluate every Δ grid point from scratch (perf bisection; release distribution unchanged)")
	noIncr := fs.Bool("no-incremental", false, "rebuild each LP tableau instead of sliding standing incremental solvers across the Δ grid (perf bisection; releases bit-identical)")
	timeout := fs.Duration("timeout", 0, "abort the estimation after this long, spending no budget (0 = no deadline)")
	verbose := fs.Bool("v", false, "print selection diagnostics (NOT private; testing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epsilon <= 0 {
		return usageError(fs, "-epsilon must be positive")
	}
	if *workers < 0 {
		return usageError(fs, "-workers must be ≥ 0, got %d", *workers)
	}
	if *sepWorkers < 0 {
		return usageError(fs, "-sep-workers must be ≥ 0, got %d", *sepWorkers)
	}

	g, closeInput, err := readInputGraph(stdin, *input)
	if err != nil {
		return err
	}
	defer closeInput()

	opts := nodedp.Options{Epsilon: *epsilon}
	if *seed != 0 {
		opts.Rand = nodedp.NewRand(*seed)
	}
	opts.ForestLP.Workers = *workers
	opts.ForestLP.SepWorkers = *sepWorkers
	opts.ForestLP.DisableWarmStart = *noWarm
	opts.ForestLP.DisableIncremental = *noIncr
	opts.ForestLP.ShardTimings = *verbose

	ctx, cancel := timeoutContext(*timeout)
	defer cancel()

	var res nodedp.Result
	switch *mode {
	case "cc":
		res, err = nodedp.EstimateComponentCountCtx(ctx, g, opts)
	case "cc-known-n":
		res, err = nodedp.EstimateComponentCountKnownNCtx(ctx, g, opts)
	case "sf":
		res, err = nodedp.EstimateSpanningForestSizeCtx(ctx, g, opts)
	default:
		return usageError(fs, "unknown -mode %q (want cc, cc-known-n or sf)", *mode)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Fprintf(stdout, "mode: %s  epsilon: %g\n", *mode, *epsilon)
	fmt.Fprintf(stdout, "private estimate: %.2f\n", res.Value)
	if *verbose {
		fmt.Fprintf(stdout, "[config — effective flags]\n")
		printConfigSummary(stdout, "  ", fs)
		fmt.Fprintf(stdout, "[diagnostics — not private]\n")
		fmt.Fprintf(stdout, "  selected Δ̂ = %g, noise scale %.3f\n", res.Delta, res.NoiseScale)
		for _, ev := range res.Evaluations {
			fmt.Fprintf(stdout, "  f_%g(G) = %.3f (q = %.3f)\n", ev.Delta, ev.FDelta, ev.Q)
		}
		fmt.Fprintf(stdout, "  engine: %d components, %d workers, %d fast-path hits, %d LP solves\n",
			res.Stats.Components, res.Stats.Workers, res.Stats.FastPathHits, res.Stats.LPSolves)
		fmt.Fprintf(stdout, "  solver: %d pivots, %d parametric slides (%d in ≤%d pivots), %d refactorizations, %d fallbacks\n",
			res.Stats.SimplexPivots, res.Stats.ParametricSlides, res.Stats.ParametricCheapSolves,
			nodedp.IncrementalCheapPivots, res.Stats.Refactorizations, res.Stats.IncrementalFallbacks)
		printShardTimings(stdout, res.Stats.Shards)
	}
	return nil
}

// runDaemon implements the daemon subcommand: the HTTP/JSON front end of
// internal/httpapi behind a graceful-drain lifecycle. SIGTERM or SIGINT
// starts the drain: /healthz flips to 503 so load balancers stop routing
// here, in-flight requests complete, and the listener closes once idle (or
// after -drain-timeout, whichever comes first).
func runDaemon(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccdp daemon", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "address to listen on (host:port; port 0 picks a free port)")
	maxInflight := fs.Int("max-inflight", httpapi.DefaultMaxInflight, "maximum concurrently executing /v1 requests; excess requests are shed with 429 + Retry-After")
	readLimit := fs.Int64("read-limit", httpapi.DefaultReadLimit, "maximum request body size in bytes")
	maxSessions := fs.Int("max-sessions", httpapi.DefaultMaxSessions, "maximum live sessions across all tenants")
	maxPerTenant := fs.Int("max-per-tenant", httpapi.DefaultMaxPerTenant, "maximum live sessions per tenant")
	idleTTL := fs.Duration("idle-ttl", httpapi.DefaultIdleTTL, "evict sessions idle longer than this")
	cacheWeight := fs.Int64("cache-weight", httpapi.DefaultCacheWeight, "plan-cache budget in grid-evaluation cost units (≈ (n+m)·grid points per plan); per tenant by default, but with -cache-file it sizes the ONE cache shared by all tenants")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
	cacheFile := fs.String("cache-file", "", "snapshot file for warm restarts: load the plan cache from it on boot, persist on drain/interval/admin request (implies ONE cache shared across tenants)")
	cacheSaveInterval := fs.Duration("cache-save-interval", 5*time.Minute, "periodically persist the plan cache to -cache-file (0 disables the timer; drain and admin saves still run)")
	auditLog := fs.String("audit-log", "", "append every privacy-ledger operation to this CRC-guarded file (verify offline with `ccdp audit -log <file>`)")
	traceRing := fs.Int("trace-ring", httpapi.DefaultTraceRing, "retain the most recent N request traces for GET /v1/admin/traces (0 disables the endpoint)")
	traceSeed := fs.Uint64("trace-seed", 0, "base seed for span identity of requests without a request ID (0 = default; request IDs derive their own)")
	slowQuery := fs.Duration("slow-query", 0, "log requests slower than this to stderr (0 disables the slow-query log)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the API listener (operational data only; never expose publicly)")
	profileDir := fs.String("profile-dir", "", "write a whole-run CPU profile and an exit heap profile into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxInflight <= 0 || *readLimit <= 0 || *maxSessions <= 0 || *maxPerTenant <= 0 {
		return usageError(fs, "-max-inflight, -read-limit, -max-sessions and -max-per-tenant must be positive")
	}
	if *cacheSaveInterval < 0 {
		return usageError(fs, "-cache-save-interval must be ≥ 0, got %v", *cacheSaveInterval)
	}
	if *cacheFile == "" {
		intervalSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "cache-save-interval" {
				intervalSet = true
			}
		})
		if intervalSet {
			return usageError(fs, "-cache-save-interval requires -cache-file")
		}
	}

	if *traceRing < 0 {
		return usageError(fs, "-trace-ring must be ≥ 0, got %d", *traceRing)
	}
	if *slowQuery < 0 {
		return usageError(fs, "-slow-query must be ≥ 0, got %v", *slowQuery)
	}

	// The privacy audit log opens before the listener: a daemon that served
	// even one query without its ledger on disk has already failed the
	// audit contract. OpenAuditLog verifies an existing file end to end and
	// continues its sequence numbers, so restarts append rather than fork.
	var audit *obs.AuditLog
	if *auditLog != "" {
		var err error
		if audit, err = obs.OpenAuditLog(*auditLog); err != nil {
			return fmt.Errorf("-audit-log: %w", err)
		}
		defer func() {
			if err := audit.Close(); err != nil {
				fmt.Fprintf(stdout, "ccdp daemon: WARNING: audit log: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "ccdp daemon: privacy audit log at %s\n", *auditLog)
	}

	// Whole-run profiling: a CPU profile spanning boot to drain plus a heap
	// profile at exit. Profiles carry operational data (stacks, allocation
	// sites), never released values, so writing them does not touch the
	// privacy contract.
	if *profileDir != "" {
		stopProfiles, err := startProfiles(*profileDir)
		if err != nil {
			return fmt.Errorf("-profile-dir: %w", err)
		}
		defer func() {
			if err := stopProfiles(); err != nil {
				fmt.Fprintf(stdout, "ccdp daemon: WARNING: writing profiles: %v\n", err)
			}
		}()
	}

	// Chaos drills: arm any failpoints listed in NODEDP_FAILPOINTS before
	// the stack starts. An unset variable leaves every site disabled at
	// zero overhead; a malformed spec fails the boot loudly rather than
	// running a drill with no faults armed.
	if n, err := fault.ArmFromEnv(); err != nil {
		return fmt.Errorf("parsing %s: %w", fault.EnvVar, err)
	} else if n > 0 {
		fmt.Fprintf(stdout, "ccdp daemon: CHAOS: %d failpoint site(s) armed from %s: %s\n",
			n, fault.EnvVar, strings.Join(fault.Sites(), ", "))
	}

	// Warm-restart persistence: one shared cache, loaded from the snapshot
	// before the listener opens so the very first upload can hit.
	var cache *core.PlanCache
	if *cacheFile != "" {
		// Fail fast on an unwritable path — discovering it at SIGTERM would
		// silently lose every plan the process accumulated.
		if err := probeWritable(*cacheFile); err != nil {
			return fmt.Errorf("-cache-file %s is not writable: %w", *cacheFile, err)
		}
		cache = core.NewPlanCacheWeighted(*cacheWeight)
		rep, err := cache.LoadFile(*cacheFile)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(stdout, "ccdp daemon: no plan-cache snapshot at %s yet (cold start)\n", *cacheFile)
		case err != nil:
			fmt.Fprintf(stdout, "ccdp daemon: WARNING: ignoring unreadable plan-cache snapshot %s: %v (continuing with a cold cache)\n", *cacheFile, err)
		default:
			fmt.Fprintf(stdout, "ccdp daemon: loaded %d cached plans from %s\n", rep.Loaded, *cacheFile)
			if rep.Skipped() > 0 {
				fmt.Fprintf(stdout, "ccdp daemon: WARNING: skipped %d damaged snapshot entries (first: %v)\n", rep.Skipped(), rep.Errs[0])
			}
		}
	}

	cfg := httpapi.Config{
		MaxInflight:        *maxInflight,
		ReadLimit:          *readLimit,
		CacheWeight:        *cacheWeight,
		Cache:              cache,
		CacheFile:          *cacheFile,
		TraceSeed:          *traceSeed,
		TraceRing:          *traceRing,
		SlowQueryThreshold: *slowQuery,
		EnablePprof:        *enablePprof,
		Registry: httpapi.RegistryConfig{
			MaxSessions:  *maxSessions,
			MaxPerTenant: *maxPerTenant,
			IdleTTL:      *idleTTL,
		},
	}
	if *traceRing == 0 {
		cfg.TraceRing = -1 // flag 0 = off; Config zero value means "default"
	}
	if audit != nil {
		cfg.Audit = audit
	}
	api := httpapi.New(cfg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: api, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The listening line is the supervision handshake (tests and wrappers
	// wait for it before sending traffic or signals), so the drain handler
	// must be registered before it prints.
	fmt.Fprintf(stdout, "ccdp daemon config:\n")
	printConfigSummary(stdout, "  ", fs)
	fmt.Fprintf(stdout, "ccdp daemon listening on %s\n", ln.Addr())

	// Idle sessions must expire even when no request ever sweeps them; the
	// same goroutine runs the periodic plan-cache save so a crash between
	// drains loses at most one interval of planning work. tickerDone is
	// closed when the goroutine exits: the final drain save must wait for
	// it, or an in-flight periodic save could rename a stale pre-drain
	// snapshot over the complete post-drain one.
	sweeper := time.NewTicker(time.Minute)
	defer sweeper.Stop()
	var saveC <-chan time.Time
	if *cacheFile != "" && *cacheSaveInterval > 0 {
		saver := time.NewTicker(*cacheSaveInterval)
		defer saver.Stop()
		saveC = saver.C
	}
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		for {
			// Check for shutdown first: after the signal lands, a pending
			// tick must not win the select race and start a save the drain
			// path would then have to wait out.
			select {
			case <-ctx.Done():
				return
			default:
			}
			select {
			case <-sweeper.C:
				api.Sweep()
			case <-saveC:
				// Dirty-bit gated: a quiet interval (no inserts, hits, or
				// invalidations since the last save) skips the serialization
				// and the rename entirely. Drain and admin saves stay
				// unconditional.
				if _, _, err := api.SaveCacheIfChanged(); err != nil {
					fmt.Fprintf(stdout, "ccdp daemon: WARNING: periodic plan-cache save failed: %v\n", err)
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed outright
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "ccdp daemon draining")
	api.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	<-errc       // Serve has returned http.ErrServerClosed
	<-tickerDone // no periodic save may still be racing the final one
	if *cacheFile != "" {
		// Persist after the drain: every in-flight upload has finished, so
		// the snapshot carries the final cache state.
		if n, err := api.SaveCache(); err != nil {
			fmt.Fprintf(stdout, "ccdp daemon: WARNING: final plan-cache save failed: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "ccdp daemon: saved %d cached plans to %s\n", n, *cacheFile)
		}
	}
	fmt.Fprintln(stdout, "ccdp daemon stopped")
	return nil
}

// startProfiles begins a CPU profile at dir/cpu.pprof and returns a stop
// function that ends it and writes a final heap profile to dir/heap.pprof.
func startProfiles(dir string) (func() error, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	cpuF, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		cerr := cpuF.Close()
		heapF, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return errors.Join(cerr, err)
		}
		werr := pprof.Lookup("heap").WriteTo(heapF, 0)
		return errors.Join(cerr, werr, heapF.Close())
	}, nil
}

// probeWritable verifies that a snapshot could be created next to path by
// creating and removing a temporary file in its directory — the same
// operation the atomic save performs.
func probeWritable(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".ccdp-cache-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// runServe implements the serve subcommand: one session, many queries from
// a query file, each debiting the session budget.
func runServe(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccdp serve", flag.ContinueOnError)
	budget := fs.Float64("budget", 0, "total session privacy budget ε (required, > 0); queries debit it under the selected composition accountant")
	accountant := fs.String("accountant", "sequential", "composition accountant: sequential (pure ε) or advanced ((ε, δ); -acct-delta required)")
	acctDelta := fs.Float64("acct-delta", 0, "advanced-composition failure probability δ in (0, 1); only with -accountant advanced")
	queries := fs.String("queries", "", "query file, one \"<mode> <epsilon> [seed]\" per line (required)")
	input := fs.String("input", "", "edge-list file (default: stdin)")
	seed := fs.Uint64("seed", 0, "session noise source: 0 = crypto randomness; nonzero = reproducible (testing only); per-query seeds override")
	workers := fs.Int("workers", 0, "concurrent component LP solves for the one-time plan build (0 = all CPUs, ≥ 0)")
	sepWorkers := fs.Int("sep-workers", 0, "concurrent separation oracle calls within one component (0 = inherit -workers, ≥ 0)")
	noWarm := fs.Bool("no-warm-start", false, "evaluate every Δ grid point of the plan from scratch (perf bisection)")
	noIncr := fs.Bool("no-incremental", false, "rebuild each LP tableau instead of sliding standing incremental solvers across the Δ grid (perf bisection; releases bit-identical)")
	timeout := fs.Duration("timeout", 0, "deadline for plan build + all queries; an expired query fails without spending its ε (0 = no deadline)")
	auditLog := fs.String("audit-log", "", "append every privacy-ledger operation to this CRC-guarded file (verify offline with `ccdp audit -log <file>`)")
	verbose := fs.Bool("v", false, "print per-query selection diagnostics (NOT private; testing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *budget <= 0 {
		return usageError(fs, "-budget must be positive")
	}
	if *queries == "" {
		return usageError(fs, "-queries is required")
	}
	if *workers < 0 {
		return usageError(fs, "-workers must be ≥ 0, got %d", *workers)
	}
	if *sepWorkers < 0 {
		return usageError(fs, "-sep-workers must be ≥ 0, got %d", *sepWorkers)
	}

	reqs, err := readQueryFile(*queries)
	if err != nil {
		return err
	}

	g, closeInput, err := readInputGraph(stdin, *input)
	if err != nil {
		return err
	}
	defer closeInput()

	sopts := nodedp.SessionOptions{TotalBudget: *budget, Delta: *acctDelta}
	if *auditLog != "" {
		audit, err := obs.OpenAuditLog(*auditLog)
		if err != nil {
			return fmt.Errorf("-audit-log: %w", err)
		}
		defer func() {
			if err := audit.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ccdp serve: WARNING: audit log: %v\n", err)
			}
		}()
		sopts.Audit = audit
	}
	switch *accountant {
	case "sequential":
	case "advanced":
		sopts.Composition = nodedp.CompositionAdvanced
	default:
		return usageError(fs, "unknown -accountant %q (want sequential or advanced)", *accountant)
	}
	if *seed != 0 {
		sopts.Rand = nodedp.NewRand(*seed)
	}
	sopts.ForestLP.Workers = *workers
	sopts.ForestLP.SepWorkers = *sepWorkers
	sopts.ForestLP.DisableWarmStart = *noWarm
	sopts.ForestLP.DisableIncremental = *noIncr

	ctx, cancel := timeoutContext(*timeout)
	defer cancel()

	sess, err := nodedp.Open(ctx, g, sopts)
	if err != nil {
		return err
	}
	acctLabel := sess.AccountantName()
	if d := sess.Delta(); d > 0 {
		acctLabel = fmt.Sprintf("%s (δ=%g)", acctLabel, d)
	}
	fmt.Fprintf(stdout, "session: n=%d m=%d fingerprint=%s budget ε=%g accountant=%s\n",
		g.N(), g.M(), sess.Fingerprint(), *budget, acctLabel)

	resps := sess.Do(ctx, reqs)
	for i, resp := range resps {
		label := fmt.Sprintf("q%d %-10s ε=%-6g", i+1, describeRequest(reqs[i]), reqs[i].Epsilon)
		switch {
		case errors.Is(resp.Err, nodedp.ErrBudgetExhausted):
			fmt.Fprintf(stdout, "%s REJECTED: budget exhausted\n", label)
		case resp.Err != nil:
			fmt.Fprintf(stdout, "%s FAILED: %v\n", label, resp.Err)
		default:
			fmt.Fprintf(stdout, "%s estimate %.2f\n", label, resp.Result.Value)
			if *verbose {
				fmt.Fprintf(stdout, "  [not private] Δ̂ = %g, noise scale %.3f\n",
					resp.Result.Delta, resp.Result.NoiseScale)
			}
		}
	}

	st := sess.Stats()
	fmt.Fprintf(stdout, "session: %d/%d queries admitted, spent ε=%g of %g (remaining %g), plans built %d\n",
		st.Admitted, st.Queries, st.Spent, st.TotalBudget, st.Remaining, st.PlansBuilt)
	return nil
}

// readQueryFile parses the serve query format: "<mode> <epsilon>" followed
// by an optional seed ("7" or "seed=7") per line, '#' comments and blank
// lines allowed. Every malformed line — unknown mode, missing/non-positive/
// non-finite epsilon, zero or duplicate seed, unknown or repeated
// key=value fields — fails with a line-numbered error so a typo never
// silently skips a query or runs it with different randomness than asked.
func readQueryFile(path string) ([]nodedp.BatchRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var reqs []nodedp.BatchRequest
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		req, err := parseQueryLine(fields)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s:%d: %w", path, lineNo+1, err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return reqs, nil
}

// parseQueryLine parses the fields of one non-empty query line.
func parseQueryLine(fields []string) (nodedp.BatchRequest, error) {
	var req nodedp.BatchRequest
	switch fields[0] {
	case "cc":
		req.Op = nodedp.OpComponentCount
	case "cc-known-n":
		req.Op, req.Mode = nodedp.OpComponentCount, nodedp.ModeKnownN
	case "sf":
		req.Op = nodedp.OpSpanningForestSize
	default:
		return req, fmt.Errorf("unknown mode %q (want cc, cc-known-n or sf)", fields[0])
	}
	if len(fields) < 2 {
		return req, fmt.Errorf("missing epsilon (want \"<mode> <epsilon> [seed]\")")
	}
	eps, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return req, fmt.Errorf("bad epsilon %q: %v", fields[1], err)
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		// The session would reject this later anyway, but without a line
		// number — and after the plan build.
		return req, fmt.Errorf("epsilon %v must be positive and finite", eps)
	}
	req.Epsilon = eps

	seenSeed := false
	for _, field := range fields[2:] {
		val := field
		if key, v, ok := strings.Cut(field, "="); ok {
			if key != "seed" {
				return req, fmt.Errorf("unknown field %q (only seed=N is allowed)", field)
			}
			val = v
		}
		if seenSeed {
			return req, fmt.Errorf("duplicate seed field %q", field)
		}
		seenSeed = true
		seed, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return req, fmt.Errorf("bad seed %q: %v", val, err)
		}
		if seed == 0 {
			// Seed 0 is the "unseeded" sentinel: accepting it would
			// silently switch the query to crypto randomness.
			return req, fmt.Errorf("seed must be nonzero (omit the field for crypto randomness)")
		}
		req.Seed = seed
	}
	return req, nil
}

// describeRequest renders a request's mode the way the query file spells it.
func describeRequest(r nodedp.BatchRequest) string {
	if r.Op == nodedp.OpSpanningForestSize {
		return "sf"
	}
	if r.Mode == nodedp.ModeKnownN {
		return "cc-known-n"
	}
	return "cc"
}

// readInputGraph reads the graph from path, or from stdin when path is
// empty; the returned closer is a no-op for stdin.
func readInputGraph(stdin io.Reader, path string) (*nodedp.Graph, func(), error) {
	r, closer := stdin, func() {}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r, closer = f, func() { f.Close() }
	}
	g, err := nodedp.ReadGraph(r)
	if err != nil {
		closer()
		return nil, nil, err
	}
	return g, closer, nil
}

// timeoutContext returns a background context bounded by d (unbounded when
// d is zero).
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.Background(), func() {}
}

// usageError prints the flag set's usage and returns the formatted error,
// so invalid invocations fail loudly instead of being passed through.
// printConfigSummary renders the effective flag settings, one `-name=value`
// per line. Startup logs get diffed across deployments and seeded runs, so
// the rendering is collect-then-sort — the idiom detlint's maporder
// analyzer enforces — never raw map iteration order.
func printConfigSummary(w io.Writer, indent string, fs *flag.FlagSet) {
	vals := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { vals[f.Name] = f.Value.String() })
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s-%s=%s\n", indent, name, vals[name])
	}
}

func usageError(fs *flag.FlagSet, format string, args ...interface{}) error {
	fs.Usage()
	return fmt.Errorf(format, args...)
}

// printShardTimings summarizes the slowest component evaluations across the
// whole Δ-grid (the Stats carry one record per shard per grid point).
func printShardTimings(w io.Writer, shards []nodedp.ShardTiming) {
	if len(shards) == 0 {
		return
	}
	slowest := shards[0]
	var total time.Duration
	lp := 0
	for _, s := range shards {
		total += s.Duration
		if !s.FastPath {
			lp++
		}
		if s.Duration > slowest.Duration {
			slowest = s
		}
	}
	fmt.Fprintf(w, "  shards: %d evaluations (%d via LP), Σ %s; slowest shard #%d (n=%d m=%d) took %s\n",
		len(shards), lp, total.Round(time.Microsecond), slowest.Shard,
		slowest.Vertices, slowest.Edges, slowest.Duration.Round(time.Microsecond))
}
