// Command ccdp releases a node-differentially private estimate of the
// number of connected components (or the spanning-forest size) of a graph
// read from an edge-list file.
//
// Usage:
//
//	ccdp -epsilon 1.0 [-mode cc|cc-known-n|sf] [-input graph.txt] [-seed 0]
//	     [-workers 0] [-timeout 0] [-v]
//
// The input format is one "u v" pair per line with an optional "n <count>"
// header for isolated vertices; '#' starts a comment. With -input omitted,
// the graph is read from stdin. -seed 0 (the default) uses cryptographic
// randomness; any other seed makes the release reproducible (for testing
// only — a reproducible release is not private).
//
// -workers sets how many per-component LPs the evaluation engine solves
// concurrently (0 = all CPUs); the released value is identical for every
// setting. -timeout bounds the whole estimation; on expiry the run aborts
// cleanly without spending budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nodedp"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccdp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccdp", flag.ContinueOnError)
	epsilon := fs.Float64("epsilon", 0, "total privacy budget ε (required, > 0)")
	mode := fs.String("mode", "cc", "what to estimate: cc (components), cc-known-n (components, public vertex count), sf (spanning-forest size)")
	input := fs.String("input", "", "edge-list file (default: stdin)")
	seed := fs.Uint64("seed", 0, "0 = crypto randomness; nonzero = reproducible (testing only)")
	workers := fs.Int("workers", 0, "concurrent component LP solves (0 = all CPUs; result is identical for any value)")
	timeout := fs.Duration("timeout", 0, "abort the estimation after this long (0 = no deadline)")
	verbose := fs.Bool("v", false, "print selection diagnostics (NOT private; testing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epsilon <= 0 {
		return fmt.Errorf("-epsilon must be positive")
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0")
	}

	r := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := nodedp.ReadGraph(r)
	if err != nil {
		return err
	}

	opts := nodedp.Options{Epsilon: *epsilon}
	if *seed != 0 {
		opts.Rand = nodedp.NewRand(*seed)
	}
	opts.ForestLP.Workers = *workers
	opts.ForestLP.ShardTimings = *verbose

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res nodedp.Result
	switch *mode {
	case "cc":
		res, err = nodedp.EstimateComponentCountCtx(ctx, g, opts)
	case "cc-known-n":
		res, err = nodedp.EstimateComponentCountKnownNCtx(ctx, g, opts)
	case "sf":
		res, err = nodedp.EstimateSpanningForestSizeCtx(ctx, g, opts)
	default:
		return fmt.Errorf("unknown -mode %q (want cc, cc-known-n or sf)", *mode)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Fprintf(stdout, "mode: %s  epsilon: %g\n", *mode, *epsilon)
	fmt.Fprintf(stdout, "private estimate: %.2f\n", res.Value)
	if *verbose {
		fmt.Fprintf(stdout, "[diagnostics — not private]\n")
		fmt.Fprintf(stdout, "  selected Δ̂ = %g, noise scale %.3f\n", res.Delta, res.NoiseScale)
		for _, ev := range res.Evaluations {
			fmt.Fprintf(stdout, "  f_%g(G) = %.3f (q = %.3f)\n", ev.Delta, ev.FDelta, ev.Q)
		}
		fmt.Fprintf(stdout, "  engine: %d components, %d workers, %d fast-path hits, %d LP solves\n",
			res.Stats.Components, res.Stats.Workers, res.Stats.FastPathHits, res.Stats.LPSolves)
		printShardTimings(stdout, res.Stats.Shards)
	}
	return nil
}

// printShardTimings summarizes the slowest component evaluations across the
// whole Δ-grid (the Stats carry one record per shard per grid point).
func printShardTimings(w io.Writer, shards []nodedp.ShardTiming) {
	if len(shards) == 0 {
		return
	}
	slowest := shards[0]
	var total time.Duration
	lp := 0
	for _, s := range shards {
		total += s.Duration
		if !s.FastPath {
			lp++
		}
		if s.Duration > slowest.Duration {
			slowest = s
		}
	}
	fmt.Fprintf(w, "  shards: %d evaluations (%d via LP), Σ %s; slowest shard #%d (n=%d m=%d) took %s\n",
		len(shards), lp, total.Round(time.Microsecond), slowest.Shard,
		slowest.Vertices, slowest.Edges, slowest.Duration.Round(time.Microsecond))
}
