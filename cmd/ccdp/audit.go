package main

// The audit subcommand: offline reconciliation of a daemon's privacy audit
// log. It re-runs the recorded ledger history through fresh composition
// accountants and checks every recorded balance bit-for-bit, so a budget
// dispute can be settled from the durable artifact alone — no trust in the
// process that wrote it beyond the CRC-guarded lines themselves.
//
// The log interleaves events from every session the daemon served. Each
// session is scoped by (tenant, graph fingerprint) — deliberately not by a
// crypto-random session ID, which would break the byte-determinism
// contract — so reconciliation replays one ledger stream per such pair. An
// "open" event starts (or, for a re-opened pair, restarts) the stream's
// accountant with the recorded mode, budget, and δ; every subsequent
// reserve/refund replays the same mutation and the observed Spent() must
// equal the recorded one exactly. Charges and dedup replays move nothing
// and must record the unchanged balance. Two concurrent sessions on the
// same (tenant, fingerprint) pair would interleave one stream and fail
// reconciliation; the daemon's per-tenant registry does not produce that.

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"

	"nodedp/internal/obs"
	"nodedp/internal/privacy"
)

// auditStream is the reconciliation state for one (tenant, scope) ledger.
type auditStream struct {
	tenant, scope string
	acct          privacy.Accountant
	events        int
	reserves      int
	rejected      int
	refunds       int
	charges       int
	replays       int
	deltas        int
	lastSpent     float64
}

// runAudit implements `ccdp audit -log <path> [-v]`.
func runAudit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ccdp audit", flag.ContinueOnError)
	logPath := fs.String("log", "", "privacy audit log to verify (required)")
	verbose := fs.Bool("v", false, "print one reconciliation line per event")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return usageError(fs, "-log is required")
	}

	// ReadAuditLog already enforces the CRC on every line and sequence
	// contiguity across the file; what remains is the semantic replay.
	events, err := obs.ReadAuditLog(*logPath)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no audit events", *logPath)
	}

	streams := make(map[string]*auditStream)
	key := func(e obs.AuditEvent) string { return e.Tenant + "\x00" + e.Scope }
	var failures []string
	fail := func(e obs.AuditEvent, format string, args ...interface{}) {
		failures = append(failures, fmt.Sprintf("seq %d (%s %s tenant=%q request=%q): %s",
			e.Seq, e.Op, e.Outcome, e.Tenant, e.RequestID, fmt.Sprintf(format, args...)))
	}

	for _, e := range events {
		st := streams[key(e)]
		if e.Op == obs.AuditOpen {
			comp, err := privacy.ParseComposition(e.Mode)
			if err != nil {
				fail(e, "%v", err)
				continue
			}
			acct, err := privacy.New(comp, e.Budget, e.Delta)
			if err != nil {
				fail(e, "recorded configuration does not construct: %v", err)
				continue
			}
			if e.Spent != 0 {
				// A fresh accountant starts at zero; a nonzero opening
				// balance means the session shared a ledger whose history
				// predates this log, which a replay cannot reproduce.
				fail(e, "opening spent %v is nonzero: ledger history predates this log", e.Spent)
				continue
			}
			st = &auditStream{tenant: e.Tenant, scope: e.Scope, acct: acct}
			streams[key(e)] = st
			st.events++
			continue
		}
		if st == nil {
			fail(e, "no open event for this tenant/scope stream")
			continue
		}
		st.events++
		if e.Mode != st.acct.Name() {
			fail(e, "mode %q does not match the stream's accountant %q", e.Mode, st.acct.Name())
		}

		switch e.Op {
		case obs.AuditReserve:
			st.reserves++
			switch e.Outcome {
			case obs.AuditOK:
				if err := st.acct.Reserve(e.Epsilon); err != nil {
					fail(e, "log admitted ε=%v but replay rejects it: %v", e.Epsilon, err)
				}
			case obs.AuditRejected:
				st.rejected++
				err := st.acct.Reserve(e.Epsilon)
				if !errors.Is(err, privacy.ErrBudgetExhausted) {
					fail(e, "log rejected ε=%v but replay admits it (spent now %v)", e.Epsilon, st.acct.Spent())
				}
			default:
				// An injected reservation fault: the ledger was never
				// touched, so the replay touches nothing either.
			}
		case obs.AuditRefund:
			st.refunds++
			st.acct.Refund(e.Epsilon)
		case obs.AuditCharge:
			st.charges++ // a reservation becoming permanent: no mutation
		case obs.AuditReplay:
			st.replays++ // answered from the recorded release: no mutation
		case obs.AuditDelta:
			st.deltas++ // the graph changed, the ledger did not
		default:
			fail(e, "unknown op")
			continue
		}

		// The bit-for-bit contract: Spent() after replaying the mutation
		// must equal the recorded balance exactly — not approximately.
		if got := st.acct.Spent(); got != e.Spent {
			fail(e, "spent diverged: log says %s, replay says %s",
				strconv.FormatFloat(e.Spent, 'g', -1, 64), strconv.FormatFloat(got, 'g', -1, 64))
		}
		st.lastSpent = st.acct.Spent()
		if *verbose {
			fmt.Fprintf(stdout, "seq %-5d %-8s %-8s tenant=%q request=%q eps=%g spent=%g\n",
				e.Seq, e.Op, e.Outcome, e.Tenant, e.RequestID, e.Epsilon, e.Spent)
		}
	}

	keys := make([]string, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(stdout, "audit: %s: %d events across %d session stream(s)\n", *logPath, len(events), len(keys))
	for _, k := range keys {
		st := streams[k]
		fmt.Fprintf(stdout, "  tenant=%q scope=%s mode=%s: %d events, %d reserves (%d rejected), %d refunds, %d charges, %d replays, %d deltas; spent ε=%g of %g\n",
			st.tenant, st.scope, st.acct.Name(), st.events, st.reserves, st.rejected,
			st.refunds, st.charges, st.replays, st.deltas, st.lastSpent, st.acct.EpsilonBudget())
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stdout, "  MISMATCH: %s\n", f)
		}
		return fmt.Errorf("%s: %d reconciliation failure(s)", *logPath, len(failures))
	}
	fmt.Fprintf(stdout, "audit: OK — every recorded balance reproduced bit-for-bit\n")
	return nil
}
