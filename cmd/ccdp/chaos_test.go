package main

// Daemon-level chaos drill: NODEDP_FAILPOINTS arms failpoints at boot (the
// boot log announces them), injected failures surface as typed retryable
// errors, and a malformed spec fails the boot loudly.

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"nodedp/internal/fault"
)

func TestDaemonArmsFailpointsFromEnv(t *testing.T) {
	defer fault.Reset()
	t.Setenv(fault.EnvVar, "privacy.reserve=nth:1")
	d := startDaemon(t)
	defer d.stop(t)

	if !strings.Contains(d.bootLog, "CHAOS: 1 failpoint site(s) armed from "+fault.EnvVar) ||
		!strings.Contains(d.bootLog, "privacy.reserve") {
		t.Fatalf("boot log missing chaos announcement:\n%s", d.bootLog)
	}

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	code, body := post("/v1/graphs", `{"n":6,"edges":[[0,1],[2,3]],"budget":2}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var id string
	if _, after, ok := strings.Cut(body, `"session_id":"`); ok {
		id, _, _ = strings.Cut(after, `"`)
	}

	// First query trips the armed ledger failpoint: a retryable 500 with
	// the internal taxonomy code, charging nothing.
	code, body = post("/v1/sessions/"+id+"/query", `{"op":"cc","epsilon":0.5,"seed":7}`)
	if code != http.StatusInternalServerError || !strings.Contains(body, `"internal"`) {
		t.Fatalf("query under armed failpoint: %d %s", code, body)
	}
	// The failpoint is spent (nth:1); the retry succeeds.
	code, body = post("/v1/sessions/"+id+"/query", `{"op":"cc","epsilon":0.5,"seed":7}`)
	if code != http.StatusOK || !strings.Contains(body, `"value"`) {
		t.Fatalf("retry after spent failpoint: %d %s", code, body)
	}
}

func TestDaemonRejectsMalformedFailpointSpec(t *testing.T) {
	defer fault.Reset()
	t.Setenv(fault.EnvVar, "privacy.reserve=bogus:policy")
	err := run([]string{"daemon", "-listen", "127.0.0.1:0"}, strings.NewReader(""), io.Discard)
	if err == nil || !strings.Contains(err.Error(), fault.EnvVar) {
		t.Fatalf("malformed spec boot err = %v, want parse failure naming %s", err, fault.EnvVar)
	}
}
