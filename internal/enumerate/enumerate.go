// Package enumerate generates all simple graphs on a small number of
// vertices, optionally up to isomorphism. The experiment suite uses it to
// upgrade randomized checks of the paper's combinatorial lemmas
// (Lemmas 1.6–1.9, 5.1, 5.2; Theorem 1.11) to exhaustive verification on
// every graph with up to 6–7 vertices.
//
// Graphs on n vertices are encoded as bitmasks over the C(n,2) vertex
// pairs in lexicographic order: bit index of pair (i,j), i<j, is
// i·n − i(i+1)/2 + (j − i − 1).
package enumerate

import (
	"fmt"

	"nodedp/internal/graph"
)

// MaxVertices bounds the enumeration; 2^C(8,2) is already 2^28 labeled
// graphs, so 7 is the practical ceiling (2^21).
const MaxVertices = 7

// PairIndex returns the bit index of the pair (i,j), i < j, on n vertices.
func PairIndex(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*n - i*(i+1)/2 + (j - i - 1)
}

// FromMask decodes a pair bitmask into a graph on n vertices.
func FromMask(n int, mask uint64) *graph.Graph {
	g := graph.New(n)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if mask&(1<<idx) != 0 {
				if err := g.AddEdge(i, j); err != nil {
					panic(err) // enumeration never produces duplicates
				}
			}
			idx++
		}
	}
	return g
}

// All calls fn with every labeled graph on n vertices (2^C(n,2) of them).
// fn returning false stops the enumeration early. All returns an error if
// n exceeds MaxVertices.
func All(n int, fn func(*graph.Graph) bool) error {
	if n < 0 || n > MaxVertices {
		return fmt.Errorf("enumerate: n=%d out of range [0,%d]", n, MaxVertices)
	}
	pairs := n * (n - 1) / 2
	for mask := uint64(0); mask < 1<<pairs; mask++ {
		if !fn(FromMask(n, mask)) {
			return nil
		}
	}
	return nil
}

// AllNonIsomorphic calls fn with one representative per isomorphism class
// of graphs on n vertices (the representative with the smallest canonical
// mask). Canonicalization brute-forces all n! vertex permutations, so it is
// restricted to n ≤ MaxVertices. fn returning false stops early.
func AllNonIsomorphic(n int, fn func(*graph.Graph) bool) error {
	if n < 0 || n > MaxVertices {
		return fmt.Errorf("enumerate: n=%d out of range [0,%d]", n, MaxVertices)
	}
	pairs := n * (n - 1) / 2
	perms := permutations(n)
	for mask := uint64(0); mask < 1<<pairs; mask++ {
		if canonicalMask(n, mask, perms) != mask {
			continue // not the class representative
		}
		if !fn(FromMask(n, mask)) {
			return nil
		}
	}
	return nil
}

// CountNonIsomorphic returns the number of isomorphism classes on n
// vertices — a self-test hook against the known sequence 1, 1, 2, 4, 11,
// 34, 156, 1044 (OEIS A000088).
func CountNonIsomorphic(n int) (int, error) {
	count := 0
	err := AllNonIsomorphic(n, func(*graph.Graph) bool {
		count++
		return true
	})
	return count, err
}

// canonicalMask returns the minimum mask over all vertex permutations.
func canonicalMask(n int, mask uint64, perms [][]int) uint64 {
	best := mask
	for _, p := range perms {
		var permuted uint64
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if mask&(1<<idx) != 0 {
					permuted |= 1 << PairIndex(n, p[i], p[j])
				}
				idx++
			}
		}
		if permuted < best {
			best = permuted
		}
	}
	return best
}

// permutations returns all permutations of 0..n-1 (Heap's algorithm).
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				cur[i], cur[k-1] = cur[k-1], cur[i]
			} else {
				cur[0], cur[k-1] = cur[k-1], cur[0]
			}
		}
	}
	if n == 0 {
		return [][]int{{}}
	}
	rec(n)
	return out
}
