package enumerate

import (
	"testing"

	"nodedp/internal/graph"
)

func TestPairIndex(t *testing.T) {
	// n=4: pairs in order (0,1),(0,2),(0,3),(1,2),(1,3),(2,3).
	want := map[[2]int]int{
		{0, 1}: 0, {0, 2}: 1, {0, 3}: 2, {1, 2}: 3, {1, 3}: 4, {2, 3}: 5,
	}
	for pair, idx := range want {
		if got := PairIndex(4, pair[0], pair[1]); got != idx {
			t.Fatalf("PairIndex(4,%d,%d) = %d, want %d", pair[0], pair[1], got, idx)
		}
		// Symmetric arguments.
		if got := PairIndex(4, pair[1], pair[0]); got != idx {
			t.Fatalf("PairIndex(4,%d,%d) = %d, want %d", pair[1], pair[0], got, idx)
		}
	}
}

func TestFromMaskRoundTrip(t *testing.T) {
	// Mask with bits for (0,1) and (2,3) on n=4: bits 0 and 5.
	g := FromMask(4, 1|1<<5)
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatalf("decoded %v %v", g, g.Edges())
	}
}

func TestAllCounts(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 8, 4: 64} {
		count := 0
		if err := All(n, func(*graph.Graph) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if count != want {
			t.Fatalf("n=%d: %d labeled graphs, want %d", n, count, want)
		}
	}
}

func TestAllEarlyStop(t *testing.T) {
	count := 0
	if err := All(4, func(*graph.Graph) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop after %d", count)
	}
}

func TestAllRejectsLarge(t *testing.T) {
	if err := All(MaxVertices+1, func(*graph.Graph) bool { return true }); err == nil {
		t.Fatal("oversized n should fail")
	}
	if err := AllNonIsomorphic(-1, func(*graph.Graph) bool { return true }); err == nil {
		t.Fatal("negative n should fail")
	}
}

// TestCountNonIsomorphic checks against OEIS A000088: the number of graphs
// on n unlabeled nodes is 1, 1, 2, 4, 11, 34, 156.
func TestCountNonIsomorphic(t *testing.T) {
	want := []int{1, 1, 2, 4, 11, 34, 156}
	for n := 0; n <= 6; n++ {
		got, err := CountNonIsomorphic(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[n] {
			t.Fatalf("n=%d: %d classes, want %d", n, got, want[n])
		}
	}
}

func TestRepresentativesAreValid(t *testing.T) {
	if err := AllNonIsomorphic(5, func(g *graph.Graph) bool {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}
