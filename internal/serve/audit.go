package serve

// This file routes every accountant mutation through the session's optional
// privacy audit sink (internal/obs.AuditSink). The contract the `ccdp
// audit` reconciler depends on: each reserve/refund event carries the
// accountant's Spent() as observed immediately AFTER the mutation, read
// under the same lock that ordered the mutation into the log — so replaying
// the recorded ε sequence through a fresh accountant of the recorded
// composition mode reproduces every spent value bit-for-bit. Charges (a
// query completing, keeping its reservation) mutate nothing and record the
// unchanged balance.
//
// Audit events deliberately carry no timestamps and no crypto-random
// session identity: a session is scoped by (tenant, graph fingerprint) and
// queries by their request IDs, so identically-seeded daemons serving the
// same query file write byte-identical logs.

import (
	"errors"

	"nodedp/internal/obs"
)

// auditOutcome classifies an accountant error for the audit log.
func auditOutcome(err error) string {
	switch {
	case err == nil:
		return obs.AuditOK
	case errors.Is(err, ErrBudgetExhausted):
		return obs.AuditRejected
	default:
		return obs.AuditError
	}
}

// auditOpen records the session-open event that seeds reconciliation: the
// accountant's full configuration (mode, budget, δ) plus its opening
// balance, which is nonzero when the caller shares a ledger across
// sessions.
func (s *Session) auditOpen(tenant string) {
	if s.audit == nil {
		return
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	s.audit.Record(obs.AuditEvent{
		Tenant:  tenant,
		Scope:   s.scope,
		Op:      obs.AuditOpen,
		Outcome: obs.AuditOK,
		Mode:    s.acct.Name(),
		Budget:  s.acct.EpsilonBudget(),
		Delta:   s.acct.Delta(),
		Spent:   s.acct.Spent(),
	})
}

// reserveAudited is the audited form of s.acct.Reserve. requestID overrides
// the context's request ID when non-empty (batch items suffix their index
// so each admission is individually attributable).
func (s *Session) reserveAudited(info obs.RequestInfo, requestID string, eps float64) error {
	if s.audit == nil {
		return s.acct.Reserve(eps)
	}
	if requestID == "" {
		requestID = info.RequestID
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	err := s.acct.Reserve(eps)
	s.audit.Record(obs.AuditEvent{
		Tenant:    info.Tenant,
		RequestID: requestID,
		Scope:     s.scope,
		Op:        obs.AuditReserve,
		Outcome:   auditOutcome(err),
		Epsilon:   eps,
		Mode:      s.acct.Name(),
		Spent:     s.acct.Spent(),
	})
	return err
}

// refundAudited is the audited form of s.acct.Refund (a canceled query
// returning its reservation before any noise was drawn).
func (s *Session) refundAudited(info obs.RequestInfo, requestID string, eps float64) {
	if s.audit == nil {
		s.acct.Refund(eps)
		return
	}
	if requestID == "" {
		requestID = info.RequestID
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	s.acct.Refund(eps)
	s.audit.Record(obs.AuditEvent{
		Tenant:    info.Tenant,
		RequestID: requestID,
		Scope:     s.scope,
		Op:        obs.AuditRefund,
		Outcome:   obs.AuditOK,
		Epsilon:   eps,
		Mode:      s.acct.Name(),
		Spent:     s.acct.Spent(),
	})
}

// RecordReplay logs a dedup replay: a retried request ID answered from the
// recorded release. The ledger does not move — the original attempt already
// charged — so the event carries the unchanged balance; reconciliation
// verifies exactly that. Exported because replay detection lives in the
// HTTP layer's dedup table, above this package.
func (s *Session) RecordReplay(info obs.RequestInfo, requestID string) {
	if s.audit == nil {
		return
	}
	if requestID == "" {
		requestID = info.RequestID
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	s.audit.Record(obs.AuditEvent{
		Tenant:    info.Tenant,
		RequestID: requestID,
		Scope:     s.scope,
		Op:        obs.AuditReplay,
		Outcome:   obs.AuditOK,
		Mode:      s.acct.Name(),
		Spent:     s.acct.Spent(),
	})
}

// chargeAudited finalizes an admitted query that keeps its reservation —
// success, or a non-cancelation failure after which accounting must stay
// conservative (noise may have been drawn). No accountant mutation.
func (s *Session) chargeAudited(info obs.RequestInfo, requestID string, eps float64, execErr error) {
	if s.audit == nil {
		return
	}
	if requestID == "" {
		requestID = info.RequestID
	}
	outcome := obs.AuditOK
	if execErr != nil {
		outcome = obs.AuditError
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	s.audit.Record(obs.AuditEvent{
		Tenant:    info.Tenant,
		RequestID: requestID,
		Scope:     s.scope,
		Op:        obs.AuditCharge,
		Outcome:   outcome,
		Epsilon:   eps,
		Mode:      s.acct.Name(),
		Spent:     s.acct.Spent(),
	})
}
