package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/privacy"
)

// testGraph is a small multi-component workload shared by the tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return generate.PlantedComponents([]int{8, 8, 8}, 0.4, generate.NewRand(11))
}

func mustOpen(t testing.TB, g *graph.Graph, opts SessionOptions) *Session {
	t.Helper()
	s, err := Open(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenValidatesBudget(t *testing.T) {
	g := testGraph(t)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Open(context.Background(), g, SessionOptions{TotalBudget: bad}); err == nil {
			t.Fatalf("TotalBudget %v accepted", bad)
		}
	}
}

func TestSessionMatchesOneShot(t *testing.T) {
	g := testGraph(t)
	s := mustOpen(t, g, SessionOptions{TotalBudget: 100})
	ctx := context.Background()

	for seed := uint64(1); seed <= 4; seed++ {
		oneShot, err := core.EstimateComponentCountCtx(ctx, g,
			core.Options{Epsilon: 0.5, Rand: generate.NewRand(seed)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != oneShot.Value || got.Delta != oneShot.Delta || got.NHat != oneShot.NHat {
			t.Fatalf("seed %d: session release (%v, Δ=%v) != one-shot (%v, Δ=%v)",
				seed, got.Value, got.Delta, oneShot.Value, oneShot.Delta)
		}

		oneShotSF, err := core.EstimateSpanningForestSizeCtx(ctx, g,
			core.Options{Epsilon: 0.25, Rand: generate.NewRand(seed)})
		if err != nil {
			t.Fatal(err)
		}
		gotSF, err := s.SpanningForestSize(ctx, QueryOptions{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if gotSF.Value != oneShotSF.Value {
			t.Fatalf("seed %d: sf session %v != one-shot %v", seed, gotSF.Value, oneShotSF.Value)
		}

		oneShotKN, err := core.EstimateComponentCountKnownNCtx(ctx, g,
			core.Options{Epsilon: 0.25, Rand: generate.NewRand(seed)})
		if err != nil {
			t.Fatal(err)
		}
		gotKN, err := s.ComponentCount(ctx, QueryOptions{Epsilon: 0.25, Mode: KnownN, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if gotKN.Value != oneShotKN.Value {
			t.Fatalf("seed %d: known-n session %v != one-shot %v", seed, gotKN.Value, oneShotKN.Value)
		}
	}

	st := s.Stats()
	if st.PlansBuilt != 1 {
		t.Fatalf("PlansBuilt = %d, want exactly 1 for all queries", st.PlansBuilt)
	}
	if want := 4 * (0.5 + 0.25 + 0.25); math.Abs(st.Spent-want) > 1e-12 {
		t.Fatalf("Spent = %v, want %v", st.Spent, want)
	}
}

// TestConcurrentQueriesNeverOverspend is the composition property test: k
// concurrent queries whose epsilons sum past the total budget admit at most
// the affordable count, never double-spend, and every rejection is
// ErrBudgetExhausted. Run under -race this also exercises the accountant's
// and the shared-PRNG serialization's thread safety.
func TestConcurrentQueriesNeverOverspend(t *testing.T) {
	g := testGraph(t)
	const (
		total = 1.0
		eps   = 0.125 // dyadic: 8 queries fit exactly
		k     = 20
	)
	s := mustOpen(t, g, SessionOptions{TotalBudget: total, Rand: generate.NewRand(5)})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix seeded, session-PRNG, and crypto draws across goroutines.
			var q QueryOptions
			switch i % 3 {
			case 0:
				q = QueryOptions{Epsilon: eps, Seed: uint64(i + 1)}
			case 1:
				q = QueryOptions{Epsilon: eps}
			default:
				q = QueryOptions{Epsilon: eps, Mode: KnownN}
			}
			_, errs[i] = s.ComponentCount(ctx, q)
		}(i)
	}
	wg.Wait()

	succeeded, rejected := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, ErrBudgetExhausted):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	affordable := int(total / eps)
	if succeeded != affordable {
		t.Fatalf("%d queries succeeded, want exactly %d (the affordable count)", succeeded, affordable)
	}
	if rejected != k-affordable {
		t.Fatalf("%d rejected, want %d", rejected, k-affordable)
	}
	if spent := s.Spent(); spent != float64(succeeded)*eps {
		t.Fatalf("Spent = %v, want %v: budget was double- or under-counted", spent, float64(succeeded)*eps)
	}
	if s.Remaining() != total-s.Spent() {
		t.Fatalf("Remaining %v != total-spent %v", s.Remaining(), total-s.Spent())
	}
	st := s.Stats()
	if st.Admitted != int64(affordable) || st.Rejected != int64(k-affordable) || st.Queries != k {
		t.Fatalf("stats %+v inconsistent with %d/%d admitted", st, affordable, k)
	}
}

func TestOverBudgetQuerySpendsNothing(t *testing.T) {
	g := testGraph(t)
	s := mustOpen(t, g, SessionOptions{TotalBudget: 1})
	ctx := context.Background()
	if _, err := s.ComponentCount(ctx, QueryOptions{Epsilon: 2}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if s.Spent() != 0 {
		t.Fatalf("rejected query spent %v", s.Spent())
	}
	// The budget is still fully available.
	if _, err := s.ComponentCount(ctx, QueryOptions{Epsilon: 1, Seed: 1}); err != nil {
		t.Fatalf("affordable query after rejection failed: %v", err)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %v, want 0", s.Remaining())
	}
}

func TestQueryValidation(t *testing.T) {
	g := testGraph(t)
	s := mustOpen(t, g, SessionOptions{TotalBudget: 1})
	ctx := context.Background()
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := s.ComponentCount(ctx, QueryOptions{Epsilon: eps}); err == nil {
			t.Fatalf("epsilon %v accepted", eps)
		}
	}
	if _, err := s.SpanningForestSize(ctx, QueryOptions{Epsilon: 0.1, Mode: KnownN}); err == nil {
		t.Fatal("Mode on a spanning-forest query must be rejected")
	}
	if s.Spent() != 0 {
		t.Fatalf("invalid queries spent %v", s.Spent())
	}
}

func TestCanceledQueryRefunds(t *testing.T) {
	g := testGraph(t)
	s := mustOpen(t, g, SessionOptions{TotalBudget: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ComponentCount(ctx, QueryOptions{Epsilon: 0.5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Spent() != 0 {
		t.Fatalf("canceled query spent %v", s.Spent())
	}
}

// TestBatchMatchesSequential is the batch determinism property test: a
// batch served by Do releases bit-for-bit what the same seeded queries
// issued sequentially release.
func TestBatchMatchesSequential(t *testing.T) {
	g := testGraph(t)
	reqs := []Request{
		{Op: OpComponentCount, Epsilon: 0.25, Seed: 101},
		{Op: OpSpanningForestSize, Epsilon: 0.5, Seed: 102},
		{Op: OpComponentCount, Mode: KnownN, Epsilon: 0.125, Seed: 103},
		{Op: OpComponentCount, Epsilon: 0.25, Seed: 104},
	}

	batch := mustOpen(t, g, SessionOptions{TotalBudget: 2})
	resps := batch.Do(context.Background(), reqs)

	seq := mustOpen(t, g, SessionOptions{TotalBudget: 2})
	for i, r := range reqs {
		q := QueryOptions{Epsilon: r.Epsilon, Mode: r.Mode, Seed: r.Seed}
		var want core.Result
		var err error
		if r.Op == OpSpanningForestSize {
			want, err = seq.SpanningForestSize(context.Background(), q)
		} else {
			want, err = seq.ComponentCount(context.Background(), q)
		}
		if err != nil || resps[i].Err != nil {
			t.Fatalf("request %d errored: batch=%v seq=%v", i, resps[i].Err, err)
		}
		if resps[i].Result.Value != want.Value || resps[i].Result.Delta != want.Delta {
			t.Fatalf("request %d: batch release (%v, Δ=%v) != sequential (%v, Δ=%v)",
				i, resps[i].Result.Value, resps[i].Result.Delta, want.Value, want.Delta)
		}
	}
	if batch.Spent() != seq.Spent() {
		t.Fatalf("batch spent %v, sequential spent %v", batch.Spent(), seq.Spent())
	}
}

// TestBatchAdmitsAffordablePrefix checks deterministic in-order admission:
// with uniform epsilons exceeding the budget, exactly the affordable prefix
// is admitted and the tail fails with ErrBudgetExhausted.
func TestBatchAdmitsAffordablePrefix(t *testing.T) {
	g := testGraph(t)
	s := mustOpen(t, g, SessionOptions{TotalBudget: 1})
	reqs := make([]Request, 7)
	for i := range reqs {
		reqs[i] = Request{Op: OpComponentCount, Epsilon: 0.25, Seed: uint64(i + 1)}
	}
	resps := s.Do(context.Background(), reqs)
	for i, r := range resps {
		if i < 4 && r.Err != nil {
			t.Fatalf("prefix request %d rejected: %v", i, r.Err)
		}
		if i >= 4 && !errors.Is(r.Err, ErrBudgetExhausted) {
			t.Fatalf("tail request %d: err = %v, want ErrBudgetExhausted", i, r.Err)
		}
	}
	if s.Spent() != 1 {
		t.Fatalf("Spent = %v, want 1", s.Spent())
	}
}

func TestSessionSharesPlanViaCache(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}
	g1, err := graph.FromEdges(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Same graph, reversed insertion order — a "re-read" copy.
	g2 := graph.New(6)
	for i := len(edges) - 1; i >= 0; i-- {
		if err := g2.AddEdge(edges[i].U, edges[i].V); err != nil {
			t.Fatal(err)
		}
	}

	cache := core.NewPlanCache(4)
	ctx := context.Background()
	s1, err := Open(ctx, g1, SessionOptions{TotalBudget: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(ctx, g2, SessionOptions{TotalBudget: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stats().PlansBuilt != 1 || s1.Stats().CacheHit {
		t.Fatalf("cold open: %+v, want 1 plan built", s1.Stats())
	}
	if s2.Stats().PlansBuilt != 0 || !s2.Stats().CacheHit {
		t.Fatalf("warm open: %+v, want cache hit and 0 plans built", s2.Stats())
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("identical graphs must share a fingerprint")
	}
	// Both sessions release identically for identical seeds.
	r1, err := s1.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value {
		t.Fatalf("shared-plan sessions disagree: %v vs %v", r1.Value, r2.Value)
	}
	// Budgets are per-session, not per-cache-entry.
	if s1.Spent() != 0.5 || s2.Spent() != 0.5 {
		t.Fatalf("budgets leaked across sessions: %v, %v", s1.Spent(), s2.Spent())
	}
}

// TestBatchSharedRandDeterministic pins the fix for unseeded batches on a
// seeded session: requests drawing from the shared session PRNG execute in
// request order, so two identically-seeded sessions produce identical
// batches, and a batch equals the same queries issued sequentially.
func TestBatchSharedRandDeterministic(t *testing.T) {
	g := testGraph(t)
	reqs := []Request{
		{Op: OpComponentCount, Epsilon: 0.25},
		{Op: OpSpanningForestSize, Epsilon: 0.25},
		{Op: OpComponentCount, Mode: KnownN, Epsilon: 0.25},
		{Op: OpComponentCount, Epsilon: 0.25},
	}
	run := func() []float64 {
		s := mustOpen(t, g, SessionOptions{TotalBudget: 1, Rand: generate.NewRand(77)})
		resps := s.Do(context.Background(), reqs)
		vals := make([]float64, len(resps))
		for i, r := range resps {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
			vals[i] = r.Result.Value
		}
		return vals
	}
	first := run()
	second := run()

	seq := mustOpen(t, g, SessionOptions{TotalBudget: 1, Rand: generate.NewRand(77)})
	for i, r := range reqs {
		q := QueryOptions{Epsilon: r.Epsilon, Mode: r.Mode}
		var want core.Result
		var err error
		if r.Op == OpSpanningForestSize {
			want, err = seq.SpanningForestSize(context.Background(), q)
		} else {
			want, err = seq.ComponentCount(context.Background(), q)
		}
		if err != nil {
			t.Fatalf("sequential request %d: %v", i, err)
		}
		if first[i] != second[i] || first[i] != want.Value {
			t.Fatalf("request %d not deterministic: batch runs %v / %v, sequential %v",
				i, first[i], second[i], want.Value)
		}
	}
}

// TestConcurrentColdOpensPlanOnce races many cold Opens of the same graph
// against one shared cache: the single-flight layer must let exactly one of
// them build the plan while the rest coalesce onto it, and every session
// must serve identical seeded releases.
func TestConcurrentColdOpensPlanOnce(t *testing.T) {
	g := testGraph(t)
	cache := core.NewPlanCache(4)
	ctx := context.Background()

	const openers = 12
	sessions := make([]*Session, openers)
	errs := make([]error, openers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < openers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sessions[i], errs[i] = Open(ctx, g, SessionOptions{TotalBudget: 10, Cache: cache})
		}(i)
	}
	close(start)
	wg.Wait()

	plansBuilt := 0
	for i, s := range sessions {
		if errs[i] != nil {
			t.Fatalf("open %d: %v", i, errs[i])
		}
		plansBuilt += s.Stats().PlansBuilt
	}
	if plansBuilt != 1 {
		t.Fatalf("%d plans built across %d concurrent cold opens, want 1", plansBuilt, openers)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats %+v, want exactly one miss and one entry", st)
	}
	// All sessions share the evaluation: identical seeded releases.
	want, err := sessions[0].ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < openers; i++ {
		got, err := sessions[i].ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Fatalf("session %d released %v, session 0 released %v", i, got.Value, want.Value)
		}
	}
}

// TestAdvancedAccountantAdmitsMore: the same graph and ε_total admit many
// more small queries under the advanced-composition accountant than under
// sequential composition, and seeded releases are identical between the
// two — the accountant changes admission, never values.
func TestAdvancedAccountantAdmitsMore(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()
	cache := core.NewPlanCache(2)
	const eps = 0.01

	count := func(s *Session) int {
		n := 0
		for {
			if _, err := s.ComponentCount(ctx, QueryOptions{Epsilon: eps, Seed: uint64(n + 1)}); err != nil {
				if !errors.Is(err, ErrBudgetExhausted) {
					t.Fatal(err)
				}
				return n
			}
			n++
			if n > 100000 {
				t.Fatal("session admitted unboundedly many queries")
			}
		}
	}
	seq := mustOpen(t, g, SessionOptions{TotalBudget: 2, Cache: cache})
	adv := mustOpen(t, g, SessionOptions{TotalBudget: 2, Composition: privacy.Advanced, Delta: 1e-9, Cache: cache})

	// Seeded releases agree before exhaustion: same plan, same noise path.
	// (The probe stays at the small query ε: a single large query would
	// dominate the advanced bound's Σε² term and mask the admission win.)
	w, err := seq.SpanningForestSize(ctx, QueryOptions{Epsilon: eps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := adv.SpanningForestSize(ctx, QueryOptions{Epsilon: eps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(w.Value) != math.Float64bits(got.Value) {
		t.Fatalf("accountants changed the release: %v vs %v", w.Value, got.Value)
	}

	nSeq, nAdv := count(seq), count(adv)
	if nAdv <= nSeq {
		t.Fatalf("advanced admitted %d queries, sequential %d; want strictly more", nAdv, nSeq)
	}

	st := adv.Stats()
	if st.Accountant != "advanced" || st.Delta != 1e-9 {
		t.Fatalf("stats identify accountant %q δ=%v, want advanced δ=1e-9", st.Accountant, st.Delta)
	}
	if st.Spent > st.TotalBudget {
		t.Fatalf("advanced session overspent: %v > %v", st.Spent, st.TotalBudget)
	}
	if seqSt := seq.Stats(); seqSt.Accountant != "sequential" || seqSt.Delta != 0 {
		t.Fatalf("stats identify accountant %q δ=%v, want sequential δ=0", seqSt.Accountant, seqSt.Delta)
	}
}

// TestSessionOptionsAccountantInjection: a caller-provided ledger is used
// directly (shared across sessions), and is exclusive with the built-in
// selector fields.
func TestSessionOptionsAccountantInjection(t *testing.T) {
	g := testGraph(t)
	cache := core.NewPlanCache(2)
	acct, err := privacy.NewSequential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	a := mustOpen(t, g, SessionOptions{Accountant: acct, Cache: cache})
	b := mustOpen(t, g, SessionOptions{Accountant: acct, Cache: cache})
	ctx := context.Background()
	if _, err := a.ComponentCount(ctx, QueryOptions{Epsilon: 0.3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// The ledger is shared: b's query must see a's spend.
	if _, err := b.ComponentCount(ctx, QueryOptions{Epsilon: 0.3, Seed: 2}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("shared accountant not enforced across sessions: err = %v", err)
	}

	for _, bad := range []SessionOptions{
		{Accountant: acct, TotalBudget: 1},
		{Accountant: acct, Delta: 1e-9},
		{Accountant: acct, Composition: privacy.Advanced},
		{TotalBudget: 1, Delta: 1e-9},                   // delta without advanced
		{TotalBudget: 1, Composition: privacy.Advanced}, // advanced without delta
	} {
		if _, err := Open(ctx, g, bad); err == nil {
			t.Errorf("SessionOptions %+v accepted, want error", bad)
		}
	}
}
