package serve

// Fault and cancellation tests for the budget ledger: a query canceled
// after admission must refund exactly its reservation, and a concurrent
// storm of queries, cancellations, and injected reservation failures must
// leave the ledger balancing charges − refunds = ε × successful releases
// exactly — no stranded spend, no double refund.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodedp/internal/fault"
	"nodedp/internal/privacy"
)

// cancelOnReserve admits the reservation and then cancels the query's
// context, forcing the canceled-after-admission path deterministically:
// the query is charged, the release path observes the dead context before
// drawing noise, and the session must refund the full reservation.
type cancelOnReserve struct {
	privacy.Accountant
	cancel context.CancelFunc
	once   sync.Once
}

func (a *cancelOnReserve) Reserve(eps float64) error {
	if err := a.Accountant.Reserve(eps); err != nil {
		return err
	}
	a.once.Do(a.cancel)
	return nil
}

func TestCancelAfterAdmissionRefundsExactly(t *testing.T) {
	base, err := privacy.New(privacy.Sequential, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acct := &cancelOnReserve{Accountant: base, cancel: cancel}

	s := mustOpen(t, testGraph(t), SessionOptions{Accountant: acct})
	if _, err := s.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1 (the cancellation struck after admission)", st.Admitted)
	}
	if base.Spent() != 0 {
		t.Fatalf("spent = %v after refund, want 0", base.Spent())
	}
	// The ledger is intact: a follow-up query on a live context succeeds
	// and charges normally.
	if _, err := s.ComponentCount(context.Background(), QueryOptions{Epsilon: 0.5, Seed: 3}); err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	if base.Spent() != 0.5 {
		t.Fatalf("spent = %v, want 0.5", base.Spent())
	}
}

// TestQueryStormBalancesLedgerExactly races queries, mid-flight
// cancellations, and injected reservation failures against one shared
// ledger and requires exact balance: spent == ε × successful releases.
// ε is a power of two so the sum is exact in float64. Run under -race
// this doubles as the session-teardown race test: the ledger outlives the
// sessions and must never strand a reservation.
func TestQueryStormBalancesLedgerExactly(t *testing.T) {
	defer fault.Reset()
	base, err := privacy.New(privacy.Sequential, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	s := mustOpen(t, g, SessionOptions{Accountant: base})

	// Injected reservation failures: those queries are rejected and must
	// spend nothing. Seeded, so the schedule replays identically.
	if err := fault.Arm("privacy.reserve=prob:0.3:99"); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		perWkr  = 10
		eps     = 0.25
	)
	var successes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWkr; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%3 == 1 {
					// Cancel mid-flight from a racing goroutine: the query
					// either completes (charged) or observes the dead
					// context (refunded); both must balance.
					go cancel()
				}
				_, err := s.ComponentCount(ctx, QueryOptions{
					Epsilon: eps, Seed: uint64(w*perWkr + i + 1),
				})
				if err == nil {
					successes.Add(1)
				} else if !errors.Is(err, context.Canceled) && !errors.Is(err, fault.ErrInjected) {
					t.Errorf("worker %d query %d: unexpected error %v", w, i, err)
				}
				cancel()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("query storm wedged")
	}

	want := eps * float64(successes.Load())
	if got := base.Spent(); got != want {
		t.Fatalf("ledger spent %v, want exactly %v (%d successes × ε=%v)",
			got, want, successes.Load(), eps)
	}
}
