package serve

// Property tests for the live-graph mutation keystone: after any
// ApplyDelta, the session must be indistinguishable — bit-for-bit, in
// released values AND in deterministic work counters — from a session
// cold-opened on the already-mutated graph, across the full option matrix
// (SepWorkers × warm-start × incremental engine), through both the
// component-assembled plan-cache path and the cache-less monolithic path,
// and across component merges and splits.

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/forestlp"
	"nodedp/internal/graph"
)

// mutate returns a fresh graph: base minus removes plus adds.
func mutate(t *testing.T, base *graph.Graph, adds, removes []graph.Edge) *graph.Graph {
	t.Helper()
	drop := make(map[graph.Edge]bool, len(removes))
	for _, e := range removes {
		drop[graph.NewEdge(e.U, e.V)] = true
	}
	var edges []graph.Edge
	for _, e := range base.Edges() {
		if !drop[e] {
			edges = append(edges, e)
		}
	}
	edges = append(edges, adds...)
	g, err := graph.FromEdges(base.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// statsEqual compares two work-counter sets, ignoring the wall-clock
// shard diagnostics (the only nondeterministic field; disabled here
// anyway, but it makes the struct non-comparable).
func statsEqual(a, b forestlp.Stats) bool {
	a.Shards, b.Shards = nil, nil
	return reflect.DeepEqual(a, b)
}

// bitEqualResults fails unless two releases agree in every float bit and
// every work counter.
func bitEqualResults(t *testing.T, label string, live, cold core.Result) {
	t.Helper()
	for _, f := range []struct {
		name string
		x, y float64
	}{
		{"Value", live.Value, cold.Value},
		{"Delta", live.Delta, cold.Delta},
		{"FDelta", live.FDelta, cold.FDelta},
		{"NoiseScale", live.NoiseScale, cold.NoiseScale},
		{"NHat", live.NHat, cold.NHat},
	} {
		if math.Float64bits(f.x) != math.Float64bits(f.y) {
			t.Errorf("%s: %s: delta-open %v (%016x) != cold-open %v (%016x)",
				label, f.name, f.x, math.Float64bits(f.x), f.y, math.Float64bits(f.y))
		}
	}
	if !reflect.DeepEqual(live.Evaluations, cold.Evaluations) {
		t.Errorf("%s: per-Δ evaluations diverge:\n delta-open: %+v\n cold-open:  %+v", label, live.Evaluations, cold.Evaluations)
	}
	if !statsEqual(live.Stats, cold.Stats) {
		t.Errorf("%s: work counters diverge:\n delta-open: %+v\n cold-open:  %+v", label, live.Stats, cold.Stats)
	}
}

// assertMatchesColdOpen cross-checks the mutated session against cold
// opens of want — one planning through a fresh plan cache (component
// assembly), one with no cache at all (monolithic evaluation) — and
// compares fingerprints, plan-level work counters, and seeded releases of
// every query type.
func assertMatchesColdOpen(t *testing.T, live *Session, want *graph.Graph, fl forestlp.Options) {
	t.Helper()
	ctx := context.Background()
	liveGE := live.snap.Load().ge

	for _, variant := range []struct {
		name  string
		cache *core.PlanCache
	}{
		{"cold-cached", core.NewPlanCache(8)},
		{"cold-monolithic", nil},
	} {
		cold := mustOpen(t, want, SessionOptions{TotalBudget: 100, Cache: variant.cache, ForestLP: fl})
		coldGE := cold.snap.Load().ge
		if liveGE.Fingerprint() != coldGE.Fingerprint() {
			t.Fatalf("%s: fingerprint %v != %v", variant.name, liveGE.Fingerprint(), coldGE.Fingerprint())
		}
		if !statsEqual(liveGE.Stats(), coldGE.Stats()) {
			t.Errorf("%s: plan work counters diverge:\n delta-open: %+v\n cold-open:  %+v",
				variant.name, liveGE.Stats(), coldGE.Stats())
		}
		if math.Float64bits(liveGE.SpanningForestSize()) != math.Float64bits(coldGE.SpanningForestSize()) {
			t.Errorf("%s: f_sf %v != %v", variant.name, liveGE.SpanningForestSize(), coldGE.SpanningForestSize())
		}

		for seed := uint64(21); seed <= 22; seed++ {
			type queryFn func(s *Session) (core.Result, error)
			for name, run := range map[string]queryFn{
				"cc": func(s *Session) (core.Result, error) {
					return s.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: seed})
				},
				"cc-known-n": func(s *Session) (core.Result, error) {
					return s.ComponentCount(ctx, QueryOptions{Epsilon: 0.25, Mode: KnownN, Seed: seed})
				},
				"sf": func(s *Session) (core.Result, error) {
					return s.SpanningForestSize(ctx, QueryOptions{Epsilon: 0.25, Seed: seed})
				},
			} {
				lr, err := run(live)
				if err != nil {
					t.Fatalf("%s/%s seed %d on mutated session: %v", variant.name, name, seed, err)
				}
				cr, err := run(cold)
				if err != nil {
					t.Fatalf("%s/%s seed %d on cold session: %v", variant.name, name, seed, err)
				}
				bitEqualResults(t, fmt.Sprintf("%s/%s seed %d", variant.name, name, seed), lr, cr)
			}
		}
	}
}

// TestDeltaOpenBitIdenticalToColdOpen drives one merge delta and one split
// delta through every (SepWorkers, warm-start, incremental) combination.
// The planted blocks 0-7, 8-15, 16-23 are edge-disjoint, so edge {0, 8}
// is a guaranteed bridge: adding it merges two components, removing it
// again splits them.
func TestDeltaOpenBitIdenticalToColdOpen(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()
	bridge := graph.NewEdge(0, 8)
	dropped := g.Edges()[0] // an intra-block edge to remove alongside the merge

	for _, sep := range []int{1, 8} {
		for _, noWarm := range []bool{false, true} {
			for _, noIncr := range []bool{false, true} {
				fl := forestlp.Options{SepWorkers: sep, DisableWarmStart: noWarm, DisableIncremental: noIncr}
				t.Run(fmt.Sprintf("sep=%d,nowarm=%v,noincr=%v", sep, noWarm, noIncr), func(t *testing.T) {
					cache := core.NewPlanCache(8)
					live := mustOpen(t, g, SessionOptions{TotalBudget: 1000, Cache: cache, ForestLP: fl})

					// Delta 1: merge blocks 0 and 1 via the bridge, and
					// drop one intra-block edge in the same mutation.
					res, err := live.ApplyDelta(ctx, []graph.Edge{bridge}, []graph.Edge{dropped})
					if err != nil {
						t.Fatal(err)
					}
					if res.Added != 1 || res.Removed != 1 || res.NoOp {
						t.Fatalf("merge delta result %+v", res)
					}
					if res.MergedGroups != 1 {
						t.Errorf("MergedGroups = %d, want 1 (bridge joins two components)", res.MergedGroups)
					}
					g1 := mutate(t, g, []graph.Edge{bridge}, []graph.Edge{dropped})
					assertMatchesColdOpen(t, live, g1, fl)

					// Delta 2: remove the bridge — the only edge between
					// the two block vertex sets — forcing a split.
					res, err = live.ApplyDelta(ctx, nil, []graph.Edge{bridge})
					if err != nil {
						t.Fatal(err)
					}
					if res.Removed != 1 {
						t.Fatalf("split delta result %+v", res)
					}
					if res.Components != res.PreComponents+1 {
						t.Errorf("split: components %d → %d, want an increase of exactly 1",
							res.PreComponents, res.Components)
					}
					g2 := mutate(t, g1, nil, []graph.Edge{bridge})
					assertMatchesColdOpen(t, live, g2, fl)

					// Sanity on the keystone's mechanism: the second delta
					// returned to components the sub-plan layer has already
					// planned, so at least one component must have been a
					// sub-plan hit.
					if st := cache.Stats(); st.SubPlanHits == 0 {
						t.Errorf("no sub-plan reuse across two deltas: %+v", st)
					}
				})
			}
		}
	}
}
