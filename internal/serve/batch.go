package serve

// This file implements the batch request/response layer: many queries with
// individual ε/mode/seed are admitted against the accountant in request
// order — so admission is deterministic regardless of scheduling — and then
// executed concurrently on the session's single prepared plan.

import (
	"context"
	"fmt"
	"sync"

	"nodedp/internal/core"
	"nodedp/internal/obs"
)

// Request is one query of a batch.
type Request struct {
	// Op selects the estimate (component count or spanning-forest size).
	Op Op
	// Epsilon, Mode, and Seed carry QueryOptions semantics.
	Epsilon float64
	Mode    Mode
	Seed    uint64
}

// Response is the outcome of one batch request, at the same index.
//
//detlint:allow wireleak — in-process API type, never marshalled: the network layer (internal/httpapi) maps it to BatchItem, which carries only the noised release fields, and the wire sinks remain guarded
type Response struct {
	Result core.Result
	// Err is non-nil when the request was rejected (validation or
	// ErrBudgetExhausted) or canceled; the Result is then meaningless.
	Err error
}

// Do serves a batch of queries against the session's one prepared plan.
// Budget admission happens in request order before anything executes: each
// request is debited in turn, and one that no longer fits fails with
// ErrBudgetExhausted without spending — for uniform epsilons that is
// exactly the affordable prefix.
//
// Execution is deterministic in request order: seeded requests draw from
// their own PRNGs and run concurrently, while unseeded requests on a
// session with a caller-provided Rand — which must serialize on that PRNG
// anyway — run sequentially by request index. A batch's releases are
// therefore bit-for-bit the releases of the same requests issued
// sequentially, including for a fully seeded-session batch.
func (s *Session) Do(ctx context.Context, reqs []Request) []Response {
	resps := make([]Response, len(reqs))

	// Audit attribution: batch item i is logged as "<request-id>#<i>", so
	// each admission, charge, and refund is individually attributable while
	// staying deterministic across identically-seeded runs. The admission
	// span mirrors Session.query's "serve.admit".
	info := obs.RequestInfoFrom(ctx)
	itemID := func(i int) string {
		if s.audit == nil {
			return ""
		}
		return fmt.Sprintf("%s#%d", info.RequestID, i)
	}
	admit, ctx := obs.StartSpan(ctx, "serve.admit")

	// Phase 1: deterministic admission, in request order.
	admitted := make([]bool, len(reqs))
	nAdmitted := 0
	for i, r := range reqs {
		s.queries.Add(1)
		q := QueryOptions{Epsilon: r.Epsilon, Mode: r.Mode, Seed: r.Seed}
		if err := s.validate(r.Op, q); err != nil {
			s.rejected.Add(1)
			resps[i].Err = err
			continue
		}
		if err := ctx.Err(); err != nil {
			s.rejected.Add(1)
			resps[i].Err = err
			continue
		}
		if err := s.reserveAudited(info, itemID(i), r.Epsilon); err != nil {
			s.rejected.Add(1)
			resps[i].Err = err
			continue
		}
		s.admitted.Add(1)
		admitted[i] = true
		nAdmitted++
	}
	admit.SetCounter("admitted", int64(nAdmitted))
	admit.SetCounter("batch_size", int64(len(reqs)))
	admit.End()
	exec, ctx := obs.StartSpan(ctx, "serve.execute")
	defer exec.End()

	// Phase 2: execution. Each request is GEM + Laplace on the shared
	// immutable plan — microseconds — so one goroutine per independent
	// request is cheap. Ledger finalization (refund or charge) is NOT done
	// here: concurrent items would interleave audit records
	// nondeterministically, so it runs in a serial pass below.
	runOne := func(i int) {
		r := reqs[i]
		q := QueryOptions{Epsilon: r.Epsilon, Mode: r.Mode, Seed: r.Seed}
		res, err := s.execute(ctx, r.Op, q)
		resps[i] = Response{Result: res, Err: err}
	}
	var wg sync.WaitGroup
	var shared []int // requests drawing from the shared session PRNG
	for i := range reqs {
		if !admitted[i] {
			continue
		}
		if reqs[i].Seed == 0 && s.rand != nil {
			shared = append(shared, i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runOne(i)
		}(i)
	}
	// Shared-PRNG requests consume a common random stream; running them in
	// request order (they could only serialize on randMu anyway) keeps a
	// seeded session's batch output reproducible.
	for _, i := range shared {
		runOne(i)
	}
	wg.Wait()

	// Phase 3: ledger finalization in request order. A canceled item
	// provably drew no noise and refunds its reservation; everything else
	// keeps it (success, or an error past the point of refund). Running this
	// serially after the barrier makes the audit log's event order — and
	// every recorded balance — deterministic for identically-seeded runs,
	// which the byte-identity conformance tests check literally.
	for i := range reqs {
		if !admitted[i] {
			continue
		}
		switch err := resps[i].Err; {
		case err != nil && errIsCancel(err):
			s.refundAudited(info, itemID(i), reqs[i].Epsilon) // no noise drawn; see Session.query
		default:
			s.chargeAudited(info, itemID(i), reqs[i].Epsilon, err)
		}
	}
	return resps
}
