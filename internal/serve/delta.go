package serve

// This file implements live-graph mutation: Session.ApplyDelta edits the
// served graph in place — edge additions and removals — and re-plans it
// through the component-keyed sub-plan layer of the plan cache, so a delta
// touching one component re-evaluates one component while every untouched
// component's grid values are reused verbatim. The keystone contract is
// bit-identity: the post-delta session releases exactly what a session
// cold-opened on the mutated graph would release — same grid values, same
// work counters, same fingerprint — because both paths assemble their
// evaluation from the same per-component sub-plans in internal/core.
//
// Concurrency: deltas are serialized by a mutation mutex, and the served
// state (grid evaluation + CSR) is swapped as one atomic snapshot only
// after the new evaluation fully succeeds. A query racing a delta
// therefore sees the pre-delta or the post-delta graph, never a torn
// mixture, and a failed delta — validation error, injected fault,
// cancelation, evaluation error — leaves the session exactly as it was.
//
// Accounting: a delta spends no privacy budget (it changes the database,
// not the released information), but it is a ledger-relevant event: the
// audit stream records one "delta" line with the unchanged balance, under
// the same lock that orders reserve/refund/charge records, so `ccdp audit`
// replay still reconciles every spent value bit-for-bit. The audit scope
// stays pinned to the open-time fingerprint: one session, one contiguous
// stream, even as the served fingerprint advances.

import (
	"context"
	"fmt"

	"nodedp/internal/core"
	"nodedp/internal/fault"
	"nodedp/internal/graph"
	"nodedp/internal/obs"
	"nodedp/internal/unionfind"
)

// DeltaResult reports what one ApplyDelta did.
type DeltaResult struct {
	// Added and Removed count the edges actually inserted and deleted.
	// Deltas have idempotent set semantics: an addition already present
	// and a removal already absent are silent no-ops and do not count.
	Added, Removed int
	// NoOp reports that the delta changed nothing — the fingerprint is
	// unchanged and no re-planning happened.
	NoOp bool
	// Fingerprint is the canonical fingerprint of the post-delta graph.
	Fingerprint graph.Fingerprint
	// PreComponents and Components count connected components before and
	// after the delta.
	PreComponents, Components int
	// MergedGroups counts the union-find merges the applied additions
	// performed over pre-delta components: two components joining into one
	// is 1, three into one is 2. Zero when additions stayed within
	// components.
	MergedGroups int
	// TouchedComponents counts post-delta components containing an
	// endpoint of an applied edge — the components whose sub-plans could
	// not be reused. Splits are visible as Components growing while
	// TouchedComponents stays small.
	TouchedComponents int
	// PlanCacheHit reports the whole post-delta evaluation was already
	// cached (e.g. a delta returning to a previously served graph).
	PlanCacheHit bool
	// SubPlanHits and SubPlanMisses are the component-level cache counters
	// observed across this delta's re-planning: hits are components reused
	// verbatim, misses are components re-evaluated. Best-effort under a
	// plan cache shared with concurrently planning sessions.
	SubPlanHits, SubPlanMisses int64
}

// ApplyDelta mutates the served graph — inserting adds, deleting removes —
// and re-plans it, atomically swapping the serving snapshot on success.
// Inputs are canonicalized like every other edge-list ingress
// (graph.Canonicalize): endpoints normalized, self-loops dropped,
// duplicates collapsed; an edge listed in both adds and removes is
// rejected. The vertex set is fixed at Open — endpoints must be in
// [0, N()).
//
// Semantics are idempotent set operations: adds ensure presence, removes
// ensure absence, and a delta that changes nothing short-circuits without
// re-planning (NoOp). On any error the served graph, the plan, and the
// budget ledger are unchanged; deltas never spend ε. Concurrent queries
// are answered from the pre-delta snapshot until the swap and the
// post-delta snapshot after it. Multiple ApplyDelta calls serialize.
//
// The post-delta session is bit-identical to a cold open of the mutated
// graph under the same options: with a plan cache both assemble the same
// per-component sub-plans; without one both evaluate monolithically.
func (s *Session) ApplyDelta(ctx context.Context, adds, removes []graph.Edge) (res DeltaResult, err error) {
	info := obs.RequestInfoFrom(ctx)
	sp, ctx := obs.StartSpan(ctx, "serve.delta")
	defer func() {
		if sp != nil {
			if err != nil {
				sp.SetLabel("outcome", "error")
			} else {
				sp.SetCounter("added", int64(res.Added))
				sp.SetCounter("removed", int64(res.Removed))
				sp.SetCounter("components", int64(res.Components))
				sp.SetCounter("touched_components", int64(res.TouchedComponents))
				sp.SetCounter("subplan_hits", res.SubPlanHits)
			}
			sp.End()
		}
	}()

	s.mutMu.Lock()
	defer s.mutMu.Unlock()

	cur := s.snap.Load()
	n := cur.csr.N()
	cadds, err := graph.Canonicalize(n, adds)
	if err != nil {
		s.deltasRejected.Add(1)
		s.auditDelta(info, obs.AuditRejected)
		return DeltaResult{}, fmt.Errorf("serve: delta adds: %w", err)
	}
	cremoves, err := graph.Canonicalize(n, removes)
	if err != nil {
		s.deltasRejected.Add(1)
		s.auditDelta(info, obs.AuditRejected)
		return DeltaResult{}, fmt.Errorf("serve: delta removes: %w", err)
	}
	// Both lists are sorted and deduplicated: a two-pointer scan finds any
	// edge requested both ways, which has no coherent set semantics.
	for i, j := 0, 0; i < len(cadds) && j < len(cremoves); {
		switch {
		case cadds[i] == cremoves[j]:
			s.deltasRejected.Add(1)
			s.auditDelta(info, obs.AuditRejected)
			return DeltaResult{}, fmt.Errorf("serve: edge %v in both adds and removes", cadds[i])
		case cadds[i].U < cremoves[j].U || (cadds[i].U == cremoves[j].U && cadds[i].V < cremoves[j].V):
			i++
		default:
			j++
		}
	}

	// Materialize the mutable twin lazily: sessions that never mutate pay
	// nothing beyond the CSR snapshot they already hold.
	if s.live == nil {
		s.live = cur.csr.Graph()
	}

	var appliedAdds, appliedRemoves []graph.Edge
	for _, e := range cadds {
		inserted, aerr := s.live.EnsureEdge(e.U, e.V)
		if aerr != nil { // unreachable after Canonicalize; belt and braces
			err = aerr
			break
		}
		if inserted {
			appliedAdds = append(appliedAdds, e)
		}
	}
	if err == nil {
		for _, e := range cremoves {
			if s.live.RemoveEdge(e.U, e.V) {
				appliedRemoves = append(appliedRemoves, e)
			}
		}
	}
	// rollback undoes the applied mutations exactly: the fingerprint lane
	// sums are wrapping additions, so re-adding and re-removing restores
	// them bit-for-bit.
	rollback := func() {
		for _, e := range appliedRemoves {
			if aerr := s.live.AddEdge(e.U, e.V); aerr != nil {
				panic(fmt.Sprintf("serve: delta rollback: %v", aerr))
			}
		}
		for _, e := range appliedAdds {
			if !s.live.RemoveEdge(e.U, e.V) {
				panic(fmt.Sprintf("serve: delta rollback: edge %v vanished", e))
			}
		}
	}
	if err != nil {
		rollback()
		s.deltasRejected.Add(1)
		s.auditDelta(info, obs.AuditError)
		return DeltaResult{}, fmt.Errorf("serve: delta: %w", err)
	}

	preCount := cur.ge.Stats().Components
	if len(appliedAdds) == 0 && len(appliedRemoves) == 0 {
		// Idempotent no-op: the graph — and so the fingerprint, the plan,
		// and every future release — is unchanged. Still a committed,
		// audited delta.
		s.deltas.Add(1)
		s.auditDelta(info, obs.AuditOK)
		return DeltaResult{
			NoOp:          true,
			Fingerprint:   cur.ge.Fingerprint(),
			PreComponents: preCount,
			Components:    preCount,
		}, nil
	}

	// Failpoint at the fingerprint-update boundary: the live graph has new
	// lane sums but nothing is swapped yet. A firing site must leave the
	// session serving the pre-delta snapshot with the mutation fully
	// rolled back.
	if err = fault.Hit("serve.delta.fp"); err != nil {
		rollback()
		s.deltasRejected.Add(1)
		s.auditDelta(info, obs.AuditError)
		return DeltaResult{}, err
	}
	if err = ctx.Err(); err != nil {
		rollback()
		s.deltasRejected.Add(1)
		s.auditDelta(info, obs.AuditError)
		return DeltaResult{}, err
	}

	probe := core.Options{
		Beta:                s.beta,
		DeltaMax:            s.deltaMax,
		CountBudgetFraction: s.countFrac,
		DiscreteRelease:     s.discrete,
		ForestLP:            s.forestLP,
	}
	var (
		ge  *core.GridEval
		hit bool
	)
	if s.cache != nil {
		before := s.cache.Stats()
		ge, hit, err = s.cache.GridEval(ctx, s.live, probe)
		if err == nil {
			after := s.cache.Stats()
			res.SubPlanHits = after.SubPlanHits - before.SubPlanHits
			res.SubPlanMisses = after.SubPlanMisses - before.SubPlanMisses
		}
	} else {
		ge, err = core.EvaluateGrid(ctx, s.live, probe)
	}
	if err != nil {
		rollback()
		s.deltasRejected.Add(1)
		s.auditDelta(info, obs.AuditError)
		return DeltaResult{}, err
	}

	// Component bookkeeping: union-find over pre-delta component labels
	// counts the merges the additions performed; post-delta labels locate
	// the touched components. Both passes run on immutable CSR snapshots.
	preLabels, preLabelCount := cur.csr.Components()
	dsu := unionfind.New(preLabelCount)
	merged := 0
	for _, e := range appliedAdds {
		if dsu.Union(preLabels[e.U], preLabels[e.V]) {
			merged++
		}
	}
	newCSR := graph.NewCSR(s.live)
	postLabels, postCount := newCSR.Components()
	touched := make(map[int]struct{}, 2*(len(appliedAdds)+len(appliedRemoves)))
	for _, e := range appliedAdds {
		touched[postLabels[e.U]] = struct{}{}
		touched[postLabels[e.V]] = struct{}{}
	}
	for _, e := range appliedRemoves {
		touched[postLabels[e.U]] = struct{}{}
		touched[postLabels[e.V]] = struct{}{}
	}

	// Commit: one atomic swap. In-flight queries holding the old snapshot
	// finish against it; new queries see the post-delta state.
	s.snap.Store(&snapshot{ge: ge, csr: newCSR, built: !hit})
	if !hit {
		s.plansBuilt.Add(1)
	}
	s.deltas.Add(1)
	s.auditDelta(info, obs.AuditOK)

	res.Added = len(appliedAdds)
	res.Removed = len(appliedRemoves)
	res.Fingerprint = ge.Fingerprint()
	res.PreComponents = preCount
	res.Components = postCount
	res.MergedGroups = merged
	res.TouchedComponents = len(touched)
	res.PlanCacheHit = hit
	return res, nil
}

// auditDelta records one graph-mutation event with the unchanged ledger
// balance; reconciliation verifies exactly that the balance did not move.
func (s *Session) auditDelta(info obs.RequestInfo, outcome string) {
	if s.audit == nil {
		return
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	s.audit.Record(obs.AuditEvent{
		Tenant:    info.Tenant,
		RequestID: info.RequestID,
		Scope:     s.scope,
		Op:        obs.AuditDelta,
		Outcome:   outcome,
		Mode:      s.acct.Name(),
		Spent:     s.acct.Spent(),
	})
}
