// Package serve implements the session-oriented serving layer over
// Algorithm 1: a long-lived Session snapshots a sensitive graph once — CSR,
// shard plan, and the full Δ-grid of Lipschitz-extension evaluations, via
// internal/core's grid evaluation and optionally a fingerprint-keyed
// PlanCache — and then answers many private queries against it, each
// debiting a thread-safe sequential-composition budget accountant.
//
// The split mirrors the structure of the mechanism itself: the grid
// evaluation is deterministic and data-dependent but not released, so it
// may be computed once and shared; every query pays only GEM selection plus
// Laplace noise (microseconds) and its own ε against a pluggable
// composition accountant (internal/privacy) — sequential composition
// (Lemma 2.4) by default, or (ε, δ) advanced composition, which admits many
// more small queries at equal ε_total. A query that would overdraw the
// session budget fails with ErrBudgetExhausted before any noise is drawn,
// spending nothing.
//
// Determinism contract: a query with an explicit Seed releases bit-for-bit
// the value the equivalent one-shot nodedp.Estimate*Ctx call with
// Rand = NewRand(seed) would have released on the same graph and options —
// enforced by routing both through the same core release path — and a batch
// served by Do equals the same queries issued sequentially.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"nodedp/internal/core"
	"nodedp/internal/dpnoise"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/obs"
	"nodedp/internal/privacy"
)

// ErrBudgetExhausted is returned (wrapped, with the requested and remaining
// budgets) by queries that would overdraw the session's total privacy
// budget. The failing query spends nothing; test with
// errors.Is(err, ErrBudgetExhausted).
var ErrBudgetExhausted = privacy.ErrBudgetExhausted

// Mode selects how a component-count query treats the vertex count.
type Mode int

const (
	// PrivateN (the default) buys a private vertex count out of the query's
	// ε, as EstimateComponentCount does.
	PrivateN Mode = iota
	// KnownN treats the vertex count as public and spends the whole query ε
	// on the spanning-forest estimate, as EstimateComponentCountKnownN does.
	KnownN
)

func (m Mode) String() string {
	switch m {
	case PrivateN:
		return "private-n"
	case KnownN:
		return "known-n"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Op selects what a batch request estimates.
type Op int

const (
	// OpComponentCount estimates f_cc (honoring the request Mode).
	OpComponentCount Op = iota
	// OpSpanningForestSize estimates f_sf.
	OpSpanningForestSize
)

func (o Op) String() string {
	switch o {
	case OpComponentCount:
		return "cc"
	case OpSpanningForestSize:
		return "sf"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// SessionOptions configures Open. TotalBudget is required; everything else
// defaults exactly as the one-shot estimators do (crypto noise,
// β = 1/ln ln n, Δmax = n, count share 0.2).
type SessionOptions struct {
	// TotalBudget is ε_total, the hard cap on the session's global privacy
	// loss as measured by the selected composition accountant. Required
	// unless Accountant is set.
	TotalBudget float64
	// Composition selects the budget accountant: privacy.Sequential (the
	// zero value — pure-ε sequential composition, Lemma 2.4) or
	// privacy.Advanced ((ε, δ) advanced composition, which admits many more
	// small queries at the same ε_total; Delta is then required).
	Composition privacy.Composition
	// Delta is the failure probability δ of the advanced-composition
	// accountant; required in (0, 1) when Composition is privacy.Advanced
	// and must be zero otherwise.
	Delta float64
	// Accountant, when non-nil, is used directly and TotalBudget,
	// Composition, and Delta must be zero: the caller owns the composition
	// rule (and may share one ledger across several sessions over the same
	// sensitive graph).
	Accountant privacy.Accountant
	// Beta, DeltaMax, CountBudgetFraction, DiscreteRelease, and ForestLP
	// carry the same meaning (and defaults) as the corresponding
	// core.Options fields and apply to every query of the session.
	Beta                float64
	DeltaMax            float64
	CountBudgetFraction float64
	DiscreteRelease     bool
	ForestLP            forestlp.Options
	// Rand is the noise source for queries without an explicit Seed. If
	// nil, each unseeded query draws from a fresh crypto-backed source.
	// A caller-provided Rand is serialized by the session (queries sharing
	// one PRNG cannot draw concurrently), so seeded or crypto queries
	// parallelize better.
	Rand *rand.Rand
	// Cache, when non-nil, is consulted before planning and populated
	// after: opening a session on a graph whose fingerprint (and
	// plan-relevant options) match a cached evaluation skips the Δ-grid
	// LPs entirely. Multiple sessions may share one cache.
	Cache *core.PlanCache
	// Audit, when non-nil, receives one append-only record per accountant
	// event — session open, and every reserve/charge/refund with request
	// ID, tenant, ε, composition mode, and outcome (see internal/obs's
	// AuditLog). Recording never fails a query; sink errors are latched on
	// the sink. Events are ordered and balance-stamped under one session
	// lock, so `ccdp audit` can replay them and reconcile the spent values
	// exactly.
	Audit obs.AuditSink
}

// QueryOptions configures one private query.
type QueryOptions struct {
	// Epsilon is this query's privacy budget. Required; debited from the
	// session total on admission.
	Epsilon float64
	// Mode applies to component-count queries only (PrivateN by default);
	// a spanning-forest query with Mode set is rejected.
	Mode Mode
	// Seed, when nonzero, makes the release reproducible: the query draws
	// from NewRand(Seed) and equals the one-shot call with the same seed.
	// Reproducible releases are for testing only — they are not private.
	// Zero uses the session's noise source (crypto-grade by default).
	Seed uint64
}

// Stats is a snapshot of a session's serving counters.
type Stats struct {
	// PlansBuilt is how many grid evaluations this session computed: 1 for
	// a cold open plus one per delta the plan cache could not serve whole
	// (component sub-plans may still have cut the work; see
	// DeltaResult.SubPlanHits), 0 for a fully cached history.
	PlansBuilt int
	// CacheHit reports whether Open was served from the plan cache.
	CacheHit bool
	// Queries, Admitted, and Rejected count all queries received, those
	// that passed budget admission, and those refused (budget or
	// validation).
	Queries, Admitted, Rejected int64
	// Deltas counts ApplyDelta calls that committed (including no-ops);
	// DeltasRejected counts attempts refused by validation or failed by
	// evaluation errors, which leave the served graph unchanged.
	Deltas, DeltasRejected int64
	// TotalBudget, Spent, and Remaining describe the accountant's state;
	// under advanced composition Spent is the global privacy loss
	// guaranteed so far (not the raw Σε_i).
	TotalBudget, Spent, Remaining float64
	// Accountant names the composition rule in force ("sequential" or
	// "advanced"); Delta is its failure probability (0 when pure ε).
	Accountant string
	Delta      float64
	// Engine aggregates the extension evaluator's work for the currently
	// served plan (zero when the plan cache supplied it).
	Engine forestlp.Stats
}

// snapshot is one immutable serving state: the grid evaluation queries
// release from and the CSR it was computed on. ApplyDelta swaps the whole
// pair atomically, so a racing query sees the pre-delta or post-delta
// state, never a torn mixture.
type snapshot struct {
	ge  *core.GridEval
	csr *graph.CSR
	// built reports this session computed the evaluation itself (a cache
	// miss); it feeds the PlansBuilt and Engine stats.
	built bool
}

// Session is a long-lived serving handle on one sensitive graph: the
// expensive deterministic half of Algorithm 1 is computed (or fetched from
// the plan cache) once at Open, and every query pays only selection and
// release noise plus its ε. All methods are safe for concurrent use.
type Session struct {
	snap     atomic.Pointer[snapshot]
	cacheHit bool // open-time cache outcome

	// cache is the optional shared plan cache; ApplyDelta re-plans through
	// it so untouched components reuse their sub-plans.
	cache *core.PlanCache

	// mutMu serializes graph mutations (ApplyDelta); live is the mutable
	// twin of the served snapshot, materialized lazily on the first delta
	// and only ever touched under mutMu.
	mutMu sync.Mutex
	live  *graph.Graph

	// Per-session option template; zero fields default per query inside
	// core, which is what keeps seeded queries identical to one-shot calls.
	beta      float64
	deltaMax  float64
	countFrac float64
	discrete  bool
	forestLP  forestlp.Options

	acct privacy.Accountant

	// audit, when non-nil, receives every accountant event; auditMu orders
	// accountant mutations and their balance-stamped records identically
	// (see audit.go). scope is the served graph's fingerprint, the
	// privacy-unit identity audit events are keyed by.
	audit   obs.AuditSink
	auditMu sync.Mutex
	scope   string

	// rand is the shared unseeded noise source (nil = fresh crypto source
	// per query); randMu serializes draws from it.
	rand   *rand.Rand
	randMu sync.Mutex

	queries        atomic.Int64
	admitted       atomic.Int64
	rejected       atomic.Int64
	deltas         atomic.Int64
	deltasRejected atomic.Int64
	plansBuilt     atomic.Int64
}

// Open snapshots g and prepares it for serving: CSR snapshot, component
// shard plan, and the full Δ-grid of extension evaluations, reused for
// every subsequent query. With a Cache whose fingerprint-keyed lookup hits,
// planning is skipped entirely. Open spends no privacy budget; a canceled
// ctx aborts the evaluation promptly with ctx.Err().
//
// Mutating g after Open does not affect the session (it serves the
// snapshot); it does change g's fingerprint, so a later Open sees the new
// graph. Use Cache.Invalidate to reclaim stale cached plans.
func Open(ctx context.Context, g *graph.Graph, opts SessionOptions) (*Session, error) {
	acct := opts.Accountant
	if acct != nil {
		if opts.TotalBudget != 0 || opts.Delta != 0 || opts.Composition != privacy.Sequential {
			return nil, fmt.Errorf("serve: Accountant is exclusive with TotalBudget/Composition/Delta")
		}
	} else {
		var err error
		if acct, err = privacy.New(opts.Composition, opts.TotalBudget, opts.Delta); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	probe := core.Options{
		Beta:                opts.Beta,
		DeltaMax:            opts.DeltaMax,
		CountBudgetFraction: opts.CountBudgetFraction,
		DiscreteRelease:     opts.DiscreteRelease,
		ForestLP:            opts.ForestLP,
	}
	var (
		ge  *core.GridEval
		hit bool
		err error
	)
	if opts.Cache != nil {
		ge, hit, err = opts.Cache.GridEval(ctx, g, probe)
	} else {
		ge, err = core.EvaluateGrid(ctx, g, probe)
	}
	if err != nil {
		return nil, err
	}
	s := &Session{
		cacheHit:  hit,
		cache:     opts.Cache,
		beta:      opts.Beta,
		deltaMax:  opts.DeltaMax,
		countFrac: opts.CountBudgetFraction,
		discrete:  opts.DiscreteRelease,
		forestLP:  opts.ForestLP,
		rand:      opts.Rand,
		acct:      acct,
		audit:     opts.Audit,
		scope:     ge.Fingerprint().String(),
	}
	s.snap.Store(&snapshot{ge: ge, csr: graph.NewCSR(g), built: !hit})
	if !hit {
		s.plansBuilt.Store(1)
	}
	s.auditOpen(obs.RequestInfoFrom(ctx).Tenant)
	return s, nil
}

// ComponentCount releases an ε-node-private estimate of f_cc, debiting
// q.Epsilon from the session budget (ErrBudgetExhausted if it does not
// fit — nothing is spent then). q.Mode selects the vertex-count treatment.
func (s *Session) ComponentCount(ctx context.Context, q QueryOptions) (core.Result, error) {
	return s.query(ctx, OpComponentCount, q)
}

// SpanningForestSize releases an ε-node-private estimate of f_sf, debiting
// q.Epsilon from the session budget.
func (s *Session) SpanningForestSize(ctx context.Context, q QueryOptions) (core.Result, error) {
	return s.query(ctx, OpSpanningForestSize, q)
}

// query validates, admits, and executes one private query. The "serve.admit"
// span covers validation plus budget admission (admitted=1 only when the
// reservation held), "serve.execute" covers the release; both carry no
// timing-derived attributes, and every accountant touch goes through the
// audited helpers in audit.go.
func (s *Session) query(ctx context.Context, op Op, q QueryOptions) (res core.Result, err error) {
	s.queries.Add(1)
	info := obs.RequestInfoFrom(ctx)
	admit, ctx := obs.StartSpan(ctx, "serve.admit")
	admit.SetLabel("op", op.String())
	if err := s.validate(op, q); err != nil {
		s.rejected.Add(1)
		admit.SetCounter("admitted", 0)
		admit.SetLabel("reject", "validate")
		admit.End()
		return core.Result{}, err
	}
	if err := ctx.Err(); err != nil {
		s.rejected.Add(1)
		admit.SetCounter("admitted", 0)
		admit.SetLabel("reject", "canceled")
		admit.End()
		return core.Result{}, err
	}
	if err := s.reserveAudited(info, "", q.Epsilon); err != nil {
		s.rejected.Add(1)
		admit.SetCounter("admitted", 0)
		admit.SetLabel("reject", "budget")
		admit.End()
		return core.Result{}, err
	}
	s.admitted.Add(1)
	admit.SetCounter("admitted", 1)
	admit.End()
	exec, ectx := obs.StartSpan(ctx, "serve.execute")
	res, err = s.execute(ectx, op, q)
	exec.End()
	if err != nil && errIsCancel(err) {
		// The core release path checks ctx exactly once, before any noise
		// is drawn, so a cancelation error means nothing was released and
		// the reservation can be returned.
		s.refundAudited(info, "", q.Epsilon)
		return res, err
	}
	// Any other error keeps the budget spent: noise may already have been
	// drawn, and accounting must stay conservative.
	s.chargeAudited(info, "", q.Epsilon, err)
	return res, err
}

// validate rejects malformed queries before any budget or noise is
// touched. Session-wide options were validated at Open.
func (s *Session) validate(op Op, q QueryOptions) error {
	if q.Epsilon <= 0 || math.IsNaN(q.Epsilon) || math.IsInf(q.Epsilon, 0) {
		return fmt.Errorf("serve: query epsilon %v must be positive and finite", q.Epsilon)
	}
	if op == OpSpanningForestSize && q.Mode != PrivateN {
		return fmt.Errorf("serve: Mode applies only to component-count queries")
	}
	if q.Mode != PrivateN && q.Mode != KnownN {
		return fmt.Errorf("serve: unknown mode %v", q.Mode)
	}
	return nil
}

// execute runs the admitted query's random half on the shared plan.
func (s *Session) execute(ctx context.Context, op Op, q QueryOptions) (core.Result, error) {
	var rng *rand.Rand
	switch {
	case q.Seed != 0:
		rng = generate.NewRand(q.Seed)
	case s.rand != nil:
		// A shared PRNG is stateful: serialize draws from it.
		s.randMu.Lock()
		defer s.randMu.Unlock()
		rng = s.rand
	default:
		rng = dpnoise.NewCryptoRand()
	}
	opts := core.Options{
		Epsilon:             q.Epsilon,
		Beta:                s.beta,
		Rand:                rng,
		DeltaMax:            s.deltaMax,
		ForestLP:            s.forestLP,
		CountBudgetFraction: s.countFrac,
		DiscreteRelease:     s.discrete,
	}
	// One snapshot read serves the whole query: a delta landing mid-query
	// cannot mix pre- and post-mutation state.
	ge := s.snap.Load().ge
	switch {
	case op == OpSpanningForestSize:
		return core.EstimateSpanningForestSizeFromGrid(ctx, ge, opts)
	case q.Mode == KnownN:
		return core.EstimateComponentCountKnownNFromGrid(ctx, ge, opts)
	default:
		return core.EstimateComponentCountFromGrid(ctx, ge, opts)
	}
}

// TotalBudget returns ε_total, the global cap the accountant enforces.
func (s *Session) TotalBudget() float64 { return s.acct.EpsilonBudget() }

// Spent returns the global privacy loss guaranteed for the admitted queries
// so far, as measured by the session's composition accountant (the raw
// Σε_i under sequential composition; the advanced-composition bound — often
// much smaller than Σε_i — under privacy.Advanced).
func (s *Session) Spent() float64 { return s.acct.Spent() }

// Remaining returns TotalBudget() − Spent().
func (s *Session) Remaining() float64 { return s.acct.Remaining() }

// Delta returns the accountant's failure probability δ (0 for pure-ε
// sequential composition).
func (s *Session) Delta() float64 { return s.acct.Delta() }

// AccountantName identifies the composition rule in force.
func (s *Session) AccountantName() string { return s.acct.Name() }

// Fingerprint returns the canonical fingerprint of the currently served
// graph (post-delta once ApplyDelta commits). The audit scope, by contrast,
// stays pinned to the open-time fingerprint so one session writes one
// contiguous audit stream.
func (s *Session) Fingerprint() graph.Fingerprint { return s.snap.Load().ge.Fingerprint() }

// N returns the served graph's vertex count. Like every non-Estimate
// accessor it is exact data-dependent information: do not release it when
// the vertex count is sensitive.
func (s *Session) N() int { return s.snap.Load().ge.N() }

// Stats returns a snapshot of the session's serving counters. The budget
// triple is read atomically (Spent + Remaining == TotalBudget always), and
// Admitted/Rejected are read before Queries, so Queries ≥ Admitted +
// Rejected holds even while queries are in flight.
func (s *Session) Stats() Stats {
	snap := s.snap.Load()
	var engine forestlp.Stats
	if snap.built {
		engine = snap.ge.Stats()
	}
	spent, remaining := s.acct.Snapshot()
	admitted, rejected := s.admitted.Load(), s.rejected.Load()
	return Stats{
		PlansBuilt:     int(s.plansBuilt.Load()),
		CacheHit:       s.cacheHit,
		Queries:        s.queries.Load(),
		Admitted:       admitted,
		Rejected:       rejected,
		Deltas:         s.deltas.Load(),
		DeltasRejected: s.deltasRejected.Load(),
		TotalBudget:    s.acct.EpsilonBudget(),
		Spent:          spent,
		Remaining:      remaining,
		Accountant:     s.acct.Name(),
		Delta:          s.acct.Delta(),
		Engine:         engine,
	}
}

// errIsCancel reports whether err is a context cancelation or deadline.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
