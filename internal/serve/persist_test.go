package serve

// Session-level conformance tests for plan-cache persistence: the
// acceptance contract of the warm-restart PR is that a seeded query
// answered from a snapshot-reloaded plan is bit-for-bit identical to the
// same query from the live cache that produced the snapshot, across
// composition accountants and separation-worker configurations, and that
// persistence running concurrently with serving neither tears plans nor
// double-spends budget.

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/privacy"
)

// persistGraphs spans the same regimes as the core-level suite: sparse ER
// (many components), a structured grid, and a supercritical ER giant
// component (LP-heavy).
func persistGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"er-sparse": generate.ErdosRenyi(60, 0.02, generate.NewRand(21)),
		"grid":      generate.Grid(6, 6),
		"er-giant":  generate.ErdosRenyi(36, 0.14, generate.NewRand(22)),
	}
}

func bitsEqual(a, b core.Result) bool {
	return math.Float64bits(a.Value) == math.Float64bits(b.Value) &&
		math.Float64bits(a.Delta) == math.Float64bits(b.Delta) &&
		math.Float64bits(a.NoiseScale) == math.Float64bits(b.NoiseScale) &&
		math.Float64bits(a.NHat) == math.Float64bits(b.NHat) &&
		math.Float64bits(a.FDelta) == math.Float64bits(b.FDelta)
}

// TestSessionReloadBitIdentity: for every graph family, composition mode ∈
// {sequential, advanced}, and SepWorkers ∈ {1, 8}, a session opened on a
// snapshot-reloaded cache is a plan-cache hit and releases bit-identical
// seeded values to the session that populated the live cache.
func TestSessionReloadBitIdentity(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	type comp struct {
		name  string
		mode  privacy.Composition
		delta float64
	}
	comps := []comp{
		{"sequential", privacy.Sequential, 0},
		{"advanced", privacy.Advanced, 1e-9},
	}

	for famName, g := range persistGraphs() {
		for _, cm := range comps {
			for _, sepWorkers := range []int{1, 8} {
				name := famName + "/" + cm.name
				opts := SessionOptions{TotalBudget: 50, Composition: cm.mode, Delta: cm.delta}
				opts.ForestLP.SepWorkers = sepWorkers

				live := core.NewPlanCacheWeighted(1 << 30)
				opts.Cache = live
				sessLive, err := Open(ctx, g, opts)
				if err != nil {
					t.Fatalf("%s/sep=%d: open live: %v", name, sepWorkers, err)
				}
				if sessLive.Stats().CacheHit {
					t.Fatalf("%s/sep=%d: first open was a hit", name, sepWorkers)
				}

				queries := []struct {
					op   Op
					mode Mode
					seed uint64
				}{
					{OpComponentCount, PrivateN, 31},
					{OpComponentCount, KnownN, 32},
					{OpSpanningForestSize, PrivateN, 33},
				}
				run := func(s *Session, op Op, mode Mode, seed uint64) core.Result {
					t.Helper()
					q := QueryOptions{Epsilon: 0.4, Mode: mode, Seed: seed}
					var res core.Result
					var err error
					if op == OpSpanningForestSize {
						res, err = s.SpanningForestSize(ctx, q)
					} else {
						res, err = s.ComponentCount(ctx, q)
					}
					if err != nil {
						t.Fatalf("%s/sep=%d: query: %v", name, sepWorkers, err)
					}
					return res
				}

				var want []core.Result
				for _, q := range queries {
					want = append(want, run(sessLive, q.op, q.mode, q.seed))
				}

				snap := filepath.Join(dir, famName+"-"+cm.name+".snap")
				if n, err := live.SaveFile(snap); err != nil || n != 1 {
					t.Fatalf("%s/sep=%d: save: %d, %v", name, sepWorkers, n, err)
				}

				warm := core.NewPlanCacheWeighted(1 << 30)
				rep, err := warm.LoadFile(snap)
				if err != nil || rep.Loaded != 1 || rep.Skipped() != 0 {
					t.Fatalf("%s/sep=%d: load: %+v, %v", name, sepWorkers, rep, err)
				}
				opts.Cache = warm
				sessWarm, err := Open(ctx, g, opts)
				if err != nil {
					t.Fatalf("%s/sep=%d: open warm: %v", name, sepWorkers, err)
				}
				if !sessWarm.Stats().CacheHit {
					t.Fatalf("%s/sep=%d: reloaded open was not a cache hit — the restart would replan", name, sepWorkers)
				}

				for i, q := range queries {
					got := run(sessWarm, q.op, q.mode, q.seed)
					if !bitsEqual(got, want[i]) {
						t.Fatalf("%s/sep=%d: seeded release %d differs after reload:\nlive %+v\nwarm %+v",
							name, sepWorkers, i, want[i], got)
					}
				}

				ls, ws := live.Stats(), warm.Stats()
				if ls.Weight != ws.Weight {
					t.Fatalf("%s/sep=%d: cache weight changed across reload: %d vs %d",
						name, sepWorkers, ls.Weight, ws.Weight)
				}
			}
		}
	}
}

// TestPersistenceUnderConcurrency is the -race stress test of the ISSUE:
// concurrent seeded queries on sessions over one shared cache, periodic
// background saves, and one Load into the warm, serving registry — no torn
// reads (every save decodes cleanly; every reloaded plan validates) and no
// double-spend in either composition accountant.
func TestPersistenceUnderConcurrency(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	g := generate.PlantedComponents([]int{8, 8, 8}, 0.4, generate.NewRand(41))
	g2 := generate.Grid(5, 5)

	cache := core.NewPlanCacheWeighted(1 << 30)

	// Pre-warm with a second graph and snapshot it: the mid-flight Load
	// below merges this file into the live cache while queries run.
	if _, _, err := cache.GridEval(ctx, g2, core.Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	preSnap := filepath.Join(dir, "pre.snap")
	if _, err := cache.SaveFile(preSnap); err != nil {
		t.Fatal(err)
	}

	const (
		clients   = 8
		perClient = 24
		eps       = 0.05
		// Each client alternates sessions, so the sequential session gets
		// exactly perClient/2 queries per client; sizing the budget to
		// exactly that makes any double-spent reservation reject a query.
		seqBudget  = clients * perClient / 2 * eps
		advBudget  = 4.0
		savePasses = 20
	)
	seq, err := Open(ctx, g, SessionOptions{TotalBudget: seqBudget, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Open(ctx, g, SessionOptions{TotalBudget: advBudget, Composition: privacy.Advanced, Delta: 1e-9, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients+2)

	// Query load: every client alternates sessions and operations.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				sess := seq
				if i%2 == 1 {
					sess = adv
				}
				q := QueryOptions{Epsilon: eps, Seed: uint64(c*1000+i) + 1}
				var err error
				if i%3 == 0 {
					_, err = sess.SpanningForestSize(ctx, q)
				} else {
					_, err = sess.ComponentCount(ctx, q)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}

	// Background saver: periodic snapshots of the live cache; every one of
	// them must decode cleanly into a scratch cache (a torn read would
	// fail the checksum or the invariant validation).
	saveSnap := filepath.Join(dir, "live.snap")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < savePasses; i++ {
			if _, err := cache.SaveFile(saveSnap); err != nil {
				errs <- err
				return
			}
			scratch := core.NewPlanCacheWeighted(1 << 30)
			rep, err := scratch.LoadFile(saveSnap)
			if err != nil || rep.SkippedCorrupt > 0 || rep.SkippedInvalid > 0 {
				errs <- err
				t.Errorf("background save pass %d produced a damaged snapshot: %+v", i, rep)
				return
			}
		}
	}()

	// One Load into the warm cache mid-flight, plus a session open racing it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rep, err := cache.LoadFile(preSnap); err != nil || rep.SkippedCorrupt > 0 {
			errs <- err
			return
		}
		sess, err := Open(ctx, g2, SessionOptions{TotalBudget: 1, Cache: cache})
		if err != nil {
			errs <- err
			return
		}
		if _, err := sess.ComponentCount(ctx, QueryOptions{Epsilon: 0.5, Seed: 99}); err != nil {
			errs <- err
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent persistence: %v", err)
		}
	}

	// Accountant invariants: the sequential session was sized exactly —
	// one double-spent reservation anywhere would have rejected a query
	// above (an error) or left Spent ≠ admitted·ε here.
	if got, want := seq.Spent(), float64(clients)*(perClient/2)*eps; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sequential accountant spent %v, want %v", got, want)
	}
	if seq.Remaining() < -1e-12 || adv.Spent() > advBudget+1e-12 {
		t.Fatalf("budget overdrawn: seq remaining %v, adv spent %v of %v", seq.Remaining(), adv.Spent(), advBudget)
	}

	// The post-stress snapshot still reloads into a working cache.
	if _, err := cache.SaveFile(saveSnap); err != nil {
		t.Fatal(err)
	}
	final := core.NewPlanCacheWeighted(1 << 30)
	rep, err := final.LoadFile(saveSnap)
	if err != nil || rep.Skipped() != 0 || rep.Loaded != 2 {
		t.Fatalf("final snapshot: %+v, %v", rep, err)
	}
	sess, err := Open(ctx, g, SessionOptions{TotalBudget: 1, Cache: final})
	if err != nil || !sess.Stats().CacheHit {
		t.Fatalf("final reloaded cache did not serve the session: %v", err)
	}

	_ = os.Remove(saveSnap)
}
