package serve

import (
	"context"
	"sync"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/obs"
)

// memSink is an in-memory AuditSink for asserting on event streams.
type memSink struct {
	mu     sync.Mutex
	events []obs.AuditEvent
}

func (m *memSink) Record(e obs.AuditEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, e)
}

func (m *memSink) snapshot() []obs.AuditEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]obs.AuditEvent(nil), m.events...)
}

// TestAuditEventsReconcileWithStats drives a session through open, seeded
// queries, a budget rejection, and a cancelation refund, then checks the
// audit stream: ordered lifecycle ops, balance stamps that match replaying
// the ε sequence, and a final spent equal to Session.Stats().Spent exactly.
func TestAuditEventsReconcileWithStats(t *testing.T) {
	sink := &memSink{}
	g := generate.Grid(4, 4)
	ctx := obs.ContextWithRequestInfo(context.Background(), obs.RequestInfo{Tenant: "acme", RequestID: "r-0"})
	s, err := Open(ctx, g, SessionOptions{TotalBudget: 1, Audit: sink})
	if err != nil {
		t.Fatal(err)
	}

	qctx := obs.ContextWithRequestInfo(context.Background(), obs.RequestInfo{Tenant: "acme", RequestID: "q-1"})
	if _, err := s.ComponentCount(qctx, QueryOptions{Epsilon: 0.5, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Overdraw: rejected, spending nothing.
	if _, err := s.ComponentCount(qctx, QueryOptions{Epsilon: 0.75, Seed: 7}); err == nil {
		t.Fatal("overdraw admitted")
	}
	// Canceled before execution: reserve then refund.
	canceled, cancel := context.WithCancel(qctx)
	cancel()
	if _, err := s.SpanningForestSize(canceled, QueryOptions{Epsilon: 0.25, Seed: 7}); err == nil {
		t.Fatal("canceled query succeeded")
	}

	events := sink.snapshot()
	wantOps := []string{obs.AuditOpen, obs.AuditReserve, obs.AuditCharge, obs.AuditReserve}
	// The canceled query is rejected at the ctx.Err() check before any
	// reservation, so no reserve/refund pair is logged for it.
	if len(events) != len(wantOps) {
		t.Fatalf("got %d events %+v, want ops %v", len(events), events, wantOps)
	}
	for i, op := range wantOps {
		if events[i].Op != op {
			t.Fatalf("event %d op = %s, want %s", i, events[i].Op, op)
		}
	}
	if events[0].Tenant != "acme" || events[0].Scope != s.Fingerprint().String() || events[0].Budget != 1 {
		t.Fatalf("open event %+v lacks tenant/scope/budget", events[0])
	}
	if events[1].RequestID != "q-1" || events[1].Outcome != obs.AuditOK || events[1].Spent != 0.5 {
		t.Fatalf("reserve event %+v, want q-1/ok/spent=0.5", events[1])
	}
	if events[2].Spent != 0.5 || events[2].Outcome != obs.AuditOK {
		t.Fatalf("charge event %+v, want spent unchanged at 0.5", events[2])
	}
	if events[3].Outcome != obs.AuditRejected || events[3].Spent != 0.5 {
		t.Fatalf("rejected reserve event %+v, want rejected/spent=0.5", events[3])
	}
	if got := s.Stats().Spent; got != events[len(events)-1].Spent {
		t.Fatalf("final audit balance %v != session spent %v", events[len(events)-1].Spent, got)
	}
}

// TestAuditBatchItemAttribution checks that batch items are individually
// attributable in the audit stream ("<request-id>#<index>"), admitted in
// request order, and that a rejected item records a reserve but no charge.
func TestAuditBatchItemAttribution(t *testing.T) {
	sink := &memSink{}
	g := generate.Grid(3, 3)
	ctx := obs.ContextWithRequestInfo(context.Background(), obs.RequestInfo{Tenant: "t", RequestID: "batch-9"})
	s, err := Open(ctx, g, SessionOptions{TotalBudget: 1, Audit: sink})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Op: OpComponentCount, Epsilon: 0.25, Seed: 3},
		{Op: OpSpanningForestSize, Epsilon: 0.25, Seed: 4},
		{Op: OpComponentCount, Epsilon: 0.75, Seed: 5}, // overdraws
	}
	resps := s.Do(ctx, reqs)
	if resps[0].Err != nil || resps[1].Err != nil || resps[2].Err == nil {
		t.Fatalf("batch outcomes: %v / %v / %v", resps[0].Err, resps[1].Err, resps[2].Err)
	}
	var reserves, charges []string
	for _, e := range sink.snapshot() {
		switch e.Op {
		case obs.AuditReserve:
			reserves = append(reserves, e.RequestID)
		case obs.AuditCharge:
			charges = append(charges, e.RequestID)
		}
	}
	if len(reserves) != 3 || reserves[0] != "batch-9#0" || reserves[1] != "batch-9#1" || reserves[2] != "batch-9#2" {
		t.Fatalf("reserve attribution %v, want batch-9#0..#2 in order", reserves)
	}
	if len(charges) != 2 {
		t.Fatalf("got %d charges %v, want 2 (rejected item charges nothing)", len(charges), charges)
	}
}
