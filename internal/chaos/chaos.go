// Package chaos builds deterministic randomized fault schedules for the
// serving stack's chaos conformance suite (chaos_test.go) and for manual
// daemon chaos drills via NODEDP_FAILPOINTS.
//
// A schedule is a fault.Arm spec string derived entirely from one seed:
// the same seed always arms the same sites with the same policies and the
// same per-site PRNG seeds, so a failing chaos run is replayed exactly by
// re-running its seed. Schedules arm only contract-preserving sites —
// every injected failure is one the stack promises to absorb (typed error,
// retry, refund, or certified fallback). The deliberate invariant-breaker
// privacy.refund is never armed: it exists to prove the conformance tests
// can detect a broken refund path, not to pass them.
//
// Solver-internal sites (lp.incremental.*) are armed for completeness but
// rarely fire through the HTTP workload: the exact-certified float fast
// path serves typical uploads without standing solvers. Their dedicated
// conformance lives in internal/forestlp's fault tests, which force the
// incremental engine and certify bit-identical fallback.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// ProbSites are armed with a probability policy: each hit is cheap to
// retry (one response write, one ledger reservation, one snapshot write),
// so a seeded coin per hit yields dense, varied interleavings.
var ProbSites = []string{
	"snapshot.encode",
	"snapshot.decode",
	"snapshot.write.sync",
	"snapshot.write.rename",
	"httpapi.write",
	"lp.incremental.distress",
}

// NthSites are armed with a fire-once nth policy: they gate plan builds,
// where a probability policy would fail almost every build (a build hits
// the site once per cutting-plane solve) and starve the workload.
var NthSites = []string{
	"maxflow.arena",
	"core.cache.admit",
}

// DeltaSites fire at live-graph mutation boundaries: the fingerprint-update
// failpoint inside Session.ApplyDelta (whose contract is full rollback —
// the session keeps serving the pre-delta snapshot), and the sub-plan
// admission and merge failpoints in the component-assembly planner (whose
// contract is that a fault-tainted component evaluation never enters the
// sub-plan cache and a failed merge never forms a whole-graph plan).
var DeltaSites = []string{
	"serve.delta.fp",
	"core.subplan.admit",
	"core.subplan.merge",
}

// RandomDeltaSchedule extends RandomSchedule(seed) with arms for the
// DeltaSites. The extension draws from its own PRNG stream and is appended
// after the base spec, so the base schedule of every seed — including the
// load-bearing 412 — stays byte-identical to RandomSchedule's output.
// serve.delta.fp is always armed: every delta schedule exercises the
// rollback path at least probabilistically.
func RandomDeltaSchedule(seed uint64) string {
	rng := rand.New(rand.NewPCG(seed, seed^0x64656c7461)) // "delta" lane
	probs := []float64{0.2, 0.3}
	terms := []string{RandomSchedule(seed)}
	terms = append(terms, fmt.Sprintf("serve.delta.fp=prob:%g:%d",
		probs[rng.IntN(len(probs))], seed*1000+200))
	for i, site := range DeltaSites[1:] {
		p := probs[rng.IntN(len(probs))]
		if rng.Float64() < 0.5 {
			continue
		}
		terms = append(terms, fmt.Sprintf("%s=prob:%g:%d", site, p, seed*1000+201+uint64(i)))
	}
	return strings.Join(terms, ";")
}

// RandomSchedule derives a fault spec from seed. Each eligible site is
// included with probability 1/2; included ProbSites draw a firing
// probability from {0.05, 0.15, 0.3} and a per-site seed, included
// NthSites draw a hit index in [1, 5]. privacy.reserve is always armed
// with a panic action so every schedule exercises the per-request panic
// containment in front of the ledger.
func RandomSchedule(seed uint64) string {
	rng := rand.New(rand.NewPCG(seed, seed))
	probs := []float64{0.05, 0.15, 0.3}
	var terms []string
	for i, site := range ProbSites {
		p := probs[rng.IntN(len(probs))]
		if rng.Float64() < 0.5 {
			continue
		}
		terms = append(terms, fmt.Sprintf("%s=prob:%g:%d", site, p, seed*1000+uint64(i)))
	}
	for _, site := range NthSites {
		n := 1 + rng.IntN(5)
		if rng.Float64() < 0.5 {
			continue
		}
		terms = append(terms, fmt.Sprintf("%s=nth:%d", site, n))
	}
	terms = append(terms, fmt.Sprintf("privacy.reserve=prob:0.2:%d:panic", seed*1000+99))
	return strings.Join(terms, ";")
}
