package chaos

// The chaos conformance suite: drive a daemon workload under seeded
// randomized fault schedules through the retrying client and assert the
// stack's four robustness invariants:
//
//  1. No escaped panic — the daemon answers /healthz and /metrics after
//     the storm, and every injected ledger panic was contained and
//     counted in nodedp_panics_recovered_total.
//  2. Exact ledger balance — after reconciliation, each session's spent
//     budget is exactly ε × its distinct successful request IDs: no
//     double-spend from retries, no stranded reservation from failures.
//  3. No partial plan — the shared plan cache survives torn snapshot
//     writes; a clean save then reloads into a fresh cache with zero
//     skipped entries and serves the original lookups as hits.
//  4. Bit-identical survivors — every release that succeeds under faults
//     (in the storm or in reconciliation) is bit-identical to the same
//     seeded query on a fault-free daemon.
//
// Schedules, retry backoff, and fault coins are all seeded: a run is
// reproduced exactly by its seed.

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"nodedp/internal/client"
	"nodedp/internal/core"
	"nodedp/internal/fault"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/httpapi"
)

const (
	chaosEpsilon = 0.25 // power of two: spent sums are exact in float64
	queriesPer   = 8
)

// chaosSeeds: three arbitrary seeds plus 412, picked because its schedule
// arms the cache-admission site (core.cache.admit=nth:1) — the partial-plan
// invariant then runs at least once against an injected admission failure.
var chaosSeeds = []uint64{101, 202, 303, 412}

type workloadGraph struct {
	name  string
	g     *graph.Graph
	edges [][2]int
}

// chaosWorkload returns the two serving workloads: a small
// multi-component graph (cheap, cache-light) and a supercritical ER graph
// whose giant component makes the plan build LP-heavy.
func chaosWorkload() []workloadGraph {
	gs := []workloadGraph{
		{name: "planted", g: generate.PlantedComponents([]int{6, 5}, 0.5, generate.NewRand(3))},
		{name: "er120", g: generate.ErdosRenyi(120, 0.03, generate.NewRand(9))},
	}
	for i := range gs {
		for _, e := range gs[i].g.Edges() {
			gs[i].edges = append(gs[i].edges, [2]int{e.U, e.V})
		}
	}
	return gs
}

type releaseBits struct{ value, nHat uint64 }

// faultFreeBaseline serves every workload query on a clean daemon and
// records the released bits: the reference each chaotic survivor must
// match exactly.
func faultFreeBaseline(t *testing.T, graphs []workloadGraph) map[string][]releaseBits {
	t.Helper()
	if fault.Enabled() {
		t.Fatal("baseline must run with no failpoints armed")
	}
	srv := httpapi.New(httpapi.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{HTTPClient: ts.Client(), JitterSeed: 1})

	ctx := context.Background()
	base := make(map[string][]releaseBits)
	for _, wg := range graphs {
		created, err := cl.CreateSession(ctx, httpapi.CreateSessionRequest{
			N: wg.g.N(), Edges: wg.edges, Budget: 64,
		})
		if err != nil {
			t.Fatalf("baseline session for %s: %v", wg.name, err)
		}
		for i := 0; i < queriesPer; i++ {
			res, err := cl.Query(ctx, created.SessionID, httpapi.QueryRequest{
				Op: "cc", Epsilon: chaosEpsilon, Seed: uint64(i + 1),
			})
			if err != nil {
				t.Fatalf("baseline query %s/%d: %v", wg.name, i, err)
			}
			base[wg.name] = append(base[wg.name], releaseBits{
				value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat),
			})
		}
	}
	return base
}

func TestChaosSchedules(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	graphs := chaosWorkload()
	base := faultFreeBaseline(t, graphs)
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSchedule(t, seed, graphs, base)
		})
	}
}

func runSchedule(t *testing.T, seed uint64, graphs []workloadGraph, base map[string][]releaseBits) {
	defer fault.Reset()
	ctx := context.Background()

	shared := core.NewPlanCacheWeighted(1 << 30)
	cacheFile := t.TempDir() + "/cache.snap"
	srv := httpapi.New(httpapi.Config{Cache: shared, CacheFile: cacheFile, RetryJitterSeed: seed})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{
		HTTPClient:  ts.Client(),
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		JitterSeed:  seed,
	})

	spec := RandomSchedule(seed)
	t.Logf("schedule: %s", spec)
	if err := fault.Arm(spec); err != nil {
		t.Fatalf("arming schedule: %v", err)
	}

	// --- The storm: sessions and queries under the armed schedule. ---
	type sessionRun struct {
		wg     workloadGraph
		id     string
		phase1 map[int]releaseBits // query index → released bits, when the storm attempt succeeded
	}
	var runs []*sessionRun
	for _, wg := range graphs {
		var created *httpapi.CreateSessionResponse
		var err error
		// The client already retries transient failures; the outer loop
		// absorbs schedules dense enough to exhaust its attempt budget.
		for round := 0; round < 10; round++ {
			created, err = cl.CreateSession(ctx, httpapi.CreateSessionRequest{
				N: wg.g.N(), Edges: wg.edges, Budget: 64,
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("no session for %s under schedule %d: %v", wg.name, seed, err)
		}
		run := &sessionRun{wg: wg, id: created.SessionID, phase1: make(map[int]releaseBits)}
		runs = append(runs, run)

		for i := 0; i < queriesPer; i++ {
			res, err := cl.Query(ctx, run.id, httpapi.QueryRequest{
				Op: "cc", Epsilon: chaosEpsilon, Seed: uint64(i + 1),
				RequestID: fmt.Sprintf("chaos-%d-%s-%d", seed, wg.name, i),
			})
			if err != nil {
				continue // reconciliation below proves nothing leaked
			}
			run.phase1[i] = releaseBits{
				value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat),
			}
		}
		// A snapshot save mid-storm: may tear on the armed snapshot sites;
		// invariant 3 checks the cache survives it.
		if _, err := srv.SaveCache(); err != nil {
			t.Logf("mid-storm snapshot save torn (expected under schedule): %v", err)
		}
	}
	reservePanics := fault.Fired("privacy.reserve")
	fault.Reset()

	// --- Invariant 1: the daemon survived, panics were contained. ---
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after storm → %d", code)
	}
	if recovered := metricValue(t, ts.URL, "nodedp_panics_recovered_total"); recovered != int64(reservePanics) {
		t.Errorf("panics recovered = %d, want %d (every injected ledger panic contained, none escaped)",
			recovered, reservePanics)
	}

	// --- Invariant 4 (and dedup coherence): reconciliation. Every logical
	// query re-issued with its storm request ID must now succeed, match the
	// fault-free baseline bit for bit, and match any storm-time success
	// (a replayed release may not drift). ---
	for _, run := range runs {
		for i := 0; i < queriesPer; i++ {
			res, err := cl.Query(ctx, run.id, httpapi.QueryRequest{
				Op: "cc", Epsilon: chaosEpsilon, Seed: uint64(i + 1),
				RequestID: fmt.Sprintf("chaos-%d-%s-%d", seed, run.wg.name, i),
			})
			if err != nil {
				t.Fatalf("reconciling %s/%d: %v", run.wg.name, i, err)
			}
			got := releaseBits{value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat)}
			if want := base[run.wg.name][i]; got != want {
				t.Errorf("%s/%d: release under faults %x/%x != fault-free %x/%x",
					run.wg.name, i, got.value, got.nHat, want.value, want.nHat)
			}
			if p1, ok := run.phase1[i]; ok && p1 != got {
				t.Errorf("%s/%d: storm success %x/%x but replay %x/%x — dedup replay drifted",
					run.wg.name, i, p1.value, p1.nHat, got.value, got.nHat)
			}
		}
	}

	// --- Invariant 2: exact ledger balance. Whatever mix of injected
	// errors, contained panics, aborted writes, and retries the storm
	// produced, each session is charged exactly once per logical query. ---
	for _, run := range runs {
		info, err := cl.SessionInfo(ctx, run.id)
		if err != nil {
			t.Fatalf("session info %s: %v", run.wg.name, err)
		}
		if want := chaosEpsilon * queriesPer; info.Budget.Spent != want {
			t.Errorf("%s: spent = %v, want exactly %v (ε × %d logical queries)",
				run.wg.name, info.Budget.Spent, want, queriesPer)
		}
	}

	// --- Invariant 3: no partial plan. A clean save commits, and a fresh
	// cache loads it whole — zero skipped entries — and serves the
	// workload's lookups as hits. ---
	entries, err := srv.SaveCache()
	if err != nil {
		t.Fatalf("clean snapshot save after storm: %v", err)
	}
	warm := core.NewPlanCacheWeighted(1 << 30)
	rep, err := warm.LoadFile(cacheFile)
	if err != nil {
		t.Fatalf("cold start on post-storm snapshot: %v", err)
	}
	if rep.Skipped() != 0 || rep.Loaded != entries {
		t.Fatalf("snapshot degraded: loaded %d of %d, skipped %d (errs: %v)",
			rep.Loaded, entries, rep.Skipped(), rep.Errs)
	}
	for _, wg := range graphs {
		if _, hit, err := warm.GridEval(ctx, wg.g, core.Options{}); err != nil || !hit {
			t.Errorf("reloaded cache misses %s: hit=%v, %v", wg.name, hit, err)
		}
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// metricValue scrapes one counter from the exposition text.
func metricValue(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// TestRandomScheduleDeterministic: one seed, one schedule — the replay
// property everything above depends on.
func TestRandomScheduleDeterministic(t *testing.T) {
	for _, seed := range chaosSeeds {
		if a, b := RandomSchedule(seed), RandomSchedule(seed); a != b {
			t.Fatalf("seed %d: schedule not deterministic:\n%s\n%s", seed, a, b)
		}
	}
	if RandomSchedule(101) == RandomSchedule(202) {
		t.Fatal("distinct seeds produced identical schedules — suspicious derivation")
	}
	for _, seed := range chaosSeeds {
		if spec := RandomSchedule(seed); strings.Contains(spec, "privacy.refund") {
			t.Fatalf("seed %d: schedule arms the deliberate invariant-breaker privacy.refund: %s", seed, spec)
		} else if err := fault.Arm(spec); err != nil {
			t.Fatalf("seed %d: schedule does not parse: %v", seed, err)
		}
		fault.Reset()
	}
}
