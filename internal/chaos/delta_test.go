package chaos

// Chaos conformance for live-graph mutation: a session absorbs a scripted
// delta sequence (merge, split, re-merge) under seeded fault schedules
// that fire at the delta boundaries — the ApplyDelta fingerprint-update
// failpoint and the sub-plan admission/merge failpoints — on top of the
// base storm sites. Invariants:
//
//  1. Every delta eventually commits through the retrying client, and each
//     committed fingerprint equals the fault-free run's at that boundary —
//     a rolled-back delta never leaves a half-applied graph behind.
//  2. Exact ledger balance: deltas spend nothing; each boundary query is
//     charged exactly once however many times the storm made it retry.
//  3. Bit-identical survivors: every query that succeeds under faults
//     equals the fault-free run's release at the same boundary, and the
//     post-storm session is bit-identical to the fault-free final state —
//     no torn snapshot.
//  4. The shared plan cache still snapshots and reloads whole.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nodedp/internal/client"
	"nodedp/internal/core"
	"nodedp/internal/fault"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/httpapi"
)

// deltaStep is one scripted mutation.
type deltaStep struct {
	adds, removes [][2]int
}

// deltaScript returns the planted workload graph and a merge → split →
// re-merge mutation sequence over it. Blocks 0-5 and 6-10 are
// edge-disjoint, so {0, 6} is a guaranteed bridge.
func deltaScript() (*graph.Graph, []deltaStep) {
	g := generate.PlantedComponents([]int{6, 5}, 0.5, generate.NewRand(3))
	intra := g.Edges()[0]
	return g, []deltaStep{
		{adds: [][2]int{{0, 6}}, removes: [][2]int{{intra.U, intra.V}}},
		{removes: [][2]int{{0, 6}}},
		{adds: [][2]int{{0, 6}}},
	}
}

// deltaBaselineRun captures the fault-free reference: the fingerprint after
// each committed delta, the released bits of each boundary query, and a
// final-state query.
type deltaBaselineRun struct {
	fingerprints []string
	boundary     []releaseBits
	final        releaseBits
}

const deltaFinalSeed = 99

func deltaBaseline(t *testing.T, g *graph.Graph, edges [][2]int, script []deltaStep) deltaBaselineRun {
	t.Helper()
	if fault.Enabled() {
		t.Fatal("baseline must run with no failpoints armed")
	}
	srv := httpapi.New(httpapi.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{HTTPClient: ts.Client(), JitterSeed: 1})
	ctx := context.Background()

	created, err := cl.CreateSession(ctx, httpapi.CreateSessionRequest{N: g.N(), Edges: edges, Budget: 64})
	if err != nil {
		t.Fatal(err)
	}
	var run deltaBaselineRun
	for bi, step := range script {
		pr, err := cl.Patch(ctx, created.SessionID, httpapi.PatchRequest{Adds: step.adds, Removes: step.removes})
		if err != nil {
			t.Fatalf("baseline delta %d: %v", bi, err)
		}
		run.fingerprints = append(run.fingerprints, pr.Fingerprint)
		res, err := cl.Query(ctx, created.SessionID, httpapi.QueryRequest{
			Op: "cc", Epsilon: chaosEpsilon, Seed: uint64(bi + 1),
		})
		if err != nil {
			t.Fatalf("baseline boundary query %d: %v", bi, err)
		}
		run.boundary = append(run.boundary, releaseBits{
			value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat),
		})
	}
	res, err := cl.Query(ctx, created.SessionID, httpapi.QueryRequest{
		Op: "cc", Epsilon: chaosEpsilon, Seed: deltaFinalSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	run.final = releaseBits{value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat)}
	return run
}

func TestChaosDeltaSchedules(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	g, script := deltaScript()
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	base := deltaBaseline(t, g, edges, script)
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDeltaSchedule(t, seed, g, edges, script, base)
		})
	}
}

func runDeltaSchedule(t *testing.T, seed uint64, g *graph.Graph, edges [][2]int, script []deltaStep, base deltaBaselineRun) {
	defer fault.Reset()
	ctx := context.Background()

	shared := core.NewPlanCacheWeighted(1 << 30)
	cacheFile := t.TempDir() + "/cache.snap"
	srv := httpapi.New(httpapi.Config{Cache: shared, CacheFile: cacheFile, RetryJitterSeed: seed})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{
		HTTPClient:  ts.Client(),
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		JitterSeed:  seed,
	})

	spec := RandomDeltaSchedule(seed)
	t.Logf("schedule: %s", spec)
	if err := fault.Arm(spec); err != nil {
		t.Fatalf("arming schedule: %v", err)
	}

	var created *httpapi.CreateSessionResponse
	var err error
	for round := 0; round < 10; round++ {
		created, err = cl.CreateSession(ctx, httpapi.CreateSessionRequest{N: g.N(), Edges: edges, Budget: 64})
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("no session under schedule %d: %v", seed, err)
	}

	// The storm: commit every scripted delta and issue its boundary query,
	// retrying past the client's own attempt budget. Set semantics make
	// delta retries harmless (a replayed commit is a no-op with the same
	// fingerprint); request IDs make query retries replay, not respend.
	for bi, step := range script {
		var pr *httpapi.PatchResponse
		for round := 0; round < 20; round++ {
			pr, err = cl.Patch(ctx, created.SessionID, httpapi.PatchRequest{
				Adds: step.adds, Removes: step.removes,
				RequestID: fmt.Sprintf("chaosdelta-%d-mut-%d", seed, bi),
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("delta %d never committed under schedule %d: %v", bi, seed, err)
		}
		if pr.Fingerprint != base.fingerprints[bi] {
			t.Fatalf("delta %d: fingerprint %s under faults != fault-free %s — partial mutation survived",
				bi, pr.Fingerprint, base.fingerprints[bi])
		}

		var res *httpapi.QueryResponse
		for round := 0; round < 20; round++ {
			res, err = cl.Query(ctx, created.SessionID, httpapi.QueryRequest{
				Op: "cc", Epsilon: chaosEpsilon, Seed: uint64(bi + 1),
				RequestID: fmt.Sprintf("chaosdelta-%d-q-%d", seed, bi),
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("boundary query %d never succeeded under schedule %d: %v", bi, seed, err)
		}
		got := releaseBits{value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat)}
		if got != base.boundary[bi] {
			t.Errorf("boundary %d: release under faults %x/%x != fault-free %x/%x",
				bi, got.value, got.nHat, base.boundary[bi].value, base.boundary[bi].nHat)
		}
	}
	reservePanics := fault.Fired("privacy.reserve")
	deltaFaults := fault.Fired("serve.delta.fp") + fault.Fired("core.subplan.admit") + fault.Fired("core.subplan.merge")
	t.Logf("delta-boundary faults fired: %d", deltaFaults)
	fault.Reset()

	// The daemon survived and contained every injected ledger panic.
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after storm → %d", code)
	}
	if recovered := metricValue(t, ts.URL, "nodedp_panics_recovered_total"); recovered != int64(reservePanics) {
		t.Errorf("panics recovered = %d, want %d", recovered, reservePanics)
	}

	// Exact ledger balance: one charge per boundary query, nothing for the
	// deltas or their retries.
	info, err := cl.SessionInfo(ctx, created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if want := chaosEpsilon * float64(len(script)); info.Budget.Spent != want {
		t.Errorf("spent = %v, want exactly %v (ε × %d boundary queries; deltas are free)",
			info.Budget.Spent, want, len(script))
	}

	// No torn snapshot: with faults disarmed, the stormed session's final
	// state releases bit-for-bit what the fault-free run released.
	res, err := cl.Query(ctx, created.SessionID, httpapi.QueryRequest{
		Op: "cc", Epsilon: chaosEpsilon, Seed: deltaFinalSeed,
	})
	if err != nil {
		t.Fatalf("final-state query: %v", err)
	}
	final := releaseBits{value: math.Float64bits(res.Value), nHat: math.Float64bits(res.NHat)}
	if final != base.final {
		t.Errorf("final state: %x/%x != fault-free %x/%x — the storm tore the serving snapshot",
			final.value, final.nHat, base.final.value, base.final.nHat)
	}

	// The shared cache — including whatever the delta re-plans inserted —
	// still snapshots cleanly and reloads whole.
	entries, err := srv.SaveCache()
	if err != nil {
		t.Fatalf("clean snapshot save after storm: %v", err)
	}
	warm := core.NewPlanCacheWeighted(1 << 30)
	rep, err := warm.LoadFile(cacheFile)
	if err != nil {
		t.Fatalf("cold start on post-storm snapshot: %v", err)
	}
	if rep.Skipped() != 0 || rep.Loaded != entries {
		t.Fatalf("snapshot degraded: loaded %d of %d, skipped %d (errs: %v)",
			rep.Loaded, entries, rep.Skipped(), rep.Errs)
	}
}

// TestRandomDeltaScheduleExtendsBase pins the compatibility contract: the
// delta schedule is the base schedule plus appended delta-site arms, every
// seed arms serve.delta.fp, and the spec parses.
func TestRandomDeltaScheduleExtendsBase(t *testing.T) {
	defer fault.Reset()
	for _, seed := range chaosSeeds {
		spec := RandomDeltaSchedule(seed)
		if a, b := spec, RandomDeltaSchedule(seed); a != b {
			t.Fatalf("seed %d: delta schedule not deterministic", seed)
		}
		if !strings.HasPrefix(spec, RandomSchedule(seed)) {
			t.Fatalf("seed %d: delta schedule does not extend the base schedule:\n%s", seed, spec)
		}
		if !strings.Contains(spec, "serve.delta.fp=prob:") {
			t.Fatalf("seed %d: delta schedule never arms serve.delta.fp: %s", seed, spec)
		}
		if err := fault.Arm(spec); err != nil {
			t.Fatalf("seed %d: delta schedule does not parse: %v", seed, err)
		}
		fault.Reset()
	}
}
