package analysis

// Suppression handling. The contract analyzers are allowed to be wrong in
// ways a human can see and a checker cannot — a map iteration whose
// accumulated result is order-independent, a wall-clock read that feeds an
// operational TTL rather than a release — so every analyzer supports
// per-site suppression:
//
//	//detlint:allow <analyzer> — <justification>
//
// ("--" is accepted in place of the em dash). The comment suppresses
// matching diagnostics on its own line and the line below it; placed in
// the doc comment of a declaration it covers the whole declaration (the
// shape used for deterministic merge helpers, whose every float
// accumulation is intentional). A suppression with no justification, or
// naming no known analyzer, is itself reported: the annotation documents a
// reviewed decision, and an unexplained one is indistinguishable from a
// silenced bug.

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches the directive after "//": analyzer name, separator,
// justification. The justification group may be empty — that case is
// reported as an unexplained suppression.
var allowRe = regexp.MustCompile(`^detlint:allow\s+([a-zA-Z0-9_-]*)\s*(?:—|--)?\s*(.*)$`)

// suppression is one parsed //detlint:allow directive.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	// declEnd, when nonzero, extends the suppressed range to [line,
	// declEnd] (directive found in a declaration's doc comment).
	declEnd int
}

// covers reports whether s suppresses a diagnostic from the named analyzer
// at the given line of the same file.
func (s *suppression) covers(analyzer string, line int) bool {
	if s.analyzer != analyzer {
		return false
	}
	if s.declEnd > 0 {
		return line >= s.line && line <= s.declEnd
	}
	return line == s.line || line == s.line+1
}

// suppressionIndex holds every parsed directive of a package, keyed by
// file name.
type suppressionIndex struct {
	byFile map[string][]*suppression
}

// collectSuppressions parses all //detlint:allow directives in the
// package's files. known maps analyzer names that exist; malformed
// directives (unknown analyzer, missing justification) are returned as
// findings so they fail the lint run.
func collectSuppressions(pkg *Package, known map[string]bool) (*suppressionIndex, []Finding) {
	idx := &suppressionIndex{byFile: make(map[string][]*suppression)}
	var bad []Finding

	// Doc-comment ranges: a directive inside a declaration's doc comment
	// covers the whole declaration.
	declEnd := make(map[*ast.CommentGroup]int)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				declEnd[doc] = pkg.Fset.Position(decl.End()).Line
			}
		}
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "detlint:allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				switch {
				case m == nil || m[1] == "":
					bad = append(bad, Finding{
						Analyzer: "detlint",
						Pos:      pos.String(),
						Message:  "malformed suppression: want //detlint:allow <analyzer> — <justification>",
					})
					continue
				case !known[m[1]]:
					bad = append(bad, Finding{
						Analyzer: "detlint",
						Pos:      pos.String(),
						Message:  fmt.Sprintf("suppression names unknown analyzer %q", m[1]),
					})
					continue
				case strings.TrimSpace(m[2]) == "":
					bad = append(bad, Finding{
						Analyzer: "detlint",
						Pos:      pos.String(),
						Message: fmt.Sprintf("unexplained suppression of %q: a justification is required "+
							"(//detlint:allow %s — <why this site is safe>)", m[1], m[1]),
					})
					continue
				}
				s := &suppression{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					file:     pos.Filename,
					line:     pos.Line,
					declEnd:  declEnd[cg],
				}
				idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], s)
			}
		}
	}
	return idx, bad
}

// suppressed reports whether a diagnostic at pos from the named analyzer
// is covered by a directive.
func (idx *suppressionIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, s := range idx.byFile[pos.Filename] {
		if s.covers(analyzer, pos.Line) {
			return true
		}
	}
	return false
}
