package rngsource_test

import (
	"testing"

	"nodedp/internal/analysis/analysistest"
	"nodedp/internal/analysis/rngsource"
)

func TestRngsource(t *testing.T) {
	analysistest.Run(t, rngsource.Analyzer, "testdata/src/a")
}
