// Package rngsource forbids ambient nondeterminism — the process-global
// random source and the wall clock — in release-path packages.
//
// The repo's determinism contract says a seeded release is bit-identical
// across every execution; its privacy posture says unseeded noise comes
// only from the crypto-backed sources constructed in internal/dpnoise and
// consumed via internal/mechanism. Both are violated by reaching for
// math/rand's package-level functions (seeded from the OS per process) or
// by folding time.Now into anything a release depends on. The analyzer
// flags:
//
//   - any import of math/rand (v1): its global source and Seed machinery
//     have no place here; the repo standardizes on math/rand/v2 *values*
//     constructed from explicit seeds.
//   - calls to package-level functions of math/rand/v2 other than the
//     New* constructors (rand.Int, rand.Float64, rand.Shuffle, … use the
//     global ChaCha8 source seeded at process start).
//   - calls to time.Now, time.Since, or time.Until. Operational clocks
//     (idle TTLs, latency metrics, shard timings) are legitimate but must
//     be annotated //detlint:allow rngsource — <why this never reaches a
//     release>, so every wall-clock read on the release path is a
//     reviewed decision.
package rngsource

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"nodedp/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "forbid the process-global random source (math/rand top-level functions, math/rand v1 " +
		"imports) and wall-clock reads (time.Now/Since/Until) in release-path packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" {
				pass.Reportf(imp.Pos(), "import of math/rand (v1): use explicit seeded sources via math/rand/v2 (rand.New(rand.NewPCG(seed, …))) or the constructors in internal/dpnoise")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return true // methods (e.g. (*rand.Rand).Float64 on a seeded value) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(call.Pos(), "%s.%s draws from the process-global random source: all randomness must flow through an explicitly seeded *rand.Rand or the crypto source from internal/dpnoise", fn.Pkg().Name(), fn.Name())
				}
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "time.%s on a release-path package: wall-clock values are nondeterministic; inject a clock, or annotate the site if the value is operational and never reaches a release", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// calledFunc resolves the *types.Func a call invokes, if any.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
