// Package a is the rngsource corpus. globalRand and wallClock are the
// hazards the release path must never contain; seededSource and
// annotatedClock are the two sanctioned ways out (explicit seeds, or a
// justified annotation for operational clocks — the shape of
// forestlp.evalShard's timing diagnostics).
package a

import (
	"math/rand/v2"
	"time"
)

// globalRand draws from the process-global source.
func globalRand() float64 {
	return rand.Float64() // want "rand.Float64 draws from the process-global random source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the process-global random source"
}

// seededSource is the sanctioned construction: explicit seed, methods on
// the value.
func seededSource(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	return r.Float64()
}

// wallClock reads the wall clock on the release path.
func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now on a release-path package"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since on a release-path package"
}

// annotatedClock is an operational timing diagnostic, reviewed and
// justified (the forestlp.evalShard shape).
func annotatedClock() time.Duration {
	//detlint:allow rngsource — operational timing diagnostic, never enters a released value
	start := time.Now()
	work()
	//detlint:allow rngsource — operational timing diagnostic, never enters a released value
	return time.Since(start)
}

// injectedClock takes the clock as a value — the httpapi Config.Now
// pattern — so tests can pin it; referencing time.Now as a value (not
// calling it) stays legal at the injection point.
func injectedClock(now func() time.Time) time.Time {
	if now == nil {
		now = time.Now
	}
	return now()
}

func work() {}
