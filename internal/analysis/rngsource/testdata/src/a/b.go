package a

import (
	oldrand "math/rand" // want "import of math/rand \\(v1\\)"
)

// v1Rand: the v1 package's global-source machinery is banned outright,
// even through a seeded source — the repo standardizes on math/rand/v2.
func v1Rand() int {
	return oldrand.New(oldrand.NewSource(1)).Int()
}
