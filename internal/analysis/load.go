package analysis

// This file loads and type-checks packages without golang.org/x/tools:
// `go list -export -deps -json` names every package's source files and its
// compiled export data, the stdlib gc importer consumes that export data
// for dependencies, and go/types checks the target packages' parsed
// syntax against it. The result is full type information — the same
// foundation go/packages provides — from the toolchain already on disk.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList invokes `go list -export -deps -json` in dir and decodes the
// package stream. -export compiles (or reuses from the build cache) every
// package's export data, which is what makes offline type-checking of
// dependencies possible.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export-data readers for the gc
// importer, with a fallback `go list` for paths outside the initial set
// (e.g. stdlib dependencies pulled in transitively by test corpora).
type exportLookup struct {
	dir     string
	exports map[string]string // import path → export data file
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		pkgs, err := goList(l.dir, path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		for _, p := range pkgs {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		if file, ok = l.exports[path]; !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, a directory inside a Go module). Dependencies are imported from
// export data; only the matched packages' non-test sources are parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	lk := &exportLookup{dir: dir, exports: make(map[string]string)}
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			lk.exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lk.lookup)
	var pkgs []*Package
	for _, lp := range targets {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := checkPackage(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as a
// single package with the given import path, resolving imports through
// `go list` run from moduleDir. This is the analysistest entry point: a
// testdata corpus is one directory, not a listable module package.
func LoadDir(moduleDir, pkgPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	lk := &exportLookup{dir: moduleDir, exports: make(map[string]string)}
	imp := importer.ForCompiler(fset, "gc", lk.lookup)
	return checkPackage(fset, pkgPath, files, imp)
}

// checkPackage parses files and type-checks them as one package.
func checkPackage(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
