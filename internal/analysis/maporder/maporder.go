// Package maporder flags `for range` over a map whose body is
// order-sensitive: Go randomizes map iteration order per run, so a body
// that appends to a slice, accumulates a float64, writes ordered output,
// or sends on a channel makes the result depend on that randomization —
// exactly the class of bug the repo's determinism contract (bit-identical
// seeded releases) forbids.
//
// The canonical safe idiom — collect keys, sort, iterate the sorted
// slice — is recognized and not flagged: a range body that only appends is
// allowed when the destination slice is passed to a sort call later in the
// same function. Everything else needs either a real fix (sort first) or a
// justified //detlint:allow maporder — e.g. when the accumulated result is
// provably order-independent, like summing integers into a counter.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"nodedp/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive bodies of range-over-map loops (slice append without a " +
		"subsequent sort, float accumulation, ordered output, channel send) in " +
		"determinism-critical packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc inspects one function body. Sort calls are collected across
// the whole body first so append-then-sort is recognized regardless of
// nesting.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorts := sortedAfter(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRange(pass, rs, sorts)
		return true
	})
}

// checkRange reports the first order-sensitive operation in one
// range-over-map body.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, sorts map[string]token.Pos) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.RangeStmt:
			if stmt != rs {
				// Nested ranges get their own reports; don't blame the
				// outer loop for the inner body.
				tv, ok := pass.TypesInfo.Types[stmt.X]
				if ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(rs.For, "map iteration order reaches a channel send (%s); receivers observe a random order", render(stmt.Chan))
		case *ast.AssignStmt:
			checkAssign(pass, rs, stmt, sorts)
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				checkOutputCall(pass, rs, call)
			}
		}
		return true
	})
}

// checkAssign flags slice appends with no later sort and float
// accumulation inside the range body.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, sorts map[string]token.Pos) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			dst := render(as.Lhs[i])
			if pos, sorted := sorts[dst]; sorted && pos > rs.End() {
				continue // collect-then-sort idiom
			}
			pass.Reportf(rs.For, "append to %s inside range over map: element order is random per run (sort %s afterward, or sort the keys first)", dst, dst)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(pass.TypesInfo.Types[as.Lhs[0]].Type) {
			pass.Reportf(rs.For, "float64 accumulation into %s inside range over map: float addition is non-associative, so the sum depends on iteration order", render(as.Lhs[0]))
		}
	}
}

// checkOutputCall flags writes of ordered output from inside the range
// body: fmt printing, io/buffer writes, and encoder calls.
func checkOutputCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch {
	case hasPrefix(name, "Fprint"), hasPrefix(name, "Print"),
		hasPrefix(name, "Write"), name == "Encode":
		pass.Reportf(rs.For, "%s called inside range over map writes output in random order; sort the keys first", render(call.Fun))
	}
}

// sortedAfter maps rendered slice expressions to the position of a sort
// call taking them as the first argument, anywhere in the body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt) map[string]token.Pos {
	sorts := make(map[string]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[pkg]
		if !ok {
			return true
		}
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
			sorts[render(call.Args[0])] = call.Pos()
		}
		return true
	})
	return sorts
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// render prints an expression compactly for diagnostics and for matching
// append destinations against sort arguments.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return render(e.X) + "[" + render(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.CallExpr:
		return render(e.Fun) + "(…)"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("%T", e)
	}
}
