package maporder_test

import (
	"testing"

	"nodedp/internal/analysis/analysistest"
	"nodedp/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src/a")
}
