// Package a is the maporder corpus: each case mirrors a shape that exists
// (or existed) in the repo. appendNoSort reproduces the pre-fix
// httpapi.cacheTotals / registry.sweepLocked sites — collecting map values
// into a slice with no subsequent sort.
package a

import (
	"fmt"
	"io"
	"sort"
)

// appendNoSort is the seed true positive: values collected in map order
// and used as-is (httpapi.cacheTotals before the PR 7 fix).
func appendNoSort(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "append to out inside range over map"
		out = append(out, v)
	}
	return out
}

// collectThenSort is the canonical safe idiom and must not be flagged.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// floatAccumulate: non-associative sum in map order.
func floatAccumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "float64 accumulation into total"
		total += v
	}
	return total
}

// intAccumulate: integer summation is associative and order-independent,
// but the analyzer cannot prove that — the annotation records the review.
func intAccumulate(m map[string]int) int {
	total := 0
	//detlint:allow maporder — integer summation is exactly associative, so the order of map iteration cannot change the result
	for _, v := range m {
		total = total + v
	}
	return total
}

// orderedOutput: writing inside the loop emits lines in random order.
func orderedOutput(w io.Writer, m map[string]int) {
	for k, v := range m { // want "Fprintf called inside range over map"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// channelSend: receivers observe a random order.
func channelSend(m map[string]int, ch chan int) {
	for _, v := range m { // want "channel send"
		ch <- v
	}
}

// deleteOnly mutates the map itself; nothing order-sensitive happens.
func deleteOnly(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
