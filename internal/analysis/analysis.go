// Package analysis is a minimal static-analysis framework modeled on
// golang.org/x/tools/go/analysis, built entirely on the standard library
// (go/ast + go/types, with type information imported from compiler export
// data via `go list -export`). The repo's no-new-deps rule keeps x/tools
// out of go.mod; the API below deliberately mirrors the x/tools shapes
// (Analyzer, Pass, Diagnostic) so the detlint suite could be ported onto
// the real framework by changing imports, not analyzer logic.
//
// The suite enforces the two contracts everything else in this repo leans
// on:
//
//   - Determinism: seeded releases are bit-identical across worker counts,
//     warm starts, incremental solves, HTTP, and snapshot reloads. The
//     maporder, rngsource, and floatorder analyzers turn the usual ways Go
//     code silently breaks that (map iteration order, ambient randomness
//     and wall clocks, non-associative float merges, float equality) into
//     compile-time CI failures.
//   - Privacy: only noised values may reach the wire. The wireleak
//     analyzer tracks types and fields annotated `//privacy:secret` (exact
//     f_Δ evaluations, raw edge lists) and flags any flow of them into
//     JSON marshalling or an HTTP response struct.
//
// Intentional violations are suppressed per site with
//
//	//detlint:allow <analyzer> — <justification>
//
// on the flagged line, the line above it, or the doc comment of the
// enclosing declaration. A suppression without a written justification is
// itself a lint error: the annotation is a reviewed claim, not an off
// switch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It is the x/tools
// go/analysis.Analyzer shape reduced to what the detlint suite needs.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow suppressions. Lowercase, no spaces.
	Name string
	// Doc is the analyzer's one-paragraph contract, shown by detlint help.
	Doc string
	// Run executes the check on one package.
	Run func(*Pass) error
	// Collect, when non-nil, runs over every loaded package (dependencies
	// included, before any Run) and contributes cross-package facts —
	// e.g. wireleak's registry of //privacy:secret types. All collected
	// facts are merged and visible to every Run via Pass.Facts. This is
	// the stdlib stand-in for the x/tools facts mechanism.
	Collect func(*Pass) map[string]bool
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed non-test source files of the package.
	// Test files are outside the determinism and privacy contracts (they
	// are never on a release path) and are not analyzed.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the union of every analyzer Collect result across all
	// loaded packages. Keys are analyzer-defined strings (wireleak uses
	// "pkgpath.Type" and "pkgpath.Type.Field").
	Facts map[string]bool
	// Report records a finding. The driver applies suppressions afterward.
	Report func(Diagnostic)
}

// Reportf is a printf convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
