package analysis

import "testing"

func TestScopeInScope(t *testing.T) {
	s := Scope{
		"maporder": {"internal/forestlp", "cmd/ccdp"},
		"wireleak": nil,
	}
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"maporder", "nodedp/internal/forestlp", true},
		{"maporder", "internal/forestlp", true}, // exact match, no module prefix
		{"maporder", "nodedp/internal/lp", false},
		{"maporder", "nodedp/internal/forestlpx", false}, // suffix match is per path segment
		{"maporder", "nodedp/cmd/ccdp", true},
		{"wireleak", "nodedp/internal/anything", true}, // empty list = everywhere
		{"rngsource", "nodedp/internal/lp", true},      // unlisted analyzer = everywhere
	}
	for _, c := range cases {
		if got := s.inScope(c.analyzer, c.pkg); got != c.want {
			t.Errorf("inScope(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestDefaultScopeExcludesExperiments(t *testing.T) {
	// internal/experiments measures wall time by design; rngsource must not
	// police it.
	if DefaultScope.inScope("rngsource", "nodedp/internal/experiments") {
		t.Error("rngsource must not cover internal/experiments")
	}
	if !DefaultScope.inScope("rngsource", "nodedp/internal/forestlp") {
		t.Error("rngsource must cover the release-path engine")
	}
	if !DefaultScope.inScope("wireleak", "nodedp/internal/experiments") {
		t.Error("wireleak runs everywhere, including experiments")
	}
}
