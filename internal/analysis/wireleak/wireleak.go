// Package wireleak statically enforces the privacy contract's wire
// boundary: values derived from the sensitive graph without noise — exact
// f_Δ evaluations, grid values, raw edge lists — must never flow into JSON
// marshalling or an HTTP response struct. Releases carry only noised
// values.
//
// The boundary is declared in the source: a type or struct field holding
// exact data-dependent values is annotated with a `//privacy:secret`
// comment on its declaration. The analyzer collects those annotations
// across every loaded package (run detlint over ./... so cross-package
// annotations are visible) and flags:
//
//   - any argument of a JSON sink — json.Marshal, json.MarshalIndent,
//     (*json.Encoder).Encode, plus repo-configured sinks like httpapi's
//     writeJSON — whose static type transitively contains a secret type or
//     field. Traversal follows struct fields (stopping at `json:"-"`),
//     pointers, slices, arrays, and maps.
//   - any field of a wire-shaped struct (name ending in Response, Info,
//     Item, or Body) whose type contains a secret: the declaration is the
//     leak, before any marshal call exists.
//
// An intentional flow — e.g. the ingestion path uploading the sensitive
// graph itself to a trusted daemon — carries a justified
// //detlint:allow wireleak annotation.
package wireleak

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"nodedp/internal/analysis"
)

// defaultSinks maps a function's types.Func FullName to the index of the
// argument that gets marshalled.
var defaultSinks = map[string]int{
	"encoding/json.Marshal":             0,
	"encoding/json.MarshalIndent":       0,
	"(*encoding/json.Encoder).Encode":   0,
	"nodedp/internal/httpapi.writeJSON": 2,
}

// wireStructRe matches struct type names that are wire response shapes.
var wireStructRe = regexp.MustCompile(`(Response|Info|Item|Body)$`)

// Analyzer is the default wireleak instance.
var Analyzer = New(nil)

// New builds a wireleak analyzer with extra sinks merged over the
// defaults (FullName → marshalled-argument index; a negative index
// disables a default).
func New(extraSinks map[string]int) *analysis.Analyzer {
	sinks := make(map[string]int, len(defaultSinks)+len(extraSinks))
	for k, v := range defaultSinks {
		sinks[k] = v
	}
	for k, v := range extraSinks {
		sinks[k] = v
	}
	return &analysis.Analyzer{
		Name: "wireleak",
		Doc: "flag flows of //privacy:secret types (exact f_Δ evaluations, raw edge lists) " +
			"into JSON marshalling or wire response structs",
		Collect: collect,
		Run:     func(pass *analysis.Pass) error { return run(pass, sinks) },
	}
}

// collect registers //privacy:secret annotations as facts: "pkg.Type" for
// annotated types, "pkg.Type.Field" for annotated fields.
func collect(pass *analysis.Pass) map[string]bool {
	facts := make(map[string]bool)
	pkgPath := pass.Pkg.Path()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declSecret := isSecretComment(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				typeKey := pkgPath + "." + ts.Name.Name
				if declSecret || isSecretComment(ts.Doc) || isSecretComment(ts.Comment) {
					facts[typeKey] = true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !isSecretComment(field.Doc) && !isSecretComment(field.Comment) {
						continue
					}
					for _, name := range field.Names {
						facts[typeKey+"."+name.Name] = true
					}
				}
			}
		}
	}
	return facts
}

func isSecretComment(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "privacy:secret") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, sinks map[string]int) error {
	w := &walker{facts: pass.Facts}
	for _, file := range pass.Files {
		// Wire-shaped struct declarations with secret-typed fields.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !wireStructRe.MatchString(ts.Name.Name) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if excludedByJSONTag(field) {
						continue // json:"-" never reaches the wire
					}
					t := pass.TypesInfo.Types[field.Type].Type
					if path := w.secretPath(t); path != "" {
						pass.Reportf(field.Pos(), "wire struct %s carries secret %s: exact data-dependent values must not be declared on a response shape", ts.Name.Name, path)
					}
				}
			}
		}
		// JSON sink calls with secret-containing arguments.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil {
				return true
			}
			idx, ok := sinks[fn.FullName()]
			if !ok || idx < 0 || idx >= len(call.Args) {
				return true
			}
			t := pass.TypesInfo.Types[call.Args[idx]].Type
			if path := w.secretPath(t); path != "" {
				pass.Reportf(call.Pos(), "%s marshals a value containing secret %s: only noised releases may reach the wire", fn.Name(), path)
			}
			return true
		})
	}
	return nil
}

// walker answers "does this type transitively contain a secret?" against
// the collected facts, returning the dotted path of the first secret found
// (empty when clean).
type walker struct {
	facts map[string]bool
}

func (w *walker) secretPath(t types.Type) string {
	return w.walk(t, make(map[types.Type]bool))
}

func (w *walker) walk(t types.Type, visited map[types.Type]bool) string {
	if t == nil || visited[t] {
		return ""
	}
	visited[t] = true
	t = types.Unalias(t)
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		key := ""
		if obj.Pkg() != nil {
			key = obj.Pkg().Path() + "." + obj.Name()
			if w.facts[key] {
				return key
			}
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			return w.walkStruct(st, key, visited)
		}
		return w.walk(t.Underlying(), visited)
	case *types.Struct:
		return w.walkStruct(t, "", visited)
	case *types.Pointer:
		return w.walk(t.Elem(), visited)
	case *types.Slice:
		return w.walk(t.Elem(), visited)
	case *types.Array:
		return w.walk(t.Elem(), visited)
	case *types.Map:
		if p := w.walk(t.Key(), visited); p != "" {
			return p
		}
		return w.walk(t.Elem(), visited)
	}
	return ""
}

// walkStruct checks a struct's fields; ownerKey is "pkg.Type" when the
// struct is the underlying type of a named type (annotated fields are
// keyed through it).
func (w *walker) walkStruct(st *types.Struct, ownerKey string, visited map[types.Type]bool) string {
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if jsonName, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ","); jsonName == "-" {
			continue // explicitly excluded from marshalling
		}
		if ownerKey != "" && w.facts[ownerKey+"."+field.Name()] {
			return ownerKey + "." + field.Name()
		}
		if p := w.walk(field.Type(), visited); p != "" {
			return p
		}
	}
	return ""
}

// excludedByJSONTag reports whether an AST struct field carries json:"-".
func excludedByJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	tag, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	jsonName, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
	return jsonName == "-"
}

// calledFunc resolves the *types.Func a call invokes, if any.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
