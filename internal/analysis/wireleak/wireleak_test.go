package wireleak_test

import (
	"testing"

	"nodedp/internal/analysis/analysistest"
	"nodedp/internal/analysis/wireleak"
)

func TestWireleak(t *testing.T) {
	analysistest.Run(t, wireleak.Analyzer, "testdata/src/a")
}
