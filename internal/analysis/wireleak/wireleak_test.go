package wireleak_test

import (
	"testing"

	"nodedp/internal/analysis/analysistest"
	"nodedp/internal/analysis/wireleak"
)

func TestWireleak(t *testing.T) {
	analysistest.Run(t, wireleak.Analyzer, "testdata/src/a")
}

// TestWireleakExtraSinks covers New's caller-provided sinks — the hook
// cmd/detlint uses to treat (*obs.Span).SetAny as a wire sink, since span
// attributes leave the process via GET /v1/admin/traces.
func TestWireleakExtraSinks(t *testing.T) {
	analysistest.Run(t, wireleak.New(map[string]int{"(*b.Span).SetAny": 1}), "testdata/src/b")
}
