// Package a is the wireleak corpus. GridEval/DeltaEval mirror the repo's
// secret-annotated types; QueryResponse mirrors the clean wire shape;
// LeakyResponse and the marshal sites are the regressions the analyzer
// must catch (a constructed revert of the contract PR 4 established:
// exact evaluations never reach the wire).
package a

import (
	"encoding/json"
	"io"
)

// GridEval mirrors core.GridEval.
//
//privacy:secret — exact f_Δ evaluations.
type GridEval struct {
	Grid    []float64
	FDeltas []float64
}

// DeltaEval mirrors core.DeltaEval.
//
//privacy:secret
type DeltaEval struct {
	Delta  float64
	FDelta float64
}

// Result mirrors core.Result: released fields plus secret diagnostics.
type Result struct {
	Value float64
	Delta float64
	// FDelta is exact, pre-noise.
	//privacy:secret
	FDelta      float64
	Evaluations []DeltaEval
}

// QueryResponse is a clean wire shape: only noised/released values.
type QueryResponse struct {
	Value    float64 `json:"value"`
	DeltaHat float64 `json:"delta_hat"`
}

// LeakyResponse declares secret-holding fields on a wire shape — the
// declaration itself is the leak.
type LeakyResponse struct {
	Value       float64     `json:"value"`
	Evaluations []DeltaEval `json:"evaluations"` // want "wire struct LeakyResponse carries secret a.DeltaEval"
}

// RedactedResponse holds a secret field but excludes it from marshalling;
// json:"-" stops the traversal.
type RedactedResponse struct {
	Value float64  `json:"value"`
	Plan  GridEval `json:"-"`
}

func marshalSecretType(ge GridEval) ([]byte, error) {
	return json.Marshal(ge) // want "Marshal marshals a value containing secret a.GridEval"
}

func marshalSecretField(r Result) ([]byte, error) {
	return json.Marshal(r) // want "Marshal marshals a value containing secret a.Result.FDelta"
}

func encodeSecret(w io.Writer, evals []DeltaEval) error {
	return json.NewEncoder(w).Encode(evals) // want "Encode marshals a value containing secret a.DeltaEval"
}

func marshalClean(q QueryResponse) ([]byte, error) {
	return json.Marshal(q)
}

func marshalRedacted(r RedactedResponse) ([]byte, error) {
	return json.Marshal(r)
}

// ingestionUpload is the annotated intentional flow: the client side of
// the upload path ships the sensitive graph to the trusted daemon.
func ingestionUpload(edges [][2]int) ([]byte, error) {
	type CreateSessionRequest struct {
		//privacy:secret
		Edges [][2]int `json:"edges"`
	}
	//detlint:allow wireleak — ingestion path: uploading the sensitive graph to the trusted daemon is the input channel, not a release
	return json.Marshal(CreateSessionRequest{Edges: edges})
}
