// Package b is the extra-sink corpus: a stand-in for internal/obs.Span
// whose SetAny is registered as a caller-provided sink (span attributes
// reach the wire via the admin traces endpoint, so a secret flowing into
// one is a leak exactly like a marshalled response field).
package b

// DeltaEval mirrors core.DeltaEval.
//
//privacy:secret
type DeltaEval struct {
	Delta  float64
	FDelta float64
}

// Span mirrors obs.Span.
type Span struct{}

// SetAny mirrors (*obs.Span).SetAny: the value lands in a span attribute.
func (s *Span) SetAny(key string, v any) {}

func leakIntoSpan(sp *Span, ev DeltaEval) {
	sp.SetAny("eval", ev) // want "SetAny marshals a value containing secret b.DeltaEval"
}

func cleanIntoSpan(sp *Span, value float64) {
	sp.SetAny("value", value) // released scalars are fine
}
