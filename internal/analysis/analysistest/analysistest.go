// Package analysistest runs an analyzer over a testdata corpus and checks
// its diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's stdlib-only
// framework.
//
// A corpus is one directory of .go files (conventionally
// <analyzer>/testdata/src/<pkg>). A line expecting a diagnostic carries a
// trailing comment
//
//	// want "regexp"
//
// (several quoted regexps for several diagnostics on one line). Every
// diagnostic must be wanted and every want matched, so the corpora pin
// both the true positives and the allowed negatives of each analyzer.
// //detlint:allow directives in a corpus are honored, which is how the
// suppression workflow itself is tested.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"nodedp/internal/analysis"
)

var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads dir as a single package and checks analyzer against its
// // want annotations. Scope is not applied: corpora exercise analyzer
// logic directly.
func Run(t *testing.T, analyzer *analysis.Analyzer, dir string) {
	t.Helper()
	moduleDir := moduleRoot(t)
	pkg, err := analysis.LoadDir(moduleDir, filepath.Base(dir), dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}

	findings, err := analysis.RunPackages([]*analysis.Package{pkg}, []*analysis.Analyzer{analyzer}, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, dir, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := keyOf(pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						// Double-quoted patterns use Go string escaping, so
						// \\( in the comment is \( in the regexp.
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), m[2], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		file, line := splitPos(t, f.Pos)
		key := keyOf(file, line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// keyOf normalizes a file position to its base name: the corpus is one
// directory, and base names keep want keys stable across checkouts.
func keyOf(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

func splitPos(t *testing.T, pos string) (file string, line int) {
	t.Helper()
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		t.Fatalf("unparseable position %q", pos)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("unparseable position %q: %v", pos, err)
	}
	return parts[0], line
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}
