package analysis

// The detlint driver: load packages, collect cross-package facts, run each
// analyzer over the packages in its scope, and apply suppressions. Scope
// lives here rather than in the analyzers so the same analyzer logic runs
// unscoped in tests and scoped in CI.

import (
	"fmt"
	"sort"
	"strings"
)

// Finding is one unsuppressed diagnostic, position pre-rendered as
// file:line:col.
type Finding struct {
	Analyzer string
	Pos      string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Scope decides which packages an analyzer runs on, by import-path suffix
// match against its entries (an empty list means every package).
type Scope map[string][]string

// DefaultScope is the repo's contract map.
//
//   - maporder runs on the determinism-critical packages named in the
//     contract: everything between a seeded query and its released bytes,
//     plus the snapshot and wire layers whose output must be stable.
//   - rngsource covers the release path end to end — any ambient
//     randomness or wall-clock read there either breaks seeded
//     reproducibility or is an operational clock that must be annotated.
//     internal/experiments and the bench harness measure wall time by
//     design and are out of scope.
//   - floatorder runs where float64 values are merged across workers or
//     compared: the LP engine, the evaluator, and the serving layers.
//   - wireleak runs everywhere; //privacy:secret annotations and the
//     sinks decide what is flagged.
var DefaultScope = Scope{
	"maporder": {
		"internal/forestlp", "internal/lp", "internal/core", "internal/graph",
		"internal/maxflow", "internal/serve", "internal/snapshot", "internal/httpapi",
		"cmd/ccdp", "cmd/detlint",
	},
	"rngsource": {
		"internal/forestlp", "internal/lp", "internal/core", "internal/graph",
		"internal/maxflow", "internal/serve", "internal/snapshot", "internal/httpapi",
		"internal/dpnoise", "internal/mechanism", "internal/privacy",
		"internal/spanning", "internal/downsens", "internal/lipschitz",
		"internal/unionfind", "internal/enumerate", "internal/generate",
		"internal/baseline", "nodedp", "cmd/ccdp",
	},
	"floatorder": {
		"internal/forestlp", "internal/lp", "internal/core", "internal/graph",
		"internal/maxflow", "internal/serve", "internal/snapshot", "internal/httpapi",
		"internal/mechanism", "internal/dpnoise", "internal/privacy", "nodedp",
	},
	"wireleak": nil, // everywhere
}

// inScope reports whether the analyzer runs on pkgPath under s.
func (s Scope) inScope(analyzer, pkgPath string) bool {
	pats, ok := s[analyzer]
	if !ok || len(pats) == 0 {
		return true
	}
	for _, p := range pats {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// Run loads the packages matching patterns from dir, runs every analyzer
// over its in-scope packages, and returns the unsuppressed findings sorted
// by position. Suppression problems (unexplained or malformed
// //detlint:allow directives anywhere in the loaded packages) are returned
// as findings regardless of scope.
func Run(dir string, patterns []string, analyzers []*Analyzer, scope Scope) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers, scope)
}

// RunPackages is Run over already-loaded packages.
func RunPackages(pkgs []*Package, analyzers []*Analyzer, scope Scope) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Phase 1: cross-package facts. Every collector sees every loaded
	// package — run detlint over ./... so annotations in one package are
	// visible when analyzing another.
	facts := make(map[string]bool)
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range pkgs {
			for k, v := range a.Collect(passFor(a, pkg, facts, nil)) {
				facts[k] = v
			}
		}
	}

	// Phase 2: run analyzers, filter through suppressions.
	var findings []Finding
	for _, pkg := range pkgs {
		idx, bad := collectSuppressions(pkg, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			if !scope.inScope(a.Name, pkg.PkgPath) {
				continue
			}
			var diags []Diagnostic
			pass := passFor(a, pkg, facts, func(d Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if idx.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos.String(), Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

func passFor(a *Analyzer, pkg *Package, facts map[string]bool, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Facts:     facts,
		Report:    report,
	}
}
