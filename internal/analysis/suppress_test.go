package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds a single-file Package with just the fields the
// suppression machinery reads (Fset, Files).
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

// position fabricates the token.Position a diagnostic at file:line would
// render to.
func position(pkg *Package, file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

var known = map[string]bool{"maporder": true, "rngsource": true}

func TestCollectSuppressions(t *testing.T) {
	const src = `package p

//detlint:allow maporder — integer sum is order-independent
var a int

//detlint:allow maporder
var b int

//detlint:allow nosuch — reason given
var c int

//detlint:allowmaporder broken
var d int
`
	pkg := parseSrc(t, src)
	idx, bad := collectSuppressions(pkg, known)

	var msgs []string
	for _, f := range bad {
		msgs = append(msgs, f.Pos+" "+f.Message)
	}
	if len(bad) != 3 {
		t.Fatalf("want 3 bad directives, got %d:\n%s", len(bad), strings.Join(msgs, "\n"))
	}
	wantSubstr := []string{
		"unexplained suppression of \"maporder\"",
		"unknown analyzer \"nosuch\"",
		"malformed suppression",
	}
	for i, sub := range wantSubstr {
		if !strings.Contains(msgs[i], sub) {
			t.Errorf("bad[%d] = %q, want substring %q", i, msgs[i], sub)
		}
	}

	// The one valid directive suppresses on its line and the next.
	if !idx.suppressed("maporder", position(pkg, "src.go", 3)) {
		t.Error("valid directive does not suppress its own line")
	}
	if !idx.suppressed("maporder", position(pkg, "src.go", 4)) {
		t.Error("valid directive does not suppress the following line")
	}
	if idx.suppressed("maporder", position(pkg, "src.go", 5)) {
		t.Error("directive leaks past the following line")
	}
	if idx.suppressed("rngsource", position(pkg, "src.go", 4)) {
		t.Error("directive suppresses the wrong analyzer")
	}
}

func TestSuppressionCoversWholeDecl(t *testing.T) {
	const src = `package p

// mergeShards folds per-shard results in index order.
//
//detlint:allow maporder — index-ordered fold, iteration order is fixed
func mergeShards() {
	_ = 1
	_ = 2
	_ = 3
}

func after() {}
`
	pkg := parseSrc(t, src)
	idx, bad := collectSuppressions(pkg, known)
	if len(bad) != 0 {
		t.Fatalf("unexpected bad directives: %v", bad)
	}
	for line := 5; line <= 10; line++ {
		if !idx.suppressed("maporder", position(pkg, "src.go", line)) {
			t.Errorf("doc-comment directive does not cover decl line %d", line)
		}
	}
	if idx.suppressed("maporder", position(pkg, "src.go", 12)) {
		t.Error("doc-comment directive leaks past the declaration")
	}
}

func TestDoubleDashSeparator(t *testing.T) {
	const src = `package p

//detlint:allow rngsource -- operational clock, reporting only
var a int
`
	pkg := parseSrc(t, src)
	idx, bad := collectSuppressions(pkg, known)
	if len(bad) != 0 {
		t.Fatalf("unexpected bad directives: %v", bad)
	}
	if !idx.suppressed("rngsource", position(pkg, "src.go", 4)) {
		t.Error("-- separator form not honored")
	}
}
