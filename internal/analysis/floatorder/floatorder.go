// Package floatorder guards the determinism of float64 arithmetic in
// concurrent and comparison-heavy code.
//
// Two rules:
//
//  1. In a function that spawns goroutines or receives from channels (a
//     "concurrency-bearing" function: it plausibly merges worker-pool
//     results), a compound float assignment inside a loop (x += v, and the
//     -=, *=, /= forms) is flagged: float addition is non-associative, so
//     accumulating in arrival order yields run-dependent bits. The repo's
//     deterministic merge helpers accumulate in a fixed (vertex or shard
//     index) order instead — those sites carry a declaration-level
//     //detlint:allow floatorder — annotation naming the ordering
//     argument.
//
//  2. == and != between non-constant float64 operands are flagged:
//     exact float equality is only meaningful against a sentinel constant
//     (which stays allowed) or inside the certified comparison helpers the
//     LP fast path uses, which justify themselves with an annotation.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"nodedp/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc: "flag non-associative float64 accumulation in goroutine-bearing functions and " +
		"==/!= between non-constant float64 values",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEquality(pass, fd.Body)
			if bearsConcurrency(fd.Body) {
				checkAccumulation(pass, fd.Body)
			}
		}
	}
	return nil
}

// bearsConcurrency reports whether the body spawns goroutines or receives
// from channels — the shapes under which values arrive in scheduler order.
func bearsConcurrency(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

// checkAccumulation flags compound float assignments inside loops.
func checkAccumulation(pass *analysis.Pass, body *ast.BlockStmt) {
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop(m, depth+1)
				return false
			case *ast.AssignStmt:
				if depth == 0 {
					return true
				}
				switch m.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if len(m.Lhs) == 1 && isFloat(typeOf(pass, m.Lhs[0])) {
						pass.Reportf(m.Pos(), "float64 accumulation in a loop of a concurrency-bearing function: "+
							"addition is non-associative, so the result depends on arrival order; merge through a "+
							"deterministic (index-ordered) helper or annotate why the order is fixed")
					}
				}
			}
			return true
		})
	}
	inLoop(body, 0)
}

// checkEquality flags ==/!= between non-constant floats.
func checkEquality(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
		if !isFloat(xt.Type) || !isFloat(yt.Type) {
			return true
		}
		if xt.Value != nil || yt.Value != nil {
			return true // sentinel comparison against a constant is exact
		}
		pass.Reportf(be.OpPos, "%s between non-constant float64 values: use a certified comparison "+
			"(exact rational check or explicit tolerance) or annotate why bit equality is intended", be.Op)
		return true
	})
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
