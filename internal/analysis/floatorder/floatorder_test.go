package floatorder_test

import (
	"testing"

	"nodedp/internal/analysis/analysistest"
	"nodedp/internal/analysis/floatorder"
)

func TestFloatorder(t *testing.T) {
	analysistest.Run(t, floatorder.Analyzer, "testdata/src/a")
}
