// Package a is the floatorder corpus. arrivalOrderSum is the bug class
// the analyzer exists for: accumulating worker results in completion
// order. indexOrderedMerge is the repo's deterministic-merge shape
// (forestlp's grid merger), justified by annotation. The equality cases
// pin the constant-sentinel exemption and the tie-break annotation shape
// used by lp's pivot selection.
package a

// arrivalOrderSum folds worker results in the order they arrive — float
// addition is non-associative, so the bits depend on scheduling.
func arrivalOrderSum(work []float64) float64 {
	ch := make(chan float64)
	for _, w := range work {
		go func(v float64) { ch <- v * v }(w)
	}
	total := 0.0
	for range work {
		v := <-ch
		total += v // want "float64 accumulation in a loop of a concurrency-bearing function"
	}
	return total
}

// indexOrderedMerge collects first, then folds in index order — the
// deterministic merge the engine uses. The collection into the slots
// slice is order-safe (one writer per index); the fold is annotated
// because the analyzer cannot see that the iteration order is fixed.
func indexOrderedMerge(work []float64) float64 {
	ch := make(chan int)
	slots := make([]float64, len(work))
	for i, w := range work {
		go func(i int, v float64) { slots[i] = v * v; ch <- i }(i, w)
	}
	for range work {
		<-ch
	}
	total := 0.0
	for _, v := range slots {
		//detlint:allow floatorder — deterministic merge: slots is folded in index order after all workers finish, so the summation order is fixed
		total += v
	}
	return total
}

// serialSum has no goroutines or channels: plain sequential accumulation
// is deterministic and not flagged.
func serialSum(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

// variableEquality compares two computed floats for bit equality.
func variableEquality(a, b float64) bool {
	return a == b // want "== between non-constant float64 values"
}

func variableInequality(a, b float64) bool {
	return a != b // want "!= between non-constant float64 values"
}

// sentinelEquality against a constant is exact and allowed (the
// Options-defaulting shape: if o.Beta == 0 { … }).
func sentinelEquality(x float64) bool {
	return x == 0
}

// tieBreak is the lp pivot-selection shape: bit-exact tie detection is
// intended and annotated.
func tieBreak(rhs, worst float64, i, leave int) bool {
	//detlint:allow floatorder — bit-exact tie detection: ties must defer to the index rule for deterministic pivoting
	return rhs < worst || (rhs == worst && i < leave)
}
