package experiments

import (
	"context"
	"time"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/serve"
)

// E22LiveGraphDeltas validates the live-graph mutation layer: ApplyDelta
// on a many-component workload must (1) release bit-for-bit what a cold
// open of the mutated graph releases, (2) re-plan only the components the
// delta touched — the untouched majority is reused from the component
// sub-plan cache — and (3) amortize: the delta re-plan is measurably
// cheaper than re-opening the mutated graph against an empty cache. A
// rejected delta (injected overlap error) must leave the fingerprint and
// every subsequent release untouched.
func E22LiveGraphDeltas(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E22",
		Title:   "live-graph deltas: component-local re-planning over the sub-plan cache",
		Claim:   "a mutated session is bit-identical to a cold open of the mutated graph, at the cost of re-planning only the touched components (f_Δ is additive over components)",
		Columns: []string{"check", "want", "got", "pass"},
	}
	clusters, size, deltas := 12, 20, 8
	if cfg.Quick {
		clusters, size, deltas = 6, 14, 4
	}
	sizes := make([]int, clusters)
	for i := range sizes {
		sizes[i] = size
	}
	rng := generate.NewRand(cfg.Seed*1409 + 7)
	g := generate.PlantedComponents(sizes, 2.5/float64(size), rng)
	ctx := context.Background()

	cache := core.NewPlanCache(64)
	sess, err := serve.Open(ctx, g, serve.SessionOptions{
		TotalBudget: float64(4 * deltas), Cache: cache,
	})
	if err != nil {
		return nil, err
	}

	// A rolling mutation stream: delta i adds a bridge between blocks
	// 2i and 2i+1 (merging two components) and removes the bridge the
	// previous delta added (splitting them again). Each delta touches at
	// most three components out of `clusters`.
	bridge := func(i int) graph.Edge {
		a, b := (2*i)%clusters, (2*i+1)%clusters
		return graph.NewEdge(a*size, b*size)
	}
	live := g
	bitIdentical, reusedMajority := 0, 0
	var deltaPlanNS, coldPlanNS int64
	for i := 0; i < deltas; i++ {
		adds := []graph.Edge{bridge(i)}
		var removes []graph.Edge
		if i > 0 {
			removes = append(removes, bridge(i-1))
		}

		start := time.Now()
		res, err := sess.ApplyDelta(ctx, adds, removes)
		if err != nil {
			return nil, err
		}
		deltaPlanNS += time.Since(start).Nanoseconds()
		// Reuse comes in two grades: a whole-plan cache hit (the mutation
		// cycled back to a previously served graph — zero re-planning) or
		// a sub-plan majority (most components reused verbatim).
		if res.PlanCacheHit || res.SubPlanHits > res.SubPlanMisses {
			reusedMajority++
		}

		// The cold control: the same mutated graph, a fresh session, an
		// empty cache (timed as the re-open the delta replaces).
		mutated, err := applyToGraph(live, adds, removes)
		if err != nil {
			return nil, err
		}
		live = mutated
		start = time.Now()
		cold, err := serve.Open(ctx, mutated, serve.SessionOptions{
			TotalBudget: 4, Cache: core.NewPlanCache(64),
		})
		if err != nil {
			return nil, err
		}
		coldPlanNS += time.Since(start).Nanoseconds()

		seed := cfg.Seed*1000 + uint64(i) + 1
		lr, err := sess.ComponentCount(ctx, serve.QueryOptions{Epsilon: 0.5, Seed: seed})
		if err != nil {
			return nil, err
		}
		cr, err := cold.ComponentCount(ctx, serve.QueryOptions{Epsilon: 0.5, Seed: seed})
		if err != nil {
			return nil, err
		}
		if lr.Value == cr.Value && lr.Delta == cr.Delta && lr.NHat == cr.NHat {
			bitIdentical++
		}
	}
	t.AddRow("deltas bit-identical to cold open", deltas, bitIdentical, bitIdentical == deltas)
	t.AddRow("deltas reusing a component majority", deltas, reusedMajority, reusedMajority == deltas)

	// Rejected delta: an edge in both lists has no set semantics; the
	// session must be untouched — same fingerprint, same next release.
	fpBefore := sess.Fingerprint()
	e := bridge(deltas - 1)
	if _, err := sess.ApplyDelta(ctx, []graph.Edge{e}, []graph.Edge{e}); err == nil {
		t.AddRow("overlap delta rejected", true, false, false)
	} else {
		same := sess.Fingerprint() == fpBefore
		t.AddRow("overlap delta rejected", true, true, true)
		t.AddRow("rejected delta leaves fingerprint", true, same, same)
	}

	deltaUS := float64(deltaPlanNS) / float64(deltas) / 1e3
	coldUS := float64(coldPlanNS) / float64(deltas) / 1e3
	amort := coldUS / deltaUS
	t.AddRow("µs/re-plan: cold open vs delta", "delta ≪ cold",
		formatFloat(coldUS)+" vs "+formatFloat(deltaUS), amort > 1)
	t.Notes = append(t.Notes,
		"every pass cell must be true except the re-plan timing row, a wall-clock measurement (amortization "+
			formatFloat(amort)+"× here); deltas spend no privacy budget — the boundary queries do")
	return t, nil
}

// applyToGraph rebuilds base minus removes plus adds as a fresh graph.
func applyToGraph(base *graph.Graph, adds, removes []graph.Edge) (*graph.Graph, error) {
	drop := make(map[graph.Edge]bool, len(removes))
	for _, e := range removes {
		drop[graph.NewEdge(e.U, e.V)] = true
	}
	var edges []graph.Edge
	for _, e := range base.Edges() {
		if !drop[e] {
			edges = append(edges, e)
		}
	}
	edges = append(edges, adds...)
	return graph.FromEdges(base.N(), edges)
}
