package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/spanning"
)

// E14LPScaling profiles the cutting-plane evaluator: LP solves, cuts,
// max-flow calls, simplex pivots and wall time as the input grows. It
// substantiates the "polynomial time" claim of Theorem 1.3 for the
// simplex-based substitute (DESIGN.md).
func E14LPScaling(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "cutting-plane evaluator scaling (Δ=2, ER c=2 giant component)",
		Claim:   "Lemma 3.3(2): f_Δ computable in polynomial time",
		Columns: []string{"n", "m", "LP-solves", "cuts", "maxflow-calls", "pivots", "fastpath-hits", "ms"},
	}
	ns := []int{50, 100, 200, 400}
	if cfg.Quick {
		ns = []int{40, 80, 160}
	}
	for _, n := range ns {
		rng := generate.NewRand(cfg.Seed*89 + uint64(n))
		g := generate.ErdosRenyi(n, 2/float64(n), rng)
		start := time.Now()
		_, stats, err := forestlp.Value(g, 2, forestlp.Options{})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.AddRow(n, g.M(), stats.LPSolves, stats.CutsAdded, stats.MaxFlowCalls,
			stats.SimplexPivots, stats.FastPathHits, float64(elapsed.Microseconds())/1000)
	}
	t.Notes = append(t.Notes, "columns should grow polynomially (and modestly) with n")
	return t, nil
}

// F1RepairTrace reproduces Figure 1: a deterministic walk-through of
// Algorithm 3's local repairs on a worked example. The trace lines double
// as the output of examples/repairdemo.
func F1RepairTrace(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "local repair walk-through (Figure 1)",
		Claim:   "Algorithm 3 / Claim 4.1: repairs move along a path and terminate",
		Columns: []string{"step", "action"},
	}
	g, trace, forest, witness, err := RepairDemoGraph(2)
	if err != nil {
		return nil, err
	}
	for i, line := range trace {
		t.AddRow(i+1, line)
	}
	switch {
	case witness != nil:
		t.Notes = append(t.Notes, fmt.Sprintf("blocked with witness %+v", witness))
	case forest != nil:
		t.Notes = append(t.Notes, fmt.Sprintf(
			"final spanning forest (max degree %d ≤ Δ=2): %v",
			graph.MaxDegreeOfEdgeSet(g.N(), forest), forest))
	}
	if !strings.Contains(strings.Join(trace, "\n"), "repair at") {
		t.Notes = append(t.Notes, "UNEXPECTED: demo graph triggered no repairs")
	}
	return t, nil
}

// RepairDemoGraph builds the worked example used by F1 and by
// examples/repairdemo: a wheel-ish graph whose BFS insertion order forces
// at least one local repair at the given Δ, plus the traced run.
func RepairDemoGraph(delta int) (*graph.Graph, []string, []graph.Edge, *spanning.Star, error) {
	// Triangle fan: center 0 adjacent to 1..5, with consecutive leaves
	// adjacent (a fan). s(G) < 3 ... the fan has induced 2-stars only at
	// the rim ends, so a spanning 2-forest exists but the naive insertion
	// piles degree onto the center, forcing repairs.
	g := graph.New(6)
	edges := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(0, 2), graph.NewEdge(0, 3),
		graph.NewEdge(0, 4), graph.NewEdge(0, 5),
		graph.NewEdge(1, 2), graph.NewEdge(2, 3), graph.NewEdge(3, 4),
		graph.NewEdge(4, 5),
	}
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	var trace []string
	forest, witness, err := spanning.RepairWithTrace(g, delta, func(s string) {
		trace = append(trace, s)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return g, trace, forest, witness, nil
}

// EpsilonSweep is a supplementary table: error of Algorithm 1 versus ε on a
// fixed geometric graph, validating the 1/ε scaling of Theorem 1.3.
func EpsilonSweep(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "error versus ε on a fixed geometric graph",
		Claim:   "Theorem 1.3: error scales as 1/ε",
		Columns: []string{"eps", "median|err|", "p95|err|", "median·eps"},
	}
	n := 300
	trials := 10
	if cfg.Quick {
		n = 120
		trials = 5
	}
	g := generate.Geometric(n, 1.2/math.Sqrt(float64(n)), generate.NewRand(cfg.Seed*97))
	fsf := float64(g.SpanningForestSize())
	for _, eps := range []float64{0.25, 0.5, 1, 2, 4} {
		prep, err := prepared(g, eps, cfg.Seed*101+uint64(eps*100))
		if err != nil {
			return nil, err
		}
		var errs []float64
		for s := 0; s < trials; s++ {
			res, err := prep.Release()
			if err != nil {
				return nil, err
			}
			errs = append(errs, absErr(res.Value, fsf))
		}
		med := percentile(errs, 0.5)
		t.AddRow(eps, med, percentile(errs, 0.95), med*eps)
	}
	t.Notes = append(t.Notes, "median·eps should be roughly constant")
	return t, nil
}
