package experiments

import (
	"context"
	"errors"
	"time"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/serve"
)

// E17SessionServing validates the session-oriented serving layer on a
// multi-component workload: one session must build exactly one plan for an
// arbitrary mix of queries, seeded session releases must be bit-for-bit the
// one-shot releases, the composition accountant must admit exactly the
// affordable queries of an over-budget batch, and a second session on an
// identical graph (different edge insertion order) must be served from the
// fingerprint-keyed plan cache. The last row reports the amortization
// factor: µs per one-shot estimate vs. µs per session query.
func E17SessionServing(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "budget-accounted session serving over the fingerprint-keyed plan cache",
		Claim:   "one plan serves k queries bit-identically to one-shot runs; Σε_i is capped by the accountant (Lemma 2.4)",
		Columns: []string{"check", "want", "got", "pass"},
	}
	clusters, size, queries := 8, 24, 12
	if cfg.Quick {
		clusters, size, queries = 4, 16, 8
	}
	sizes := make([]int, clusters)
	for i := range sizes {
		sizes[i] = size
	}
	rng := generate.NewRand(cfg.Seed*977 + 13)
	g := generate.PlantedComponents(sizes, 2.5/float64(size), rng)
	ctx := context.Background()

	// --- one plan for k mixed queries, every release matching one-shot ---
	cache := core.NewPlanCache(4)
	sess, err := serve.Open(ctx, g, serve.SessionOptions{
		TotalBudget: float64(queries), Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	identical := 0
	for i := 0; i < queries; i++ {
		seed := cfg.Seed*1000 + uint64(i) + 1
		eps := 0.25 * float64(1+i%3)
		opts := core.Options{Epsilon: eps, Rand: generate.NewRand(seed)}
		var want core.Result
		var got core.Result
		switch i % 3 {
		case 0:
			if want, err = core.EstimateComponentCountCtx(ctx, g, opts); err != nil {
				return nil, err
			}
			got, err = sess.ComponentCount(ctx, serve.QueryOptions{Epsilon: eps, Seed: seed})
		case 1:
			if want, err = core.EstimateSpanningForestSizeCtx(ctx, g, opts); err != nil {
				return nil, err
			}
			got, err = sess.SpanningForestSize(ctx, serve.QueryOptions{Epsilon: eps, Seed: seed})
		default:
			if want, err = core.EstimateComponentCountKnownNCtx(ctx, g, opts); err != nil {
				return nil, err
			}
			got, err = sess.ComponentCount(ctx, serve.QueryOptions{Epsilon: eps, Mode: serve.KnownN, Seed: seed})
		}
		if err != nil {
			return nil, err
		}
		if got.Value == want.Value && got.Delta == want.Delta {
			identical++
		}
	}
	plans := sess.Stats().PlansBuilt
	t.AddRow("plans built for k queries", 1, plans, plans == 1)
	t.AddRow("releases bit-identical to one-shot", queries, identical, identical == queries)

	// --- accountant: over-budget batch admits exactly the affordable prefix ---
	acct, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: 1, Cache: cache})
	if err != nil {
		return nil, err
	}
	over := make([]serve.Request, 7)
	for i := range over {
		over[i] = serve.Request{Op: serve.OpComponentCount, Epsilon: 0.25, Seed: uint64(i + 1)}
	}
	admitted, budgetErrs := 0, 0
	for _, resp := range acct.Do(ctx, over) {
		switch {
		case resp.Err == nil:
			admitted++
		case errors.Is(resp.Err, serve.ErrBudgetExhausted):
			budgetErrs++
		}
	}
	t.AddRow("over-budget batch: admitted", 4, admitted, admitted == 4)
	t.AddRow("over-budget batch: ErrBudgetExhausted", 3, budgetErrs, budgetErrs == 3)
	t.AddRow("over-budget batch: spent ≤ total", true, acct.Spent() <= acct.TotalBudget(),
		acct.Spent() <= acct.TotalBudget())

	// --- plan cache: an identical re-read graph skips planning ---
	// Rebuild the same edge set in a shuffled insertion order, as if the
	// graph had been re-read from storage.
	edges := g.Edges()
	shuffle := generate.NewRand(cfg.Seed + 5)
	for i := len(edges) - 1; i > 0; i-- {
		j := shuffle.IntN(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	reread, err := graph.FromEdges(g.N(), edges)
	if err != nil {
		return nil, err
	}
	warm, err := serve.Open(ctx, reread, serve.SessionOptions{TotalBudget: 1, Cache: cache})
	if err != nil {
		return nil, err
	}
	t.AddRow("re-read graph hits plan cache", true, warm.Stats().CacheHit, warm.Stats().CacheHit)

	// --- throughput: amortized session query vs. one-shot ---
	const trials = 16
	oneShotStart := time.Now()
	for i := 0; i < trials; i++ {
		if _, err := core.EstimateComponentCountCtx(ctx, g,
			core.Options{Epsilon: 0.5, Rand: generate.NewRand(uint64(i) + 1)}); err != nil {
			return nil, err
		}
	}
	oneShotUS := float64(time.Since(oneShotStart).Microseconds()) / trials

	bench, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: float64(trials), Cache: cache})
	if err != nil {
		return nil, err
	}
	sessStart := time.Now()
	for i := 0; i < trials; i++ {
		if _, err := bench.ComponentCount(ctx, serve.QueryOptions{Epsilon: 0.5, Seed: uint64(i) + 1}); err != nil {
			return nil, err
		}
	}
	sessUS := float64(time.Since(sessStart).Microseconds()) / trials
	speedup := oneShotUS / sessUS
	t.AddRow("µs/query: one-shot vs session", "session ≪ one-shot",
		formatFloat(oneShotUS)+" vs "+formatFloat(sessUS), speedup > 1)

	t.Notes = append(t.Notes,
		"every pass cell must be true except the throughput row, which is a wall-clock measurement (speedup "+
			formatFloat(speedup)+"× here) and can fluctuate on loaded machines")
	return t, nil
}
