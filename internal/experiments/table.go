// Package experiments implements the reproduction suite described in
// DESIGN.md. The underlying paper (PODS 2023) is theory-only — it has no
// empirical tables — so each experiment here validates one of its
// quantitative claims (theorems, lemmas, and the Section 1.1.4 graph-family
// analyses) and emits a table. cmd/experiments regenerates every table;
// bench_test.go wires each experiment to a benchmark; EXPERIMENTS.md
// records representative output with commentary.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (E1..E14, F1, F2).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper statement being validated.
	Claim string
	// Columns are the header names.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes are free-form trailing remarks (caveats, pass/fail verdicts).
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		b.WriteString("   ")
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Config scales the experiment suite.
type Config struct {
	// Quick shrinks sizes/trials so the whole suite runs in seconds (the
	// benchmark wiring uses Quick; cmd/experiments -full disables it).
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

// statistics helpers --------------------------------------------------------

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func maxFloat(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func absErr(a, b float64) float64 { return math.Abs(a - b) }
