package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode —
// the integration test for the whole reproduction pipeline. Each table must
// render and must not report violations in its failure columns.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 1}
	for _, entry := range Registry() {
		entry := entry
		t.Run(entry.ID, func(t *testing.T) {
			table, err := entry.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", entry.ID, err)
			}
			if table.ID != entry.ID && entry.ID != "E0" {
				t.Fatalf("table id %q under registry id %q", table.ID, entry.ID)
			}
			if len(table.Columns) == 0 || len(table.Rows) == 0 {
				t.Fatalf("%s: empty table", entry.ID)
			}
			var buf bytes.Buffer
			table.Fprint(&buf)
			out := buf.String()
			if !strings.Contains(out, table.Title) {
				t.Fatalf("%s: rendering lost the title:\n%s", entry.ID, out)
			}
			for _, note := range table.Notes {
				if strings.Contains(note, "UNEXPECTED") {
					t.Fatalf("%s: %s", entry.ID, note)
				}
			}
			assertNoViolations(t, table)
		})
	}
}

// assertNoViolations inspects the table's violation-style columns: any
// column whose name contains "violation" or "fails" must be all zeros, and
// boolean "pass"/"tight" columns must be all true.
func assertNoViolations(t *testing.T, table *Table) {
	t.Helper()
	for ci, col := range table.Columns {
		lower := strings.ToLower(col)
		wantZero := strings.Contains(lower, "violation") || strings.Contains(lower, "fails") ||
			strings.Contains(lower, "exceeded") || strings.Contains(lower, "not-spanning")
		wantTrue := lower == "pass" || lower == "tight"
		if !wantZero && !wantTrue {
			continue
		}
		for _, row := range table.Rows {
			if ci >= len(row) {
				continue
			}
			cell := row[ci]
			if wantZero && cell != "0" {
				t.Fatalf("table %s: column %q has value %q, want 0 (row %v)", table.ID, col, cell, row)
			}
			if wantTrue && cell != "true" {
				t.Fatalf("table %s: column %q has value %q, want true (row %v)", table.ID, col, cell, row)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("E4"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestTableFormatting(t *testing.T) {
	table := &Table{
		ID:      "X",
		Title:   "demo",
		Claim:   "none",
		Columns: []string{"a", "bb"},
	}
	table.AddRow(1.0, "x")
	table.AddRow(123.456, 2.5)
	var buf bytes.Buffer
	table.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo", "a", "bb", "123.5", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStatHelpers(t *testing.T) {
	xs := []float64{3, 1, 2}
	if mean(xs) != 2 {
		t.Fatal("mean broken")
	}
	if percentile(xs, 0.5) != 2 {
		t.Fatal("median broken")
	}
	if percentile(xs, 0) != 1 || percentile(xs, 1) != 3 {
		t.Fatal("extreme percentiles broken")
	}
	if maxFloat(xs) != 3 {
		t.Fatal("max broken")
	}
	if absErr(5, 7) != 2 {
		t.Fatal("absErr broken")
	}
}
