package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/httpapi"
	"nodedp/internal/serve"
)

// E20WarmRestart validates the plan-cache persistence subsystem end to end:
// a daemon "restart" — save the shared plan cache to a snapshot file, boot
// a fresh server whose cache was loaded from it — must (a) serve the
// re-upload of a known graph as a plan-cache hit, skipping the Δ-grid
// evaluation entirely (the dominant serving cost), (b) release seeded
// values bit-for-bit identical to the pre-restart daemon across the three
// query operations, and (c) degrade gracefully when the snapshot is
// damaged: corrupt entries are skipped with typed errors while the rest
// load, and a wholly unreadable file means a cold (but working) cache,
// never a failed boot.
func E20WarmRestart(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E20",
		Title:   "Persistent plan-cache snapshots across daemon restarts",
		Claim:   "a snapshot-reloaded plan cache serves bit-identical seeded releases without replanning; damaged snapshots degrade by skipping, not failing",
		Columns: []string{"check", "want", "got", "pass"},
	}
	clusters, size, seededQueries := 5, 18, 9
	if cfg.Quick {
		clusters, size, seededQueries = 3, 12, 6
	}
	sizes := make([]int, clusters)
	for i := range sizes {
		sizes[i] = size
	}
	rng := generate.NewRand(cfg.Seed*2029 + 3)
	g := generate.PlantedComponents(sizes, 2.5/float64(size), rng)

	dir, err := os.MkdirTemp("", "nodedp-e20-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "plans.snap")

	// --- pre-restart daemon: upload, seeded queries, admin save ---
	cache1 := core.NewPlanCacheWeighted(1 << 30)
	srv1 := httpapi.New(httpapi.Config{Cache: cache1, CacheFile: snapPath})
	ts1 := httptest.NewServer(srv1)
	defer ts1.Close()

	post := func(base, path string, body any, out any) (int, error) {
		var raw []byte
		if body != nil {
			var err error
			if raw, err = json.Marshal(body); err != nil {
				return 0, err
			}
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
			}
		}
		return resp.StatusCode, nil
	}
	upload := func(base string) (httpapi.CreateSessionResponse, error) {
		var created httpapi.CreateSessionResponse
		code, err := post(base, "/v1/graphs", uploadRequest(g, float64(seededQueries), "", 0), &created)
		if err != nil {
			return created, err
		}
		if code != http.StatusCreated {
			return created, fmt.Errorf("upload: status %d", code)
		}
		return created, nil
	}

	created1, err := upload(ts1.URL)
	if err != nil {
		return nil, err
	}
	ops := []string{"cc", "sf", "cc-known-n"}
	runQueries := func(base, sessionID string) ([]httpapi.QueryResponse, error) {
		out := make([]httpapi.QueryResponse, seededQueries)
		for i := range out {
			req := httpapi.QueryRequest{
				Op:      ops[i%len(ops)],
				Epsilon: 0.15 * float64(1+i%3),
				Seed:    cfg.Seed*5000 + uint64(i) + 1,
			}
			code, err := post(base, "/v1/sessions/"+sessionID+"/query", req, &out[i])
			if err != nil {
				return nil, err
			}
			if code != http.StatusOK {
				return nil, fmt.Errorf("query %d: status %d", i, code)
			}
		}
		return out, nil
	}
	before, err := runQueries(ts1.URL, created1.SessionID)
	if err != nil {
		return nil, err
	}

	var saved httpapi.SaveCacheResponse
	code, err := post(ts1.URL, "/v1/admin/cache/save", nil, &saved)
	if err != nil {
		return nil, err
	}
	savedOK := code == http.StatusOK && saved.Entries == 1
	t.AddRow("admin save persists the cached plan", "1 entry", saved.Entries, savedOK)

	// --- restart: a fresh cache loaded from the snapshot ---
	cache2 := core.NewPlanCacheWeighted(1 << 30)
	rep, err := cache2.LoadFile(snapPath)
	if err != nil {
		return nil, err
	}
	t.AddRow("snapshot reloads cleanly", "1 loaded, 0 skipped",
		fmt.Sprintf("%d loaded, %d skipped", rep.Loaded, rep.Skipped()),
		rep.Loaded == 1 && rep.Skipped() == 0)

	srv2 := httpapi.New(httpapi.Config{Cache: cache2, CacheFile: snapPath})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	created2, err := upload(ts2.URL)
	if err != nil {
		return nil, err
	}
	t.AddRow("post-restart upload is a plan-cache hit", true, created2.CacheHit, created2.CacheHit)

	after, err := runQueries(ts2.URL, created2.SessionID)
	if err != nil {
		return nil, err
	}
	identical := 0
	for i := range before {
		if math.Float64bits(before[i].Value) == math.Float64bits(after[i].Value) &&
			math.Float64bits(before[i].DeltaHat) == math.Float64bits(after[i].DeltaHat) &&
			math.Float64bits(before[i].NHat) == math.Float64bits(after[i].NHat) {
			identical++
		}
	}
	t.AddRow("seeded releases ≡ across the restart", seededQueries, identical, identical == seededQueries)

	// --- damage tolerance: bit-flipped entry skipped, rest still load ---
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		return nil, err
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x20 // inside the single entry's payload
	cache3 := core.NewPlanCacheWeighted(1 << 30)
	rep3, err := cache3.Load(bytes.NewReader(flipped))
	skipTyped := err == nil && rep3.Loaded == 0 && rep3.Skipped() == 1 && len(rep3.Errs) == 1
	t.AddRow("bit-flipped entry skipped with typed error", true, skipTyped, skipTyped)

	// --- damage tolerance: garbage file → cold cache, still serves ---
	cache4 := core.NewPlanCacheWeighted(1 << 30)
	_, loadErr := cache4.Load(bytes.NewReader([]byte("not a snapshot at all")))
	sess, openErr := serve.Open(context.Background(), g, serve.SessionOptions{TotalBudget: 1, Cache: cache4})
	coldOK := loadErr != nil && openErr == nil && !sess.Stats().CacheHit
	t.AddRow("garbage snapshot → typed error + working cold cache", true, coldOK, coldOK)

	t.Notes = append(t.Notes,
		"the snapshot carries the full GridEval (grid values, f_sf, digest, fingerprint, engine counters, GreedyDual-Size credit), so a restarted daemon re-serves known graphs without re-paying the Δ-grid LPs",
		"snapshot files hold exact data-dependent values and must be protected like the graphs themselves")
	return t, nil
}
