package experiments

import (
	"fmt"
	"math"
	"math/big"

	"nodedp/internal/downsens"
	"nodedp/internal/enumerate"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/lipschitz"
	"nodedp/internal/spanning"
)

const propTol = 1e-5

// E1ExtensionProperties validates Lemma 3.3 / Definition 3.2 empirically:
// the forest-polytope extensions underestimate f_sf, are monotone in Δ, and
// are Δ-Lipschitz across node neighbors.
func E1ExtensionProperties(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Lipschitz extension properties of f_Δ",
		Claim:   "Lemma 3.3: underestimation, monotonicity in Δ, Δ-Lipschitzness",
		Columns: []string{"family", "graphs", "checks", "violations"},
	}
	trials := 40
	maxN := 12
	if cfg.Quick {
		trials = 12
		maxN = 9
	}
	fam := lipschitz.ForestLP{}
	deltas := []float64{1, 2, 4}
	families := []struct {
		name string
		gen  func(seed uint64) *graph.Graph
	}{
		{"erdos-renyi", func(s uint64) *graph.Graph {
			rng := generate.NewRand(cfg.Seed*1000 + s)
			return generate.ErdosRenyi(2+rng.IntN(maxN-1), 0.15+0.5*rng.Float64(), rng)
		}},
		{"geometric", func(s uint64) *graph.Graph {
			rng := generate.NewRand(cfg.Seed*2000 + s)
			return generate.Geometric(2+rng.IntN(maxN-1), 0.35, rng)
		}},
		{"structured", func(s uint64) *graph.Graph {
			switch s % 4 {
			case 0:
				return generate.Star(3 + int(s%5))
			case 1:
				return generate.Path(3 + int(s%6))
			case 2:
				return generate.Complete(3 + int(s%4))
			default:
				return generate.Cycle(3 + int(s%5))
			}
		}},
	}
	for _, f := range families {
		checks, violations := 0, 0
		for s := uint64(0); s < uint64(trials); s++ {
			g := f.gen(s)
			viol, err := lipschitz.CheckProperties(fam, g, deltas, propTol)
			if err != nil {
				return nil, err
			}
			checks += len(deltas) * (2 + g.N()) // under+mono per delta, lip per vertex
			violations += len(viol)
		}
		t.AddRow(f.name, trials, checks, violations)
	}
	t.Notes = append(t.Notes, "expected: zero violations in every row")
	return t, nil
}

// E2AnchorSets validates Lemma 3.3(1) and Lemma 1.9: a spanning Δ-forest
// forces f_Δ = f_sf, and DS_fsf(G) ≤ Δ−1 lands G in the anchor set S_Δ.
func E2AnchorSets(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "anchor sets of f_Δ",
		Claim:   "Lemma 3.3(1) and Lemma 1.9: S*_{Δ−1} ⊆ S_Δ",
		Columns: []string{"delta", "graphs", "anchored(DS≤Δ-1)", "f_Δ=f_sf", "violations"},
	}
	trials := 60
	if cfg.Quick {
		trials = 20
	}
	for _, delta := range []int{1, 2, 3, 4} {
		graphs, anchored, equal, viol := 0, 0, 0, 0
		for s := uint64(0); s < uint64(trials); s++ {
			rng := generate.NewRand(cfg.Seed*3000 + uint64(delta)*97 + s)
			g := generate.ErdosRenyi(2+rng.IntN(9), 0.1+0.5*rng.Float64(), rng)
			graphs++
			ds, err := downsens.SpanningForestDownSensitivity(g, 0)
			if err != nil {
				return nil, err
			}
			v, _, err := forestlp.Value(g, float64(delta), forestlp.Options{})
			if err != nil {
				return nil, err
			}
			isEqual := math.Abs(v-float64(g.SpanningForestSize())) <= propTol
			if isEqual {
				equal++
			}
			if ds <= delta-1 {
				anchored++
				if !isEqual {
					viol++
				}
			}
		}
		t.AddRow(delta, graphs, anchored, equal, viol)
	}
	t.Notes = append(t.Notes, "violations counts graphs with DS ≤ Δ−1 but f_Δ ≠ f_sf; expected 0")
	return t, nil
}

// E8LipschitzTightness reproduces Remark 3.4: the empty graph on Δ vertices
// and its cone (the star K_{1,Δ}) witness |f_Δ(G)−f_Δ(G')| = Δ across one
// node insertion.
func E8LipschitzTightness(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "tightness of the Lipschitz constant",
		Claim:   "Remark 3.4: f_Δ(independent set)=0, f_Δ(its cone)=Δ",
		Columns: []string{"delta", "f_Δ(I_Δ)", "f_Δ(K_{1,Δ})", "gap", "tight"},
	}
	deltas := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		deltas = []int{1, 2, 4, 8}
	}
	for _, d := range deltas {
		iso := graph.New(d)
		vIso, _, err := forestlp.Value(iso, float64(d), forestlp.Options{})
		if err != nil {
			return nil, err
		}
		cone := generate.Star(d)
		vCone, _, err := forestlp.Value(cone, float64(d), forestlp.Options{})
		if err != nil {
			return nil, err
		}
		gap := vCone - vIso
		t.AddRow(d, vIso, vCone, gap, math.Abs(gap-float64(d)) <= propTol)
	}
	return t, nil
}

// E9Optimality validates the Theorem 1.11 implication with the Lemma A.1
// down-extension as the competing (Δ−1)-Lipschitz function:
// Err_G(f_Δ) > 0 ⟹ Err_G(f_Δ) ≤ 2·Err_G(f̂_{Δ−1}) − 1.
func E9Optimality(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "2-competitiveness of f_Δ (ℓ∞ error over induced subgraphs)",
		Claim:   "Theorem 1.11 via the F_{Δ−1} witness f̂_{Δ−1} (Lemma A.1)",
		Columns: []string{"delta", "graphs", "erring", "bound-holds", "max Err(f_Δ)", "max 2·Err(f̂)−1"},
	}
	trials := 25
	maxN := 7
	if cfg.Quick {
		trials = 10
		maxN = 6
	}
	forest := lipschitz.ForestLP{}
	generic := lipschitz.DownSensitivity{F: func(h *graph.Graph) float64 {
		return float64(h.SpanningForestSize())
	}, FName: "fsf"}
	for _, delta := range []float64{2, 3} {
		graphs, erring, holds := 0, 0, 0
		maxOurs, maxBound := 0.0, 0.0
		for s := uint64(0); s < uint64(trials); s++ {
			rng := generate.NewRand(cfg.Seed*4000 + uint64(delta)*131 + s)
			g := generate.ErdosRenyi(2+rng.IntN(maxN-1), 0.3+0.4*rng.Float64(), rng)
			graphs++
			ours, err := lipschitz.ErrG(forest, g, delta)
			if err != nil {
				return nil, err
			}
			if ours <= propTol {
				continue
			}
			erring++
			ref, err := lipschitz.ErrG(generic, g, delta-1)
			if err != nil {
				return nil, err
			}
			bound := 2*ref - 1
			if ours <= bound+propTol {
				holds++
			}
			if ours > maxOurs {
				maxOurs = ours
			}
			if bound > maxBound {
				maxBound = bound
			}
		}
		t.AddRow(delta, graphs, erring, fmt.Sprintf("%d/%d", holds, erring), maxOurs, maxBound)
	}
	t.Notes = append(t.Notes, "bound-holds should equal erring in every row")
	return t, nil
}

// E13GenericExtension validates Lemma A.1 / Theorem A.2 behavior of the
// generic down-sensitivity extension for f_sf on small graphs: anchoring at
// DS ≤ Δ and the Definition 3.2 properties.
func E13GenericExtension(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "generic down-sensitivity extension (Lemma A.1)",
		Claim:   "anchor at DS_f(G) ≤ Δ; Definition 3.2 properties",
		Columns: []string{"graphs", "anchor-checks", "anchor-violations", "property-violations"},
	}
	trials := 30
	if cfg.Quick {
		trials = 12
	}
	fam := lipschitz.DownSensitivity{F: func(h *graph.Graph) float64 {
		return float64(h.SpanningForestSize())
	}, FName: "fsf"}
	anchorChecks, anchorViol, propViol := 0, 0, 0
	for s := uint64(0); s < uint64(trials); s++ {
		rng := generate.NewRand(cfg.Seed*5000 + s)
		g := generate.ErdosRenyi(1+rng.IntN(7), 0.2+0.5*rng.Float64(), rng)
		ds, err := lipschitz.DownSensitivityOf(g, fam.F)
		if err != nil {
			return nil, err
		}
		delta := ds
		if delta < 1 {
			delta = 1
		}
		v, err := fam.Eval(g, delta)
		if err != nil {
			return nil, err
		}
		anchorChecks++
		if math.Abs(v-fam.Target(g)) > propTol {
			anchorViol++
		}
		viol, err := lipschitz.CheckProperties(fam, g, []float64{1, 2, 4}, propTol)
		if err != nil {
			return nil, err
		}
		propViol += len(viol)
	}
	t.AddRow(trials, anchorChecks, anchorViol, propViol)
	t.Notes = append(t.Notes,
		"uses the unconstrained inf-convolution; the paper's literal DS-restricted variant can overestimate (see DESIGN.md)")
	return t, nil
}

// F2Lemma52 validates Lemma 5.2 on exhaustively generated small graphs with
// no spanning Δ-forest: some proper induced subgraph H satisfies
// f_Δ(G) ≥ f_sf(H) + (Δ−1)·d(G,H) + 1.
func F2Lemma52(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F2",
		Title:   "error attribution to induced subgraphs (Lemma 5.2)",
		Claim:   "∃ H ≺ G: f_Δ(G) ≥ f_sf(H) + (Δ−1)d(G,H) + 1 when G has no spanning Δ-forest",
		Columns: []string{"delta", "graphs-without-Δ-forest", "witness-found", "violations"},
	}
	trials := 40
	maxN := 8
	if cfg.Quick {
		trials = 15
		maxN = 7
	}
	for _, delta := range []int{1, 2, 3} {
		count, witnessed, viol := 0, 0, 0
		for s := uint64(0); s < uint64(trials); s++ {
			rng := generate.NewRand(cfg.Seed*6000 + uint64(delta)*173 + s)
			g := generate.ErdosRenyi(2+rng.IntN(maxN-1), 0.3+0.4*rng.Float64(), rng)
			has, exceeded := spanning.HasSpanningForestMaxDegree(g, delta, 0)
			if exceeded || has {
				continue
			}
			count++
			fd, _, err := forestlp.Value(g, float64(delta), forestlp.Options{})
			if err != nil {
				return nil, err
			}
			if lemma52WitnessExists(g, delta, fd) {
				witnessed++
			} else {
				viol++
			}
		}
		t.AddRow(delta, count, witnessed, viol)
	}
	t.Notes = append(t.Notes, "violations expected 0")
	return t, nil
}

// lemma52WitnessExists checks all proper induced subgraphs H of g for
// inequality (8).
func lemma52WitnessExists(g *graph.Graph, delta int, fd float64) bool {
	n := g.N()
	for mask := 0; mask < 1<<n; mask++ {
		size := 0
		var verts []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				size++
				verts = append(verts, v)
			}
		}
		if size == n { // proper subgraphs only
			continue
		}
		sub, _, err := g.InducedSubgraph(verts)
		if err != nil {
			return false
		}
		rhs := float64(sub.SpanningForestSize()) + float64((delta-1)*(n-size)) + 1
		if fd >= rhs-propTol {
			return true
		}
	}
	return false
}

// F3WinDecomposition exhaustively validates Win's lemma (Lemma 5.1): every
// graph on ≤ maxN vertices without a spanning Δ-forest admits an (S, X)
// decomposition satisfying the lemma's three conditions.
func F3WinDecomposition(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F3",
		Title:   "Win's decomposition (Lemma 5.1), exhaustive",
		Claim:   "no spanning Δ-forest ⟹ ∃ (S, X): S has a spanning Δ-tree, X separates, f_cc(S∖X) ≥ |X|(Δ−2)+2",
		Columns: []string{"delta", "n", "classes", "without-Δ-forest", "decomposed", "violations"},
	}
	maxN := 6
	if cfg.Quick {
		maxN = 5
	}
	for _, delta := range []int{2, 3} {
		classes, without, decomposed, viol := 0, 0, 0, 0
		if err := enumerate.AllNonIsomorphic(maxN, func(g *graph.Graph) bool {
			classes++
			has, exceeded := spanning.HasSpanningForestMaxDegree(g, delta, 0)
			if exceeded || has {
				return true
			}
			without++
			w, err := spanning.FindWinDecomposition(g, delta, 0)
			if err != nil || w == nil {
				viol++
				return true
			}
			decomposed++
			return true
		}); err != nil {
			return nil, err
		}
		t.AddRow(delta, maxN, classes, without, decomposed, viol)
	}
	t.Notes = append(t.Notes, "violations expected 0; decomposed should equal without-Δ-forest")
	return t, nil
}

// RationalCrossCheck re-validates a few cutting-plane values against the
// exact rational LP; used by cmd/experiments as a self-test preamble.
func RationalCrossCheck(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E0",
		Title:   "float vs exact-rational LP cross-check",
		Claim:   "numerical soundness of the cutting-plane evaluator",
		Columns: []string{"instances", "max |float − exact|"},
	}
	trials := 8
	if cfg.Quick {
		trials = 4
	}
	worst := 0.0
	for s := uint64(0); s < uint64(trials); s++ {
		rng := generate.NewRand(cfg.Seed*7000 + s)
		g := generate.ErdosRenyi(2+rng.IntN(6), 0.5, rng)
		for _, d := range []int64{1, 2} {
			got, _, err := forestlp.Value(g, float64(d), forestlp.Options{})
			if err != nil {
				return nil, err
			}
			exact, err := forestlp.ValueBruteForceRat(g, big.NewRat(d, 1))
			if err != nil {
				return nil, err
			}
			ef, _ := exact.Float64()
			if diff := math.Abs(got - ef); diff > worst {
				worst = diff
			}
		}
	}
	t.AddRow(trials*2, worst)
	return t, nil
}
