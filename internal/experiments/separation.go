package experiments

import (
	"context"
	"math"
	"time"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// E18SeparationWarmStarts exercises the intra-component cutting-plane
// engine on giant-component workloads — the case where shard-level
// parallelism has nothing to split. For each family the whole Δ-grid is
// evaluated under three configurations:
//
//	legacy — warm starts off, exhaustive oracle sweep (the original
//	         engine's work profile);
//	cold   — warm starts off, screened oracle (support 2-core screening,
//	         ramped waves, gap-pinch termination);
//	warm   — everything on (parked-cut revival, round-to-round and cross-Δ
//	         simplex warm starts).
//
// The table reports max-flow calls, simplex pivots, and wall time per
// configuration, plus the largest deviation of the grid values from the
// legacy reference — the engine's contract that all of this moves work,
// not answers, up to the LP tolerance (different converged active sets
// can place the identical optimum a few ulps apart; the benchmark
// families in BENCH_sep.json are additionally certified bit-identical).
func E18SeparationWarmStarts(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "intra-component cutting-plane engine: oracle screening and warm starts (Δ-grid sweep)",
		Claim:   "screening + warm starts cut max-flow calls and simplex pivots on giant components without changing any value beyond LP tolerance",
		Columns: []string{"family", "config", "flows", "pivots", "LP-solves", "revived", "basis-hits", "ms", "max-dev"},
	}
	erN, hubN := 120, 60
	if cfg.Quick {
		erN, hubN = 80, 40
	}
	rng := generate.NewRand(cfg.Seed*173 + 11)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"planted-er-giant", generate.PlantedComponents([]int{erN}, 6.0/float64(erN), rng)},
		{"hub-clusters-giant", generate.WithHubs(
			generate.PlantedComponents([]int{hubN, hubN}, 5.0/float64(hubN), rng), 3, 0.25, rng)},
	}
	configs := []struct {
		name string
		opts forestlp.Options
	}{
		{"legacy", forestlp.Options{DisableWarmStart: true, SepExhaustive: true}},
		{"cold", forestlp.Options{DisableWarmStart: true}},
		{"warm", forestlp.Options{}},
	}
	for _, f := range families {
		plan := forestlp.NewPlan(f.g)
		grid, err := mechanism.PowerOfTwoGrid(float64(f.g.N()))
		if err != nil {
			return nil, err
		}
		var baseline []float64
		for _, c := range configs {
			start := time.Now()
			values, stats, err := plan.GridValues(context.Background(), grid, c.opts)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			maxDev := 0.0
			if baseline == nil {
				baseline = values
			} else {
				for i := range values {
					if d := math.Abs(values[i] - baseline[i]); d > maxDev {
						maxDev = d
					}
				}
			}
			t.AddRow(f.name, c.name, stats.MaxFlowCalls, stats.SimplexPivots, stats.LPSolves,
				stats.CutsRevived, stats.WarmBasisHits, ms, maxDev)
		}
	}
	t.Notes = append(t.Notes,
		"max-dev is against the legacy reference and must stay below the 1e-7 LP tolerance in every row",
		"flows and pivots are deterministic; ms is a wall-clock measurement and varies run to run")
	return t, nil
}
