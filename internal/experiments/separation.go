package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// E18SeparationWarmStarts exercises the intra-component cutting-plane
// engine on giant-component workloads — the case where shard-level
// parallelism has nothing to split. For each family the whole Δ-grid is
// evaluated under three configurations:
//
//	legacy — warm starts off, exhaustive oracle sweep (the original
//	         engine's work profile);
//	cold   — warm starts off, screened oracle (support 2-core screening,
//	         ramped waves, gap-pinch termination);
//	warm   — everything on (parked-cut revival, round-to-round and cross-Δ
//	         simplex warm starts).
//
// The table reports max-flow calls, simplex pivots, and wall time per
// configuration, plus the largest deviation of the grid values from the
// legacy reference — the engine's contract that all of this moves work,
// not answers, up to the LP tolerance (different converged active sets
// can place the identical optimum a few ulps apart; the benchmark
// families in BENCH_sep.json are additionally certified bit-identical).
func E18SeparationWarmStarts(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "intra-component cutting-plane engine: oracle screening and warm starts (Δ-grid sweep)",
		Claim:   "screening + warm starts cut max-flow calls and simplex pivots on giant components without changing any value beyond LP tolerance",
		Columns: []string{"family", "config", "flows", "pivots", "LP-solves", "revived", "basis-hits", "ms", "max-dev"},
	}
	erN, hubN := 120, 60
	if cfg.Quick {
		erN, hubN = 80, 40
	}
	rng := generate.NewRand(cfg.Seed*173 + 11)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"planted-er-giant", generate.PlantedComponents([]int{erN}, 6.0/float64(erN), rng)},
		{"hub-clusters-giant", generate.WithHubs(
			generate.PlantedComponents([]int{hubN, hubN}, 5.0/float64(hubN), rng), 3, 0.25, rng)},
	}
	configs := []struct {
		name string
		opts forestlp.Options
	}{
		{"legacy", forestlp.Options{DisableWarmStart: true, SepExhaustive: true}},
		{"cold", forestlp.Options{DisableWarmStart: true}},
		// Pinned to the PR 3 engine: warm starts on, parametric layer off,
		// so this table keeps measuring what it always measured. E21 owns
		// the warm-vs-parametric comparison.
		{"warm", forestlp.Options{DisableIncremental: true}},
	}
	for _, f := range families {
		plan := forestlp.NewPlan(f.g)
		grid, err := mechanism.PowerOfTwoGrid(float64(f.g.N()))
		if err != nil {
			return nil, err
		}
		var baseline []float64
		for _, c := range configs {
			start := time.Now()
			values, stats, err := plan.GridValues(context.Background(), grid, c.opts)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			maxDev := 0.0
			if baseline == nil {
				baseline = values
			} else {
				for i := range values {
					if d := math.Abs(values[i] - baseline[i]); d > maxDev {
						maxDev = d
					}
				}
			}
			t.AddRow(f.name, c.name, stats.MaxFlowCalls, stats.SimplexPivots, stats.LPSolves,
				stats.CutsRevived, stats.WarmBasisHits, ms, maxDev)
		}
	}
	t.Notes = append(t.Notes,
		"max-dev is against the legacy reference and must stay below the 1e-7 LP tolerance in every row",
		"flows and pivots are deterministic; ms is a wall-clock measurement and varies run to run")
	return t, nil
}

// spiderER builds a hub-articulated giant component: k small ER clusters
// of mixed sizes, each tied to one central hub vertex by exactly one
// bridge edge. Every spanning forest of the component must carry all k
// bridges, so the hub's forest degree is forced to k and the Δ-bounded
// LP stays active (and structurally similar) across the whole range
// Δ < k — the workload the parametric grid sweep is built for.
func spiderER(k, minSize, spread int, p float64, rng *rand.Rand) *graph.Graph {
	sizes := make([]int, k)
	clusters := make([]*graph.Graph, k)
	for i := range clusters {
		sizes[i] = minSize + rng.IntN(spread)
		clusters[i] = generate.ErdosRenyi(sizes[i], p, rng)
	}
	g := generate.DisjointUnion(clusters...)
	hub := g.AddVertex()
	off := 0
	for i := 0; i < k; i++ {
		if err := g.AddEdge(hub, off+rng.IntN(sizes[i])); err != nil {
			panic(err)
		}
		off += sizes[i]
	}
	return g
}

// E21ParametricSweep measures the parametric Δ-grid layer against the
// pinned PR 3 warm engine. Both configurations run the full cutting-plane
// stack (screening, cut revival, warm starts); the only difference is
// whether each piece's LP is rebuilt per grid point (warm) or a standing
// incremental solver slides its optimal basis from the previous Δ
// (parametric). Spider families keep the hub-forced LP alive across a
// long stretch of the grid, so slides dominate; the ER/hub families from
// E18 bound the layer's behaviour when the fast path leaves only a
// couple of grid points for the LP.
func E21ParametricSweep(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E21",
		Title:   "parametric Δ-grid sweep: basis sliding vs per-grid-point rebuilds",
		Claim:   "sliding a standing incremental basis across the Δ grid removes most simplex pivots on LP-dominated sweeps and never pivots more than the rebuild path",
		Columns: []string{"family", "config", "pivots", "slides", "cheap", "refacs", "fallbacks", "ms", "max-dev"},
	}
	erN := 120
	if cfg.Quick {
		erN = 80
	}
	// The spider is pinned to the benchmark construction (seed 54, not
	// cfg.Seed): whether a hub-forced LP converges or hits the stall
	// bailout is seed-sensitive, and stalled bounds are explicitly
	// solve-path-dependent. BENCH_sep.json certifies this instance
	// bit-identical across the engine matrix.
	spiderRng := generate.NewRand(54)
	erRng := generate.NewRand(cfg.Seed*173 + 11)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"spider-er", spiderER(40, 4, 5, 0.65, spiderRng)},
		{"planted-er-giant", generate.PlantedComponents([]int{erN}, 6.0/float64(erN), erRng)},
	}
	configs := []struct {
		name string
		opts forestlp.Options
	}{
		{"warm", forestlp.Options{DisableIncremental: true}},
		{"parametric", forestlp.Options{}},
	}
	for _, f := range families {
		plan := forestlp.NewPlan(f.g)
		grid, err := mechanism.PowerOfTwoGrid(float64(f.g.N()))
		if err != nil {
			return nil, err
		}
		var baseline []float64
		var warmPivots int
		for _, c := range configs {
			start := time.Now()
			values, stats, err := plan.GridValues(context.Background(), grid, c.opts)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			maxDev := 0.0
			if baseline == nil {
				baseline = values
				warmPivots = stats.SimplexPivots
			} else {
				for i := range values {
					if d := math.Abs(values[i] - baseline[i]); d > maxDev {
						maxDev = d
					}
				}
				if stats.SimplexPivots > warmPivots {
					return nil, fmt.Errorf("E21: %s parametric pivoted more than warm (%d vs %d)",
						f.name, stats.SimplexPivots, warmPivots)
				}
			}
			t.AddRow(f.name, c.name, stats.SimplexPivots, stats.ParametricSlides,
				stats.ParametricCheapSolves, stats.Refactorizations, stats.IncrementalFallbacks,
				ms, maxDev)
		}
	}
	t.Notes = append(t.Notes,
		"max-dev is against the warm reference; seeded releases for these engines are certified bit-identical in BENCH_sep.json, so it must be exactly 0",
		"the parametric row must never show more pivots than the warm row (enforced)",
		"cheap counts slides that settled within the IncrementalCheapPivots budget without re-entering the cutting-plane loop")
	return t, nil
}
