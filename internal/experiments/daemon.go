package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/httpapi"
	"nodedp/internal/serve"
)

// E19DaemonServing validates the HTTP/JSON network front end against the
// in-process serving layer: a seeded query over HTTP must release
// bit-for-bit the in-process Session value (the determinism contract of
// the daemon), the typed error taxonomy must distinguish budget exhaustion
// from overload from unknown sessions, load shedding must engage at the
// inflight cap, and — the accountant half — the advanced-composition
// accountant must admit strictly more small queries than sequential
// composition at equal ε_total, over the network, without ever exceeding
// the budget.
func E19DaemonServing(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "HTTP/JSON daemon over sessions with pluggable accountants",
		Claim:   "network serving is bit-identical to in-process serving; advanced composition admits more queries at equal ε_total",
		Columns: []string{"check", "want", "got", "pass"},
	}
	clusters, size, seededQueries := 6, 20, 10
	if cfg.Quick {
		clusters, size, seededQueries = 3, 14, 6
	}
	sizes := make([]int, clusters)
	for i := range sizes {
		sizes[i] = size
	}
	rng := generate.NewRand(cfg.Seed*1693 + 7)
	g := generate.PlantedComponents(sizes, 2.5/float64(size), rng)
	ctx := context.Background()

	srv := httpapi.New(httpapi.Config{MaxInflight: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path string, body any, out any) (int, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
			}
		}
		return resp.StatusCode, nil
	}

	upload := func(budget float64, accountant string, delta float64) (httpapi.CreateSessionResponse, error) {
		var created httpapi.CreateSessionResponse
		code, err := post("/v1/graphs", uploadRequest(g, budget, accountant, delta), &created)
		if err != nil {
			return created, err
		}
		if code != http.StatusCreated {
			return created, fmt.Errorf("upload: status %d", code)
		}
		return created, nil
	}

	// --- determinism: seeded HTTP releases equal in-process releases ---
	created, err := upload(float64(seededQueries), "", 0)
	if err != nil {
		return nil, err
	}
	inproc, err := serve.Open(ctx, g, serve.SessionOptions{TotalBudget: float64(seededQueries)})
	if err != nil {
		return nil, err
	}
	ops := []struct {
		wire string
		mode serve.Mode
		sf   bool
	}{{wire: "cc"}, {wire: "sf", sf: true}, {wire: "cc-known-n", mode: serve.KnownN}}
	identical := 0
	for i := 0; i < seededQueries; i++ {
		op := ops[i%len(ops)]
		seed := cfg.Seed*4000 + uint64(i) + 1
		eps := 0.2 * float64(1+i%2)
		q := serve.QueryOptions{Epsilon: eps, Mode: op.mode, Seed: seed}
		var want core.Result
		if op.sf {
			want, err = inproc.SpanningForestSize(ctx, q)
		} else {
			want, err = inproc.ComponentCount(ctx, q)
		}
		if err != nil {
			return nil, err
		}
		var got httpapi.QueryResponse
		code, err := post("/v1/sessions/"+created.SessionID+"/query",
			httpapi.QueryRequest{Op: op.wire, Epsilon: eps, Seed: seed}, &got)
		if err != nil {
			return nil, err
		}
		if code == http.StatusOK && math.Float64bits(got.Value) == math.Float64bits(want.Value) {
			identical++
		}
	}
	t.AddRow("seeded HTTP releases ≡ in-process", seededQueries, identical, identical == seededQueries)

	// --- error taxonomy ---
	var eb httpapi.ErrorBody
	code, err := post("/v1/sessions/"+created.SessionID+"/query",
		httpapi.QueryRequest{Op: "cc", Epsilon: 100}, &eb)
	if err != nil {
		return nil, err
	}
	exhausted := code == http.StatusForbidden && eb.Error.Code == httpapi.CodeBudgetExhausted
	t.AddRow("over-budget → 403 budget_exhausted", true, exhausted, exhausted)

	eb = httpapi.ErrorBody{}
	code, err = post("/v1/sessions/missing/query", httpapi.QueryRequest{Op: "cc", Epsilon: 0.1}, &eb)
	if err != nil {
		return nil, err
	}
	notFound := code == http.StatusNotFound && eb.Error.Code == httpapi.CodeNotFound
	t.AddRow("unknown session → 404 not_found", true, notFound, notFound)

	// --- load shedding at the inflight cap ---
	shedSrv := httpapi.New(httpapi.Config{MaxInflight: 1})
	shedTS := httptest.NewServer(shedSrv)
	defer shedTS.Close()
	// Saturate the one slot from outside the handler, then observe a 429.
	shedSrv.TestingHoldSlot(1)
	resp, err := http.Get(shedTS.URL + "/v1/sessions/whatever")
	if err != nil {
		return nil, err
	}
	var shedBody httpapi.ErrorBody
	shedErr := json.NewDecoder(resp.Body).Decode(&shedBody)
	resp.Body.Close()
	shedSrv.TestingHoldSlot(-1)
	shed := shedErr == nil && resp.StatusCode == http.StatusTooManyRequests &&
		shedBody.Error.Code == httpapi.CodeOverloaded && resp.Header.Get("Retry-After") != ""
	t.AddRow("inflight cap → 429 overloaded + Retry-After", true, shed, shed)

	// --- accountants: queries admitted at equal ε_total over HTTP ---
	const eps = 0.01
	countAdmitted := func(accountant string, delta float64) (int, float64, error) {
		sess, err := upload(1, accountant, delta)
		if err != nil {
			return 0, 0, err
		}
		admitted := 0
		for i := 0; ; i++ {
			if i > 100000 {
				return 0, 0, fmt.Errorf("accountant %q admitted unboundedly many queries", accountant)
			}
			var out httpapi.QueryResponse
			code, err := post("/v1/sessions/"+sess.SessionID+"/query",
				httpapi.QueryRequest{Op: "cc", Epsilon: eps, Seed: uint64(i) + 1}, &out)
			if err != nil {
				return 0, 0, err
			}
			if code != http.StatusOK {
				break
			}
			admitted++
		}
		var info httpapi.SessionInfo
		resp, err := http.Get(ts.URL + "/v1/sessions/" + sess.SessionID)
		if err != nil {
			return 0, 0, err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return 0, 0, err
		}
		return admitted, info.Budget.Spent, nil
	}
	seqAdmitted, seqSpent, err := countAdmitted("sequential", 0)
	if err != nil {
		return nil, err
	}
	advAdmitted, advSpent, err := countAdmitted("advanced", 1e-9)
	if err != nil {
		return nil, err
	}
	t.AddRow("advanced admits more than sequential", "adv > seq",
		fmt.Sprintf("%d vs %d", advAdmitted, seqAdmitted), advAdmitted > seqAdmitted)
	noOverspend := seqSpent <= 1+1e-12 && advSpent <= 1+1e-12
	t.AddRow("neither accountant overspends ε_total=1", true, noOverspend, noOverspend)

	t.Notes = append(t.Notes,
		fmt.Sprintf("advanced composition (δ=1e-9) admitted %.1f× the queries of sequential composition at ε_total=1, ε₀=%g",
			float64(advAdmitted)/math.Max(1, float64(seqAdmitted)), eps),
		"the daemon path adds JSON encode/decode and TCP to every query; BENCH_serve.json quantifies the per-query overhead")
	return t, nil
}

// uploadRequest renders g as a JSON upload body.
func uploadRequest(g *graph.Graph, budget float64, accountant string, delta float64) httpapi.CreateSessionRequest {
	edges := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	return httpapi.CreateSessionRequest{
		N: g.N(), Edges: edges, Budget: budget, Accountant: accountant, Delta: delta,
	}
}
