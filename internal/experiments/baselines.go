package experiments

import (
	"fmt"
	"math"

	"nodedp/internal/baseline"
	"nodedp/internal/core"
	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/spanning"
)

// E10Baselines compares Algorithm 1 against the baselines across graph
// families, including the hub-augmented family where every max-degree-based
// approach collapses while Δ* stays tiny.
func E10Baselines(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "mean |error| of f_cc estimators (ε=1, known n)",
		Claim: "intro/§1.2: noise calibrated to Δ* (adaptively, via GEM) beats calibrating to n or to a guessed Δ",
		Columns: []string{
			"family", "n", "f_cc", "maxdeg", "Δ*≤", "ours", "edge-DP", "naive-node", "fixed-Δ=maxdeg", "trunc(D=8)",
		},
	}
	eps := 1.0
	n := 300
	trials := 10
	if cfg.Quick {
		n = 120
		trials = 5
	}
	families := []struct {
		name string
		gen  func(seed uint64) *graph.Graph
	}{
		{"matching", func(s uint64) *graph.Graph { return generate.Matching(n / 2) }},
		{"matching+hubs", func(s uint64) *graph.Graph {
			// Hubs BRIDGE the pairs, so Δ* genuinely rises to ≈ pairs/hubs:
			// the paper's guarantee pays that, and correctly so (the hub's
			// removal really does change f_sf by that much).
			return generate.WithHubs(generate.Matching(n/2), 3, 0.5, generate.NewRand(cfg.Seed*53+s))
		}},
		{"path+hubs", func(s uint64) *graph.Graph {
			// Hubs over a connected base are pure shortcuts: max degree
			// explodes, Δ* stays ≈ 2 — the dramatic-win regime.
			return generate.WithHubs(generate.Path(n), 3, 0.5, generate.NewRand(cfg.Seed*57+s))
		}},
		{"er(c=1)", func(s uint64) *graph.Graph {
			return generate.ErdosRenyi(n, 1/float64(n), generate.NewRand(cfg.Seed*59+s))
		}},
		{"geometric", func(s uint64) *graph.Graph {
			return generate.Geometric(n, 1.0/math.Sqrt(float64(n)), generate.NewRand(cfg.Seed*61+s))
		}},
	}
	for _, f := range families {
		var ours, edge, naive, trunc, fixed []float64
		var fcc, maxdeg, deltaUB float64
		for s := uint64(0); s < uint64(trials); s++ {
			g := f.gen(s)
			fcc = float64(g.CountComponents())
			maxdeg = float64(g.MaxDegree())
			_, d := spanning.LowDegreeSpanningForest(g)
			deltaUB = float64(d)
			rng := generate.NewRand(cfg.Seed*67 + s*11 + 5)

			res, err := core.EstimateComponentCountKnownN(g, core.Options{Epsilon: eps, Rand: rng})
			if err != nil {
				return nil, err
			}
			ours = append(ours, absErr(res.Value, fcc))

			e, err := baseline.EdgeDPComponentCount(rng, g, eps)
			if err != nil {
				return nil, err
			}
			edge = append(edge, absErr(e, fcc))

			nv, err := baseline.NaiveNodeDPComponentCount(rng, g, eps)
			if err != nil {
				return nil, err
			}
			naive = append(naive, absErr(nv, fcc))

			fv, err := baseline.FixedDeltaComponentCountKnownN(rng, g, maxdeg, eps, forestlp.Options{})
			if err != nil {
				return nil, err
			}
			fixed = append(fixed, absErr(fv, fcc))

			tv, err := baseline.TruncationComponentCount(rng, g, 8, eps)
			if err != nil {
				return nil, err
			}
			trunc = append(trunc, absErr(tv, fcc))
		}
		t.AddRow(f.name, n, fcc, maxdeg, deltaUB, mean(ours), mean(edge), mean(naive), mean(fixed), mean(trunc))
	}
	t.Notes = append(t.Notes,
		"all of {ours, naive-node, fixed-Δ=maxdeg} are rigorously node-private; edge-DP is a weaker guarantee and trunc is a heuristic without one (see internal/baseline)",
		"expected shape: ours tracks Δ*, beating naive (scale n) everywhere and fixed-Δ=maxdeg wherever Δ* ≪ maxdeg (hubs); edge-DP is the accuracy ceiling at its weaker guarantee")
	return t, nil
}

// E11GEM measures how well the Generalized Exponential Mechanism selects Δ̂
// (Theorem 3.5): the realized err(Δ̂) versus the best fixed choice, and the
// agreement of Δ̂ with the Δ* upper bound.
func E11GEM(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "GEM selection quality (ε=1)",
		Claim:   "Theorem 3.5: err(Δ̂) ≤ O(ln(ln n/β))·min_Δ err(Δ)",
		Columns: []string{"family", "n", "Δ*≤", "mode(Δ̂)", "mean err(Δ̂)/err(opt)", "max ratio"},
	}
	eps := 1.0
	n := 200
	trials := 30
	if cfg.Quick {
		n = 100
		trials = 12
	}
	families := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"matching", func() *graph.Graph { return generate.Matching(n / 2) }},
		{"caterpillar", func() *graph.Graph { return generate.Caterpillar(n/5, 4) }},
		{"geometric", func() *graph.Graph {
			return generate.Geometric(n, 1.2/math.Sqrt(float64(n)), generate.NewRand(cfg.Seed*71))
		}},
	}
	for _, f := range families {
		g := f.gen()
		_, dUB := spanning.LowDegreeSpanningForest(g)
		prep, err := core.PrepareSpanningForest(g, core.Options{
			Epsilon: eps, Rand: generate.NewRand(cfg.Seed*73 + 7),
		})
		if err != nil {
			return nil, err
		}
		evals := prep.Evaluations()
		best := math.Inf(1)
		for _, ev := range evals {
			if ev.Q < best {
				best = ev.Q
			}
		}
		counts := map[float64]int{}
		var ratios []float64
		for s := 0; s < trials; s++ {
			res, err := prep.Release()
			if err != nil {
				return nil, err
			}
			counts[res.Delta]++
			for _, ev := range evals {
				if ev.Delta == res.Delta {
					ratios = append(ratios, ev.Q/best)
				}
			}
		}
		modeDelta, modeCount := 0.0, 0
		for d, c := range counts {
			if c > modeCount {
				modeDelta, modeCount = d, c
			}
		}
		t.AddRow(f.name, n, dUB, fmt.Sprintf("%.0f (%d/%d)", modeDelta, modeCount, trials),
			mean(ratios), maxFloat(ratios))
	}
	t.Notes = append(t.Notes, "ratios near 1 mean GEM almost always picks a near-optimal Δ")
	return t, nil
}
