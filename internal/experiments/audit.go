package experiments

import (
	"fmt"

	"nodedp/internal/core"
	"nodedp/internal/dptest"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

// E12PrivacyAudit empirically audits the end-to-end Algorithm 1 on
// adversarial node-neighbor pairs: the estimated privacy loss ε̂ must stay
// at or below the configured ε (up to sampling slack). The audit is a
// lower-bound test — it catches bugs, it does not prove privacy.
func E12PrivacyAudit(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "empirical privacy audit of Algorithm 1",
		Claim:   "Definition 1.2: ε-node-privacy end to end",
		Columns: []string{"pair", "eps", "samples", "eps-hat", "pass"},
	}
	samples := 6000
	if cfg.Quick {
		samples = 2000
	}
	pairs := []struct {
		name string
		a, b *graph.Graph
	}{
		// The paper's own hard pair: an independent set vs its cone.
		{"I_6 vs K_{1,6}", graph.New(6), generate.Star(6)},
		// A matching vs the same matching with one endpoint deleted.
		{"M_8 vs M_8−v", generate.Matching(8), generate.Matching(8).RemoveVertex(0)},
		// A path vs the path with an articulation vertex deleted.
		{"P_9 vs P_9−mid", generate.Path(9), generate.Path(9).RemoveVertex(4)},
	}
	eps := 1.0
	for i, p := range pairs {
		for _, discrete := range []bool{false, true} {
			name := p.name
			if discrete {
				name += " (discrete)"
			}
			// Prepare once per input; each Release is one ε-DP run.
			prepA, err := core.PrepareSpanningForest(p.a, core.Options{
				Epsilon: eps, Rand: generate.NewRand(cfg.Seed*79 + uint64(i)),
				DiscreteRelease: discrete,
			})
			if err != nil {
				return nil, err
			}
			prepB, err := core.PrepareSpanningForest(p.b, core.Options{
				Epsilon: eps, Rand: generate.NewRand(cfg.Seed*83 + uint64(i)),
				DiscreteRelease: discrete,
			})
			if err != nil {
				return nil, err
			}
			runA := func() float64 {
				res, err := prepA.Release()
				if err != nil {
					panic(err)
				}
				return res.Value
			}
			runB := func() float64 {
				res, err := prepB.Release()
				if err != nil {
					panic(err)
				}
				return res.Value
			}
			audit, err := dptest.Audit(runA, runB, dptest.Config{
				Samples: samples, BinWidth: 1.0, MinBinCount: samples / 100,
			})
			if err != nil {
				return nil, err
			}
			// Allowance: ε plus generous sampling slack.
			pass := audit.EpsHat <= eps*1.6
			t.AddRow(name, eps, samples, audit.EpsHat, pass)
		}
	}
	t.Notes = append(t.Notes,
		"eps-hat is a statistical lower bound on the realized privacy loss; pass requires eps-hat ≤ 1.6·ε",
		"(discrete) rows audit the integer release path (Options.DiscreteRelease)",
		fmt.Sprintf("bins of width 1, minimum bin count %d", samples/100))
	return t, nil
}
