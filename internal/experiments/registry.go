package experiments

import (
	"fmt"
	"sort"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

// Runner is one experiment driver.
type Runner func(Config) (*Table, error)

// Registry maps experiment ids to drivers, in the order DESIGN.md lists
// them.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E0", RationalCrossCheck},
		{"E1", E1ExtensionProperties},
		{"E2", E2AnchorSets},
		{"E3", E3MainAlgorithm},
		{"E4", E4ErdosRenyi},
		{"E5", E5Geometric},
		{"E6", E6DownSensitivity},
		{"E7", E7LocalRepair},
		{"E8", E8LipschitzTightness},
		{"E9", E9Optimality},
		{"E10", E10Baselines},
		{"E11", E11GEM},
		{"E12", E12PrivacyAudit},
		{"E13", E13GenericExtension},
		{"E14", E14LPScaling},
		{"E15", EpsilonSweep},
		{"E16", E16ParallelEngine},
		{"E17", E17SessionServing},
		{"E18", E18SeparationWarmStarts},
		{"E19", E19DaemonServing},
		{"E20", E20WarmRestart},
		{"E21", E21ParametricSweep},
		{"E22", E22LiveGraphDeltas},
		{"F1", F1RepairTrace},
		{"F2", F2Lemma52},
		{"F3", F3WinDecomposition},
	}
}

// Lookup returns the driver for an id, or an error listing valid ids.
func Lookup(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (valid: %v)", id, ids)
}

// prepared is a small helper shared by drivers that reuse Algorithm 1's
// deterministic phase across repeated releases.
func prepared(g *graph.Graph, eps float64, seed uint64) (*core.Prepared, error) {
	return core.PrepareSpanningForest(g, core.Options{
		Epsilon: eps,
		Rand:    generate.NewRand(seed),
	})
}
