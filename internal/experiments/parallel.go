package experiments

import (
	"context"
	"time"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
)

// E16ParallelEngine exercises the sharded evaluation engine on a
// multi-component LP-heavy workload: a disjoint union of dense-ish ER
// clusters evaluated at Δ = 2, which defeats the spanning-forest fast path
// and forces one cutting-plane LP per cluster. The table sweeps the worker
// count, checking that the value and every counting statistic are
// bit-for-bit identical to the serial run (the engine's determinism
// contract) while wall time drops with available parallelism.
func E16ParallelEngine(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "component-sharded parallel evaluation engine (Δ=2, planted ER clusters)",
		Claim:   "shard merge order, not scheduling, determines the result: identical values for every worker count",
		Columns: []string{"workers", "f_2(G)", "identical", "LP-solves", "shards-via-LP", "ms", "speedup"},
	}
	clusters, size := 12, 36
	if cfg.Quick {
		clusters, size = 6, 24
	}
	sizes := make([]int, clusters)
	for i := range sizes {
		sizes[i] = size
	}
	rng := generate.NewRand(cfg.Seed*131 + 7)
	g := generate.PlantedComponents(sizes, 3.2/float64(size), rng)

	plan := forestlp.NewPlan(g)
	// Warm-up: pay the plan's lazily cached triage data (low-degree
	// spanning forests) outside the timed rows, so the serial baseline is
	// not charged for work the later rows reuse.
	if _, _, err := plan.Value(context.Background(), 2, forestlp.Options{Workers: 1}); err != nil {
		return nil, err
	}
	var serialValue float64
	var serialStats forestlp.Stats
	var serialMS float64
	for _, workers := range []int{1, 2, 4, 8} {
		opts := forestlp.Options{Workers: workers, ShardTimings: true}
		start := time.Now()
		v, stats, err := plan.Value(context.Background(), 2, opts)
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if workers == 1 {
			serialValue, serialStats, serialMS = v, stats, ms
		}
		identical := v == serialValue &&
			stats.LPSolves == serialStats.LPSolves &&
			stats.CutsAdded == serialStats.CutsAdded &&
			stats.SimplexPivots == serialStats.SimplexPivots &&
			stats.FastPathHits == serialStats.FastPathHits
		viaLP := 0
		for _, sh := range stats.Shards {
			if !sh.FastPath {
				viaLP++
			}
		}
		t.AddRow(workers, v, identical, stats.LPSolves, viaLP, ms, serialMS/ms)
	}
	t.Notes = append(t.Notes,
		"identical must be true in every row; speedup tracks GOMAXPROCS, so single-core machines report ≈1×")
	return t, nil
}
