package experiments

import (
	"fmt"
	"math"

	"nodedp/internal/core"
	"nodedp/internal/downsens"
	"nodedp/internal/enumerate"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/spanning"
)

// E3MainAlgorithm validates Theorem 1.3 across graph families: the error of
// Algorithm 1 tracks Δ*·ln ln n / ε, not the maximum degree and not n.
func E3MainAlgorithm(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "main algorithm error across families (ε=1)",
		Claim:   "Theorem 1.3: |A(G) − f_sf| ≤ Δ*·Õ(ln ln n)/ε w.h.p.",
		Columns: []string{"family", "n", "f_sf", "maxdeg", "Δ*≤", "median|err|", "p95|err|", "Δ*·lnln(n)/ε"},
	}
	eps := 1.0
	ns := []int{100, 400}
	trials := 8
	if cfg.Quick {
		ns = []int{60, 150}
		trials = 4
	}
	for _, n := range ns {
		families := []struct {
			name string
			gen  func(seed uint64) *graph.Graph
		}{
			{"matching", func(s uint64) *graph.Graph { return generate.Matching(n / 2) }},
			{"caterpillar", func(s uint64) *graph.Graph { return generate.Caterpillar(n/4, 3) }},
			{"geometric", func(s uint64) *graph.Graph {
				return generate.Geometric(n, 1.2/math.Sqrt(float64(n)), generate.NewRand(cfg.Seed*11+s))
			}},
			{"er(c=1.5)", func(s uint64) *graph.Graph {
				return generate.ErdosRenyi(n, 1.5/float64(n), generate.NewRand(cfg.Seed*13+s))
			}},
		}
		for _, f := range families {
			var errs []float64
			var fsf, maxdeg, deltaUB float64
			for s := uint64(0); s < uint64(trials); s++ {
				g := f.gen(s)
				fsf = float64(g.SpanningForestSize())
				maxdeg = float64(g.MaxDegree())
				_, d := spanning.LowDegreeSpanningForest(g)
				deltaUB = float64(d)
				res, err := core.EstimateSpanningForestSize(g, core.Options{
					Epsilon: eps, Rand: generate.NewRand(cfg.Seed*17 + s*3 + 1),
				})
				if err != nil {
					return nil, err
				}
				errs = append(errs, absErr(res.Value, fsf))
			}
			ref := deltaUB * math.Log(math.Log(float64(n)+3)) / eps
			t.AddRow(f.name, n, fsf, maxdeg, deltaUB, percentile(errs, 0.5), percentile(errs, 0.95), ref)
		}
	}
	t.Notes = append(t.Notes,
		"Δ*≤ is the local-search upper bound on Δ*; the error column should track it, not maxdeg or n")
	return t, nil
}

// E4ErdosRenyi validates the Section 1.1.4 claim for G(n, c/n): additive
// error Õ(log n/ε) and relative error Õ(log² n/(εn)).
func E4ErdosRenyi(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Erdős–Rényi G(n, c/n) accuracy (ε=1, f_cc with known n)",
		Claim:   "§1.1.4: additive error Õ(log n/ε); relative error Õ(log²n/(εn))",
		Columns: []string{"c", "n", "f_cc", "median|err|", "p95|err|", "rel-err", "log(n)/ε"},
	}
	eps := 1.0
	ns := []int{100, 300, 800}
	trials := 8
	if cfg.Quick {
		ns = []int{80, 200}
		trials = 4
	}
	for _, c := range []float64{0.5, 1, 2} {
		for _, n := range ns {
			var errs []float64
			var fcc float64
			for s := uint64(0); s < uint64(trials); s++ {
				g := generate.ErdosRenyi(n, c/float64(n), generate.NewRand(cfg.Seed*19+uint64(c*10)*7+s))
				fcc = float64(g.CountComponents())
				res, err := core.EstimateComponentCountKnownN(g, core.Options{
					Epsilon: eps, Rand: generate.NewRand(cfg.Seed*23 + s*5 + 2),
				})
				if err != nil {
					return nil, err
				}
				errs = append(errs, absErr(res.Value, fcc))
			}
			med := percentile(errs, 0.5)
			t.AddRow(c, n, fcc, med, percentile(errs, 0.95), med/fcc, math.Log(float64(n))/eps)
		}
	}
	t.Notes = append(t.Notes, "median|err| should grow like log n and stay far below f_cc = Ω(n)")
	return t, nil
}

// E5Geometric validates the Section 1.1.4 claim for random geometric
// graphs: no induced 6-stars, spanning 6-forests, error Õ(ln ln n / ε).
func E5Geometric(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "random geometric graphs (ε=1, f_cc with known n)",
		Claim:   "§1.1.4: s(G) ≤ 5 ⟹ Δ* ≤ 6; error Õ(ln ln n / ε)",
		Columns: []string{"n", "r", "f_cc", "maxdeg", "s(G)", "Δ*≤", "median|err|", "p95|err|"},
	}
	eps := 1.0
	ns := []int{100, 300, 800}
	trials := 8
	if cfg.Quick {
		ns = []int{80, 200}
		trials = 4
	}
	for _, n := range ns {
		r := 1.0 / math.Sqrt(float64(n))
		var errs []float64
		var fcc, maxdeg, sG, dUB float64
		for s := uint64(0); s < uint64(trials); s++ {
			rng := generate.NewRand(cfg.Seed*29 + s)
			g := generate.Geometric(n, r, rng)
			fcc = float64(g.CountComponents())
			maxdeg = float64(g.MaxDegree())
			star, err := downsens.MaxInducedStar(g, 0)
			if err != nil {
				return nil, err
			}
			sG = float64(star.Size)
			if star.Size >= 6 {
				t.Notes = append(t.Notes, "UNEXPECTED: induced 6-star in a geometric graph")
			}
			// Lemma 1.8 constructive: repair at Δ = s(G)+1 must succeed.
			forest, witness, err := spanning.Repair(g, star.Size+1)
			if err != nil {
				return nil, err
			}
			if witness != nil {
				t.Notes = append(t.Notes, "UNEXPECTED: repair blocked at Δ=s(G)+1")
			} else {
				dUB = float64(graph.MaxDegreeOfEdgeSet(g.N(), forest))
			}
			res, err := core.EstimateComponentCountKnownN(g, core.Options{
				Epsilon: eps, Rand: generate.NewRand(cfg.Seed*31 + s*7 + 3),
			})
			if err != nil {
				return nil, err
			}
			errs = append(errs, absErr(res.Value, fcc))
		}
		t.AddRow(n, r, fcc, maxdeg, sG, dUB, percentile(errs, 0.5), percentile(errs, 0.95))
	}
	t.Notes = append(t.Notes, "median|err| should be nearly flat in n (ln ln n scale)")
	return t, nil
}

// E6DownSensitivity validates Lemma 1.7 (DS_fsf = s(G)) and Lemma 1.6
// (Δ* ≤ DS+1) on exhaustive small and random graphs, with brute-force
// ground truth.
func E6DownSensitivity(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "down-sensitivity identities",
		Claim:   "Lemma 1.7: DS_fsf = s(G); Lemma 1.6: Δ* ≤ DS_fsf + 1",
		Columns: []string{"source", "graphs", "DS=s(G) fails", "Δ*≤DS+1 fails"},
	}
	trials := 60
	exhaustiveN := 6
	if cfg.Quick {
		trials = 25
		exhaustiveN = 5
	}
	check := func(g *graph.Graph) (l17, l16 bool, err error) {
		ds, err := downsens.DownSensitivityBruteForce(g, downsens.SpanningForestSizeF)
		if err != nil {
			return false, false, err
		}
		star, err := downsens.MaxInducedStar(g, 0)
		if err != nil {
			return false, false, err
		}
		l17 = float64(star.Size) != ds
		dstar, exceeded := spanning.MinMaxDegreeExact(g, 0)
		if !exceeded {
			l16 = float64(dstar) > ds+1
		}
		return l17, l16, nil
	}
	// Exhaustive sweep over every isomorphism class on ≤ exhaustiveN
	// vertices.
	exCount, exL17, exL16 := 0, 0, 0
	var sweepErr error
	if err := enumerate.AllNonIsomorphic(exhaustiveN, func(g *graph.Graph) bool {
		exCount++
		l17, l16, err := check(g)
		if err != nil {
			sweepErr = err
			return false
		}
		if l17 {
			exL17++
		}
		if l16 {
			exL16++
		}
		return true
	}); err != nil {
		return nil, err
	}
	if sweepErr != nil {
		return nil, sweepErr
	}
	t.AddRow(fmt.Sprintf("exhaustive(n=%d)", exhaustiveN), exCount, exL17, exL16)

	lemma17Fails, lemma16Fails := 0, 0
	for s := uint64(0); s < uint64(trials); s++ {
		rng := generate.NewRand(cfg.Seed*37 + s)
		n := 1 + rng.IntN(9)
		g := generate.ErdosRenyi(n, 0.1+0.6*rng.Float64(), rng)
		l17, l16, err := check(g)
		if err != nil {
			return nil, err
		}
		if l17 {
			lemma17Fails++
		}
		if l16 {
			lemma16Fails++
		}
	}
	t.AddRow("random(n≤9)", trials, lemma17Fails, lemma16Fails)
	t.Notes = append(t.Notes, "both failure columns expected 0")
	return t, nil
}

// E7LocalRepair validates the constructive Lemma 1.8 (Algorithm 3) at
// scale: repair at Δ = s(G)+1 always yields a spanning Δ-forest.
func E7LocalRepair(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Algorithm 3 local repairs",
		Claim:   "Lemma 1.8: no induced Δ-star ⟹ spanning Δ-forest (constructive)",
		Columns: []string{"family", "graphs", "repairs-ok", "not-spanning", "degree-exceeded"},
	}
	trials := 30
	n := 300
	if cfg.Quick {
		trials = 10
		n = 120
	}
	families := []struct {
		name string
		gen  func(seed uint64) *graph.Graph
	}{
		{"er(dense)", func(s uint64) *graph.Graph {
			rng := generate.NewRand(cfg.Seed*41 + s)
			return generate.ErdosRenyi(n, 8/float64(n), rng)
		}},
		{"geometric", func(s uint64) *graph.Graph {
			rng := generate.NewRand(cfg.Seed*43 + s)
			return generate.Geometric(n, 1.5/math.Sqrt(float64(n)), rng)
		}},
		{"chung-lu", func(s uint64) *graph.Graph {
			rng := generate.NewRand(cfg.Seed*47 + s)
			return generate.ChungLu(generate.PowerLawWeights(n, 2.5, 3), rng)
		}},
	}
	for _, f := range families {
		ok, notSpanning, degExceeded := 0, 0, 0
		for s := uint64(0); s < uint64(trials); s++ {
			g := f.gen(s)
			star, err := downsens.MaxInducedStar(g, 0)
			if err != nil {
				return nil, err
			}
			delta := star.Size + 1
			forest, witness, err := spanning.Repair(g, delta)
			if err != nil {
				return nil, err
			}
			switch {
			case witness != nil:
				notSpanning++ // blocked despite Δ > s(G): would contradict Lemma 1.8
			case !graph.IsSpanningForestOf(g, forest):
				notSpanning++
			case graph.MaxDegreeOfEdgeSet(g.N(), forest) > delta:
				degExceeded++
			default:
				ok++
			}
		}
		t.AddRow(f.name, trials, ok, notSpanning, degExceeded)
	}
	t.Notes = append(t.Notes, "repairs-ok should equal graphs in every row")
	return t, nil
}
