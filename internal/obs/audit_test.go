package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleEvents() []AuditEvent {
	return []AuditEvent{
		{Tenant: "acme", Scope: "fp-1", Op: AuditOpen, Outcome: AuditOK, Mode: "sequential", Budget: 64},
		{Tenant: "acme", RequestID: "q-1", Scope: "fp-1", Op: AuditReserve, Outcome: AuditOK, Epsilon: 0.25, Mode: "sequential", Spent: 0.25},
		{Tenant: "acme", RequestID: "q-1", Scope: "fp-1", Op: AuditCharge, Outcome: AuditOK, Epsilon: 0.25, Mode: "sequential", Spent: 0.25},
		{Tenant: "a b", RequestID: `odd "quoted" id`, Scope: "fp-2", Op: AuditReserve, Outcome: AuditRejected, Epsilon: math.Pi, Mode: "advanced", Spent: 0.1 + 0.2},
		{Tenant: "acme", RequestID: "q-1", Scope: "fp-1", Op: AuditRefund, Outcome: AuditOK, Epsilon: 0.25, Mode: "sequential", Spent: 0},
	}
}

func TestAuditLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := OpenAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	in := sampleEvents()
	for _, e := range in {
		l.Record(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, wrote %d", len(out), len(in))
	}
	for i, e := range out {
		want := in[i]
		want.Seq = uint64(i + 1)
		if e != want {
			t.Fatalf("event %d: got %+v, want %+v (floats must round-trip bit-identically)", i, e, want)
		}
	}
}

func TestAuditLogResumesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, _ := OpenAuditLog(path)
	l.Record(AuditEvent{Op: AuditOpen, Outcome: AuditOK, Mode: "sequential"})
	l.Record(AuditEvent{Op: AuditReserve, Outcome: AuditOK, Mode: "sequential"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A restarted daemon appends with continuing sequence numbers.
	l2, err := OpenAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Record(AuditEvent{Op: AuditCharge, Outcome: AuditOK, Mode: "sequential"})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[2].Seq != 3 {
		t.Fatalf("got %d events, last seq %d; want 3 events ending at seq 3", len(events), events[len(events)-1].Seq)
	}
}

func TestAuditLogDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, _ := OpenAuditLog(path)
	for _, e := range sampleEvents() {
		l.Record(e)
	}
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := []byte(strings.Replace(string(raw), "eps=0.25", "eps=0.26", 1))
	corrupt := filepath.Join(t.TempDir(), "corrupt.log")
	os.WriteFile(corrupt, flip, 0o600)
	if _, err := ReadAuditLog(corrupt); err == nil || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("flipped epsilon not detected: %v", err)
	}

	// A torn final line (crash mid-append) must fail the read, not be
	// silently dropped.
	torn := filepath.Join(t.TempDir(), "torn.log")
	os.WriteFile(torn, raw[:len(raw)-10], 0o600)
	if _, err := ReadAuditLog(torn); err == nil {
		t.Fatal("torn final line not detected")
	}

	// A spliced-out middle line breaks sequence contiguity.
	lines := strings.SplitAfter(string(raw), "\n")
	spliced := filepath.Join(t.TempDir(), "spliced.log")
	os.WriteFile(spliced, []byte(strings.Join(append(lines[:1], lines[2:]...), "")), 0o600)
	if _, err := ReadAuditLog(spliced); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("spliced log not detected: %v", err)
	}
}

func TestAuditLogByteDeterminism(t *testing.T) {
	write := func() []byte {
		path := filepath.Join(t.TempDir(), "audit.log")
		l, _ := OpenAuditLog(path)
		for _, e := range sampleEvents() {
			l.Record(e)
		}
		l.Close()
		raw, _ := os.ReadFile(path)
		return raw
	}
	a, b := write(), write()
	if string(a) != string(b) {
		t.Fatalf("identical event sequences produced different bytes:\n%q\nvs\n%q", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty log")
	}
}

func TestOpenAuditLogRefusesUnverifiableExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	os.WriteFile(path, []byte("garbage\n"), 0o600)
	if _, err := OpenAuditLog(path); err == nil {
		t.Fatal("appending to an unverifiable log must fail loudly")
	}
}
