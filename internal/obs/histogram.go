package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Histogram is a fixed-bucket Prometheus histogram (no external deps, per
// the repo's no-new-deps rule). Bounds are upper bucket limits; an
// implicit +Inf bucket catches the overflow. Fixed bounds keep the
// exposition byte-stable — tests golden-pin it — and cheap: one binary
// search per observation.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    float64
	count  uint64
}

// DefaultLatencyBuckets are the request/stage duration bounds in seconds:
// 10µs .. 10s in a 1-2.5-5 progression, matching the stack's measured
// range (~µs in-process queries up to multi-second cold plan builds).
func DefaultLatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// NewHistogram builds a histogram over the given (strictly increasing)
// upper bounds; nil means DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %g <= %g", i, b[i], b[i-1]))
		}
	}
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.mu.Lock()
	h.counts[lo]++
	// Arrival-order float accumulation: _sum is an operational diagnostic
	// (never released, never compared bit-for-bit across runs with
	// concurrent writers).
	h.sum += v //detlint:allow floatorder — Prometheus histogram _sum is an operational diagnostic, never a released value
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is an immutable histogram reading. Cumulative follows
// the Prometheus convention: Cumulative[i] counts observations ≤ Bounds[i],
// with the final entry (the +Inf bucket) equal to Count.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot freezes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds:     h.bounds, // immutable after New
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		s.Cumulative[i] = cum
	}
	return s
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// name is the metric family; labels is a pre-rendered label list (without
// braces, e.g. `route="POST /v1/graphs"`) merged with the le label, or "".
func (s HistogramSnapshot) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// formatBound renders a bucket bound the shortest way that round-trips.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
