package obs

// Context plumbing: the trace and the current span ride the request
// context, so instrumentation deep in the solver needs no signature
// changes — the deadline-propagation work already threads ctx everywhere
// spans are wanted. Every helper tolerates an un-instrumented context
// (and returns nil spans whose methods no-op), which is the whole
// tracing-disabled fast path.

import "context"

type traceKey struct{}
type spanKey struct{}
type requestInfoKey struct{}

// ContextWithTrace installs tr (and its root span as the current span).
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, tr)
	return context.WithValue(ctx, spanKey{}, tr.Root())
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns it
// along with a context in which it is current. On an un-instrumented
// context it returns (nil, ctx) — the nil span's methods all no-op.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return nil, ctx
	}
	s := parent.tr.start(parent, name)
	return s, context.WithValue(ctx, spanKey{}, s)
}

// AddCounter accumulates into the current span's counter attribute — the
// cheap hook solver inner loops use (one context lookup when tracing is
// off).
func AddCounter(ctx context.Context, key string, v int64) {
	SpanFrom(ctx).AddCounter(key, v)
}

// RequestInfo carries the request-scoped identity the audit log records.
// It deliberately excludes the crypto-random session ID: audit events must
// be byte-identical across identically-seeded daemons, so they are scoped
// by (tenant, graph fingerprint) instead.
type RequestInfo struct {
	Tenant    string
	RequestID string
}

// ContextWithRequestInfo attaches the request identity for the audit log.
func ContextWithRequestInfo(ctx context.Context, info RequestInfo) context.Context {
	return context.WithValue(ctx, requestInfoKey{}, info)
}

// RequestInfoFrom returns the context's request identity (zero when
// absent).
func RequestInfoFrom(ctx context.Context) RequestInfo {
	info, _ := ctx.Value(requestInfoKey{}).(RequestInfo)
	return info
}
