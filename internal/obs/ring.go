package obs

import "sync"

// Ring is a bounded in-memory buffer of recent trace snapshots, the store
// behind GET /v1/admin/traces. Memory is bounded by capacity × trace size;
// old traces are overwritten in arrival order.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceSnapshot
	next int // index of the next write
	full bool
}

// NewRing builds a ring holding up to capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]TraceSnapshot, capacity)}
}

// Add records a finished trace, evicting the oldest when full.
func (r *Ring) Add(ts TraceSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = ts
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Len reports how many traces are currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Recent returns up to max traces for the given tenant, newest first.
// Tenant scoping is exact: a tenant sees only its own traces (the empty
// tenant sees only unscoped traces), because spans carry per-request
// attributes that must not leak across tenants.
func (r *Ring) Recent(tenant string, max int) []TraceSnapshot {
	if r == nil || max == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	var out []TraceSnapshot
	for i := 0; i < n && len(out) != max; i++ {
		// Walk backwards from the newest entry.
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		if r.buf[idx].Tenant == tenant {
			out = append(out, r.buf[idx])
		}
	}
	return out
}
