// Package obs is the serving stack's zero-dependency tracing and telemetry
// layer: per-request traces with deterministic span IDs, a bounded ring of
// recent traces, a hand-rolled Prometheus histogram, and the append-only
// privacy audit log.
//
// Determinism contract. Traces are diagnostics and must never perturb the
// release path, so the layer is built around two rules:
//
//   - Span IDENTITY is deterministic: a trace's ID derives from the request
//     ID (or a seeded counter for requests without one) and every span ID
//     is a pure function of the trace ID and the span's creation index.
//     Two identically-seeded daemons serving the same workload produce
//     identical span trees — IDs, parentage, names, and counter attributes
//     — which is what lets tests pin goldens on them.
//   - Span TIMING is operational: durations come from a wall clock, are
//     reported only through diagnostics surfaces (the trace ring, stage
//     histograms, the slow-query log), and are explicitly excluded from
//     every determinism comparison. Wall-clock time never feeds a released
//     value.
//
// A nil *Span is valid and all its methods no-op, so instrumented code pays
// one context lookup — and nothing else — when tracing is disabled.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// KeySeed derives a trace seed from a request key (FNV-1a 64). The same
// request ID always yields the same trace identity, on any daemon.
func KeySeed(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that turns
// structured seeds (counters, FNV hashes) into well-spread IDs.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// defaultNow is the package's operational clock.
//
//detlint:allow rngsource — operational span timing: durations are diagnostics, excluded from determinism comparisons, and never feed a released value
func defaultNow() time.Time { return time.Now() }

// Trace is one request's span tree. Spans are created sequentially along
// the request path (creation order is deterministic); counter updates may
// arrive concurrently from worker goroutines and are commutative sums.
type Trace struct {
	mu        sync.Mutex
	id        uint64
	name      string
	tenant    string
	requestID string
	now       func() time.Time
	spans     []*Span // creation order; spans[0] is the root
}

// NewTrace starts a trace (and its root span, named name) whose identity
// derives from seed. Use KeySeed for request-ID-derived identities and a
// seeded counter for requests without one.
func NewTrace(name string, seed uint64) *Trace {
	return NewTraceWithClock(name, seed, nil)
}

// NewTraceWithClock is NewTrace with an injected clock (tests and servers
// that already own a clock); nil means the wall clock.
func NewTraceWithClock(name string, seed uint64, now func() time.Time) *Trace {
	if now == nil {
		now = defaultNow
	}
	t := &Trace{id: mix64(seed), name: name, now: now}
	root := &Span{tr: t, seq: 0, parentSeq: -1, name: name, start: now()}
	t.spans = append(t.spans, root)
	return t
}

// Rekey re-derives the trace identity from a request key. Handlers call it
// once the request body reveals a request ID; span IDs are computed from
// the trace ID at snapshot time, so spans already opened are re-identified
// consistently.
func (t *Trace) Rekey(key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = mix64(KeySeed(key))
	t.requestID = key
	t.mu.Unlock()
}

// SetTenant scopes the trace for the admin ring's tenant filter.
func (t *Trace) SetTenant(tenant string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tenant = tenant
	t.mu.Unlock()
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.spans[0]
}

// start opens a child span under parent. parent is a span of t.
func (t *Trace) start(parent *Span, name string) *Span {
	t.mu.Lock()
	s := &Span{tr: t, seq: int32(len(t.spans)), parentSeq: parent.seq, name: name, start: t.now()}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed, attributed stage of a trace. A nil *Span no-ops.
type Span struct {
	tr        *Trace
	seq       int32
	parentSeq int32
	name      string
	start     time.Time

	mu       sync.Mutex
	end      time.Time
	counters map[string]int64
	labels   map[string]string
}

// End closes the span. Ending twice keeps the first end time; snapshotting
// an unended span uses the trace clock's current reading.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.tr.now()
	}
	s.mu.Unlock()
}

// SetCounter sets an integer attribute (deterministic solver counters:
// pivots, slides, max-flow calls).
func (s *Span) SetCounter(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[key] = v
	s.mu.Unlock()
}

// AddCounter accumulates into an integer attribute. Safe for concurrent
// workers: sums are commutative, so the result is deterministic even when
// the update order is not.
func (s *Span) AddCounter(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[key] += v
	s.mu.Unlock()
}

// SetLabel sets a string attribute.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string)
	}
	s.labels[key] = value
	s.mu.Unlock()
}

// SetAny renders v with %v into a string attribute. It is the span
// attribute sink detlint's wireleak analyzer watches: passing a value whose
// type carries a //privacy:secret annotation (a GridEval, an exact f_Δ
// slice) is a lint error, which is what keeps secrets out of the trace
// ring statically.
func (s *Span) SetAny(key string, v any) {
	if s == nil {
		return
	}
	s.SetLabel(key, fmt.Sprint(v))
}

// Attr is one integer span attribute.
type Attr struct {
	Key   string
	Value int64
}

// Label is one string span attribute.
type Label struct {
	Key, Value string
}

// SpanSnapshot is one span rendered immutable, IDs resolved.
type SpanSnapshot struct {
	ID       uint64
	ParentID uint64 // 0 for the root
	Name     string
	Start    time.Time
	Duration time.Duration
	Counters []Attr  // sorted by key
	Labels   []Label // sorted by key
}

// TraceSnapshot is a whole trace rendered immutable. Spans are in creation
// order (pre-order for the sequential request path).
type TraceSnapshot struct {
	TraceID   uint64
	Name      string
	Tenant    string
	RequestID string
	Start     time.Time
	Duration  time.Duration
	Spans     []SpanSnapshot
}

// Snapshot freezes the trace. Unended spans (and the trace itself, until
// the root is ended) are measured against the clock's current reading.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	ts := TraceSnapshot{TraceID: t.id, Name: t.name, Tenant: t.tenant, RequestID: t.requestID}
	t.mu.Unlock()

	ts.Spans = make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		end := s.end
		if end.IsZero() {
			end = t.now()
		}
		ss := SpanSnapshot{
			ID:       spanID(ts.TraceID, s.seq),
			Name:     s.name,
			Start:    s.start,
			Duration: end.Sub(s.start),
		}
		if s.parentSeq >= 0 {
			ss.ParentID = spanID(ts.TraceID, s.parentSeq)
		}
		ss.Counters = make([]Attr, 0, len(s.counters))
		for k, v := range s.counters {
			ss.Counters = append(ss.Counters, Attr{Key: k, Value: v})
		}
		ss.Labels = make([]Label, 0, len(s.labels))
		for k, v := range s.labels {
			ss.Labels = append(ss.Labels, Label{Key: k, Value: v})
		}
		s.mu.Unlock()
		sort.Slice(ss.Counters, func(a, b int) bool { return ss.Counters[a].Key < ss.Counters[b].Key })
		sort.Slice(ss.Labels, func(a, b int) bool { return ss.Labels[a].Key < ss.Labels[b].Key })
		ts.Spans[i] = ss
	}
	ts.Start = ts.Spans[0].Start
	ts.Duration = ts.Spans[0].Duration
	return ts
}

// spanID derives a span's identity from the trace ID and the span's
// creation index — a pure function, so re-keying the trace re-identifies
// every span consistently.
func spanID(traceID uint64, seq int32) uint64 {
	id := mix64(traceID ^ (uint64(seq) + 1))
	if id == 0 {
		id = 1 // 0 is reserved for "no parent"
	}
	return id
}

// Tree renders the deterministic half of the snapshot — IDs, parentage,
// names, counter and label attributes, durations excluded — one span per
// line, indented by depth. Two runs of the same seeded workload must
// produce byte-identical Tree outputs; tests pin goldens on it.
func (ts TraceSnapshot) Tree() string {
	depth := make(map[uint64]int, len(ts.Spans))
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x %s", ts.TraceID, ts.Name)
	if ts.RequestID != "" {
		fmt.Fprintf(&b, " request=%q", ts.RequestID)
	}
	if ts.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%q", ts.Tenant)
	}
	b.WriteByte('\n')
	for _, s := range ts.Spans {
		d := 0
		if s.ParentID != 0 {
			d = depth[s.ParentID] + 1
		}
		depth[s.ID] = d
		b.WriteString(strings.Repeat("  ", d))
		fmt.Fprintf(&b, "%s id=%016x parent=%016x", s.Name, s.ID, s.ParentID)
		for _, a := range s.Counters {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Value)
		}
		for _, l := range s.Labels {
			fmt.Fprintf(&b, " %s=%q", l.Key, l.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Counter returns a counter attribute from the first span named name
// (false when absent) — the assertion helper behind the "span counters
// equal forestlp.Stats" conformance tests.
func (ts TraceSnapshot) Counter(span, key string) (int64, bool) {
	for _, s := range ts.Spans {
		if s.Name != span {
			continue
		}
		for _, a := range s.Counters {
			if a.Key == key {
				return a.Value, true
			}
		}
		return 0, false
	}
	return 0, false
}

// Find returns the first span with the given name.
func (ts TraceSnapshot) Find(span string) (SpanSnapshot, bool) {
	for _, s := range ts.Spans {
		if s.Name == span {
			return s, true
		}
	}
	return SpanSnapshot{}, false
}
