package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic span clock: each reading advances 1ms.
func fakeClock() func() time.Time {
	base := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func buildTrace(seed uint64) *Trace {
	tr := NewTraceWithClock("POST /v1/sessions/{id}/query", seed, fakeClock())
	ctx := ContextWithTrace(context.Background(), tr)
	admit, ctx2 := StartSpan(ctx, "serve.admit")
	admit.SetCounter("admitted", 1)
	admit.End()
	_ = ctx2
	exec, ectx := StartSpan(ctx, "serve.execute")
	grid, gctx := StartSpan(ectx, "forestlp.grid")
	AddCounter(gctx, "lp_pivots", 17)
	AddCounter(gctx, "lp_pivots", 5)
	grid.SetLabel("delta", "2")
	grid.End()
	exec.End()
	tr.Root().End()
	return tr
}

func TestSpanTreeDeterministic(t *testing.T) {
	a := buildTrace(42).Snapshot()
	b := buildTrace(42).Snapshot()
	if a.Tree() != b.Tree() {
		t.Fatalf("identical seeds produced different trees:\n%s\nvs\n%s", a.Tree(), b.Tree())
	}
	c := buildTrace(43).Snapshot()
	if a.TraceID == c.TraceID {
		t.Fatal("distinct seeds produced the same trace ID")
	}
	// Structure: 4 spans, root is parent of admit and execute, execute of grid.
	if len(a.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(a.Spans))
	}
	if a.Spans[1].ParentID != a.Spans[0].ID || a.Spans[2].ParentID != a.Spans[0].ID {
		t.Fatal("admit/execute not parented to the root")
	}
	if a.Spans[3].ParentID != a.Spans[2].ID {
		t.Fatal("grid span not parented to execute")
	}
	if v, ok := a.Counter("forestlp.grid", "lp_pivots"); !ok || v != 22 {
		t.Fatalf("lp_pivots = %d, %v; want 22, true", v, ok)
	}
}

func TestTreeExcludesDurations(t *testing.T) {
	tr := buildTrace(7)
	tree := tr.Snapshot().Tree()
	if strings.Contains(tree, "ms") || strings.Contains(tree, "duration") {
		t.Fatalf("tree output leaks durations:\n%s", tree)
	}
	// Golden: the deterministic rendering is pinned so accidental format
	// (or ID-derivation) drift fails loudly.
	const want = `trace 63cbe1e459320dd7 POST /v1/sessions/{id}/query
POST /v1/sessions/{id}/query id=3d41bf495cd3075f parent=0000000000000000
  serve.admit id=46a6c8e56922a525 parent=3d41bf495cd3075f admitted=1
  serve.execute id=6baa78681a99f995 parent=3d41bf495cd3075f
    forestlp.grid id=8e6a4e9586d25622 parent=6baa78681a99f995 lp_pivots=22 delta="2"
`
	if tree != want {
		t.Fatalf("tree golden drift:\ngot:\n%s\nwant:\n%s", tree, want)
	}
}

func TestRekeyReidentifiesSpans(t *testing.T) {
	a := buildTrace(1)
	a.Rekey("req-77")
	b := buildTrace(2) // different seed...
	b.Rekey("req-77")  // ...same request ID
	if a.Snapshot().Tree() != b.Snapshot().Tree() {
		t.Fatal("request-ID-derived identities differ across seeds")
	}
	if a.Snapshot().RequestID != "req-77" {
		t.Fatal("request ID not recorded")
	}
}

func TestNilSpanAndUninstrumentedContext(t *testing.T) {
	var s *Span
	s.End()
	s.SetCounter("x", 1)
	s.AddCounter("x", 1)
	s.SetLabel("k", "v")
	s.SetAny("k", 3)

	ctx := context.Background()
	sp, ctx2 := StartSpan(ctx, "nope")
	if sp != nil {
		t.Fatal("StartSpan on an uninstrumented context must return nil")
	}
	AddCounter(ctx2, "x", 1) // must not panic
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Fatal("uninstrumented context returned non-nil trace/span")
	}
}

func TestConcurrentAddCounterDeterministicSum(t *testing.T) {
	tr := NewTrace("root", 9)
	ctx := ContextWithTrace(context.Background(), tr)
	sp, sctx := StartSpan(ctx, "work")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				AddCounter(sctx, "n", 1)
			}
		}()
	}
	wg.Wait()
	sp.End()
	if v, _ := tr.Snapshot().Counter("work", "n"); v != 800 {
		t.Fatalf("concurrent sum = %d, want 800", v)
	}
}

func TestRingBoundedAndTenantScoped(t *testing.T) {
	r := NewRing(3)
	add := func(name, tenant string) {
		tr := NewTrace(name, KeySeed(name))
		tr.SetTenant(tenant)
		tr.Root().End()
		r.Add(tr.Snapshot())
	}
	add("t1", "acme")
	add("t2", "acme")
	add("t3", "")
	add("t4", "acme") // evicts t1
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	acme := r.Recent("acme", -1)
	if len(acme) != 2 || acme[0].Name != "t4" || acme[1].Name != "t2" {
		t.Fatalf("acme traces = %+v, want [t4 t2]", names(acme))
	}
	if def := r.Recent("", -1); len(def) != 1 || def[0].Name != "t3" {
		t.Fatalf("default-tenant traces = %v, want [t3]", names(def))
	}
	if other := r.Recent("mallory", -1); len(other) != 0 {
		t.Fatalf("foreign tenant sees %v, want nothing", names(other))
	}
	if capped := r.Recent("acme", 1); len(capped) != 1 || capped[0].Name != "t4" {
		t.Fatalf("capped = %v, want [t4]", names(capped))
	}
}

func names(ts []TraceSnapshot) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.Name)
	}
	return out
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "nodedp_request_duration_seconds", `route="POST /v1/graphs"`)
	const want = `nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.01"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.1"} 3
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="1"} 4
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="+Inf"} 5
nodedp_request_duration_seconds_sum{route="POST /v1/graphs"} 5.5649999999999995
nodedp_request_duration_seconds_count{route="POST /v1/graphs"} 5
`
	if b.String() != want {
		t.Fatalf("exposition drift:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramNoLabels(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "m", "")
	const want = "m_bucket{le=\"1\"} 1\nm_bucket{le=\"+Inf\"} 1\nm_sum 0.5\nm_count 1\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds must panic at construction")
		}
	}()
	NewHistogram([]float64{1, 1})
}
