package obs

// The privacy audit log: an append-only, CRC-guarded record of every
// ledger operation a serving session performs — reservations, refunds,
// charges, dedup replays — so a budget dispute can be settled from a
// durable artifact instead of in-memory counters.
//
// Design constraints, in order:
//
//   - Byte-determinism: two identically-seeded daemons serving the same
//     workload must write byte-identical logs. Events therefore carry NO
//     wall-clock timestamps and NO crypto-random session IDs; they are
//     scoped by (tenant, graph fingerprint, request ID) and ordered by a
//     logical sequence number. Floats are rendered with strconv's
//     shortest-round-trip formatting, so the recorded spent values
//     reproduce the accountant's float64 state exactly.
//   - Tamper evidence: every line ends in a CRC-64/ECMA of its content
//     (the same checksum discipline as the PR 5 snapshot codec); readers
//     verify the CRC and the sequence contiguity, so truncation, bit rot,
//     and splices are detected, and a torn final line (crash mid-append)
//     is reported rather than silently dropped.
//   - Durability: each record is flushed and fsynced before Record
//     returns — an audit log that loses the events before a crash would
//     be the wrong artifact to settle disputes with.
//
// The `ccdp audit` subcommand replays a log through a fresh composition
// accountant and checks every recorded spent-after value bit-for-bit.

import (
	"bufio"
	"fmt"
	"hash/crc64"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Audit ops.
const (
	// AuditOpen records a session opening: Budget, Mode, and Delta carry
	// the accountant's configuration; Spent its (possibly nonzero, for a
	// shared accountant) starting state.
	AuditOpen = "open"
	// AuditReserve records a budget reservation attempt; Outcome "ok"
	// charged Epsilon, "rejected" spent nothing.
	AuditReserve = "reserve"
	// AuditRefund records a refund of a reservation whose query was
	// canceled before any noise was drawn.
	AuditRefund = "refund"
	// AuditCharge records a reservation becoming permanent: the query
	// completed (Outcome "ok") or failed past the point of refund
	// (Outcome "error"); the ledger does not move.
	AuditCharge = "charge"
	// AuditReplay records a dedup replay: a retried request ID answered
	// from the recorded release without touching the ledger.
	AuditReplay = "replay"
	// AuditDelta records a live-graph mutation (Session.ApplyDelta): the
	// served graph changed but the ledger did not move — deltas spend no
	// ε — so the event carries the unchanged balance, and the scope stays
	// the session's open-time fingerprint so the stream stays contiguous.
	AuditDelta = "delta"
)

// Audit outcomes.
const (
	AuditOK       = "ok"
	AuditRejected = "rejected"
	AuditError    = "error"
)

// AuditEvent is one ledger operation.
type AuditEvent struct {
	// Seq is the log-assigned logical sequence number (1-based,
	// contiguous).
	Seq uint64
	// Tenant, RequestID, and Scope identify the actor: Scope is the
	// graph fingerprint (deterministic), never the crypto-random session
	// ID.
	Tenant    string
	RequestID string
	Scope     string
	// Op and Outcome classify the operation (Audit* constants).
	Op      string
	Outcome string
	// Epsilon is the query budget the operation moved (0 for open/replay).
	Epsilon float64
	// Mode names the composition rule ("sequential" or "advanced");
	// Budget and Delta carry the accountant configuration on open events.
	Mode   string
	Budget float64
	Delta  float64
	// Spent is the accountant's global privacy loss AFTER this event —
	// the value reconciliation replays and compares bit-for-bit.
	Spent float64
}

// AuditSink receives audit events. *AuditLog implements it; tests use
// in-memory sinks.
type AuditSink interface {
	Record(AuditEvent)
}

// auditCRC is the CRC-64/ECMA table shared with the snapshot codec.
var auditCRC = crc64.MakeTable(crc64.ECMA)

// AuditLog is the append-only file writer. Safe for concurrent use; the
// internal mutex also makes (seq assignment, write) atomic, so sequence
// numbers in the file are contiguous and ordered.
type AuditLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	err  error // first write failure, surfaced via Err and Close
	path string
}

// OpenAuditLog opens (creating if needed) the append-only log at path. An
// existing log is scanned so sequence numbers continue where the previous
// process stopped — a daemon restart appends, never rewinds.
func OpenAuditLog(path string) (*AuditLog, error) {
	var lastSeq uint64
	if events, err := ReadAuditLog(path); err == nil && len(events) > 0 {
		lastSeq = events[len(events)-1].Seq
	} else if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("obs: audit log %s exists but does not verify: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	return &AuditLog{f: f, w: bufio.NewWriter(f), seq: lastSeq, path: path}, nil
}

// Path returns the file the log appends to.
func (l *AuditLog) Path() string { return l.path }

// Record assigns the next sequence number and appends the event, flushing
// and fsyncing before returning. Write failures do not propagate to the
// serving path (a query must not fail because a disk did); the first
// failure is latched and surfaced by Err and Close.
func (l *AuditLog) Record(e AuditEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	line := FormatAuditLine(e)
	if _, err := l.w.WriteString(line + "\n"); err != nil {
		l.err = err
		return
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
	}
}

// Err returns the first write failure, if any.
func (l *AuditLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the log, returning any latched write failure.
func (l *AuditLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.w.Flush()
	cerr := l.f.Close()
	switch {
	case l.err != nil:
		return l.err
	case ferr != nil:
		return ferr
	default:
		return cerr
	}
}

// FormatAuditLine renders one event as its durable line (without the
// trailing newline): versioned key=value fields, strings quoted, floats in
// shortest-round-trip form, CRC-64/ECMA suffix over everything before it.
func FormatAuditLine(e AuditEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "a1 seq=%d tenant=%s request=%s scope=%s op=%s out=%s eps=%s mode=%s budget=%s delta=%s spent=%s",
		e.Seq, strconv.Quote(e.Tenant), strconv.Quote(e.RequestID), strconv.Quote(e.Scope),
		e.Op, e.Outcome,
		formatFloat(e.Epsilon), e.Mode, formatFloat(e.Budget), formatFloat(e.Delta), formatFloat(e.Spent))
	fmt.Fprintf(&b, " crc=%016x", crc64.Checksum([]byte(b.String()), auditCRC))
	return b.String()
}

// formatFloat renders a float64 so it parses back bit-identically.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseAuditLine parses and CRC-verifies one line.
func ParseAuditLine(line string) (AuditEvent, error) {
	var e AuditEvent
	body, crcField, ok := strings.Cut(line, " crc=")
	if !ok {
		return e, fmt.Errorf("no crc field")
	}
	want, err := strconv.ParseUint(crcField, 16, 64)
	if err != nil {
		return e, fmt.Errorf("bad crc %q: %v", crcField, err)
	}
	if got := crc64.Checksum([]byte(body), auditCRC); got != want {
		return e, fmt.Errorf("crc mismatch: line says %016x, content is %016x", want, got)
	}
	rest, ok := strings.CutPrefix(body, "a1 ")
	if !ok {
		return e, fmt.Errorf("unknown version (want a1)")
	}
	for len(rest) > 0 {
		rest = strings.TrimLeft(rest, " ")
		key, after, ok := strings.Cut(rest, "=")
		if !ok {
			return e, fmt.Errorf("malformed field near %q", rest)
		}
		var val string
		if strings.HasPrefix(after, `"`) {
			q, err := strconv.QuotedPrefix(after)
			if err != nil {
				return e, fmt.Errorf("bad quoted value for %s: %v", key, err)
			}
			if val, err = strconv.Unquote(q); err != nil {
				return e, fmt.Errorf("bad quoted value for %s: %v", key, err)
			}
			rest = after[len(q):]
		} else {
			val, rest, _ = strings.Cut(after, " ")
		}
		switch key {
		case "seq":
			if e.Seq, err = strconv.ParseUint(val, 10, 64); err != nil {
				return e, fmt.Errorf("bad seq %q", val)
			}
		case "tenant":
			e.Tenant = val
		case "request":
			e.RequestID = val
		case "scope":
			e.Scope = val
		case "op":
			e.Op = val
		case "out":
			e.Outcome = val
		case "mode":
			e.Mode = val
		case "eps", "budget", "delta", "spent":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return e, fmt.Errorf("bad %s %q", key, val)
			}
			switch key {
			case "eps":
				e.Epsilon = f
			case "budget":
				e.Budget = f
			case "delta":
				e.Delta = f
			case "spent":
				e.Spent = f
			}
		default:
			return e, fmt.Errorf("unknown field %q", key)
		}
	}
	return e, nil
}

// ReadAuditLog reads, CRC-verifies, and sequence-checks the whole log.
// Any damaged or out-of-sequence line fails the read with its line number:
// an audit artifact is either whole or suspect, never partially trusted.
func ReadAuditLog(path string) ([]AuditEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []AuditEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if sc.Text() == "" {
			continue
		}
		e, err := ParseAuditLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		// Contiguity is anchored at the first event's sequence number, so a
		// log truncated at the front by rotation still verifies internally.
		if n := len(events); n > 0 && e.Seq != events[n-1].Seq+1 {
			return nil, fmt.Errorf("%s:%d: sequence gap: got seq %d after %d", path, lineNo, e.Seq, events[n-1].Seq)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s:%d: %w", path, lineNo+1, err)
	}
	return events, nil
}
