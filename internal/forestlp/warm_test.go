package forestlp

import (
	"context"
	"math"
	"math/big"
	"reflect"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// warmTestGrid returns the Algorithm-1 power-of-two grid for g.
func warmTestGrid(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	grid, err := mechanism.PowerOfTwoGrid(float64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

// TestSepWorkersDeterminism is the parallel-separation property test: on
// random graphs, every SepWorkers setting must produce bit-identical grid
// values, identical counting statistics (including max-flow calls — the
// wave schedule never depends on the worker count), and identical cut
// pools. Run under -race this also exercises the oracle worker pool for
// data races.
func TestSepWorkersDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := generate.NewRand(seed * 131)
		graphs := []*graph.Graph{
			generate.PlantedComponents([]int{50}, 4.0/50, rng),
			generate.WithHubs(generate.ErdosRenyi(48, 2.5/48, rng), 2, 0.25, rng),
			generate.PlantedComponents([]int{20, 14, 16}, 0.25, rng),
		}
		for gi, g := range graphs {
			p := NewPlan(g)
			grid := warmTestGrid(t, g)

			type outcome struct {
				values []float64
				stats  Stats
				pools  [][]warmCut
			}
			run := func(sepWorkers int) outcome {
				warm := newGridWarm(p)
				var stats Stats
				values := make([]float64, len(grid))
				for i, d := range grid {
					v, st, err := p.value(context.Background(), d, Options{Workers: 1, SepWorkers: sepWorkers}, warm)
					if err != nil {
						t.Fatalf("seed %d graph %d sepWorkers %d: %v", seed, gi, sepWorkers, err)
					}
					stats.MergeGridRound(st)
					values[i] = v
				}
				pools := make([][]warmCut, len(warm.shards))
				for i, sw := range warm.shards {
					pools[i] = sw.pool
				}
				return outcome{values, stats, pools}
			}

			base := run(1)
			for _, workers := range []int{4, 8} {
				got := run(workers)
				for i := range base.values {
					if math.Float64bits(got.values[i]) != math.Float64bits(base.values[i]) {
						t.Errorf("seed %d graph %d: SepWorkers=%d grid[%d] %v != serial %v",
							seed, gi, workers, i, got.values[i], base.values[i])
					}
				}
				if !reflect.DeepEqual(got.stats, base.stats) {
					t.Errorf("seed %d graph %d: SepWorkers=%d stats %+v != serial %+v",
						seed, gi, workers, got.stats, base.stats)
				}
				if !reflect.DeepEqual(got.pools, base.pools) {
					t.Errorf("seed %d graph %d: SepWorkers=%d cut pools differ from serial", seed, gi, workers)
				}
			}
		}
	}
}

// TestWarmStartGridEquivalence certifies the cross-Δ warm start against
// ground truth: on small random graphs, the warm-started grid sweep and
// the cold sweep must both match the exact big.Rat simplex on the fully
// enumerated LP at every grid point. The fast path and peeling are
// disabled so the cutting-plane machinery (and its warm starts) actually
// runs at every Δ.
func TestWarmStartGridEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := generate.NewRand(seed * 977)
		n := 6 + int(seed)%3
		g := generate.ErdosRenyi(n, 0.45, rng)
		p := NewPlan(g)
		grid := warmTestGrid(t, g)
		opts := Options{Workers: 1, DisableFastPath: true, DisablePeel: true}

		warmVals, _, err := p.GridValues(context.Background(), grid, opts)
		if err != nil {
			t.Fatalf("seed %d: warm sweep: %v", seed, err)
		}
		coldOpts := opts
		coldOpts.DisableWarmStart = true
		coldVals, _, err := p.GridValues(context.Background(), grid, coldOpts)
		if err != nil {
			t.Fatalf("seed %d: cold sweep: %v", seed, err)
		}
		for i, d := range grid {
			exact, err := ValueBruteForceRat(g, new(big.Rat).SetFloat64(d))
			if err != nil {
				t.Fatalf("seed %d delta %v: %v", seed, d, err)
			}
			want, _ := exact.Float64()
			if math.Abs(warmVals[i]-want) > tol {
				t.Errorf("seed %d delta %v: warm %v != exact %v", seed, d, warmVals[i], want)
			}
			if math.Abs(coldVals[i]-want) > tol {
				t.Errorf("seed %d delta %v: cold %v != exact %v", seed, d, coldVals[i], want)
			}
		}
	}
}

// TestWarmStartValueIdentity checks the stronger empirical contract the
// benchmark suite relies on: on LP-heavy families that converge (no
// stalls), warm and cold sweeps release bit-identical grid values — the
// warm machinery changes only the work counters.
func TestWarmStartValueIdentity(t *testing.T) {
	rng := generate.NewRand(77)
	graphs := []*graph.Graph{
		generate.PlantedComponents([]int{60}, 4.5/60, rng),
		generate.PlantedComponents([]int{24, 30}, 0.22, rng),
		generate.WithHubs(generate.PlantedComponents([]int{30, 30}, 4.0/30, rng), 2, 0.3, rng),
	}
	for gi, g := range graphs {
		p := NewPlan(g)
		grid := warmTestGrid(t, g)
		warmVals, warmStats, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		coldVals, _, err := p.GridValues(context.Background(), grid, Options{Workers: 1, DisableWarmStart: true})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if warmStats.StalledPieces > 0 {
			t.Fatalf("graph %d stalled; pick a converging instance for this test", gi)
		}
		for i := range grid {
			if math.Float64bits(warmVals[i]) != math.Float64bits(coldVals[i]) {
				t.Errorf("graph %d grid[%d]: warm %v != cold %v", gi, i, warmVals[i], coldVals[i])
			}
		}
	}
}

// TestWarmPoolTranslation covers the shard-pool mechanics directly: cuts
// added in piece space surface in shard ids, deduplicate, and translate
// back through inject for a matching piece.
func TestWarmPoolTranslation(t *testing.T) {
	sw := newShardWarm(10)
	orig := []int{2, 4, 5, 7, 9} // piece-local 0..4 live at these shard ids
	sw.addCut(orig, []int32{0, 2, 3})
	sw.addCut(orig, []int32{0, 2, 3}) // duplicate must be ignored
	sw.addCut(orig, []int32{1, 4})
	if len(sw.pool) != 2 {
		t.Fatalf("pool size %d, want 2", len(sw.pool))
	}
	if got, want := sw.pool[0].ids, []int32{2, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("pooled ids %v, want %v", got, want)
	}

	// Inject into an identical piece: both cuts are contained and must be
	// parked with the separator.
	g := generate.Complete(5)
	sp := newSeparator(g, g.Edges(), 1e-7, 1, sepWaveDefault)
	active, basis, seeded := sw.inject(sp, orig)
	if len(active) != 0 || basis != nil {
		t.Fatalf("no memo stored, yet inject returned active=%d basis=%v", len(active), basis)
	}
	if seeded != 2 || len(sp.parked) != 2 {
		t.Fatalf("seeded=%d parked=%d, want 2 and 2", seeded, len(sp.parked))
	}
	if got, want := sp.parked[0].ids, []int32{0, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("translated ids %v, want %v", got, want)
	}

	// A piece missing shard vertex 5 cannot host the first cut.
	sp2 := newSeparator(g, g.Edges(), 1e-7, 1, sepWaveDefault)
	_, _, seeded = sw.inject(sp2, []int{2, 4, 7, 9})
	if seeded != 1 {
		t.Fatalf("partial piece seeded %d cuts, want 1", seeded)
	}
}

// TestWarmMemoNonIdentityPiece locks the memo key space: a basis stored
// for a piece whose shard ids are NOT the identity mapping (the normal
// case after peeling) must be found and replayed by the next grid point's
// inject, with the active rows reconstructed in order.
func TestWarmMemoNonIdentityPiece(t *testing.T) {
	sw := newShardWarm(10)
	orig := []int{2, 4, 5, 7, 9}
	g := generate.Complete(5)

	sp := newSeparator(g, g.Edges(), 1e-7, 1, sepWaveDefault)
	ct, ok := sp.record([]int32{0, 2, 3}, 0.5, nil)
	if !ok {
		t.Fatal("record failed")
	}
	sw.addCut(orig, ct.ids)
	sw.store(orig, []*cut{ct}, []int{1, 2, 3})
	if len(sw.memos) != 1 {
		t.Fatalf("memo not stored for non-identity piece (memos=%d)", len(sw.memos))
	}

	sp2 := newSeparator(g, g.Edges(), 1e-7, 1, sepWaveDefault)
	active, basis, seeded := sw.inject(sp2, orig)
	if len(active) != 1 || basis == nil || seeded != 1 {
		t.Fatalf("memo replay: active=%d basis=%v seeded=%d, want 1 row with a basis", len(active), basis, seeded)
	}
	if !reflect.DeepEqual(active[0].ids, []int32{0, 2, 3}) {
		t.Fatalf("replayed cut ids %v, want [0 2 3]", active[0].ids)
	}
}

// TestSepWaveWidthDeterminism lifts the historical wave-width cap of 16:
// at a configured width above it, every SepWorkers setting (including ones
// only useful beyond the old cap) must still produce bit-identical grid
// values, identical counting statistics, and identical cut pools. A width
// change itself may move the schedule — so the fixed-width determinism is
// the contract — but on converging instances the values must also agree
// with the default width.
func TestSepWaveWidthDeterminism(t *testing.T) {
	const width = 32
	for seed := uint64(1); seed <= 3; seed++ {
		rng := generate.NewRand(seed * 977)
		graphs := []*graph.Graph{
			generate.PlantedComponents([]int{50}, 4.0/50, rng),
			generate.WithHubs(generate.ErdosRenyi(48, 2.5/48, rng), 2, 0.25, rng),
		}
		for gi, g := range graphs {
			p := NewPlan(g)
			grid := warmTestGrid(t, g)

			type outcome struct {
				values []float64
				stats  Stats
				pools  [][]warmCut
			}
			run := func(sepWorkers, waveWidth int) outcome {
				warm := newGridWarm(p)
				var stats Stats
				values := make([]float64, len(grid))
				for i, d := range grid {
					v, st, err := p.value(context.Background(), d,
						Options{Workers: 1, SepWorkers: sepWorkers, SepWaveWidth: waveWidth}, warm)
					if err != nil {
						t.Fatalf("seed %d graph %d sepWorkers %d wave %d: %v", seed, gi, sepWorkers, waveWidth, err)
					}
					stats.MergeGridRound(st)
					values[i] = v
				}
				pools := make([][]warmCut, len(warm.shards))
				for i, sw := range warm.shards {
					pools[i] = sw.pool
				}
				return outcome{values, stats, pools}
			}

			base := run(1, width)
			for _, workers := range []int{8, 24, width} {
				got := run(workers, width)
				for i := range base.values {
					if math.Float64bits(got.values[i]) != math.Float64bits(base.values[i]) {
						t.Errorf("seed %d graph %d: wave %d SepWorkers=%d grid[%d] %v != serial %v",
							seed, gi, width, workers, i, got.values[i], base.values[i])
					}
				}
				if !reflect.DeepEqual(got.stats, base.stats) {
					t.Errorf("seed %d graph %d: wave %d SepWorkers=%d stats %+v != serial %+v",
						seed, gi, width, workers, got.stats, base.stats)
				}
				if !reflect.DeepEqual(got.pools, base.pools) {
					t.Errorf("seed %d graph %d: wave %d SepWorkers=%d cut pools differ from serial",
						seed, gi, width, workers)
				}
			}

			// On converging instances a wider wave reaches the same optimum.
			if base.stats.StalledPieces == 0 {
				def := run(1, 0)
				if def.stats.StalledPieces == 0 {
					for i := range base.values {
						if math.Float64bits(def.values[i]) != math.Float64bits(base.values[i]) {
							t.Errorf("seed %d graph %d: grid[%d] differs across widths on a converging instance: %v (wave %d) vs %v (default)",
								seed, gi, i, base.values[i], width, def.values[i])
						}
					}
				}
			}
		}
	}
}

// TestSepWaveWidthValidation: negative widths are rejected before any
// evaluation; width 1 (fully sequential dispatch) still works.
func TestSepWaveWidthValidation(t *testing.T) {
	g := generate.PlantedComponents([]int{12}, 0.4, generate.NewRand(7))
	if _, _, err := Value(g, 1, Options{SepWaveWidth: -1}); err == nil {
		t.Fatal("SepWaveWidth=-1 accepted, want error")
	}
	if _, _, err := Value(g, 1, Options{SepWaveWidth: 1}); err != nil {
		t.Fatalf("SepWaveWidth=1: %v", err)
	}
}
