package forestlp

import (
	"math"
	"math/big"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

const tol = 1e-5

func value(t *testing.T, g *graph.Graph, delta float64, opts Options) float64 {
	t.Helper()
	v, _, err := Value(g, delta, opts)
	if err != nil {
		t.Fatalf("Value(Δ=%v): %v", delta, err)
	}
	return v
}

func approx(a, b float64) bool { return math.Abs(a-b) <= tol }

func TestValueRejectsBadDelta(t *testing.T) {
	g := generate.Path(3)
	for _, d := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, _, err := Value(g, d, Options{}); err == nil {
			t.Errorf("delta %v should be rejected", d)
		}
	}
}

func TestValueEmptyAndEdgeless(t *testing.T) {
	if v := value(t, graph.New(0), 1, Options{}); v != 0 {
		t.Fatalf("empty graph: %v", v)
	}
	if v := value(t, graph.New(7), 1, Options{}); v != 0 {
		t.Fatalf("edgeless graph: %v", v)
	}
}

// TestStarClosedForm: f_Δ(K_{1,k}) = min(k, Δ). The LP optimum puts weight
// min(1, Δ/k)... actually weight Δ/k per edge when Δ < k.
func TestStarClosedForm(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 9} {
		for _, delta := range []float64{1, 2, 3, 4, 8, 20} {
			g := generate.Star(k)
			want := math.Min(float64(k), delta)
			for _, disable := range []bool{false, true} {
				got := value(t, g, delta, Options{DisableFastPath: disable})
				if !approx(got, want) {
					t.Fatalf("f_%v(K_{1,%d}) = %v, want %v (fastpath disabled=%v)",
						delta, k, got, want, disable)
				}
			}
		}
	}
}

// TestCompleteClosedForm: f_Δ(K_n) = min(n−1, nΔ/2).
func TestCompleteClosedForm(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7} {
		for _, delta := range []float64{0.5, 1, 1.5, 2, 3} {
			g := generate.Complete(n)
			want := math.Min(float64(n-1), float64(n)*delta/2)
			got := value(t, g, delta, Options{DisableFastPath: true})
			if !approx(got, want) {
				t.Fatalf("f_%v(K_%d) = %v, want %v", delta, n, got, want)
			}
		}
	}
}

// TestCycleDeltaOne: f_1(C_n) = n/2 (uniform half weights).
func TestCycleDeltaOne(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8} {
		g := generate.Cycle(n)
		got := value(t, g, 1, Options{})
		if !approx(got, float64(n)/2) {
			t.Fatalf("f_1(C_%d) = %v, want %v", n, got, float64(n)/2)
		}
	}
}

// TestRemark34 reproduces Remark 3.4: G = Δ isolated vertices has
// f_Δ(G) = 0 while the cone G' = K_{1,Δ} has f_Δ(G') = Δ, witnessing that
// the Lipschitz constant Δ is tight.
func TestRemark34(t *testing.T) {
	for _, delta := range []int{1, 2, 5, 9} {
		iso := graph.New(delta)
		if v := value(t, iso, float64(delta), Options{}); v != 0 {
			t.Fatalf("f_Δ on isolated vertices = %v", v)
		}
		cone := generate.Star(delta)
		if v := value(t, cone, float64(delta), Options{}); !approx(v, float64(delta)) {
			t.Fatalf("f_Δ(K_{1,%d}) = %v, want %d", delta, v, delta)
		}
	}
}

// TestSpanningForestFastPath: trees evaluate to f_sf whenever Δ ≥ max
// degree, with the fast path and without.
func TestSpanningForestFastPath(t *testing.T) {
	g := generate.Caterpillar(5, 2) // tree with max degree 4
	want := float64(g.SpanningForestSize())
	for _, disable := range []bool{false, true} {
		got := value(t, g, 4, Options{DisableFastPath: disable})
		if !approx(got, want) {
			t.Fatalf("caterpillar f_4 = %v, want %v (disable=%v)", got, want, disable)
		}
	}
	_, stats, err := Value(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FastPathHits != 1 || stats.LPSolves != 0 {
		t.Fatalf("expected pure fast path, got %+v", stats)
	}
}

// TestAdditivityOverComponents: f_Δ of a disjoint union is the sum.
func TestAdditivityOverComponents(t *testing.T) {
	a := generate.Star(4)
	b := generate.Complete(5)
	c := generate.Cycle(6)
	u := generate.DisjointUnion(a, b, c)
	for _, delta := range []float64{1, 2, 3} {
		va := value(t, a, delta, Options{})
		vb := value(t, b, delta, Options{})
		vc := value(t, c, delta, Options{})
		vu := value(t, u, delta, Options{})
		if !approx(vu, va+vb+vc) {
			t.Fatalf("Δ=%v: union %v != %v+%v+%v", delta, vu, va, vb, vc)
		}
	}
}

// TestAgainstBruteForce cross-validates the cutting-plane evaluator against
// explicit constraint enumeration on random small graphs.
func TestAgainstBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(9)
		p := 0.15 + 0.6*rng.Float64()
		g := generate.ErdosRenyi(n, p, rng)
		for _, delta := range []float64{1, 2, 3} {
			want, err := ValueBruteForce(g, delta)
			if err != nil {
				t.Fatal(err)
			}
			got := value(t, g, delta, Options{DisableFastPath: seed%2 == 0})
			if !approx(got, want) {
				t.Fatalf("seed %d Δ=%v: cutting planes %v, brute force %v on %v",
					seed, delta, got, want, g)
			}
		}
	}
}

// TestAgainstRationalBruteForce certifies the float pipeline against exact
// rational arithmetic on a handful of instances.
func TestAgainstRationalBruteForce(t *testing.T) {
	for seed := uint64(100); seed < 112; seed++ {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(7)
		g := generate.ErdosRenyi(n, 0.5, rng)
		for _, delta := range []int64{1, 2} {
			exact, err := ValueBruteForceRat(g, big.NewRat(delta, 1))
			if err != nil {
				t.Fatal(err)
			}
			want, _ := exact.Float64()
			got := value(t, g, float64(delta), Options{})
			if !approx(got, want) {
				t.Fatalf("seed %d Δ=%d: got %v, exact %v", seed, delta, got, want)
			}
		}
	}
}

// TestLemma33Underestimation: f_Δ(G) ≤ f_sf(G) always.
func TestLemma33Underestimation(t *testing.T) {
	for seed := uint64(200); seed < 230; seed++ {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(14)
		g := generate.ErdosRenyi(n, 0.3, rng)
		fsf := float64(g.SpanningForestSize())
		for _, delta := range []float64{1, 2, 4, 8} {
			got := value(t, g, delta, Options{})
			if got > fsf+tol {
				t.Fatalf("seed %d Δ=%v: f_Δ=%v > f_sf=%v", seed, delta, got, fsf)
			}
		}
	}
}

// TestLemma33Monotonicity: f_Δ1(G) ≤ f_Δ2(G) for Δ1 < Δ2.
func TestLemma33Monotonicity(t *testing.T) {
	for seed := uint64(300); seed < 325; seed++ {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(12)
		g := generate.ErdosRenyi(n, 0.35, rng)
		prev := -1.0
		for _, delta := range []float64{0.5, 1, 2, 3, 5, 8} {
			got := value(t, g, delta, Options{})
			if got < prev-tol {
				t.Fatalf("seed %d: f_%v=%v < previous %v", seed, delta, got, prev)
			}
			prev = got
		}
	}
}

// TestLemma33Lipschitz: |f_Δ(G) − f_Δ(G−v)| ≤ Δ for every vertex v, and
// f_Δ(G−v) ≤ f_Δ(G) (monotone under node removal).
func TestLemma33Lipschitz(t *testing.T) {
	for seed := uint64(400); seed < 425; seed++ {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(10)
		g := generate.ErdosRenyi(n, 0.4, rng)
		for _, delta := range []float64{1, 2, 3} {
			fg := value(t, g, delta, Options{})
			for v := 0; v < g.N(); v++ {
				fh := value(t, g.RemoveVertex(v), delta, Options{})
				if fh > fg+tol {
					t.Fatalf("seed %d Δ=%v: f_Δ grew after removing %d (%v > %v)",
						seed, delta, v, fh, fg)
				}
				if fg-fh > delta+tol {
					t.Fatalf("seed %d Δ=%v: Lipschitz violated at %d (%v - %v > Δ)",
						seed, delta, v, fg, fh)
				}
			}
		}
	}
}

// TestAnchorSetLemma19: if G has a spanning Δ-forest then f_Δ(G) = f_sf(G)
// (Item 1 of Lemma 3.3), checked with the LP (fast path disabled).
func TestAnchorSetLemma19(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		delta float64
	}{
		{"path-d2", generate.Path(7), 2},
		{"cycle-d2", generate.Cycle(6), 2},
		{"K6-d2", generate.Complete(6), 2},
		{"grid-d3", generate.Grid(3, 4), 3},
		{"matching-d1", generate.Matching(5), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := float64(tc.g.SpanningForestSize())
			got := value(t, tc.g, tc.delta, Options{DisableFastPath: true})
			if !approx(got, want) {
				t.Fatalf("f_%v = %v, want f_sf = %v", tc.delta, got, want)
			}
		})
	}
}

// TestFractionalDelta exercises non-integer Δ (Definition 3.1 allows any
// Δ > 0): on K_{1,3}, f_Δ = min(3, Δ) still holds.
func TestFractionalDelta(t *testing.T) {
	g := generate.Star(3)
	for _, delta := range []float64{0.5, 1.5, 2.5, 3.5} {
		got := value(t, g, delta, Options{})
		want := math.Min(3, delta)
		if !approx(got, want) {
			t.Fatalf("f_%v(K_{1,3}) = %v, want %v", delta, got, want)
		}
	}
}

// TestMaxRoundsFailure: a tiny round budget must produce an error, not a
// wrong answer. The instance needs a genuine primal-dual gap — on K₄ at
// Δ = 1.5 the optimum is the fractional 3 (x ≡ ½) while the greedy capped
// forest reaches only 2, so the gap-pinch termination cannot fire — and a
// first relaxation whose vertices overload single edges past the pair
// bound, so at least two rounds are needed.
func TestMaxRoundsFailure(t *testing.T) {
	g := generate.Complete(4)
	_, _, err := Value(g, 1.5, Options{MaxRounds: 1, DisableFastPath: true})
	if err == nil {
		t.Fatal("MaxRounds=1 should fail on K_4 at Δ=1.5")
	}
}

// TestStatsAccounting sanity-checks the stats counters. A 4-cycle at Δ=1
// has no leaves to peel and no degree-1 spanning forest, so the LP must
// run; the singletons only bump the component count.
func TestStatsAccounting(t *testing.T) {
	g := generate.DisjointUnion(generate.Cycle(4), graph.New(3))
	v, stats, err := Value(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Components != 4 { // cycle + 3 singletons
		t.Fatalf("components=%d, want 4", stats.Components)
	}
	if stats.LPSolves == 0 {
		t.Fatal("C_4 at Δ=1 needs the LP")
	}
	if !approx(v, 2) { // f_1(C_4) = 2 (uniform half weights)
		t.Fatalf("f_1(C_4) = %v, want 2", v)
	}
}

// TestPeelResolvesStarsWithoutLP: after the exact leaf-peeling
// preprocessing, star components never reach the LP, yet the value is
// still min(k, Δ).
func TestPeelResolvesStarsWithoutLP(t *testing.T) {
	g := generate.Star(5)
	v, stats, err := Value(g, 2, Options{DisableFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 2) {
		t.Fatalf("f_2(K_{1,5}) = %v, want 2", v)
	}
	if stats.LPSolves != 0 {
		t.Fatalf("peeling should have avoided the LP, got %d solves", stats.LPSolves)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	g := generate.Complete(maxBruteVertices + 1)
	if _, err := ValueBruteForce(g, 2); err == nil {
		t.Fatal("oversized component should be rejected")
	}
	if _, err := ValueBruteForceRat(g, big.NewRat(2, 1)); err == nil {
		t.Fatal("oversized component should be rejected (rational)")
	}
}
