package forestlp

// Failpoint conformance for the cutting-plane engine: injected numerical
// distress must route through the certified rebuild fallback without
// changing a single bit of the grid values, injected arena exhaustion must
// propagate as a typed error, and a dead context must abort the sweep.

import (
	"context"
	"errors"
	"math"
	"testing"

	"nodedp/internal/fault"
	"nodedp/internal/generate"
)

// TestInjectedDistressFallsBackBitIdentical arms the standing-solver
// distress failpoint with a seeded coin and requires the sweep to finish
// with the exact values of a clean run — the fault changes the route
// (rebuild instead of slide), never the result.
func TestInjectedDistressFallsBackBitIdentical(t *testing.T) {
	defer fault.Reset()
	lowerIncrGate(t)
	g := generate.PlantedComponents([]int{60}, 4.5/60, generate.NewRand(78))
	p := NewPlan(g)
	grid := warmTestGrid(t, g)

	clean, _, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	if err := fault.Arm("lp.incremental.distress=prob:0.5:41"); err != nil {
		t.Fatal(err)
	}
	faulty, stats, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatalf("sweep under injected distress: %v", err)
	}
	if fault.Fired("lp.incremental.distress") == 0 {
		t.Fatal("distress failpoint never fired — the schedule tested nothing")
	}
	if stats.IncrementalFallbacks == 0 {
		t.Fatal("injected distress recorded no fallbacks")
	}
	for i := range grid {
		if math.Float64bits(faulty[i]) != math.Float64bits(clean[i]) {
			t.Fatalf("grid[%d]: faulty run %v != clean run %v", i, faulty[i], clean[i])
		}
	}
}

// TestInjectedArenaFailurePropagates: the max-flow arena site fails the
// evaluation with a typed injected error instead of a panic or a wrong
// value, and a disarmed retry succeeds.
func TestInjectedArenaFailurePropagates(t *testing.T) {
	defer fault.Reset()
	g := generate.PlantedComponents([]int{30}, 4.0/30, generate.NewRand(5))
	p := NewPlan(g)
	grid := warmTestGrid(t, g)

	if err := fault.Arm("maxflow.arena=nth:1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.GridValues(context.Background(), grid, Options{Workers: 1}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sweep err = %v, want injected arena failure", err)
	}
	fault.Reset()
	if _, _, err := p.GridValues(context.Background(), grid, Options{Workers: 1}); err != nil {
		t.Fatalf("sweep after disarm: %v", err)
	}
}

// TestCanceledContextAbortsSweep: cancellation propagates into the LP
// loops and surfaces as the context's error.
func TestCanceledContextAbortsSweep(t *testing.T) {
	g := generate.PlantedComponents([]int{30}, 4.0/30, generate.NewRand(5))
	p := NewPlan(g)
	grid := warmTestGrid(t, g)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.GridValues(ctx, grid, Options{Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep err = %v, want context.Canceled", err)
	}
}
