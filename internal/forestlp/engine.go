package forestlp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// This file implements the parallel evaluation engine: the shards of a
// Plan are independent LPs (f_Δ is additive over components), so they are
// solved concurrently on a bounded worker pool and merged in shard-index
// order. The merge order — not the completion order — determines every
// floating-point sum and every aggregated statistic, so the result is
// bit-for-bit identical for every worker count, including 1.

// ShardTiming is the per-shard diagnostic record of one evaluation.
type ShardTiming struct {
	// Shard is the shard index (component order, non-trivial shards only).
	Shard int
	// Vertices and Edges describe the shard.
	Vertices int
	Edges    int
	// FastPath reports whether the shard was settled without any simplex
	// work — by a spanning Δ-forest certificate or by exact leaf peeling.
	FastPath bool
	// LPSolves counts simplex solves spent on this shard.
	LPSolves int
	// Duration is the shard's wall-clock evaluation time. Durations are
	// measurements, not results: they vary run to run even though the
	// returned value does not.
	Duration time.Duration
}

// shardResult carries one shard's outcome from a worker to the merger.
type shardResult struct {
	done   bool // false for shards never evaluated (early error exit)
	value  float64
	stats  Stats
	timing ShardTiming
	err    error
}

// ResolveWorkers reports the worker count an evaluation with the given
// configured Options.Workers uses over shards non-trivial component
// shards: 0 means runtime.GOMAXPROCS, clamped to [1, shards]. It is
// exported so the component-wise plan assembly in internal/core can stamp
// the same Stats.Workers a monolithic evaluation would have reported,
// keeping the two paths bit-identical counter for counter.
func ResolveWorkers(configured, shards int) int { return resolveWorkers(configured, shards) }

// resolveWorkers clamps the configured worker count to [1, shards].
func resolveWorkers(configured, shards int) int {
	w := configured
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Value computes f_Δ of the planned graph, solving independent component
// LPs concurrently on opts.Workers workers (default runtime.GOMAXPROCS).
// The result is deterministic in the worker count and clamped to
// [0, f_sf] to preserve the underestimation property (Lemma 3.3) exactly
// even under floating-point slack.
//
// ctx cancels long solves: cancelation is checked between cutting-plane
// rounds and before each shard starts, so Value returns promptly with
// ctx.Err() after the deadline.
func (p *Plan) Value(ctx context.Context, delta float64, opts Options) (float64, Stats, error) {
	return p.value(ctx, delta, opts, nil)
}

// value is Value with an optional grid-sweep warm-start state: warm, when
// non-nil, carries per-shard cut pools and basis memos between the calls
// of one GridValues sweep. Each shard's state is touched only by the one
// worker evaluating that shard, so no synchronization is needed.
func (p *Plan) value(ctx context.Context, delta float64, opts Options, warm *gridWarm) (float64, Stats, error) {
	var stats Stats
	if err := checkDelta(delta); err != nil {
		return 0, stats, err
	}
	if opts.SepWaveWidth < 0 {
		return 0, stats, fmt.Errorf("forestlp: SepWaveWidth must be ≥ 0 (0 = default %d), got %d",
			sepWaveDefault, opts.SepWaveWidth)
	}
	if err := ctx.Err(); err != nil {
		return 0, stats, err
	}
	opts = opts.withDefaults()
	workers := resolveWorkers(opts.Workers, len(p.shards))
	stats.Workers = workers
	shardWarmState := func(i int) *shardWarm {
		if warm == nil {
			return nil
		}
		return warm.shards[i]
	}

	results := make([]shardResult, len(p.shards))
	if workers <= 1 {
		for i, ps := range p.shards {
			results[i] = p.evalShard(ctx, i, ps, delta, opts, shardWarmState(i))
			if results[i].err != nil {
				break
			}
		}
	} else {
		// Fan out shard indices; an internal cancel stops idle workers as
		// soon as any shard fails. Results land in their own slot, so no
		// ordering is lost to scheduling.
		ectx, cancel := context.WithCancel(ctx)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i] = p.evalShard(ectx, i, p.shards[i], delta, opts, shardWarmState(i))
					if results[i].err != nil {
						cancel()
					}
				}
			}()
		}
	feed:
		for i := range p.shards {
			select {
			case jobs <- i:
			case <-ectx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		cancel()
	}

	// Deterministic merge: values and statistics accumulate in shard-index
	// order regardless of which worker finished first.
	total := 0.0
	var firstErr error
	for i := range results {
		r := &results[i]
		if !r.done {
			continue
		}
		if r.err != nil {
			// Prefer the lowest-indexed genuine failure over the
			// cancelations it triggered in sibling workers.
			if firstErr == nil || errIsCancel(firstErr) && !errIsCancel(r.err) {
				firstErr = r.err
			}
			continue
		}
		//detlint:allow floatorder — deterministic merge: the loop visits results in shard-index order after every worker has finished, so the summation order is fixed regardless of completion order
		total += r.value
		stats.add(r.stats)
		if opts.ShardTimings {
			stats.Shards = append(stats.Shards, r.timing)
		}
	}
	stats.Components = p.components
	if firstErr == nil {
		// A cancelation can race every in-flight shard to completion,
		// leaving unfed shards silently unevaluated; a partial sum must
		// never be returned as f_Δ.
		for i := range results {
			if !results[i].done {
				if err := ctx.Err(); err != nil {
					return 0, stats, err
				}
				return 0, stats, fmt.Errorf("forestlp: internal: shard %d was never evaluated", i)
			}
		}
	}
	if firstErr != nil {
		// A parent-context cancelation outranks the per-shard view of it.
		if err := ctx.Err(); err != nil && errIsCancel(firstErr) {
			return 0, stats, err
		}
		return 0, stats, firstErr
	}
	if fsf := float64(p.fsf); total > fsf {
		total = fsf
	}
	if total < 0 {
		total = 0
	}
	return total, stats, nil
}

// evalShard runs one shard and packages the outcome with its timing (the
// timing record is discarded by the merger unless Options.ShardTimings).
//
//detlint:allow rngsource — operational timing diagnostic: ShardTiming.Duration is reporting-only (opt-in via Options.ShardTimings) and never enters grid values or releases
func (p *Plan) evalShard(ctx context.Context, i int, ps *planShard, delta float64, opts Options, sw *shardWarm) shardResult {
	if err := ctx.Err(); err != nil {
		return shardResult{done: true, err: err}
	}
	start := time.Now()
	v, st, err := ps.eval(ctx, delta, opts, sw)
	if err != nil {
		return shardResult{done: true, err: fmt.Errorf("forestlp: component of size %d: %w", ps.n, err)}
	}
	return shardResult{
		done:  true,
		value: v,
		stats: st,
		timing: ShardTiming{
			Shard:    i,
			Vertices: ps.n,
			Edges:    ps.m,
			FastPath: st.LPSolves == 0,
			LPSolves: st.LPSolves,
			Duration: time.Since(start),
		},
	}
}

// errIsCancel reports whether err is a context cancelation or deadline.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
