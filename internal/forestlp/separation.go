package forestlp

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"nodedp/internal/graph"
	"nodedp/internal/maxflow"
)

// separator finds violated subtour constraints x(E[S]) ≤ |S|−1 following
// Padberg–Wolsey: for a forced vertex u, the quantity
//
//	W(u) = max_{S ∋ u} ( x(E[S]) − |S| + 1 )
//
// is a maximum-weight-closure value, computable as Σx − mincut on a network
// with a node per edge (profit x_e, requires both endpoints) and a node per
// vertex (cost 1, waived for u). A subtour constraint is violated iff
// W(u) > 0 for some u, and the minimizing cut's source side reads off S.
//
// Every candidate S is split into the connected components of G[S] before
// being emitted: x(E[S]) = Σ_parts x(E[S_i]) and |S|−1 ≥ Σ(|S_i|−1), so
// whenever S is violated some connected part is violated at least as much,
// and the per-part constraints are stronger and sparser.
type separator struct {
	g     *graph.Graph
	edges []graph.Edge
	tol   float64
	seen  map[string]bool // canonical keys of currently active cuts
}

// cut is a violated vertex set together with its bookkeeping key and the
// violation amount at the separating point.
type cut struct {
	member    []bool
	size      int
	key       string
	violation float64
	// slackRounds counts consecutive LP rounds in which the cut was slack;
	// managed by the cutting-plane loop.
	slackRounds int
}

func newSeparator(g *graph.Graph, edges []graph.Edge, tol float64) *separator {
	return &separator{g: g, edges: edges, tol: tol, seen: make(map[string]bool)}
}

// forget releases a dropped cut's key so the set may be regenerated later.
func (sp *separator) forget(key string) { delete(sp.seen, key) }

// findViolated returns new violated subtour constraints for the LP point x
// (strongest first), and the number of max-flow calls made. It first
// screens the trivial pair sets S = {u,v} (the x_e ≤ 1 constraints) without
// flows; if any pair is violated those are returned immediately. Otherwise
// it runs the max-closure oracle once per forced vertex, skipping vertices
// already covered by a violated set found in this call.
func (sp *separator) findViolated(x []float64, maxCuts int) ([]*cut, int) {
	n := sp.g.N()

	// Cheap pass: pair constraints x_e ≤ 1.
	var pairs []*cut
	for i, e := range sp.edges {
		if x[i] > 1+sp.tol {
			member := make([]bool, n)
			member[e.U], member[e.V] = true, true
			if c, ok := sp.record(member, 2, x[i]-1); ok {
				pairs = append(pairs, c)
			}
		}
	}
	if len(pairs) > 0 {
		return sp.capCuts(pairs, maxCuts), 0
	}

	var cuts []*cut
	covered := make([]bool, n)
	flows := 0
	for u := 0; u < n; u++ {
		if covered[u] {
			continue
		}
		member, size, violated := sp.closure(x, u)
		flows++
		if !violated || size < 2 {
			continue
		}
		for v := 0; v < n; v++ {
			if member[v] {
				covered[v] = true
			}
		}
		// Split into connected parts and keep the genuinely violated ones.
		for _, part := range sp.connectedParts(member) {
			if part.size < 2 {
				continue
			}
			lhs := 0.0
			for i, e := range sp.edges {
				if part.member[e.U] && part.member[e.V] {
					lhs += x[i]
				}
			}
			viol := lhs - float64(part.size-1)
			if viol <= sp.tol {
				continue
			}
			if c, ok := sp.record(part.member, part.size, viol); ok {
				cuts = append(cuts, c)
			}
		}
	}
	return sp.capCuts(cuts, maxCuts), flows
}

type vertexSet struct {
	member []bool
	size   int
}

// connectedParts splits a membership mask into the connected components of
// the induced subgraph.
func (sp *separator) connectedParts(member []bool) []vertexSet {
	n := sp.g.N()
	seen := make([]bool, n)
	var parts []vertexSet
	for s := 0; s < n; s++ {
		if !member[s] || seen[s] {
			continue
		}
		part := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		part[s] = true
		size := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sp.g.VisitNeighbors(u, func(w int) bool {
				if member[w] && !seen[w] {
					seen[w] = true
					part[w] = true
					size++
					stack = append(stack, w)
				}
				return true
			})
		}
		parts = append(parts, vertexSet{member: part, size: size})
	}
	return parts
}

// capCuts sorts by violation (descending) and truncates, releasing the
// truncated cuts' keys so they can be regenerated in a later round.
func (sp *separator) capCuts(cuts []*cut, maxCuts int) []*cut {
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].violation > cuts[j].violation })
	if maxCuts > 0 && len(cuts) > maxCuts {
		for _, dropped := range cuts[maxCuts:] {
			sp.forget(dropped.key)
		}
		return cuts[:maxCuts]
	}
	return cuts
}

// closure solves the max-closure problem forcing u ∈ S and returns the
// optimizing S (as a membership mask), its size, and whether W(u) > tol.
func (sp *separator) closure(x []float64, u int) (member []bool, size int, violated bool) {
	n := sp.g.N()
	m := len(sp.edges)
	// Network layout: 0 = source, 1..m edge nodes, m+1..m+n vertex nodes,
	// m+n+1 = sink.
	src, snk := 0, m+n+1
	nw := maxflow.New(m + n + 2)
	totalX := 0.0
	for i, e := range sp.edges {
		if x[i] <= sp.tol {
			continue
		}
		nw.AddEdge(src, 1+i, x[i])
		nw.AddEdge(1+i, m+1+e.U, math.Inf(1))
		nw.AddEdge(1+i, m+1+e.V, math.Inf(1))
		totalX += x[i]
	}
	for v := 0; v < n; v++ {
		if v == u {
			continue // forced member: its unit cost is waived
		}
		nw.AddEdge(m+1+v, snk, 1)
	}
	if totalX <= sp.tol {
		return nil, 0, false
	}
	flow := nw.MaxFlow(src, snk)
	w := totalX - flow // = max_{S ∋ u} x(E[S]) − (|S| − 1)
	if w <= sp.tol {
		return nil, 0, false
	}
	side := nw.MinCutSourceSide(src)
	member = make([]bool, n)
	member[u] = true
	size = 1
	for v := 0; v < n; v++ {
		if v != u && side[m+1+v] {
			member[v] = true
			size++
		}
	}
	return member, size, true
}

// record canonicalizes a vertex set and registers it; ok=false means the
// identical cut is already active (so the caller must not re-add it).
func (sp *separator) record(member []bool, size int, violation float64) (*cut, bool) {
	ids := make([]int, 0, size)
	for v, in := range member {
		if in {
			ids = append(ids, v)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		b.WriteString(strconv.Itoa(id))
		b.WriteByte(',')
	}
	key := b.String()
	if sp.seen[key] {
		return nil, false
	}
	sp.seen[key] = true
	return &cut{member: member, size: size, key: key, violation: violation}, true
}
