package forestlp

import (
	"math"
	"sort"
	"sync"

	"nodedp/internal/graph"
	"nodedp/internal/maxflow"
)

// This file implements the Padberg–Wolsey separation oracle for the forest
// polytope: for a forced vertex u, the quantity
//
//	W(u) = max_{S ∋ u} ( x(E[S]) − |S| + 1 )
//
// is a maximum-weight-closure value, computable as Σx − mincut on a network
// with a node per edge (profit x_e, requires both endpoints) and a node per
// vertex (cost 1, waived for u). A subtour constraint is violated iff
// W(u) > 0 for some u, and the minimizing cut's source side reads off S.
//
// The oracle is organized for the hot path:
//
//   - One flow-network template is built per separation round; each
//     per-forced-vertex variant differs only in one sink-arc capacity, so
//     workers stamp the template into a long-lived arena (maxflow.CopyFrom)
//     instead of reallocating O(n+m) structures per call.
//   - Forced vertices are dispatched in waves of geometrically ramping
//     width across a worker pool (Options.SepWorkers). The wave schedule
//     and the merge — covered screening and dedup in vertex order — are
//     independent of the worker count, so results and flow counts are
//     bit-for-bit identical for any SepWorkers setting.
//   - A parked pool of previously discovered cuts is re-checked against
//     every LP point before the oracle runs: reviving a known violated cut
//     costs one sparse dot product and pre-covers its vertices, so flows
//     are spent only where no known cut separates.
//   - Forced vertices are screened to the 2-core of the fractional
//     support: any set avoiding that core induces a forest of ≤1-weight
//     support edges and cannot be violated beyond tolerance, so the
//     certification sweeps that dominate the oracle's cost shrink to the
//     (often empty) core.
//   - Cuts are identified by canonical 128-bit hashes of their sorted
//     vertex ids (no string keys), and per-set violation sums walk only the
//     edges incident to the set via a per-vertex edge index instead of
//     rescanning all m edges.

// sepWaveDefault is the default maximum wave width of the parallel oracle:
// how many forced vertices are dispatched at most before the covered
// screening is re-applied. The effective width is configured per evaluation
// (Options.SepWaveWidth) but never derived from SepWorkers, because the
// wave schedule determines which oracle calls run, and those must not
// change with the worker count. The width also caps the useful SepWorkers.
const sepWaveDefault = 16

// cutKey is the canonical 128-bit identity of a vertex set: two sets
// collide only with probability ≈ 2⁻¹²⁸. It replaces the string keys of the
// original oracle (one allocation and O(|S|) formatting per candidate) and
// doubles as the deterministic secondary sort key of capCuts.
type cutKey struct{ hi, lo uint64 }

// less orders keys lexicographically; used only for tie-breaking.
func (k cutKey) less(o cutKey) bool {
	if k.hi != o.hi {
		return k.hi < o.hi
	}
	return k.lo < o.lo
}

// mix64 is the splitmix64 finalizer: a fast bijective mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyOfIDs hashes a strictly increasing id list into a canonical cutKey.
// The two halves fold the stream through independent mixes so a collision
// must defeat both.
func keyOfIDs(ids []int32) cutKey {
	hi := uint64(0x9e3779b97f4a7c15)
	lo := uint64(0x517cc1b727220a95)
	for _, v := range ids {
		hi = mix64(hi ^ (uint64(v) + 1))
		lo = mix64(lo + (uint64(v)+1)*0xc2b2ae3d27d4eb4f)
	}
	return cutKey{hi: hi, lo: lo}
}

// cut is a violated vertex set together with its bookkeeping key and the
// violation amount at the separating point.
type cut struct {
	// ids are the member vertex ids, sorted ascending (LP-local space).
	ids []int32
	// edgeIdx are the LP edge indices with both endpoints in the set; cut
	// rows and slack checks iterate these instead of all m edges.
	edgeIdx   []int32
	size      int
	key       cutKey
	violation float64
	// slackRounds counts consecutive LP rounds in which the cut was slack;
	// managed by the cutting-plane loop.
	slackRounds int
	// slackParked marks a cut parked by the slack-aging path (as opposed
	// to truncation overflow or pool seeding); it distinguishes genuine
	// drop/revive oscillation for the revivals counter.
	slackParked bool
	// revivals counts returns from the parked pool after a slack-aging
	// drop. A cut revived twice this way is oscillating — dropped as
	// slack, violated again, repeat — and each swing of that cycle costs
	// a full LP round while the bouncing objective defeats the stall
	// detector; the cutting-plane loop pins such cuts in the active set
	// for good. Truncation overflow and pool seeds do not count: they
	// were never judged useless, so re-activating them is not a cycle.
	revivals int
}

// closureResult is one forced vertex's oracle outcome within a wave.
type closureResult struct {
	member   []bool // slot-owned scratch, valid until the next wave
	size     int
	violated bool
}

// separator owns the oracle state for one piece's cutting-plane run.
type separator struct {
	g        *graph.Graph
	edges    []graph.Edge
	incident [][]int32 // incident[v] = indices into edges touching v
	tol      float64
	workers  int
	wave     int // maximum wave width (Options.SepWaveWidth, ≥ 1)
	// exhaustive reverts to the original oracle sweep: every uncovered
	// vertex is forced (no eligibility screening), one at a time (wave
	// width 1). Identical results, strictly more flows; benchmarks use it
	// as the pre-screening baseline.
	exhaustive bool
	seen       map[cutKey]bool // canonical keys of every known cut (active or parked)

	// parked holds known-but-inactive cuts: aged-out actives, truncation
	// overflow, and cross-Δ pool seeds. findViolated re-checks them against
	// the LP point before paying for any oracle flow — reviving a known
	// violated cut costs one sparse dot product, re-discovering it costs a
	// max-flow.
	parked []*cut
	// revived counts cuts returned by the zero-flow revive pass.
	revived int
	// noRevive disables the parked pool (Options.DisableWarmStart): parked
	// cuts are forgotten instead, so the oracle re-derives them with flows
	// as the original engine did.
	noRevive bool

	// Per-round flow template and its per-vertex sink arcs.
	template *maxflow.Network
	sinkArc  []int
	totalX   float64

	// Arenas and wave scratch, allocated lazily and reused across rounds.
	arenas   []*maxflow.Network
	results  []closureResult
	waveBuf  []int
	eligible []bool
	covered  []bool
	supDeg   []int32
	partSeen []bool
	partMask []bool
	stack    []int32
}

func newSeparator(g *graph.Graph, edges []graph.Edge, tol float64, workers, wave int) *separator {
	if wave < 1 {
		wave = sepWaveDefault
	}
	if workers < 1 {
		workers = 1
	}
	if workers > wave {
		workers = wave
	}
	n := g.N()
	incident := make([][]int32, n)
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	flat := make([]int32, 2*len(edges))
	off := 0
	for v := 0; v < n; v++ {
		incident[v] = flat[off : off : off+int(deg[v])]
		off += int(deg[v])
	}
	for i, e := range edges {
		incident[e.U] = append(incident[e.U], int32(i))
		incident[e.V] = append(incident[e.V], int32(i))
	}
	return &separator{
		g:        g,
		edges:    edges,
		incident: incident,
		tol:      tol,
		workers:  workers,
		wave:     wave,
		seen:     make(map[cutKey]bool),
	}
}

// park moves a cut to the inactive pool: it stays registered (the oracle
// will not re-derive it with a flow) and returns to the active set for free
// if a later LP point violates it again. With noRevive the cut is
// forgotten instead, releasing its key for oracle re-discovery.
func (sp *separator) park(ct *cut) {
	if sp.noRevive {
		delete(sp.seen, ct.key)
		return
	}
	sp.parked = append(sp.parked, ct)
}

// flushParked forgets every parked cut and disables further parking: the
// cutting-plane loop calls it when a piece is halfway to the stall
// bailout, because on degenerate faces the pool's cheap revivals feed the
// churn instead of finishing it — the stall detector then sees the same
// frozen face the original engine did.
func (sp *separator) flushParked() {
	for _, ct := range sp.parked {
		delete(sp.seen, ct.key)
	}
	sp.parked = nil
	sp.noRevive = true
}

// revive scans the parked pool against x and extracts the violated cuts,
// in parked order (the caller's capCuts establishes the final ranking). It
// is the zero-flow separation path: revived cuts rejoin the candidate set
// without any oracle call.
func (sp *separator) revive(x []float64) []*cut {
	var violated []*cut
	keep := sp.parked[:0]
	for _, ct := range sp.parked {
		lhs := 0.0
		for _, i := range ct.edgeIdx {
			lhs += x[i]
		}
		if v := lhs - float64(ct.size-1); v > sp.tol {
			ct.violation = v
			ct.slackRounds = 0
			if ct.slackParked {
				ct.revivals++
				ct.slackParked = false
			}
			violated = append(violated, ct)
		} else {
			keep = append(keep, ct)
		}
	}
	sp.parked = keep
	return violated
}

// adopt registers an externally supplied vertex set (a warm-start pool cut,
// already translated to this piece's id space, sorted ascending) as an
// active cut with zero recorded violation. ok=false if an identical cut is
// already registered.
func (sp *separator) adopt(ids []int32) (*cut, bool) {
	key := keyOfIDs(ids)
	if sp.seen[key] {
		return nil, false
	}
	sp.seen[key] = true
	return &cut{
		ids:     append([]int32(nil), ids...),
		edgeIdx: sp.edgesWithin(ids),
		size:    len(ids),
		key:     key,
	}, true
}

// edgesWithin returns the edge indices with both endpoints in ids (sorted
// id list), using the incident index — O(volume of the set), not O(m).
func (sp *separator) edgesWithin(ids []int32) []int32 {
	mask := sp.scratchMask()
	for _, v := range ids {
		mask[v] = true
	}
	var out []int32
	for _, v := range ids {
		for _, i := range sp.incident[v] {
			e := sp.edges[i]
			if e.U == int(v) && mask[e.V] {
				out = append(out, i)
			}
		}
	}
	for _, v := range ids {
		mask[v] = false
	}
	return out
}

// scratchMask returns the shared n-length membership scratch (callers must
// clear the bits they set before returning).
func (sp *separator) scratchMask() []bool {
	if sp.partMask == nil {
		sp.partMask = make([]bool, sp.g.N())
	}
	return sp.partMask
}

// findViolated returns new violated subtour constraints for the LP point x
// (strongest first), and the number of max-flow calls made. Two zero-flow
// passes run first: the trivial pair sets S = {u,v} (the x_e ≤ 1
// constraints) and the parked pool of previously discovered cuts; if
// either yields violated cuts those are returned without any flow. Only
// then does the max-closure oracle sweep the eligible forced vertices in
// waves, skipping vertices already covered by a violated set found in an
// earlier wave and discarding (in vertex order) results covered within the
// wave — a schedule independent of the worker count.
func (sp *separator) findViolated(x []float64, maxCuts int) ([]*cut, int) {
	n := sp.g.N()

	// Cheap pass: pair constraints x_e ≤ 1.
	var pairs []*cut
	for i, e := range sp.edges {
		if x[i] > 1+sp.tol {
			ids := []int32{int32(e.U), int32(e.V)}
			if c, ok := sp.record(ids, x[i]-1, []int32{int32(i)}); ok {
				pairs = append(pairs, c)
			}
		}
	}
	if len(pairs) > 0 {
		return sp.capCuts(pairs, maxCuts), 0
	}

	sp.buildTemplate(x)
	if sp.totalX <= sp.tol {
		// Every subtour lhs is at most Σx ≤ tol < 1 ≤ |S|−1: nothing to find.
		return nil, 0
	}
	sp.ensureScratch(n)
	sp.screenEligible(x)
	eligible := sp.eligible
	covered := sp.covered
	for v := range covered {
		covered[v] = false
	}

	// Zero-flow pass: revive parked cuts the point violates. They rejoin
	// the candidate set for free and pre-cover their vertices, so the
	// oracle spends its flows only where no known cut already separates.
	cuts := sp.revive(x)
	sp.revived += len(cuts)
	for _, ct := range cuts {
		for _, v := range ct.ids {
			covered[v] = true
		}
	}

	// Oracle sweep in waves of geometrically ramping width: the first
	// probes are sequential — on rounds where violated sets exist, the
	// first forced vertex usually finds one whose coverage silences many
	// others, so narrow early waves avoid paying flows for results the
	// merge would discard — while certification rounds (nothing to find,
	// nothing covered) ramp to full width and parallelize across
	// SepWorkers. The schedule depends only on (x, coverage), never on the
	// worker count. Exhaustive mode pins the width to 1, reproducing the
	// original one-at-a-time sweep.
	flows := 0
	width := 1
	next := 0
	for next < n {
		// Collect the next wave of eligible, uncovered forced vertices.
		wave := sp.waveBuf[:0]
		for ; next < n && len(wave) < width; next++ {
			if eligible[next] && !covered[next] {
				wave = append(wave, next)
			}
		}
		if !sp.exhaustive {
			width *= 2
			if width > sp.wave {
				width = sp.wave
			}
		}
		if len(wave) == 0 {
			break
		}
		flows += len(wave)
		sp.runWave(x, wave)

		// Deterministic merge in vertex order: a result covered by an
		// earlier wave member is discarded (its flow was the price of the
		// parallel dispatch), everything else covers its vertices and is
		// split into connected parts.
		for k, u := range wave {
			res := &sp.results[k]
			if covered[u] || !res.violated || res.size < 2 {
				continue
			}
			for v := 0; v < n; v++ {
				if res.member[v] {
					covered[v] = true
				}
			}
			cuts = sp.emitParts(x, res.member, cuts)
		}
	}
	return sp.capCuts(cuts, maxCuts), flows
}

// screenEligible marks the forced vertices the oracle must visit for the
// LP point x. Beyond the basic screen (a profitless vertex is never in an
// optimal closure except as the forced anchor, so vertices with no
// incident fractional weight need no oracle call), the support 2-core
// screen applies when every edge weight is at most 1 up to a summed slack
// of tol: peeling a vertex with at most one support edge from a candidate
// set S changes its violation by 1 − x_e ≥ −max(0, x_e − 1), so any set
// with violation > tol + Σ_e max(0, x_e−1) peels down to a violated subset
// inside the 2-core of the support graph, and forcing a vertex there finds
// a cut at least as strong. Converged rounds — where the oracle's only job
// is certifying that no violated set exists — often have forest-supported
// optima whose 2-core is empty, turning the O(n)-flows certification sweep
// into zero flows.
func (sp *separator) screenEligible(x []float64) {
	eligible := sp.eligible
	if sp.exhaustive {
		for v := range eligible {
			eligible[v] = true
		}
		return
	}
	n := sp.g.N()
	deg := sp.supDeg
	for v := range deg {
		deg[v] = 0
	}
	totalSlack := 0.0
	for i, e := range sp.edges {
		if x[i] > sp.tol {
			deg[e.U]++
			deg[e.V]++
			if x[i] > 1 {
				totalSlack += x[i] - 1
			}
		}
	}
	if totalSlack > sp.tol {
		// Slack too large for the peeling bound: fall back to the basic
		// positive-incident-weight screen.
		for v := 0; v < n; v++ {
			eligible[v] = deg[v] >= 1
		}
		return
	}
	// Iteratively strip support leaves; what survives is the 2-core.
	queue := sp.stack[:0]
	for v := 0; v < n; v++ {
		if deg[v] == 1 {
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		v := int(queue[len(queue)-1])
		queue = queue[:len(queue)-1]
		if deg[v] != 1 {
			continue
		}
		deg[v] = 0
		for _, i := range sp.incident[v] {
			if x[i] <= sp.tol {
				continue
			}
			e := sp.edges[i]
			w := e.U + e.V - v
			if deg[w] > 0 {
				deg[w]--
				if deg[w] == 1 {
					queue = append(queue, int32(w))
				}
			}
		}
	}
	sp.stack = queue[:0]
	for v := 0; v < n; v++ {
		eligible[v] = deg[v] >= 2
	}
}

// emitParts splits a closure set into the connected components of the
// induced subgraph and records the genuinely violated ones: x(E[S]) =
// Σ_parts x(E[S_i]) and |S|−1 ≥ Σ(|S_i|−1), so whenever S is violated some
// connected part is violated at least as much, and the per-part constraints
// are stronger and sparser.
func (sp *separator) emitParts(x []float64, member []bool, cuts []*cut) []*cut {
	n := sp.g.N()
	seen := sp.partSeen
	for v := 0; v < n; v++ {
		seen[v] = false
	}
	for s := 0; s < n; s++ {
		if !member[s] || seen[s] {
			continue
		}
		ids := []int32{int32(s)}
		stack := append(sp.stack[:0], int32(s))
		seen[s] = true
		for len(stack) > 0 {
			u := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			sp.g.VisitNeighbors(u, func(w int) bool {
				if member[w] && !seen[w] {
					seen[w] = true
					ids = append(ids, int32(w))
					stack = append(stack, int32(w))
				}
				return true
			})
		}
		sp.stack = stack[:0]
		if len(ids) < 2 {
			continue
		}
		// Canonicalize: neighbor iteration order is unspecified, and the id
		// order feeds the hash and the float accumulation below.
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		edgeIdx := sp.edgesWithin(ids)
		lhs := 0.0
		for _, i := range edgeIdx {
			lhs += x[i]
		}
		viol := lhs - float64(len(ids)-1)
		if viol <= sp.tol {
			continue
		}
		if c, ok := sp.record(ids, viol, edgeIdx); ok {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// capCuts sorts by violation (descending) with the canonical cut hash as a
// stable secondary key — equal-violation cuts would otherwise keep their
// arrival order, which is a per-wave artifact — and truncates. Truncated
// cuts are parked, not forgotten: they were paid for once and will revive
// for free when still violated.
func (sp *separator) capCuts(cuts []*cut, maxCuts int) []*cut {
	sort.Slice(cuts, func(i, j int) bool {
		//detlint:allow floatorder — bit-exact tie detection is the point: equal-violation cuts must fall through to the canonical hash key, or the ordering would inherit per-wave arrival order
		if cuts[i].violation != cuts[j].violation {
			return cuts[i].violation > cuts[j].violation
		}
		return cuts[i].key.less(cuts[j].key)
	})
	if maxCuts > 0 && len(cuts) > maxCuts {
		for _, dropped := range cuts[maxCuts:] {
			sp.park(dropped)
		}
		return cuts[:maxCuts]
	}
	return cuts
}

// buildTemplate assembles the round's shared closure network: a node per
// positive-weight edge (profit x_e, requiring both endpoints) and a node
// per vertex (unit cost). Per-forced-vertex variants differ only in zeroing
// one sink arc, so workers copy this template instead of rebuilding.
//
// Network layout: 0 = source, 1..m edge nodes, m+1..m+n vertex nodes,
// m+n+1 = sink.
func (sp *separator) buildTemplate(x []float64) {
	n := sp.g.N()
	m := len(sp.edges)
	if sp.template == nil {
		sp.template = maxflow.New(0)
		sp.sinkArc = make([]int, n)
	}
	src, snk := 0, m+n+1
	sp.template.Reset(m + n + 2)
	sp.totalX = 0
	for i, e := range sp.edges {
		if x[i] <= sp.tol {
			continue
		}
		sp.template.AddEdge(src, 1+i, x[i])
		sp.template.AddEdge(1+i, m+1+e.U, math.Inf(1))
		sp.template.AddEdge(1+i, m+1+e.V, math.Inf(1))
		sp.totalX += x[i]
	}
	for v := 0; v < n; v++ {
		sp.sinkArc[v] = sp.template.AddEdge(m+1+v, snk, 1)
	}
}

// ensureScratch sizes the wave result slots and screening masks.
func (sp *separator) ensureScratch(n int) {
	if sp.eligible == nil {
		sp.eligible = make([]bool, n)
		sp.covered = make([]bool, n)
		sp.supDeg = make([]int32, n)
		sp.partSeen = make([]bool, n)
		sp.waveBuf = make([]int, 0, sp.wave)
		sp.results = make([]closureResult, sp.wave)
		for k := range sp.results {
			sp.results[k].member = make([]bool, n)
		}
	}
	if sp.arenas == nil {
		sp.arenas = make([]*maxflow.Network, sp.workers)
		for w := range sp.arenas {
			sp.arenas[w] = maxflow.New(0)
		}
	}
}

// runWave evaluates the max-closure oracle for every forced vertex of the
// wave, striping slots across the worker pool. Slot k's result depends only
// on (x, wave[k]) — each worker stamps the shared template into its own
// arena — so the outcome is identical for every worker count.
func (sp *separator) runWave(x []float64, wave []int) {
	sp.waveBuf = wave // retain the (possibly regrown) buffer
	workers := sp.workers
	if workers > len(wave) {
		workers = len(wave)
	}
	if workers <= 1 {
		for k, u := range wave {
			sp.closureInto(u, sp.arenas[0], &sp.results[k])
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := sp.arenas[w]
			for k := w; k < len(wave); k += workers {
				sp.closureInto(wave[k], arena, &sp.results[k])
			}
		}(w)
	}
	wg.Wait()
}

// closureInto solves the max-closure problem forcing u ∈ S into the slot.
// The forced vertex's unit cost is waived by zeroing its sink arc (a
// zero-capacity arc and an absent arc cut identically).
func (sp *separator) closureInto(u int, arena *maxflow.Network, out *closureResult) {
	n := sp.g.N()
	m := len(sp.edges)
	src, snk := 0, m+n+1
	arena.CopyFrom(sp.template)
	arena.SetCap(sp.sinkArc[u], 0)
	flow := arena.MaxFlow(src, snk)
	w := sp.totalX - flow // = max_{S ∋ u} x(E[S]) − (|S| − 1)
	if w <= sp.tol {
		out.violated = false
		return
	}
	side := arena.MinCutSourceSide(src)
	member := out.member
	for v := 0; v < n; v++ {
		member[v] = v == u || side[m+1+v]
	}
	size := 0
	for v := 0; v < n; v++ {
		if member[v] {
			size++
		}
	}
	out.size = size
	out.violated = true
}

// record registers a canonical vertex set; ok=false means the identical cut
// is already active (so the caller must not re-add it).
func (sp *separator) record(ids []int32, violation float64, edgeIdx []int32) (*cut, bool) {
	key := keyOfIDs(ids)
	if sp.seen[key] {
		return nil, false
	}
	sp.seen[key] = true
	return &cut{
		ids:       ids,
		edgeIdx:   edgeIdx,
		size:      len(ids),
		key:       key,
		violation: violation,
	}, true
}
