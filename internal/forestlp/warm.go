package forestlp

// This file implements the cross-Δ warm-start state threaded through
// Plan.GridValues. Subtour constraints x(E[S]) ≤ |S|−1 are valid for every
// Δ — the degree budgets are the only Δ-dependent rows — so a cut
// discovered while evaluating f_Δ is a legitimate (and usually binding)
// constraint at the neighboring grid points too. The grid sweep therefore
// carries two kinds of state from Δ to Δ' per shard:
//
//   - a cut pool in shard-local vertex ids: every subtour constraint ever
//     generated, re-validated (injected and aged by the normal slack
//     machinery) instead of re-discovered by max-flow calls; and
//   - a per-piece simplex basis: the final basis and active-cut row layout
//     of the last LP on a structurally identical piece, fed to
//     lp.Options.Basis so the next grid point resumes from the old optimum
//     instead of re-pivoting from the all-slack basis. (A piece is
//     identified by its vertex set: peel only ever removes vertices whose
//     edges die with them, so equal vertex sets imply equal edge sets and
//     an identical LP column layout.)
//
// Determinism: the warm state is owned by one GridValues call and accessed
// per shard — a shard is evaluated by exactly one worker per grid point,
// and grid points run sequentially — so no locking is needed and the pool
// contents are bit-for-bit independent of Workers and SepWorkers.

import "nodedp/internal/lp"

// warmPoolCap bounds the cut pool per shard; beyond it, new cuts are still
// used by the solve that found them but are not pooled.
const warmPoolCap = 4096

// incrSolverCap bounds the LIVE standing solvers retained per shard. A
// standing tableau is O(rows × (cols+rows)) floats — far heavier than a
// basis memo — so only the most recently completed pieces keep theirs;
// an evicted memo keeps its basis and cut layout and warm-restores the
// rebuild way. Eviction is insertion-ordered, hence deterministic.
const incrSolverCap = 4

// gridWarm is the whole-plan warm-start state of one grid sweep.
type gridWarm struct {
	shards []*shardWarm
}

func newGridWarm(p *Plan) *gridWarm {
	gw := &gridWarm{shards: make([]*shardWarm, len(p.shards))}
	for i, ps := range p.shards {
		gw.shards[i] = newShardWarm(ps.n)
	}
	return gw
}

// warmCut is one pooled subtour constraint in shard-local vertex ids
// (sorted ascending).
type warmCut struct {
	ids []int32
	key cutKey
}

// pieceMemo stores the simplex state of a piece's last solve: the final
// basis and the active-cut row layout it indexes into, plus — for the
// incrSolverCap most recent pieces — the standing incremental solver
// itself, ready to slide to the next grid point.
type pieceMemo struct {
	basis   []int
	cutKeys []cutKey
	incr    *lp.Incremental
}

// shardWarm is one shard's warm-start state.
type shardWarm struct {
	pool  []warmCut
	index map[cutKey]int32
	memos map[cutKey]*pieceMemo // keyed by piece signature

	// incrSigs lists, in insertion order, the piece signatures whose memos
	// currently hold a live solver (eviction pops the front).
	incrSigs []cutKey

	inv []int32 // shard-id → piece-id scratch, -1 outside the piece
}

func newShardWarm(n int) *shardWarm {
	sw := &shardWarm{
		index: make(map[cutKey]int32),
		memos: make(map[cutKey]*pieceMemo),
		inv:   make([]int32, n),
	}
	for i := range sw.inv {
		sw.inv[i] = -1
	}
	return sw
}

// addCut pools a cut found on a piece, translated back to shard ids via
// orig (piece-local id i lives at shard id orig[i]; orig ascending, so the
// translated ids stay sorted). Duplicates and overflow are ignored.
func (sw *shardWarm) addCut(orig []int, ids []int32) {
	if len(sw.pool) >= warmPoolCap {
		return
	}
	shardIDs := make([]int32, len(ids))
	for i, v := range ids {
		shardIDs[i] = int32(orig[v])
	}
	key := keyOfIDs(shardIDs)
	if _, dup := sw.index[key]; dup {
		return
	}
	sw.index[key] = int32(len(sw.pool))
	sw.pool = append(sw.pool, warmCut{ids: shardIDs, key: key})
}

// pieceSig canonically identifies a piece by its shard-local vertex ids.
func pieceSig(orig []int) cutKey {
	ids := make([]int32, len(orig))
	for i, v := range orig {
		ids[i] = int32(v)
	}
	return keyOfIDs(ids)
}

// inject prepares a piece's warm start and reports how many pool cuts were
// seeded. When the piece matches a stored memo, the memoized active rows
// are reconstructed in order (the basis indexes slack columns by row
// position, so order is load-bearing) and the stored simplex basis is
// returned for the first solve. Every other pool cut contained in the
// piece is parked with the separator: the zero-flow revive pass activates
// whichever the LP points actually violate, so stale pool entries cost a
// dot product each instead of an LP row.
func (sw *shardWarm) inject(sp *separator, orig []int) (active []*cut, basis []int, seeded int) {
	inv := sw.inv
	for i, v := range orig {
		inv[v] = int32(i)
	}
	defer func() {
		for _, v := range orig {
			inv[v] = -1
		}
	}()

	translate := func(wc warmCut) ([]int32, bool) {
		ids := make([]int32, len(wc.ids))
		for i, v := range wc.ids {
			p := inv[v]
			if p < 0 {
				return nil, false
			}
			ids[i] = p
		}
		return ids, true
	}

	if memo := sw.memos[pieceSig(orig)]; memo != nil {
		restored := true
		for _, key := range memo.cutKeys {
			idx, found := sw.index[key]
			if !found {
				restored = false
				break
			}
			ids, ok := translate(sw.pool[idx])
			if !ok {
				restored = false
				break
			}
			ct, ok := sp.adopt(ids)
			if !ok {
				restored = false
				break
			}
			active = append(active, ct)
		}
		if !restored {
			// Defensive (memo cuts are pooled and piece-local by
			// construction, so these failures should not occur): the cuts
			// adopted so far are registered with the separator and must
			// stay reachable — park them and drop the basis.
			for _, ct := range active {
				sp.park(ct)
			}
			active, basis = nil, nil
		} else {
			basis = memo.basis
		}
		seeded += len(active)
	}
	// Park the remaining translatable pool cuts (adopt dedups the ones
	// already activated above).
	for _, wc := range sw.pool {
		if ids, ok := translate(wc); ok {
			if ct, ok := sp.adopt(ids); ok {
				sp.park(ct)
				seeded++
			}
		}
	}
	return active, basis, seeded
}

// store memoizes a piece's final simplex state for the next grid point,
// reporting whether a memo was recorded. basis and the active row layout
// must describe the same solve (the last lp.Maximize of the piece). Cut
// keys are recomputed in shard-id space — the pool's key space — because
// the active cuts carry piece-local keys. Storing replaces any previous
// memo, releasing its live solver (whose layout the new memo obsoletes).
func (sw *shardWarm) store(orig []int, active []*cut, basis []int) bool {
	if basis == nil {
		return false
	}
	keys := make([]cutKey, len(active))
	for i, ct := range active {
		shardIDs := make([]int32, len(ct.ids))
		for j, v := range ct.ids {
			shardIDs[j] = int32(orig[v])
		}
		keys[i] = keyOfIDs(shardIDs)
		// A basis is only replayable if its cuts are in the pool; cuts past
		// the pool cap make the memo unusable, so skip storing it.
		if _, ok := sw.index[keys[i]]; !ok {
			return false
		}
	}
	sig := pieceSig(orig)
	sw.dropIncrSig(sig)
	sw.memos[sig] = &pieceMemo{basis: basis, cutKeys: keys}
	return true
}

// storeIncr memoizes a piece's final state like store and additionally
// parks the standing solver on the memo so the next grid point can slide
// it, evicting the oldest parked solver beyond incrSolverCap. When store
// declines the memo (unpooled cut), the solver is discarded with it: a
// solver whose layout cannot be re-derived next round is unusable.
func (sw *shardWarm) storeIncr(orig []int, active []*cut, pi *lp.Incremental) {
	if pi == nil {
		return
	}
	if !sw.store(orig, active, pi.Basis()) {
		return
	}
	sig := pieceSig(orig)
	sw.memos[sig].incr = pi
	sw.incrSigs = append(sw.incrSigs, sig)
	if len(sw.incrSigs) > incrSolverCap {
		old := sw.incrSigs[0]
		sw.incrSigs = append(sw.incrSigs[:0], sw.incrSigs[1:]...)
		if m := sw.memos[old]; m != nil {
			m.incr = nil
		}
	}
}

// injectIncr is inject plus the standing solver: when the piece's memo was
// fully restored AND holds a live solver, that solver is returned for a
// parametric slide. A memo that failed to restore invalidates its solver
// (same stale layout), which is dropped on the spot.
func (sw *shardWarm) injectIncr(sp *separator, orig []int) (active []*cut, basis []int, seeded int, pi *lp.Incremental) {
	sig := pieceSig(orig)
	memo := sw.memos[sig]
	active, basis, seeded = sw.inject(sp, orig)
	if memo != nil && memo.incr != nil {
		if basis != nil {
			pi = memo.incr
		} else {
			sw.dropIncrSig(sig)
		}
	}
	return active, basis, seeded, pi
}

// dropIncr releases a piece's standing solver (fallback, layout mismatch,
// distress), keeping the basis/cut memo for a rebuild-style warm start.
func (sw *shardWarm) dropIncr(orig []int) { sw.dropIncrSig(pieceSig(orig)) }

func (sw *shardWarm) dropIncrSig(sig cutKey) {
	m := sw.memos[sig]
	if m == nil || m.incr == nil {
		return
	}
	m.incr = nil
	for i, s := range sw.incrSigs {
		if s == sig {
			sw.incrSigs = append(sw.incrSigs[:i], sw.incrSigs[i+1:]...)
			return
		}
	}
}
