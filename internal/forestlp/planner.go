package forestlp

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"

	"nodedp/internal/graph"
	"nodedp/internal/obs"
	"nodedp/internal/spanning"
)

// This file implements the shard planner: the delta-independent half of
// evaluating f_Δ. Because f_Δ is additive over connected components (every
// cross-component subtour constraint is implied by per-component ones), a
// Plan decomposes the graph once — via an immutable CSR snapshot — into
// per-component shards and precomputes, per shard, the structural
// quantities that the fast-path triage of Lemma 3.3 Item 1 compares
// against Δ: the BFS-forest maximum degree and the heuristic low-degree
// spanning-forest bound on Δ*. Algorithm 1 evaluates f_Δ on the whole
// power-of-two grid {1, 2, 4, …}; with a Plan the decomposition and triage
// structure are paid once, not once per grid point.
//
// The delta-dependent half — triage comparisons, peeling, and the
// cutting-plane LPs — runs in engine.go, which schedules the shards of a
// Plan onto a worker pool.

// Plan is the reusable decomposition of a graph for f_Δ evaluation. It is
// immutable after construction and safe for concurrent use; build it once
// and call Value for as many (Δ, Options) pairs as needed.
type Plan struct {
	components int // total component count, including isolated vertices
	fsf        int // f_sf = Σ over shards (|shard| − 1)
	shards     []*planShard
}

// planShard is one connected component with ≥ 2 vertices, together with
// its delta-independent triage data.
type planShard struct {
	sub *graph.Graph // materialized component, local vertex ids
	n   int
	m   int

	// bfsDeg is the maximum degree of the deterministic BFS spanning tree:
	// Δ ≥ bfsDeg certifies f_Δ = f_sf on this shard (Lemma 3.3 Item 1).
	bfsDeg int

	// lowDeg is the maximum degree of the heuristic low-degree spanning
	// tree, a sharper (but costlier) certificate threshold. It is computed
	// lazily on the first evaluation with bfsDeg > Δ ≥ 1 and cached for
	// every later grid point.
	lowDegOnce sync.Once
	lowDeg     int
}

// NewPlan snapshots g into a CSR and plans its component shards.
func NewPlan(g *graph.Graph) *Plan { return NewPlanCSR(graph.NewCSR(g)) }

// NewPlanCSR plans the component shards of an existing CSR snapshot.
func NewPlanCSR(csr *graph.CSR) *Plan {
	shards := csr.ComponentShards()
	p := &Plan{components: len(shards)}
	for _, sh := range shards {
		if sh.N() < 2 {
			continue
		}
		sub := sh.Graph()
		ps := &planShard{
			sub:    sub,
			n:      sub.N(),
			m:      sub.M(),
			bfsDeg: graph.MaxDegreeOfEdgeSet(sub.N(), sub.SpanningForest()),
		}
		p.fsf += ps.n - 1
		p.shards = append(p.shards, ps)
	}
	return p
}

// Components returns the number of connected components (isolated vertices
// included).
func (p *Plan) Components() int { return p.components }

// SpanningForestSize returns f_sf of the planned graph.
func (p *Plan) SpanningForestSize() int { return p.fsf }

// Shards returns the number of non-trivial (≥ 2 vertex) component shards,
// i.e. the maximum useful worker count.
func (p *Plan) Shards() int { return len(p.shards) }

// GridValues evaluates f_Δ for every Δ in grid on the shared plan,
// returning the values in grid order together with the grid-aggregated
// statistics (counters accumulate across grid points, gauges keep maxima,
// Components keeps the per-round value — see Stats.MergeGridRound). This is
// the plan-reuse hook behind Algorithm 1's Δ-sweep and the serving-layer
// plan cache: one snapshot, one shard decomposition, and one set of triage
// certificates serve the whole grid.
//
// Unless opts.DisableWarmStart, the sweep threads a per-shard warm-start
// state between grid points: subtour cuts generated at one Δ are valid at
// every other (only the degree rows depend on Δ), so they are injected
// into the neighboring evaluations instead of being re-separated, and a
// piece whose structure recurs resumes from its previous simplex basis.
// On converging pieces warm starts change the work counters
// (Stats.MaxFlowCalls, Stats.SimplexPivots, Stats.WarmCutsReused,
// Stats.WarmBasisHits), never the returned values; see
// Options.DisableWarmStart for the stall-bailout caveat. The state is
// owned by this call, so concurrent GridValues on one Plan stay
// independent.
func (p *Plan) GridValues(ctx context.Context, grid []float64, opts Options) ([]float64, Stats, error) {
	// Tracing (internal/obs): one "forestlp.grid" span for the sweep with
	// the grid-aggregated Stats counters as attributes, plus one
	// "forestlp.point" child per Δ carrying that point's deltas. Grid
	// points run sequentially, so span creation order — and therefore the
	// span tree — is deterministic; the per-point child context also
	// collects the lp pivot-loop counters its shard workers accumulate.
	sweep, ctx := obs.StartSpan(ctx, "forestlp.grid")
	defer sweep.End()
	values := make([]float64, len(grid))
	var warm *gridWarm
	if !opts.DisableWarmStart {
		warm = newGridWarm(p)
	}
	var stats Stats
	for i, d := range grid {
		point, pctx := obs.StartSpan(ctx, "forestlp.point")
		v, st, err := p.value(pctx, d, opts, warm)
		setStatAttrs(point, st)
		point.SetLabel("delta", strconv.FormatFloat(d, 'g', -1, 64))
		point.End()
		if err != nil {
			setStatAttrs(sweep, stats)
			return nil, stats, fmt.Errorf("evaluating f_%v: %w", d, err)
		}
		stats.MergeGridRound(st)
		values[i] = v
	}
	sweep.SetCounter("grid_points", int64(len(grid)))
	setStatAttrs(sweep, stats)
	return values, stats, nil
}

// setStatAttrs exports the deterministic work counters of a Stats onto a
// span — the attribution the conformance suite checks equals the Stats the
// serving layer reports.
func setStatAttrs(sp *obs.Span, st Stats) {
	if sp == nil {
		return
	}
	sp.SetCounter("components", int64(st.Components))
	sp.SetCounter("fast_path_hits", int64(st.FastPathHits))
	sp.SetCounter("lp_solves_total", int64(st.LPSolves))
	sp.SetCounter("cuts_added", int64(st.CutsAdded))
	sp.SetCounter("max_flow_calls", int64(st.MaxFlowCalls))
	sp.SetCounter("simplex_pivots", int64(st.SimplexPivots))
	sp.SetCounter("warm_cuts_reused", int64(st.WarmCutsReused))
	sp.SetCounter("warm_basis_hits", int64(st.WarmBasisHits))
	sp.SetCounter("parametric_slides", int64(st.ParametricSlides))
	sp.SetCounter("incremental_fallbacks", int64(st.IncrementalFallbacks))
}

// lowDegree returns the cached low-degree spanning-forest bound, computing
// it on first use. Safe for concurrent callers.
func (ps *planShard) lowDegree() int {
	ps.lowDegOnce.Do(func() {
		_, ps.lowDeg = spanning.LowDegreeSpanningForest(ps.sub)
	})
	return ps.lowDeg
}

// eval computes f_Δ restricted to this shard. It is the delta-dependent
// pipeline: fast-path triage (three certificates of increasing cost), then
// exact leaf peeling, then one cutting-plane LP per remaining 2-core piece.
// sw, when non-nil, is this shard's cross-Δ warm-start state (cut pool and
// piece basis memos); it is touched by exactly one goroutine at a time —
// the worker evaluating this shard — because grid points run sequentially.
func (ps *planShard) eval(ctx context.Context, delta float64, opts Options, sw *shardWarm) (float64, Stats, error) {
	var stats Stats
	fsf := float64(ps.n - 1)

	if !opts.DisableFastPath {
		// Lemma 3.3, Item 1: a spanning Δ-forest certifies f_Δ = f_sf.
		if float64(ps.bfsDeg) <= delta {
			stats.FastPathHits++
			return fsf, stats, nil
		}
		if delta >= 1 {
			if float64(ps.lowDegree()) <= delta {
				stats.FastPathHits++
				return fsf, stats, nil
			}
			// Last cheap attempt: the paper's own Algorithm 3. It is only
			// guaranteed for Δ > s(G), but succeeds opportunistically far
			// beyond that; a returned forest is always a valid certificate.
			if di := int(math.Floor(delta)); di >= 1 {
				if forest, _, err := spanning.Repair(ps.sub, di); err == nil && forest != nil {
					if graph.MaxDegreeOfEdgeSet(ps.n, forest) <= di && len(forest) == ps.n-1 {
						stats.FastPathHits++
						return fsf, stats, nil
					}
				}
			}
		}
	}

	// Exact preprocessing: strip the tree-like fringe (see peel), then
	// solve the LP on each remaining connected piece with its residual
	// per-vertex budgets.
	reduced, caps, fixed := ps.sub, uniformCaps(ps.n, delta), 0.0
	if !opts.DisablePeel {
		reduced, caps, fixed = peel(ps.sub, delta)
	}
	total := fixed
	for _, piece := range reduced.ComponentSets() {
		if len(piece) < 2 {
			continue
		}
		psub, orig, err := reduced.InducedSubgraph(piece)
		if err != nil {
			panic(err) // component sets are always valid
		}
		if psub.M() == 0 {
			continue
		}
		pcaps := make([]float64, len(orig))
		for i, ov := range orig {
			pcaps[i] = caps[ov]
		}
		v, err := lpValue(ctx, psub, pcaps, opts, &stats, sw, orig)
		if err != nil {
			return 0, stats, err
		}
		total += v
	}
	if total > fsf {
		total = fsf
	}
	if total < 0 {
		total = 0
	}
	return total, stats, nil
}
