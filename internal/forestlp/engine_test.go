package forestlp

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

// TestWorkerCountDeterminism is the determinism property test: on random
// graphs from internal/generate, every worker count must produce the same
// f_Δ bit for bit, with identical counting statistics.
func TestWorkerCountDeterminism(t *testing.T) {
	deltas := []float64{1, 2, 3, 7.5}
	for seed := uint64(1); seed <= 6; seed++ {
		rng := generate.NewRand(seed)
		graphs := []*graph.Graph{
			generate.ErdosRenyi(60, 2.5/60, rng),
			generate.PlantedComponents([]int{15, 9, 21, 12}, 0.25, rng),
			generate.WithHubs(generate.ErdosRenyi(50, 1.5/50, rng), 2, 0.3, rng),
		}
		for gi, g := range graphs {
			plan := NewPlan(g)
			for _, delta := range deltas {
				base, baseStats, err := plan.Value(context.Background(), delta, Options{Workers: 1})
				if err != nil {
					t.Fatalf("seed %d graph %d delta %v: %v", seed, gi, delta, err)
				}
				for _, workers := range []int{2, 3, 8} {
					v, stats, err := plan.Value(context.Background(), delta, Options{Workers: workers})
					if err != nil {
						t.Fatalf("seed %d graph %d delta %v workers %d: %v", seed, gi, delta, workers, err)
					}
					if math.Float64bits(v) != math.Float64bits(base) {
						t.Errorf("seed %d graph %d delta %v: workers %d value %v != serial %v",
							seed, gi, delta, workers, v, base)
					}
					if stats.LPSolves != baseStats.LPSolves ||
						stats.CutsAdded != baseStats.CutsAdded ||
						stats.MaxFlowCalls != baseStats.MaxFlowCalls ||
						stats.SimplexPivots != baseStats.SimplexPivots ||
						stats.FastPathHits != baseStats.FastPathHits ||
						stats.Components != baseStats.Components ||
						stats.StalledPieces != baseStats.StalledPieces {
						t.Errorf("seed %d graph %d delta %v: workers %d stats %+v != serial %+v",
							seed, gi, delta, workers, stats, baseStats)
					}
				}
			}
		}
	}
}

// TestPlanMatchesValue checks that the plan-reuse path is the one-shot path.
func TestPlanMatchesValue(t *testing.T) {
	rng := generate.NewRand(42)
	g := generate.PlantedComponents([]int{12, 20, 8}, 0.3, rng)
	plan := NewPlan(g)
	for _, delta := range []float64{1, 2, 4, 8, 16} {
		want, wantStats, err := Value(g, delta, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := plan.Value(context.Background(), delta, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("delta %v: plan value %v != one-shot %v", delta, got, want)
		}
		if gotStats.LPSolves != wantStats.LPSolves || gotStats.FastPathHits != wantStats.FastPathHits {
			t.Errorf("delta %v: plan stats %+v != one-shot %+v", delta, gotStats, wantStats)
		}
	}
}

// TestValueCtxCanceled checks the pre-canceled fast exit.
func TestValueCtxCanceled(t *testing.T) {
	g := generate.ErdosRenyi(40, 3.0/40, generate.NewRand(9))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ValueCtx(ctx, g, 2, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestValueCtxCancelMidSolve cancels from inside the cutting-plane loop via
// the Trace hook and checks that the engine aborts with the context error
// for every worker count. The cancel fires on a round that found violated
// cuts, so that shard is guaranteed to re-enter the loop and observe the
// canceled context (a round with no new cuts would return its value before
// the next check).
func TestValueCtxCancelMidSolve(t *testing.T) {
	rng := generate.NewRand(11)
	g := generate.PlantedComponents([]int{25, 25, 25, 25}, 0.3, rng)

	// Force the LP on every shard (triangle-rich clusters at Δ=2 violate
	// subtour constraints immediately). Precondition: the workload must
	// genuinely generate cuts, otherwise the cancel hook below never fires.
	base := Options{Workers: 1, DisableFastPath: true, DisablePeel: true}
	if _, stats, err := Value(g, 2, base); err != nil || stats.CutsAdded == 0 {
		t.Fatalf("workload not LP-heavy enough: cuts=%d err=%v", stats.CutsAdded, err)
	}

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		opts := base
		opts.Workers = workers
		opts.Trace = func(round, activeCuts, newCuts int, value float64) {
			if newCuts > 0 {
				once.Do(cancel)
			}
		}
		_, _, err := ValueCtx(ctx, g, 2, opts)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: want context.Canceled, got %v", workers, err)
		}
	}
}

// TestValueCtxDeadline checks deadline expiry against a workload large
// enough that the LP stage cannot finish within a microsecond.
func TestValueCtxDeadline(t *testing.T) {
	rng := generate.NewRand(13)
	g := generate.PlantedComponents([]int{40, 40, 40, 40, 40, 40}, 0.25, rng)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	// The deadline may fire before or during evaluation; both must surface
	// context.DeadlineExceeded rather than a wrong value.
	_, _, err := ValueCtx(ctx, g, 1, Options{Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestShardTimings checks the per-shard diagnostics: one record per
// non-trivial shard, in deterministic shard order, with consistent flags.
func TestShardTimings(t *testing.T) {
	rng := generate.NewRand(17)
	g := generate.PlantedComponents([]int{10, 16, 2, 12}, 0.4, rng)
	plan := NewPlan(g)

	// Off by default: a grid sweep must not accumulate timing records.
	if _, stats, err := plan.Value(context.Background(), 2, Options{Workers: 2}); err != nil || len(stats.Shards) != 0 {
		t.Fatalf("timings without opt-in: %d records, err %v", len(stats.Shards), err)
	}

	_, stats, err := plan.Value(context.Background(), 2, Options{Workers: 2, ShardTimings: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(stats.Shards), plan.Shards(); got != want {
		t.Fatalf("got %d shard timings, want %d", got, want)
	}
	lpFromShards := 0
	for i, sh := range stats.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d: out-of-order index %d", i, sh.Shard)
		}
		if sh.Vertices < 2 {
			t.Errorf("shard %d: trivial shard reported (n=%d)", i, sh.Vertices)
		}
		if sh.FastPath != (sh.LPSolves == 0) {
			t.Errorf("shard %d: FastPath=%v inconsistent with LPSolves=%d", i, sh.FastPath, sh.LPSolves)
		}
		lpFromShards += sh.LPSolves
	}
	if lpFromShards != stats.LPSolves {
		t.Errorf("per-shard LP solves %d != aggregate %d", lpFromShards, stats.LPSolves)
	}
	if stats.Workers < 1 {
		t.Errorf("stats.Workers = %d, want ≥ 1", stats.Workers)
	}
}
