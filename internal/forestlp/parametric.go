package forestlp

// This file implements the parametric Δ-grid cutting-plane loop: the
// incremental counterpart of lpValue's rebuild loop, built on the standing
// lp.Incremental solver. The Δ-grid varies only the degree-row rhs — the
// columns and every subtour row are Δ-independent — so a piece that was
// solved at the previous grid point resumes by sliding its live tableau
// (one rhs update folded through B⁻¹, then a handful of dual-simplex
// repair pivots) instead of rebuilding rows and re-eliminating a basis.
// Cutting-plane rounds append their cuts to the same live object.
//
// The float fast path is certified, not trusted: the solver self-checks
// every optimum against the original constraint data and refactorizes on
// damage, and ANY failure it cannot heal — ErrNumericalDistress, a
// non-optimal status, row-cap overflow — abandons the standing solver and
// falls back to the rebuild path in lpValue, which recomputes the piece
// from the (deterministically grown) cut pool. The exact big.Rat oracle
// certifies the whole arrangement in the conformance tests.
//
// One deliberate divergence from the rebuild loop: no cut aging. The
// rebuild path parks slack cuts to keep the next rebuild small; here a
// slack cut is a basic-slack row that costs one tableau row and zero
// pivots, while evicting it would force exactly the rebuild this path
// exists to avoid. The active set therefore grows monotonically, bounded
// by incrRowCap.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nodedp/internal/fault"
	"nodedp/internal/graph"
	"nodedp/internal/lp"
)

// incrMinRows gates the parametric engine by base-row count, mirroring
// warmBasisMinRows: standing solvers earn their memory on the pieces where
// cold solves are superlinearly expensive. A variable so the conformance
// tests (which certify against the exact oracle on small pieces) can lower
// it; production code treats it as a constant.
var incrMinRows = warmBasisMinRows

// incrRowCap bounds the physical row count of a standing tableau. A piece
// whose active set outgrows it falls back to the rebuild path, whose
// cut aging keeps the working LP small.
const incrRowCap = 4096

// IncrementalCheapPivots is the Stats.ParametricCheapSolves threshold: a
// slid grid point that settles within this many total pivots counts as the
// near-zero-pivot outcome the sweep aims for. Exported so diagnostics can
// label the counter with its definition.
const IncrementalCheapPivots = 8

// testHookPoisonIncr, when non-nil, observes every standing solver a piece
// evaluation obtains (fresh or slid) before its first Solve. Tests use it
// to Poison solvers on demand and drive the numerical-distress fallback,
// which organic conditions produce too rarely to test against.
var testHookPoisonIncr func(*lp.Incremental)

// lpValueIncr runs the cutting-plane loop for one piece on a standing
// incremental solver. It returns ok=false (with no error) when the piece
// should fall back to the rebuild path; an error return aborts the
// evaluation (context cancelation, malformed input). Cuts discovered
// before a fallback are already pooled, so the rebuild pass revives them
// instead of re-running max-flow separation.
func lpValueIncr(ctx context.Context, sub *graph.Graph, edges []graph.Edge, c []float64,
	baseRows [][]float64, baseRHS []float64, primalLB float64,
	opts Options, stats *Stats, sw *shardWarm, orig []int) (float64, bool, error) {

	m := len(c)
	// Injected max-flow arena-allocation failure. It fires here on the
	// error-propagating shard path — never inside the oracle's wave
	// workers, which have no recover and whose contract is to report
	// failures through the shard result channel.
	if err := fault.Hit("maxflow.arena"); err != nil {
		return 0, false, err
	}
	sep := newSeparator(sub, edges, opts.Tol, resolveSepWorkers(opts), resolveSepWave(opts))
	sep.exhaustive = opts.SepExhaustive
	// The parametric path only runs with warm starts on, so the parked-cut
	// revive machinery stays enabled.
	defer func() { stats.CutsRevived += sep.revived }()

	cutRow := func(ct *cut) []float64 {
		row := make([]float64, m)
		for _, i := range ct.edgeIdx {
			row[i] = 1
		}
		return row
	}
	fullRHS := func(active []*cut) []float64 {
		rhs := append([]float64(nil), baseRHS...)
		for _, ct := range active {
			rhs = append(rhs, float64(ct.size-1))
		}
		return rhs
	}

	active, memoBasis, seeded, pi := sw.injectIncr(sep, orig)
	stats.WarmCutsReused += seeded

	// Slide or build. A standing solver is only slid when its layout still
	// matches the memo-restored active set (a crashed or abandoned prior
	// evaluation can leave extra appended rows behind); otherwise it is
	// dropped and a fresh solver warm-starts from the memoized basis, which
	// is this path's equivalent of the rebuild+restore round.
	slid := false
	if pi != nil {
		if pi.Cols() == m && pi.Rows() == len(baseRows)+len(active) &&
			pi.SetRHS(fullRHS(active)) == nil {
			slid = true
			stats.ParametricSlides++
		} else {
			pi = nil
			sw.dropIncr(orig)
		}
	}
	if pi == nil {
		rows := append([][]float64(nil), baseRows...)
		for _, ct := range active {
			rows = append(rows, cutRow(ct))
		}
		lpOpts := opts.LP
		lpOpts.Basis = memoBasis
		var err error
		pi, err = lp.NewIncremental(c, rows, fullRHS(active), lpOpts)
		if err != nil {
			return 0, false, err
		}
	}
	if testHookPoisonIncr != nil {
		testHookPoisonIncr(pi)
	}

	fallback := func() (float64, bool, error) {
		sw.dropIncr(orig)
		return 0, false, nil
	}
	cheap := func(pivotsSpent int) {
		if slid && pivotsSpent <= IncrementalCheapPivots {
			stats.ParametricCheapSolves++
		}
	}

	prevValue := math.Inf(1)
	stall := 0
	pivotsSpent := 0
	for round := 0; round < opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		sol, err := pi.SolveCtx(ctx)
		stats.LPSolves++
		stats.SimplexPivots += sol.Pivots + sol.WarmPivots
		stats.Refactorizations += sol.Refactorizations
		pivotsSpent += sol.Pivots + sol.WarmPivots
		if err != nil {
			if errors.Is(err, lp.ErrNumericalDistress) {
				return fallback()
			}
			return 0, false, err
		}
		if round > 0 || slid || sol.WarmStarted {
			// Every solve on the standing object after the first continues
			// from the previous basis — the same event the rebuild path
			// counts as a warm-basis hit per round.
			stats.WarmBasisHits++
		}
		if sol.Status != lp.Optimal {
			// Unbounded cannot occur on a forest polytope (x(E) is capped by
			// the whole-component row); any non-optimal status here means
			// the standing object is not to be trusted.
			return fallback()
		}

		// Gap pinch — same certificate, same returned float, as the rebuild
		// path (the bound depends only on the piece and its caps).
		if sol.Value <= primalLB+opts.Tol {
			cheap(pivotsSpent)
			sw.storeIncr(orig, active, pi)
			return primalLB, true, nil
		}

		cuts, flows := sep.findViolated(sol.X, opts.MaxCutsPerRound)
		stats.MaxFlowCalls += flows
		if opts.Trace != nil {
			opts.Trace(round, len(active), len(cuts), sol.Value)
		}
		if len(cuts) == 0 {
			cheap(pivotsSpent)
			sw.storeIncr(orig, active, pi)
			value := sol.Value
			if value < 0 {
				value = 0
			}
			return value, true, nil
		}

		// Stall handling: identical thresholds and bailout semantics to the
		// rebuild path's warm mode, so a piece that stalls returns the same
		// kind of bound whichever engine ran it.
		if sol.Value >= prevValue-1000*opts.Tol {
			stall++
		} else {
			stall = 0
		}
		if stall >= opts.StallRounds/2 {
			sep.flushParked()
		}
		prevValue = sol.Value
		if stall >= opts.StallRounds {
			cheap(pivotsSpent)
			sw.storeIncr(orig, active, pi)
			value := sol.Value
			if value < 0 {
				value = 0
			}
			if gap := value - primalLB; gap > opts.Tol {
				stats.StalledPieces++
				if gap > stats.StallGap {
					stats.StallGap = gap
				}
			}
			return value, true, nil
		}

		if len(baseRows)+len(active)+len(cuts) > incrRowCap {
			return fallback()
		}
		newRows := make([][]float64, len(cuts))
		newRHS := make([]float64, len(cuts))
		for i, ct := range cuts {
			newRows[i] = cutRow(ct)
			newRHS[i] = float64(ct.size - 1)
		}
		if err := pi.AppendRows(newRows, newRHS); err != nil {
			return fallback()
		}
		for _, ct := range cuts {
			sw.addCut(orig, ct.ids)
		}
		active = append(active, cuts...)
		stats.CutsAdded += len(cuts)
	}
	return 0, false, fmt.Errorf("cutting planes did not converge in %d rounds", opts.MaxRounds)
}
