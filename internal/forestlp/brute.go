package forestlp

import (
	"fmt"
	"math/big"

	"nodedp/internal/graph"
	"nodedp/internal/lp"
)

// This file provides ground-truth evaluators for f_Δ on small graphs: the
// full LP with every subtour constraint written out explicitly, solved
// either in float64 or in exact rational arithmetic. They exist to certify
// the cutting-plane evaluator in tests and experiments.
//
// Only CONNECTED vertex subsets need constraints: for a disconnected S with
// connected parts S_1..S_k, x(E[S]) = Σ x(E[S_i]) ≤ Σ(|S_i|−1) ≤ |S|−1.

// maxBruteVertices caps per-component brute-force size; beyond this the
// constraint enumeration explodes.
const maxBruteVertices = 16

// ValueBruteForce computes f_Δ(G) by explicit constraint enumeration and
// the float64 simplex. Components must have at most maxBruteVertices
// vertices.
func ValueBruteForce(g *graph.Graph, delta float64) (float64, error) {
	total := 0.0
	for _, comp := range g.ComponentSets() {
		if len(comp) < 2 {
			continue
		}
		if len(comp) > maxBruteVertices {
			return 0, fmt.Errorf("forestlp: brute force component size %d > %d", len(comp), maxBruteVertices)
		}
		sub, _, err := g.InducedSubgraph(comp)
		if err != nil {
			panic(err)
		}
		rows, rhs := explicitConstraints(sub, delta)
		edges := sub.Edges()
		c := make([]float64, len(edges))
		for i := range c {
			c[i] = 1
		}
		sol, err := lp.Maximize(c, rows, rhs, lp.Options{})
		if err != nil {
			return 0, err
		}
		if sol.Status != lp.Optimal {
			return 0, fmt.Errorf("forestlp: brute force LP status %v", sol.Status)
		}
		total += sol.Value
	}
	return total, nil
}

// ValueBruteForceRat is ValueBruteForce in exact rational arithmetic.
func ValueBruteForceRat(g *graph.Graph, delta *big.Rat) (*big.Rat, error) {
	total := new(big.Rat)
	for _, comp := range g.ComponentSets() {
		if len(comp) < 2 {
			continue
		}
		if len(comp) > maxBruteVertices {
			return nil, fmt.Errorf("forestlp: brute force component size %d > %d", len(comp), maxBruteVertices)
		}
		sub, _, err := g.InducedSubgraph(comp)
		if err != nil {
			panic(err)
		}
		deltaF, _ := delta.Float64()
		rows, rhs := explicitConstraints(sub, deltaF)
		edges := sub.Edges()
		cr := make([]*big.Rat, len(edges))
		for i := range cr {
			cr[i] = big.NewRat(1, 1)
		}
		ar := make([][]*big.Rat, len(rows))
		br := make([]*big.Rat, len(rows))
		for i, row := range rows {
			ar[i] = make([]*big.Rat, len(row))
			for j, v := range row {
				ar[i][j] = lp.RatFromFloat(v)
			}
			br[i] = lp.RatFromFloat(rhs[i])
		}
		// Replace the degree rows' rhs with the exact delta.
		for i := 0; i < sub.N(); i++ {
			br[i] = new(big.Rat).Set(delta)
		}
		sol, err := lp.MaximizeRat(cr, ar, br, 0)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("forestlp: brute force rational LP status %v", sol.Status)
		}
		total.Add(total, sol.Value)
	}
	return total, nil
}

// explicitConstraints builds degree rows (first n rows, rhs delta) followed
// by one subtour row per connected vertex subset of size ≥ 2.
func explicitConstraints(sub *graph.Graph, delta float64) ([][]float64, []float64) {
	n := sub.N()
	edges := sub.Edges()
	m := len(edges)
	var rows [][]float64
	var rhs []float64
	for v := 0; v < n; v++ {
		row := make([]float64, m)
		for i, e := range edges {
			if e.U == v || e.V == v {
				row[i] = 1
			}
		}
		rows = append(rows, row)
		rhs = append(rhs, delta)
	}
	for mask := 1; mask < 1<<n; mask++ {
		size := popcount(mask)
		if size < 2 || !connectedMask(sub, mask) {
			continue
		}
		row := make([]float64, m)
		for i, e := range edges {
			if mask&(1<<e.U) != 0 && mask&(1<<e.V) != 0 {
				row[i] = 1
			}
		}
		rows = append(rows, row)
		rhs = append(rhs, float64(size-1))
	}
	return rows, rhs
}

// connectedMask reports whether the vertices in mask induce a connected
// subgraph of sub.
func connectedMask(sub *graph.Graph, mask int) bool {
	start := -1
	count := 0
	for v := 0; v < sub.N(); v++ {
		if mask&(1<<v) != 0 {
			if start == -1 {
				start = v
			}
			count++
		}
	}
	if count == 0 {
		return false
	}
	seen := 1 << start
	stack := []int{start}
	visited := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range sub.Neighbors(u) {
			bit := 1 << w
			if mask&bit != 0 && seen&bit == 0 {
				seen |= bit
				visited++
				stack = append(stack, w)
			}
		}
	}
	return visited == count
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
