// Package forestlp evaluates the paper's Lipschitz extensions f_Δ
// (Definition 3.1): f_Δ(G) is the maximum total edge weight over the
// Δ-bounded forest polytope P_Δ(G), the vectors x ∈ R^E with
//
//	x(e) ≥ 0                          for every edge e,
//	x(E[S]) ≤ |S| − 1                 for every S ⊆ V, |S| ≥ 2,
//	x(δ(v)) ≤ Δ                       for every vertex v.
//
// The exponentially many subtour constraints are generated lazily: a
// cutting-plane loop solves the relaxation with the constraints found so
// far and calls a Padberg–Wolsey separation oracle, which locates a
// violated x(E[S]) ≤ |S|−1 via max-closure/min-cut computations (one per
// forced vertex). This realizes the paper's "LP solver with an efficient
// linear separation oracle" (Lemma 3.3, Item 2) with a simplex instead of
// the ellipsoid method.
//
// Two structural facts keep this fast in practice:
//
//   - f_Δ is additive over connected components (every cross-component
//     subtour constraint is implied by per-component ones), so each
//     component gets its own small LP; and
//   - if a component has a spanning forest of maximum degree ≤ Δ, then
//     f_Δ equals f_sf there (Lemma 3.3, Item 1) and no LP is needed. The
//     fast path tries the BFS forest and then a degree-reducing local
//     search before falling back to the LP.
//
// The evaluator is organized as a sharded engine: a Plan (planner.go)
// snapshots the graph into an immutable CSR, decomposes it into
// per-component shards, and caches the delta-independent triage data; the
// engine (engine.go) then solves the independent shard LPs concurrently on
// a worker pool with a deterministic merge, so results are bit-for-bit
// identical for every Workers setting. Value and ValueCtx are one-shot
// wrappers; Algorithm 1 builds one Plan and reuses it across its whole
// Δ-grid.
package forestlp

import (
	"context"
	"fmt"
	"math"

	"nodedp/internal/graph"
	"nodedp/internal/lp"
	"nodedp/internal/spanning"
)

// Options tunes the evaluator. The zero value is ready to use.
type Options struct {
	// Workers is the number of component LPs solved concurrently. 0 (the
	// default) means runtime.GOMAXPROCS; 1 forces serial evaluation. The
	// returned value and all counting statistics are identical for every
	// setting — only wall-clock time changes.
	Workers int
	// ShardTimings enables per-shard wall-clock diagnostics in
	// Stats.Shards. Off by default: every evaluation retains one record
	// per non-trivial component, so a Δ-grid sweep over a graph with many
	// components would otherwise accumulate shards × grid-points records.
	ShardTimings bool
	// Tol is the violation/feasibility tolerance. Default 1e-7.
	Tol float64
	// MaxRounds caps cutting-plane rounds per component. Default 1000.
	MaxRounds int
	// MaxCutsPerRound admits only the most violated cuts each round,
	// keeping the working LP small. Default 48.
	MaxCutsPerRound int
	// DropSlackAfter ages out a cut after this many consecutive slack
	// rounds. Default 3.
	DropSlackAfter int
	// StallRounds abandons a piece after this many consecutive rounds
	// without objective improvement, returning the relaxation bound and
	// recording the residual gap in Stats (see Stats.StalledPieces).
	// Default 80.
	StallRounds int
	// DisableFastPath forces the LP even when a spanning Δ-forest is found
	// (used by tests to exercise the LP on easy instances).
	DisableFastPath bool
	// DisablePeel skips the exact leaf-elimination preprocessing (used by
	// the ablation benchmarks; results are identical, only slower).
	DisablePeel bool
	// LP are the simplex options for each relaxation solve.
	LP lp.Options
	// Trace, if set, observes every cutting-plane round (diagnostics).
	// With Workers > 1 it is called concurrently from several goroutines
	// and must be safe for that.
	Trace func(round, activeCuts, newCuts int, value float64)
}

// Normalize returns o with every zero tuning field replaced by its
// documented default — the form under which two Options ask for the same
// evaluation. The plan cache digests normalized options so zero-valued and
// explicit-default configurations share entries. (The nested LP options
// default per solve, from the problem dimensions, and are left as given.)
func (o Options) Normalize() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 1000
	}
	if o.MaxCutsPerRound <= 0 {
		o.MaxCutsPerRound = 48
	}
	if o.DropSlackAfter <= 0 {
		o.DropSlackAfter = 3
	}
	if o.StallRounds <= 0 {
		o.StallRounds = 80
	}
	return o
}

// Stats reports the work done by one Value evaluation.
type Stats struct {
	// Components is the number of connected components processed.
	Components int
	// FastPathHits counts components settled by a spanning Δ-forest.
	FastPathHits int
	// LPSolves counts simplex solves across all components and rounds.
	LPSolves int
	// CutsAdded counts subtour constraints generated by separation.
	CutsAdded int
	// MaxFlowCalls counts min-cut computations inside separation.
	MaxFlowCalls int
	// SimplexPivots sums pivots over all LP solves.
	SimplexPivots int
	// StalledPieces counts LP pieces abandoned on a degenerate optimal
	// face. For such pieces the returned value is the stalled relaxation
	// bound: it never exceeds f_sf (the clamp guarantees underestimation
	// against the target) but may overestimate the true f_Δ by at most
	// StallGap.
	StalledPieces int
	// StallGap is the largest upper-minus-lower bound gap among stalled
	// pieces (0 when every piece converged or was certified exactly).
	StallGap float64
	// Workers is the worker-pool size the engine resolved for this
	// evaluation (aggregations keep the maximum).
	Workers int
	// Shards holds per-shard wall-clock diagnostics in deterministic shard
	// order, collected only when Options.ShardTimings is set; durations
	// vary run to run, every other field is reproducible.
	Shards []ShardTiming
}

func (s *Stats) add(t Stats) {
	s.Components += t.Components
	s.FastPathHits += t.FastPathHits
	s.LPSolves += t.LPSolves
	s.CutsAdded += t.CutsAdded
	s.MaxFlowCalls += t.MaxFlowCalls
	s.SimplexPivots += t.SimplexPivots
	s.StalledPieces += t.StalledPieces
	if t.StallGap > s.StallGap {
		s.StallGap = t.StallGap
	}
	if t.Workers > s.Workers {
		s.Workers = t.Workers
	}
	s.Shards = append(s.Shards, t.Shards...)
}

// MergeGridRound folds the statistics of one evaluation into an aggregate
// over a Δ-grid sweep of the same plan: counters accumulate, gauges keep
// their maxima, and Components — identical each round by construction —
// keeps the per-round value instead of summing.
func (s *Stats) MergeGridRound(t Stats) {
	s.add(t)
	s.Components = t.Components
}

// Value computes f_Δ(G). delta must be positive. The result is clamped to
// [0, f_sf(G)] to preserve the underestimation property (Lemma 3.3) exactly
// even under floating-point slack. It is ValueCtx without cancelation; to
// evaluate many Δ on the same graph, build one Plan and reuse it.
func Value(g *graph.Graph, delta float64, opts Options) (float64, Stats, error) {
	return ValueCtx(context.Background(), g, delta, opts)
}

// ValueCtx is Value with cancelation and deadline support: ctx is checked
// before every shard and between cutting-plane rounds, so long LP solves
// abort promptly with ctx.Err().
func ValueCtx(ctx context.Context, g *graph.Graph, delta float64, opts Options) (float64, Stats, error) {
	if err := checkDelta(delta); err != nil {
		return 0, Stats{}, err
	}
	return NewPlan(g).Value(ctx, delta, opts)
}

// checkDelta rejects non-positive and non-finite Lipschitz parameters.
func checkDelta(delta float64) error {
	if delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return fmt.Errorf("forestlp: delta must be positive and finite, got %v", delta)
	}
	return nil
}

// lpValue solves max x(E) over the forest polytope of sub intersected with
// per-vertex degree budgets, by cutting planes.
func lpValue(ctx context.Context, sub *graph.Graph, caps []float64, opts Options, stats *Stats) (float64, error) {
	n := sub.N()
	fsf := float64(n - 1)

	// Primal certificate: a spanning forest respecting the integer parts
	// of the budgets achieves the whole-set upper bound |piece|−1, which
	// settles the LP without cutting planes. This is what terminates the
	// massively degenerate instances where Kelley cuts churn across an
	// optimal face (see DESIGN.md).
	if !opts.DisableFastPath {
		intCaps := make([]int, n)
		feasible := true
		for v := range intCaps {
			intCaps[v] = int(math.Floor(caps[v] + 1e-9))
			if intCaps[v] < 0 {
				feasible = false
			}
		}
		if feasible {
			if _, ok := spanning.CappedSpanningForest(sub, intCaps); ok {
				stats.FastPathHits++
				return fsf, nil
			}
		}
	}

	edges := sub.Edges()
	m := len(edges)
	c := make([]float64, m)
	for i := range c {
		c[i] = 1
	}

	// Base constraints: degree rows and the whole-component subtour row.
	var baseRows [][]float64
	var baseRHS []float64
	for v := 0; v < n; v++ {
		row := make([]float64, m)
		for i, e := range edges {
			if e.U == v || e.V == v {
				row[i] = 1
			}
		}
		baseRows = append(baseRows, row)
		cap := caps[v]
		if cap < 0 {
			cap = 0
		}
		baseRHS = append(baseRHS, cap)
	}
	all := make([]float64, m)
	for i := range all {
		all[i] = 1
	}
	baseRows = append(baseRows, all)
	baseRHS = append(baseRHS, fsf)

	sep := newSeparator(sub, edges, opts.Tol)
	var active []*cut
	cutRow := func(ct *cut) []float64 {
		row := make([]float64, m)
		for i, e := range edges {
			if ct.member[e.U] && ct.member[e.V] {
				row[i] = 1
			}
		}
		return row
	}

	prevValue := math.Inf(1)
	stall := 0
	for round := 0; round < opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		rows := append([][]float64(nil), baseRows...)
		rhs := append([]float64(nil), baseRHS...)
		for _, ct := range active {
			rows = append(rows, cutRow(ct))
			rhs = append(rhs, float64(ct.size-1))
		}
		sol, err := lp.Maximize(c, rows, rhs, opts.LP)
		stats.LPSolves++
		stats.SimplexPivots += sol.Pivots
		if err != nil {
			return 0, err
		}
		if sol.Status != lp.Optimal {
			return 0, fmt.Errorf("LP solve ended with status %v", sol.Status)
		}

		cuts, flows := sep.findViolated(sol.X, opts.MaxCutsPerRound)
		stats.MaxFlowCalls += flows
		if opts.Trace != nil {
			opts.Trace(round, len(active), len(cuts), sol.Value)
		}
		if len(cuts) == 0 {
			value := sol.Value
			if value < 0 {
				value = 0
			}
			return value, nil
		}

		// Stall detection: a frozen objective across many rounds while new
		// cuts keep appearing means Kelley is walking a degenerate optimal
		// face (e.g. hub graphs, whose optima are symmetric in which
		// spokes carry weight). Try to certify the frozen value with a
		// primal capped-forest bound; otherwise return the relaxation
		// bound and record the residual gap.
		if sol.Value >= prevValue-opts.Tol {
			stall++
		} else {
			stall = 0
		}
		prevValue = sol.Value
		if stall >= opts.StallRounds {
			lb := float64(primalCappedForestBound(sub, caps))
			value := sol.Value
			if value < 0 {
				value = 0
			}
			if gap := value - lb; gap > opts.Tol {
				stats.StalledPieces++
				if gap > stats.StallGap {
					stats.StallGap = gap
				}
			}
			return value, nil
		}

		// Cut management: age out constraints that have been slack for
		// several consecutive rounds (releasing their keys so they may
		// return), then admit the new violated cuts.
		kept := active[:0]
		for _, ct := range active {
			lhs := 0.0
			row := cutRow(ct)
			for i, coef := range row {
				lhs += coef * sol.X[i]
			}
			if lhs < float64(ct.size-1)-opts.Tol {
				ct.slackRounds++
			} else {
				ct.slackRounds = 0
			}
			if ct.slackRounds >= opts.DropSlackAfter {
				sep.forget(ct.key)
				continue
			}
			kept = append(kept, ct)
		}
		active = append(kept, cuts...)
		stats.CutsAdded += len(cuts)
	}
	return 0, fmt.Errorf("cutting planes did not converge in %d rounds", opts.MaxRounds)
}
