// Package forestlp evaluates the paper's Lipschitz extensions f_Δ
// (Definition 3.1): f_Δ(G) is the maximum total edge weight over the
// Δ-bounded forest polytope P_Δ(G), the vectors x ∈ R^E with
//
//	x(e) ≥ 0                          for every edge e,
//	x(E[S]) ≤ |S| − 1                 for every S ⊆ V, |S| ≥ 2,
//	x(δ(v)) ≤ Δ                       for every vertex v.
//
// The exponentially many subtour constraints are generated lazily: a
// cutting-plane loop solves the relaxation with the constraints found so
// far and calls a Padberg–Wolsey separation oracle, which locates a
// violated x(E[S]) ≤ |S|−1 via max-closure/min-cut computations (one per
// forced vertex). This realizes the paper's "LP solver with an efficient
// linear separation oracle" (Lemma 3.3, Item 2) with a simplex instead of
// the ellipsoid method.
//
// Two structural facts keep this fast in practice:
//
//   - f_Δ is additive over connected components (every cross-component
//     subtour constraint is implied by per-component ones), so each
//     component gets its own small LP; and
//   - if a component has a spanning forest of maximum degree ≤ Δ, then
//     f_Δ equals f_sf there (Lemma 3.3, Item 1) and no LP is needed. The
//     fast path tries the BFS forest and then a degree-reducing local
//     search before falling back to the LP.
//
// The evaluator is organized as a sharded engine: a Plan (planner.go)
// snapshots the graph into an immutable CSR, decomposes it into
// per-component shards, and caches the delta-independent triage data; the
// engine (engine.go) then solves the independent shard LPs concurrently on
// a worker pool with a deterministic merge, so results are bit-for-bit
// identical for every Workers setting. Value and ValueCtx are one-shot
// wrappers; Algorithm 1 builds one Plan and reuses it across its whole
// Δ-grid.
package forestlp

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"nodedp/internal/fault"
	"nodedp/internal/graph"
	"nodedp/internal/lp"
	"nodedp/internal/spanning"
)

// Options tunes the evaluator. The zero value is ready to use.
type Options struct {
	// Workers is the number of component LPs solved concurrently. 0 (the
	// default) means runtime.GOMAXPROCS; 1 forces serial evaluation. The
	// returned value and all counting statistics are identical for every
	// setting — only wall-clock time changes.
	Workers int
	// SepWorkers is the number of concurrent max-closure oracle calls
	// inside one component's separation round — the intra-component
	// parallelism that Workers cannot reach when one giant component is a
	// single shard. 0 (the default) inherits Workers' resolution; 1 forces
	// serial separation. Forced vertices are dispatched in waves whose
	// schedule never depends on the worker count, and results merge in
	// vertex order, so the returned value and all counting statistics
	// (including max-flow calls) are identical for every setting; useful
	// parallelism is capped at the maximum wave width (SepWaveWidth,
	// default 16).
	SepWorkers int
	// SepWaveWidth is the maximum wave width of the parallel separation
	// oracle: how many forced vertices are dispatched at most before the
	// covered screening is re-applied. 0 (the default) means 16; negative
	// values are rejected. The wave schedule — which oracle calls run —
	// depends on the width, so changing it moves the work counters
	// (max-flow calls) and, on pieces that hit the stall bailout, can move
	// the path-dependent relaxation bound; for a FIXED width the result is
	// still bit-identical for every SepWorkers setting, which is why the
	// plan cache digests the width. Raise it on many-core machines where
	// more than 16 concurrent oracle flows pay off; the useful SepWorkers
	// is capped at this width.
	SepWaveWidth int
	// DisableWarmStart turns off every warm-start layer: the cross-Δ cut
	// pool and piece-basis memos of grid sweeps, the round-to-round
	// simplex basis carrying inside each cutting-plane solve, and the
	// parked-cut pool that revives known violated cuts without an oracle
	// flow. Every LP then re-pivots from the all-slack basis and every cut
	// is re-discovered by max-flow, as the original engine did. On pieces
	// whose cutting planes converge, warm starts change only the work
	// counters (max-flow calls, pivots, LP rounds), never the values; a
	// piece that hits the stall bailout returns its path-dependent
	// relaxation bound (within Stats.StallGap of the optimum), which can
	// differ across this knob — the plan cache digests it for exactly
	// that reason. The knob exists for benchmarks and bisection.
	DisableWarmStart bool
	// DisableIncremental turns off the parametric/incremental LP engine:
	// pieces above the size gate then re-solve every cutting-plane round
	// and grid point through the rebuild+restore warm-start path (append
	// cuts by rebuilding the row set, restore the previous basis by
	// elimination) instead of mutating one standing tableau per piece with
	// rhs slides and row appends. On pieces whose cutting planes converge
	// the values are identical either way — the parametric path is guarded
	// by a residual certificate and falls back to the rebuild path on any
	// numerical distress — but stall-bailout pieces return path-dependent
	// bounds, so the plan cache digests this knob like the others. Implied
	// by DisableWarmStart (the standing solver IS a warm-start structure).
	// The knob exists for benchmarks, bisection, and belt-and-suspenders
	// operation.
	DisableIncremental bool
	// SepExhaustive disables the separation oracle's eligible-vertex
	// screening and its wave dispatch (reverting to the original
	// one-forced-vertex-at-a-time sweep over every uncovered vertex).
	// Results are identical, strictly more max-flow calls are made; the
	// benchmark suite uses it to quantify the screening.
	SepExhaustive bool
	// ShardTimings enables per-shard wall-clock diagnostics in
	// Stats.Shards. Off by default: every evaluation retains one record
	// per non-trivial component, so a Δ-grid sweep over a graph with many
	// components would otherwise accumulate shards × grid-points records.
	ShardTimings bool
	// Tol is the violation/feasibility tolerance. Default 1e-7.
	Tol float64
	// MaxRounds caps cutting-plane rounds per component. Default 1000.
	MaxRounds int
	// MaxCutsPerRound admits only the most violated cuts each round,
	// keeping the working LP small. Default 48.
	MaxCutsPerRound int
	// DropSlackAfter ages out a cut after this many consecutive slack
	// rounds. Default 3.
	DropSlackAfter int
	// StallRounds abandons a piece after this many consecutive rounds
	// without objective improvement, returning the relaxation bound and
	// recording the residual gap in Stats (see Stats.StalledPieces).
	// Default 80.
	StallRounds int
	// DisableFastPath forces the LP even when a spanning Δ-forest is found
	// (used by tests to exercise the LP on easy instances).
	DisableFastPath bool
	// DisablePeel skips the exact leaf-elimination preprocessing (used by
	// the ablation benchmarks; results are identical, only slower).
	DisablePeel bool
	// LP are the simplex options for each relaxation solve.
	LP lp.Options
	// Trace, if set, observes every cutting-plane round (diagnostics).
	// With Workers > 1 it is called concurrently from several goroutines
	// and must be safe for that.
	Trace func(round, activeCuts, newCuts int, value float64)
}

// Normalize returns o with every zero tuning field replaced by its
// documented default — the form under which two Options ask for the same
// evaluation. The plan cache digests normalized options so zero-valued and
// explicit-default configurations share entries. (The nested LP options
// default per solve, from the problem dimensions, and are left as given.)
func (o Options) Normalize() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 1000
	}
	if o.MaxCutsPerRound <= 0 {
		o.MaxCutsPerRound = 48
	}
	if o.DropSlackAfter <= 0 {
		o.DropSlackAfter = 3
	}
	if o.StallRounds <= 0 {
		o.StallRounds = 80
	}
	if o.SepWaveWidth == 0 {
		o.SepWaveWidth = sepWaveDefault
	}
	return o
}

// Stats reports the work done by one Value evaluation.
type Stats struct {
	// Components is the number of connected components processed.
	Components int
	// FastPathHits counts components settled by a spanning Δ-forest.
	FastPathHits int
	// LPSolves counts simplex solves across all components and rounds.
	LPSolves int
	// CutsAdded counts subtour constraints generated by separation.
	CutsAdded int
	// MaxFlowCalls counts min-cut computations inside separation.
	MaxFlowCalls int
	// SimplexPivots sums pivots over all LP solves.
	SimplexPivots int
	// CutsRevived counts violated constraints served by the zero-flow
	// parked-cut pool instead of the max-flow oracle (aged-out actives,
	// truncation overflow, and cross-Δ pool seeds that became violated
	// again).
	CutsRevived int
	// WarmCutsReused counts subtour constraints seeded from the cross-Δ
	// cut pool instead of being re-discovered by the oracle (grid sweeps
	// with warm starts enabled only).
	WarmCutsReused int
	// WarmBasisHits counts LP solves that successfully resumed from a
	// previous basis — the preceding cutting-plane round's, or a matching
	// piece's at the neighboring grid point — instead of the all-slack
	// start (restoration plus dual repair, see internal/lp).
	WarmBasisHits int
	// Refactorizations counts standing-tableau rebuilds performed by the
	// incremental solver to shed accumulated floating-point damage (see
	// internal/lp.Incremental; 0 when the parametric engine is off).
	Refactorizations int
	// ParametricSlides counts piece solves that reached a new Δ grid point
	// by sliding a standing solver — a rhs update plus dual repair on the
	// live tableau — instead of rebuilding rows and restoring a basis.
	ParametricSlides int
	// ParametricCheapSolves counts slid piece solves that settled within
	// IncrementalCheapPivots total pivots — the "grid point in near-zero pivots"
	// outcome the parametric sweep exists for.
	ParametricCheapSolves int
	// IncrementalFallbacks counts pieces that abandoned the parametric
	// path mid-solve (numerical distress, row-cap overflow) and re-solved
	// from scratch via the rebuild path. The fallback re-does the piece's
	// LP work but never changes its value.
	IncrementalFallbacks int
	// StalledPieces counts LP pieces abandoned on a degenerate optimal
	// face. For such pieces the returned value is the stalled relaxation
	// bound: it never exceeds f_sf (the clamp guarantees underestimation
	// against the target) but may overestimate the true f_Δ by at most
	// StallGap.
	StalledPieces int
	// StallGap is the largest upper-minus-lower bound gap among stalled
	// pieces (0 when every piece converged or was certified exactly).
	StallGap float64
	// Workers is the worker-pool size the engine resolved for this
	// evaluation (aggregations keep the maximum).
	Workers int
	// Shards holds per-shard wall-clock diagnostics in deterministic shard
	// order, collected only when Options.ShardTimings is set; durations
	// vary run to run, every other field is reproducible.
	Shards []ShardTiming
}

func (s *Stats) add(t Stats) {
	s.Components += t.Components
	s.FastPathHits += t.FastPathHits
	s.LPSolves += t.LPSolves
	s.CutsAdded += t.CutsAdded
	s.MaxFlowCalls += t.MaxFlowCalls
	s.SimplexPivots += t.SimplexPivots
	s.CutsRevived += t.CutsRevived
	s.WarmCutsReused += t.WarmCutsReused
	s.WarmBasisHits += t.WarmBasisHits
	s.Refactorizations += t.Refactorizations
	s.ParametricSlides += t.ParametricSlides
	s.ParametricCheapSolves += t.ParametricCheapSolves
	s.IncrementalFallbacks += t.IncrementalFallbacks
	s.StalledPieces += t.StalledPieces
	if t.StallGap > s.StallGap {
		s.StallGap = t.StallGap
	}
	if t.Workers > s.Workers {
		s.Workers = t.Workers
	}
	s.Shards = append(s.Shards, t.Shards...)
}

// MergeComponent folds the grid-aggregated statistics of one component's
// evaluation into a whole-graph aggregate: counters accumulate and gauges
// keep maxima, exactly as the parallel engine's shard merge does. It is
// used by the component-wise plan assembly in internal/core; the caller is
// responsible for stamping the shape-dependent Workers and Components
// fields afterward (a per-component sweep reports Workers=1 and
// Components=1 regardless of how the whole graph would be scheduled).
func (s *Stats) MergeComponent(t Stats) { s.add(t) }

// MergeGridRound folds the statistics of one evaluation into an aggregate
// over a Δ-grid sweep of the same plan: counters accumulate, gauges keep
// their maxima, and Components — identical each round by construction —
// keeps the per-round value instead of summing.
func (s *Stats) MergeGridRound(t Stats) {
	s.add(t)
	s.Components = t.Components
}

// Value computes f_Δ(G). delta must be positive. The result is clamped to
// [0, f_sf(G)] to preserve the underestimation property (Lemma 3.3) exactly
// even under floating-point slack. It is ValueCtx without cancelation; to
// evaluate many Δ on the same graph, build one Plan and reuse it.
func Value(g *graph.Graph, delta float64, opts Options) (float64, Stats, error) {
	return ValueCtx(context.Background(), g, delta, opts)
}

// ValueCtx is Value with cancelation and deadline support: ctx is checked
// before every shard and between cutting-plane rounds, so long LP solves
// abort promptly with ctx.Err().
func ValueCtx(ctx context.Context, g *graph.Graph, delta float64, opts Options) (float64, Stats, error) {
	if err := checkDelta(delta); err != nil {
		return 0, Stats{}, err
	}
	return NewPlan(g).Value(ctx, delta, opts)
}

// checkDelta rejects non-positive and non-finite Lipschitz parameters.
func checkDelta(delta float64) error {
	if delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return fmt.Errorf("forestlp: delta must be positive and finite, got %v", delta)
	}
	return nil
}

// maxWarmFails is the per-piece strike limit on rejected warm bases: a
// failed restoration costs real pivots and then solves cold anyway, and on
// degenerate pieces the failure repeats round after round.
const maxWarmFails = 2

// warmBasisMinRows gates the round-to-round (and cross-Δ) simplex basis
// reuse by LP size: restoring a basis costs about one elimination per
// basic structural variable, which rivals a full cold solve on small
// programs — warm starts only pay off once the cold solve is
// superlinearly more expensive than the restoration.
const warmBasisMinRows = 96

// resolveSepWorkers maps the Options to the separation worker count:
// SepWorkers, inheriting Workers when zero, then GOMAXPROCS, clamped to
// the wave width (beyond which extra workers would idle).
func resolveSepWorkers(opts Options) int {
	w := opts.SepWorkers
	if w == 0 {
		w = opts.Workers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if wave := resolveSepWave(opts); w > wave {
		w = wave
	}
	return w
}

// resolveSepWave maps the Options to the oracle's maximum wave width,
// tolerating un-defaulted options (0 means sepWaveDefault).
func resolveSepWave(opts Options) int {
	if opts.SepWaveWidth <= 0 {
		return sepWaveDefault
	}
	return opts.SepWaveWidth
}

// lpValue solves max x(E) over the forest polytope of sub intersected with
// per-vertex degree budgets, by cutting planes. sw, when non-nil, is the
// owning shard's cross-Δ warm-start state and orig the piece→shard vertex
// map: pooled subtour cuts seed the first relaxation (they are valid at
// every Δ), a matching piece resumes from its previous simplex basis, and
// every cut generated here is pooled for the neighboring grid points.
func lpValue(ctx context.Context, sub *graph.Graph, caps []float64, opts Options, stats *Stats, sw *shardWarm, orig []int) (float64, error) {
	n := sub.N()
	fsf := float64(n - 1)

	// Primal certificate: a spanning forest respecting the integer parts
	// of the budgets achieves the whole-set upper bound |piece|−1, which
	// settles the LP without cutting planes. This is what terminates the
	// massively degenerate instances where Kelley cuts churn across an
	// optimal face (see DESIGN.md).
	if !opts.DisableFastPath {
		intCaps := make([]int, n)
		feasible := true
		for v := range intCaps {
			intCaps[v] = int(math.Floor(caps[v] + 1e-9))
			if intCaps[v] < 0 {
				feasible = false
			}
		}
		if feasible {
			if _, ok := spanning.CappedSpanningForest(sub, intCaps); ok {
				stats.FastPathHits++
				return fsf, nil
			}
		}
	}

	edges := sub.Edges()
	m := len(edges)
	c := make([]float64, m)
	for i := range c {
		c[i] = 1
	}

	// Base constraints: degree rows and the whole-component subtour row.
	var baseRows [][]float64
	var baseRHS []float64
	for v := 0; v < n; v++ {
		row := make([]float64, m)
		for i, e := range edges {
			if e.U == v || e.V == v {
				row[i] = 1
			}
		}
		baseRows = append(baseRows, row)
		cap := caps[v]
		if cap < 0 {
			cap = 0
		}
		baseRHS = append(baseRHS, cap)
	}
	all := make([]float64, m)
	for i := range all {
		all[i] = 1
	}
	baseRows = append(baseRows, all)
	baseRHS = append(baseRHS, fsf)

	// primalLB is the value of a greedily built feasible 0/1 forest — a
	// lower bound on the piece's optimum that the relaxation value (an
	// upper bound) is compared against every round: once they meet, the
	// piece is solved, skipping both further cutting-plane rounds and the
	// final certification sweep of the oracle. The bound depends only on
	// (sub, caps), so every configuration returns the identical float when
	// the pinch fires, whatever route its relaxation took there.
	primalLB := float64(primalCappedForestBound(sub, caps))

	// Parametric fast path: pieces above the size gate mutate one standing
	// solver (rhs slides across Δ, row appends for cuts) instead of
	// rebuilding. Any trouble — numerical distress, row-cap overflow —
	// falls through to the rebuild loop below, which re-solves the piece
	// from the (deterministically grown) cut pool.
	if sw != nil && !opts.DisableWarmStart && !opts.DisableIncremental &&
		len(baseRows) >= incrMinRows {
		v, ok, err := lpValueIncr(ctx, sub, edges, c, baseRows, baseRHS, primalLB, opts, stats, sw, orig)
		if err != nil {
			return 0, err
		}
		if ok {
			return v, nil
		}
		stats.IncrementalFallbacks++
	}

	// Same injected arena-allocation failure as the parametric path: on
	// the calling goroutine, before any wave worker exists.
	if err := fault.Hit("maxflow.arena"); err != nil {
		return 0, err
	}
	sep := newSeparator(sub, edges, opts.Tol, resolveSepWorkers(opts), resolveSepWave(opts))
	sep.exhaustive = opts.SepExhaustive
	sep.noRevive = opts.DisableWarmStart
	cutRow := func(ct *cut) []float64 {
		row := make([]float64, m)
		for _, i := range ct.edgeIdx {
			row[i] = 1
		}
		return row
	}

	defer func() { stats.CutsRevived += sep.revived }()

	// Cross-Δ warm start: seed the parked pool with every cut known for
	// this piece's shard and, for a structurally matching piece, resume
	// from the previous grid point's active rows and simplex basis.
	var active []*cut
	var curBasis []int // basis aligned with the upcoming solve's row layout
	if sw != nil {
		var seeded int
		active, curBasis, seeded = sw.inject(sep, orig)
		stats.WarmCutsReused += seeded
	}

	baseRowCount := len(baseRows)
	prevValue := math.Inf(1)
	stall := 0
	warmFails := 0
	for round := 0; round < opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		rows := append([][]float64(nil), baseRows...)
		rhs := append([]float64(nil), baseRHS...)
		for _, ct := range active {
			rows = append(rows, cutRow(ct))
			rhs = append(rhs, float64(ct.size-1))
		}
		lpOpts := opts.LP
		if len(rows) >= warmBasisMinRows && warmFails < maxWarmFails {
			lpOpts.Basis = curBasis
		}
		sol, err := lp.MaximizeCtx(ctx, c, rows, rhs, lpOpts)
		stats.LPSolves++
		stats.SimplexPivots += sol.Pivots + sol.WarmPivots
		if err != nil {
			return 0, err
		}
		if sol.WarmStarted {
			stats.WarmBasisHits++
		} else if lpOpts.Basis != nil {
			// A rejected basis burned its restoration and repair pivots and
			// then solved cold anyway; on degenerate pieces that failure
			// mode repeats, so stop offering bases after a couple of
			// strikes.
			warmFails++
		}
		if sol.Status != lp.Optimal {
			return 0, fmt.Errorf("LP solve ended with status %v", sol.Status)
		}
		// Gap pinch: sol.Value bounds the optimum from above, primalLB from
		// below; when they meet within tolerance the piece is solved.
		if sol.Value <= primalLB+opts.Tol {
			if sw != nil {
				sw.store(orig, active, sol.Basis)
			}
			return primalLB, nil
		}
		var prevBasis []int
		var prevActive []*cut
		if !opts.DisableWarmStart {
			prevBasis = sol.Basis
			prevActive = append([]*cut(nil), active...)
		}

		cuts, flows := sep.findViolated(sol.X, opts.MaxCutsPerRound)
		stats.MaxFlowCalls += flows
		if opts.Trace != nil {
			opts.Trace(round, len(active), len(cuts), sol.Value)
		}
		if len(cuts) == 0 {
			if sw != nil {
				sw.store(orig, active, sol.Basis)
			}
			value := sol.Value
			if value < 0 {
				value = 0
			}
			return value, nil
		}

		// Stall detection: a frozen objective across many rounds while new
		// cuts keep appearing means Kelley is walking a degenerate optimal
		// face (e.g. hub graphs, whose optima are symmetric in which
		// spokes carry weight). With the parked pool enabled, "frozen"
		// uses a coarser threshold than the feasibility tolerance: cheap
		// revivals let degenerate instances creep by O(Tol·10³) per round
		// forever, which is the same pathology at a glacial pace. With
		// warm starts disabled the original engine's exact threshold is
		// kept, so the legacy baseline stalls (and converges) exactly as
		// before. Try to certify the frozen value with a primal
		// capped-forest bound; otherwise return the relaxation bound and
		// record the residual gap.
		stallTol := opts.Tol
		if !opts.DisableWarmStart {
			stallTol = 1000 * opts.Tol
		}
		if sol.Value >= prevValue-stallTol {
			stall++
		} else {
			stall = 0
		}
		if stall >= opts.StallRounds/2 && !sep.noRevive {
			sep.flushParked()
		}
		prevValue = sol.Value
		if stall >= opts.StallRounds {
			if sw != nil {
				sw.store(orig, active, sol.Basis)
			}
			lb := primalLB
			value := sol.Value
			if value < 0 {
				value = 0
			}
			if gap := value - lb; gap > opts.Tol {
				stats.StalledPieces++
				if gap > stats.StallGap {
					stats.StallGap = gap
				}
			}
			return value, nil
		}

		// Cut management: age out constraints that have been slack for
		// several consecutive rounds (parking them for free revival), then
		// admit the new violated cuts — pooling each for the neighboring
		// grid points, where they remain valid.
		kept := active[:0]
		for _, ct := range active {
			lhs := 0.0
			for _, i := range ct.edgeIdx {
				lhs += sol.X[i]
			}
			if lhs < float64(ct.size-1)-opts.Tol {
				ct.slackRounds++
			} else {
				ct.slackRounds = 0
			}
			if ct.slackRounds >= opts.DropSlackAfter && (ct.revivals < 2 || sep.noRevive) {
				ct.slackParked = true
				sep.park(ct)
				continue
			}
			kept = append(kept, ct)
		}
		if sw != nil {
			for _, ct := range cuts {
				sw.addCut(orig, ct.ids)
			}
		}
		active = append(kept, cuts...)
		stats.CutsAdded += len(cuts)
		// Resume the next round from this optimum: the surviving rows keep
		// their basic variables, the new cut rows start slack-basic
		// (primal-infeasible exactly there), and lp.Maximize repairs that
		// with a few dual pivots instead of a cold re-solve. Skip the
		// translation whenever the basis could never be offered: warm
		// starts off, next round's LP below the size gate, or this
		// piece's warm-fail strikes exhausted.
		if opts.DisableWarmStart || warmFails >= maxWarmFails ||
			baseRowCount+len(active) < warmBasisMinRows {
			curBasis = nil
		} else {
			curBasis = mapBasis(prevBasis, prevActive, active, m, baseRowCount)
		}
	}
	return 0, fmt.Errorf("cutting planes did not converge in %d rounds", opts.MaxRounds)
}

// mapBasis translates a basis across a cutting-plane row change: base rows
// keep their positions, surviving cuts map old row → new row, dropped rows
// vanish (their basic variable with them), and rows without a mapped basic
// variable — the newly admitted cuts — start with their own slack. Returns
// nil when the old basis is not translatable (a basic slack belonged to a
// dropped row); lp.Maximize additionally validates whatever this produces
// and falls back to a cold start on rejection, so the mapping may be
// lenient.
func mapBasis(prev []int, prevActive, active []*cut, cols, baseRows int) []int {
	if prev == nil {
		return nil
	}
	pos := make(map[*cut]int, len(active))
	for i, ct := range active {
		pos[ct] = i
	}
	oldToNew := make([]int, baseRows+len(prevActive))
	for i := 0; i < baseRows; i++ {
		oldToNew[i] = i
	}
	for i, ct := range prevActive {
		if j, ok := pos[ct]; ok {
			oldToNew[baseRows+i] = baseRows + j
		} else {
			oldToNew[baseRows+i] = -1
		}
	}
	out := make([]int, baseRows+len(active))
	for i := range out {
		out[i] = -1
	}
	for oldRow, v := range prev {
		newRow := oldToNew[oldRow]
		if newRow == -1 {
			continue // dropped row: its basic variable leaves the basis
		}
		if v >= cols {
			s := oldToNew[v-cols]
			if s == -1 {
				return nil // basic slack of a dropped row: untranslatable
			}
			v = cols + s
		}
		out[newRow] = v
	}
	for i := range out {
		if out[i] == -1 {
			out[i] = cols + i
		}
	}
	return out
}
