package forestlp

import (
	"math"

	"nodedp/internal/graph"
)

// peel performs the exact leaf-elimination preprocessing: in the LP of
// Definition 3.1 there is always an optimum in which a pendant edge
// e = (v,u) (v of degree 1) carries weight t = min(1, cap_v, cap_u).
//
// Exchange argument: raising x_e is blocked only by u's degree budget (the
// pair constraint caps x_e at 1, v's budget at cap_v, and every subtour set
// S ∋ u,v satisfies x(E[S]) = x(E[S∖v]) + x_e ≤ (|S|−2) + x_e, which is
// within |S|−1 whenever x_e ≤ 1); if u's budget binds, weight can be
// shifted from another u-edge onto e without changing the objective or
// violating any constraint. Fixing x_e = t is therefore lossless, and the
// residual problem is the same LP on G−v with u's budget reduced by t.
//
// Vertices whose budget reaches (numerically) zero force all their incident
// edges to zero, so those edges are deleted. Iterating to a fixed point
// strips the entire tree-like fringe, leaving the 2-core (or less) —
// typically a fraction of a sparse component — plus the exactly accounted
// weight `fixed`.
//
// peel does not modify sub; it returns the reduced clone, the per-vertex
// residual budgets, and the fixed weight.
func peel(sub *graph.Graph, delta float64) (reduced *graph.Graph, caps []float64, fixed float64) {
	const eps = 1e-12
	g := sub.Clone()
	n := g.N()
	caps = make([]float64, n)
	for i := range caps {
		caps[i] = delta
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if caps[v] <= eps && g.Degree(v) > 0 {
				for _, w := range g.Neighbors(v) {
					g.RemoveEdge(v, w)
				}
				changed = true
			}
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != 1 {
				continue
			}
			u := g.Neighbors(v)[0]
			t := math.Min(1, math.Min(caps[v], caps[u]))
			if t < 0 {
				t = 0
			}
			fixed += t
			caps[u] -= t
			g.RemoveEdge(v, u)
			changed = true
		}
	}
	return g, caps, fixed
}

// uniformCaps returns n copies of delta (the no-peel budget vector).
func uniformCaps(n int, delta float64) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = delta
	}
	return caps
}

// primalCappedForestBound greedily builds a forest respecting the integer
// parts of the budgets and returns its edge count — the value of a feasible
// 0/1 point of the LP, hence a lower bound on the piece's optimum. Used to
// certify stalled cutting-plane runs.
func primalCappedForestBound(sub *graph.Graph, caps []float64) int {
	n := sub.N()
	intCaps := make([]int, n)
	for v := range intCaps {
		c := int(math.Floor(caps[v] + 1e-9))
		if c < 0 {
			c = 0
		}
		intCaps[v] = c
	}
	deg := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	count := 0
	// Two passes: first edges whose endpoints have generous headroom, then
	// anything that still fits — a cheap approximation of the max-edge
	// capped forest.
	for pass := 0; pass < 2; pass++ {
		for _, e := range sub.Edges() {
			if deg[e.U] >= intCaps[e.U] || deg[e.V] >= intCaps[e.V] {
				continue
			}
			if pass == 0 && (intCaps[e.U]-deg[e.U] < 2 || intCaps[e.V]-deg[e.V] < 2) {
				continue
			}
			ru, rv := find(e.U), find(e.V)
			if ru == rv {
				continue
			}
			parent[ru] = rv
			deg[e.U]++
			deg[e.V]++
			count++
		}
	}
	return count
}
