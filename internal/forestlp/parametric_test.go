package forestlp

import (
	"context"
	"math"
	"math/big"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/lp"
)

// lowerIncrGate drops the parametric engine's size gate so the small
// conformance graphs actually exercise it, restoring the production value
// when the test ends. Package tests run sequentially, so the package-level
// variable swap is safe.
func lowerIncrGate(t *testing.T) {
	t.Helper()
	old := incrMinRows
	incrMinRows = 1
	t.Cleanup(func() { incrMinRows = old })
}

// TestParametricGridEquivalence is the exact-oracle certification test of
// the parametric engine: on small random graphs, every grid value produced
// by the basis-sliding sweep must match the exact big.Rat simplex on the
// fully enumerated LP, and the rebuild engine must agree bit for bit. The
// fast path and peeling are disabled so the standing solver, its Δ slides,
// and its row appends carry every piece.
func TestParametricGridEquivalence(t *testing.T) {
	lowerIncrGate(t)
	for seed := uint64(1); seed <= 5; seed++ {
		rng := generate.NewRand(seed * 977)
		n := 6 + int(seed)%3
		g := generate.ErdosRenyi(n, 0.45, rng)
		p := NewPlan(g)
		grid := warmTestGrid(t, g)
		opts := Options{Workers: 1, DisableFastPath: true, DisablePeel: true}

		incrVals, incrStats, err := p.GridValues(context.Background(), grid, opts)
		if err != nil {
			t.Fatalf("seed %d: parametric sweep: %v", seed, err)
		}
		if incrStats.ParametricSlides == 0 {
			t.Fatalf("seed %d: parametric engine never slid — the gate did not engage", seed)
		}
		rebuildOpts := opts
		rebuildOpts.DisableIncremental = true
		rebuildVals, _, err := p.GridValues(context.Background(), grid, rebuildOpts)
		if err != nil {
			t.Fatalf("seed %d: rebuild sweep: %v", seed, err)
		}
		for i, d := range grid {
			exact, err := ValueBruteForceRat(g, new(big.Rat).SetFloat64(d))
			if err != nil {
				t.Fatalf("seed %d delta %v: %v", seed, d, err)
			}
			want, _ := exact.Float64()
			if math.Abs(incrVals[i]-want) > tol {
				t.Errorf("seed %d delta %v: parametric %v != exact %v", seed, d, incrVals[i], want)
			}
			if math.Float64bits(incrVals[i]) != math.Float64bits(rebuildVals[i]) {
				t.Errorf("seed %d delta %v: parametric %v != rebuild %v (bit-identity)",
					seed, d, incrVals[i], rebuildVals[i])
			}
		}
	}
}

// TestParametricValueIdentity checks the release contract on LP-heavy
// converging families: incremental on/off and SepWorkers {1, 8} all
// produce bit-identical grid values — the parametric engine moves pivots,
// never answers.
func TestParametricValueIdentity(t *testing.T) {
	lowerIncrGate(t)
	rng := generate.NewRand(77)
	graphs := []*graph.Graph{
		generate.PlantedComponents([]int{60}, 4.5/60, rng),
		generate.PlantedComponents([]int{24, 30}, 0.22, rng),
		generate.WithHubs(generate.PlantedComponents([]int{30, 30}, 4.0/30, rng), 2, 0.3, rng),
	}
	for gi, g := range graphs {
		p := NewPlan(g)
		grid := warmTestGrid(t, g)
		base, baseStats, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if baseStats.StalledPieces > 0 {
			t.Fatalf("graph %d stalled; pick a converging instance for this test", gi)
		}
		variants := []Options{
			{Workers: 1, DisableIncremental: true},
			{Workers: 1, SepWorkers: 8},
			{Workers: 1, SepWorkers: 8, DisableIncremental: true},
		}
		for vi, vOpts := range variants {
			vals, _, err := p.GridValues(context.Background(), grid, vOpts)
			if err != nil {
				t.Fatalf("graph %d variant %d: %v", gi, vi, err)
			}
			for i := range grid {
				if math.Float64bits(vals[i]) != math.Float64bits(base[i]) {
					t.Errorf("graph %d variant %+v grid[%d]: %v != base %v",
						gi, vOpts, i, vals[i], base[i])
				}
			}
		}
	}
}

// TestParametricDistressFallback injects numerical distress (poisoning
// standing solvers through the test hook) and verifies the engine falls
// back to the rebuild path with bit-identical output — the acceptance
// criterion that speed never costs correctness.
func TestParametricDistressFallback(t *testing.T) {
	lowerIncrGate(t)
	rng := generate.NewRand(78)
	g := generate.PlantedComponents([]int{60}, 4.5/60, rng)
	p := NewPlan(g)
	grid := warmTestGrid(t, g)

	clean, cleanStats, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cleanStats.IncrementalFallbacks != 0 {
		t.Fatalf("clean run recorded %d fallbacks", cleanStats.IncrementalFallbacks)
	}

	// Poison every other standing solver a piece evaluation obtains. The
	// poisoned pieces must detect distress on their first Solve, abandon
	// the standing object, and re-solve via the rebuild path.
	calls := 0
	testHookPoisonIncr = func(pi *lp.Incremental) {
		calls++
		if calls%2 == 1 {
			pi.Poison()
		}
	}
	t.Cleanup(func() { testHookPoisonIncr = nil })

	poisoned, poisonedStats, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if poisonedStats.IncrementalFallbacks == 0 {
		t.Fatal("poisoning produced no fallbacks — the hook did not engage")
	}
	for i := range grid {
		if math.Float64bits(poisoned[i]) != math.Float64bits(clean[i]) {
			t.Errorf("grid[%d]: poisoned run %v != clean run %v (fallback must not change values)",
				i, poisoned[i], clean[i])
		}
	}
}

// TestParametricObservability pins the solver-depth counters: a sweep that
// engages the parametric engine reports slides, and an engaged sweep on a
// converging family records cheap solves (most grid points settle within
// a handful of pivots) without any fallback.
func TestParametricObservability(t *testing.T) {
	lowerIncrGate(t)
	rng := generate.NewRand(79)
	g := generate.PlantedComponents([]int{60}, 4.5/60, rng)
	p := NewPlan(g)
	grid := warmTestGrid(t, g)

	// Fast path and peel are disabled so the same piece recurs at every
	// grid point — the precondition for a slide (matching piece signature).
	opts := Options{Workers: 1, DisableFastPath: true, DisablePeel: true}
	var stats Stats
	warm := newGridWarm(p)
	for _, d := range grid {
		_, st, err := p.value(context.Background(), d, opts, warm)
		if err != nil {
			t.Fatal(err)
		}
		stats.MergeGridRound(st)
	}
	if stats.ParametricSlides == 0 {
		t.Fatal("no parametric slides recorded across a full grid sweep")
	}
	if stats.ParametricCheapSolves == 0 {
		t.Fatal("no cheap solves recorded — slides are not resuming near the optimum")
	}
	if stats.IncrementalFallbacks != 0 {
		t.Fatalf("unexpected fallbacks: %d", stats.IncrementalFallbacks)
	}
	if stats.ParametricCheapSolves > stats.ParametricSlides {
		t.Fatalf("cheap solves (%d) exceed slides (%d)", stats.ParametricCheapSolves, stats.ParametricSlides)
	}
}

// TestParametricSolverCap drives more simultaneous pieces than
// incrSolverCap through one shard's warm state and checks the retention
// bookkeeping stays consistent: at most incrSolverCap live solvers, every
// listed signature actually holding one.
func TestParametricSolverCap(t *testing.T) {
	lowerIncrGate(t)
	rng := generate.NewRand(80)
	// Hub-heavy single component: peel splits it into several pieces per
	// grid point, all sharing one shardWarm.
	g := generate.WithHubs(generate.PlantedComponents([]int{40}, 5.0/40, rng), 3, 0.3, rng)
	p := NewPlan(g)
	grid := warmTestGrid(t, g)
	warm := newGridWarm(p)
	for _, d := range grid {
		if _, _, err := p.value(context.Background(), d, Options{Workers: 1}, warm); err != nil {
			t.Fatal(err)
		}
		for _, sw := range warm.shards {
			if len(sw.incrSigs) > incrSolverCap {
				t.Fatalf("%d live solvers retained, cap %d", len(sw.incrSigs), incrSolverCap)
			}
			live := 0
			for _, m := range sw.memos {
				if m.incr != nil {
					live++
				}
			}
			if live != len(sw.incrSigs) {
				t.Fatalf("solver bookkeeping skewed: %d live solvers, %d listed signatures", live, len(sw.incrSigs))
			}
		}
	}
}
