package forestlp

// Conformance between the tracing attribution and the Stats the engine
// reports: the counters a sweep span exports must equal the Stats returned
// to the caller — same source of truth, two views — and instrumentation
// must not perturb the computed values.

import (
	"context"
	"math"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/obs"
)

func TestGridSpanCountersEqualStats(t *testing.T) {
	g := generate.PlantedComponents([]int{40, 25}, 4.0/40, generate.NewRand(11))
	p := NewPlan(g)
	grid := warmTestGrid(t, g)

	tr := obs.NewTrace("test", 1)
	ctx := obs.ContextWithTrace(context.Background(), tr)
	clean, _, err := p.GridValues(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	traced, st, err := NewPlan(g).GridValues(ctx, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()

	// Instrumentation must be invisible to the release path.
	for i := range grid {
		if math.Float64bits(traced[i]) != math.Float64bits(clean[i]) {
			t.Fatalf("grid[%d]: traced sweep %v != untraced %v", i, traced[i], clean[i])
		}
	}

	snap := tr.Snapshot()
	sweep, ok := snap.Find("forestlp.grid")
	if !ok {
		t.Fatalf("no forestlp.grid span in\n%s", snap.Tree())
	}
	want := map[string]int64{
		"grid_points":           int64(len(grid)),
		"components":            int64(st.Components),
		"fast_path_hits":        int64(st.FastPathHits),
		"lp_solves_total":       int64(st.LPSolves),
		"cuts_added":            int64(st.CutsAdded),
		"max_flow_calls":        int64(st.MaxFlowCalls),
		"simplex_pivots":        int64(st.SimplexPivots),
		"warm_cuts_reused":      int64(st.WarmCutsReused),
		"warm_basis_hits":       int64(st.WarmBasisHits),
		"parametric_slides":     int64(st.ParametricSlides),
		"incremental_fallbacks": int64(st.IncrementalFallbacks),
	}
	got := map[string]int64{}
	for _, a := range sweep.Counters {
		got[a.Key] = a.Value
	}
	for key, w := range want {
		if got[key] != w {
			t.Errorf("sweep counter %s = %d, Stats say %d", key, got[key], w)
		}
	}
	if st.LPSolves == 0 && st.FastPathHits == 0 {
		t.Fatal("workload did no attributable work — the comparison tested nothing")
	}

	// Per-point child spans: one per grid Δ, each labeled with its Δ.
	points := 0
	for _, sp := range snap.Spans {
		if sp.Name == "forestlp.point" {
			points++
		}
	}
	if points != len(grid) {
		t.Fatalf("%d forestlp.point spans for a %d-point grid", points, len(grid))
	}
}
