package forestlp

import (
	"math"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

// TestPeelPreservesValue is the load-bearing exactness property of the
// leaf-elimination preprocessing: on random small graphs, the full
// pipeline (which peels) must agree with the explicit brute-force LP
// (which does not).
func TestPeelPreservesValue(t *testing.T) {
	for seed := uint64(500); seed < 560; seed++ {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(10)
		// Bias toward tree-like graphs so peeling actually fires.
		g := generate.ErdosRenyi(n, 1.3/float64(n)+0.1*rng.Float64(), rng)
		for _, delta := range []float64{1, 1.5, 2, 3} {
			want, err := ValueBruteForce(g, delta)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := Value(g, delta, Options{DisableFastPath: true})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > tol {
				t.Fatalf("seed %d Δ=%v: peeled pipeline %v != brute force %v on %v edges %v",
					seed, delta, got, want, g, g.Edges())
			}
		}
	}
}

func TestPeelStar(t *testing.T) {
	// K_{1,5} at Δ=2: two leaf edges saturate the center; everything peels.
	g := generate.Star(5)
	reduced, caps, fixed := peel(g, 2)
	if reduced.M() != 0 {
		t.Fatalf("star should peel completely, %d edges left", reduced.M())
	}
	if fixed != 2 {
		t.Fatalf("fixed = %v, want 2", fixed)
	}
	if caps[0] > 1e-9 {
		t.Fatalf("center capacity %v, want 0", caps[0])
	}
}

func TestPeelPath(t *testing.T) {
	// A path peels completely from both ends at Δ=2.
	g := generate.Path(6)
	reduced, _, fixed := peel(g, 2)
	if reduced.M() != 0 || fixed != 5 {
		t.Fatalf("path: %d edges left, fixed=%v; want 0, 5", reduced.M(), fixed)
	}
}

func TestPeelCycleUntouched(t *testing.T) {
	// Cycles have no leaves: peel is the identity.
	g := generate.Cycle(5)
	reduced, caps, fixed := peel(g, 2)
	if reduced.M() != 5 || fixed != 0 {
		t.Fatalf("cycle: %d edges, fixed=%v; want 5, 0", reduced.M(), fixed)
	}
	for v, c := range caps {
		if c != 2 {
			t.Fatalf("cap[%d] = %v, want 2", v, c)
		}
	}
}

func TestPeelLollipop(t *testing.T) {
	// Triangle with a pendant path: the path peels, the triangle stays,
	// and the attachment vertex loses one unit of budget.
	g := graph.MustFromEdges(5, []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(1, 2), graph.NewEdge(2, 0), // triangle
		graph.NewEdge(2, 3), graph.NewEdge(3, 4), // tail
	})
	reduced, caps, fixed := peel(g, 3)
	if reduced.M() != 3 {
		t.Fatalf("triangle should survive, %d edges left", reduced.M())
	}
	if fixed != 2 {
		t.Fatalf("fixed = %v, want 2 (two tail edges)", fixed)
	}
	if caps[2] != 2 {
		t.Fatalf("attachment budget %v, want 2", caps[2])
	}
	// End-to-end: f_3 = f_sf = 4 (the graph has a spanning 3-forest).
	v, _, err := Value(g, 3, Options{DisableFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4) > tol {
		t.Fatalf("f_3 = %v, want 4", v)
	}
}

func TestPeelFractionalBudget(t *testing.T) {
	// Δ = 0.5 on a single edge: the leaf rule fixes t = min(1, 0.5, 0.5).
	g := generate.Path(2)
	reduced, _, fixed := peel(g, 0.5)
	if reduced.M() != 0 || math.Abs(fixed-0.5) > 1e-12 {
		t.Fatalf("edge at Δ=0.5: fixed=%v, want 0.5", fixed)
	}
}

// TestStallGracefulDegradation exercises the stall path: with the primal
// certificate disabled, the seed-160 giant component freezes on a
// degenerate optimal face; the evaluator must return the relaxation bound
// (not an error, and never above f_sf) and account for the event in Stats.
// (Skipped in -short mode: it needs a few hundred LP solves.)
func TestStallGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("stall reproduction is slow")
	}
	g := generate.ErdosRenyi(200, 2.0/200, generate.NewRand(160))
	v, stats, err := Value(g, 4, Options{DisableFastPath: true, MaxRounds: 400, StallRounds: 40})
	if err != nil {
		t.Fatalf("stall must degrade gracefully, got %v", err)
	}
	if v > float64(g.SpanningForestSize())+tol {
		t.Fatalf("stalled value %v exceeds f_sf", v)
	}
	// Either the primal bound certified the value (no stall recorded) or
	// the gap was recorded; both are acceptable, a panic/error is not.
	if stats.StalledPieces > 0 && stats.StallGap <= 0 {
		t.Fatalf("stall recorded without a gap: %+v", stats)
	}
}
