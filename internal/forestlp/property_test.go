package forestlp

import (
	"math"
	"testing"
	"testing/quick"

	"nodedp/internal/generate"
	"nodedp/internal/lp"
)

// Property-based tests (testing/quick) over the core invariants of the
// extension evaluator. Each property draws a random small graph from a
// seed, so quick's generation stays cheap while the checked structure is
// nontrivial.

// TestQuickLipschitzProperty: for random (G, Δ, v),
// f_Δ(G−v) ≤ f_Δ(G) ≤ f_Δ(G−v) + Δ (Lemma 3.3 Lipschitzness plus
// monotonicity under node removal).
func TestQuickLipschitzProperty(t *testing.T) {
	f := func(seed uint64, deltaPick uint8, vPick uint8) bool {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(9)
		g := generate.ErdosRenyi(n, 0.15+0.5*rng.Float64(), rng)
		delta := float64(1 + deltaPick%4)
		v := int(vPick) % n
		fg, _, err := Value(g, delta, Options{})
		if err != nil {
			return false
		}
		fh, _, err := Value(g.RemoveVertex(v), delta, Options{})
		if err != nil {
			return false
		}
		return fh <= fg+tol && fg <= fh+delta+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDisjointAdditivity: f_Δ of a disjoint union is the sum of the
// parts, for random parts and Δ.
func TestQuickDisjointAdditivity(t *testing.T) {
	f := func(seedA, seedB uint64, deltaPick uint8) bool {
		rngA, rngB := generate.NewRand(seedA), generate.NewRand(seedB)
		a := generate.ErdosRenyi(2+rngA.IntN(7), 0.4, rngA)
		b := generate.ErdosRenyi(2+rngB.IntN(7), 0.4, rngB)
		delta := float64(1 + deltaPick%3)
		va, _, err := Value(a, delta, Options{})
		if err != nil {
			return false
		}
		vb, _, err := Value(b, delta, Options{})
		if err != nil {
			return false
		}
		vu, _, err := Value(generate.DisjointUnion(a, b), delta, Options{})
		if err != nil {
			return false
		}
		return math.Abs(vu-(va+vb)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPeelInvariance: peeling on/off gives identical values.
func TestQuickPeelInvariance(t *testing.T) {
	f := func(seed uint64, deltaPick uint8) bool {
		rng := generate.NewRand(seed)
		n := 2 + rng.IntN(10)
		g := generate.ErdosRenyi(n, 1.5/float64(n)+0.2*rng.Float64(), rng)
		delta := float64(1 + deltaPick%4)
		withPeel, _, err := Value(g, delta, Options{DisableFastPath: true})
		if err != nil {
			return false
		}
		withoutPeel, _, err := Value(g, delta, Options{DisableFastPath: true, DisablePeel: true})
		if err != nil {
			return false
		}
		return math.Abs(withPeel-withoutPeel) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEdgeMonotonicity: adding an edge never decreases f_Δ (the
// polytope only grows: every feasible x extends with weight 0).
func TestQuickEdgeMonotonicity(t *testing.T) {
	f := func(seed uint64, deltaPick uint8) bool {
		rng := generate.NewRand(seed)
		n := 3 + rng.IntN(8)
		g := generate.ErdosRenyi(n, 0.3, rng)
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			return true // nothing to add; vacuous
		}
		delta := float64(1 + deltaPick%3)
		before, _, err := Value(g, delta, Options{})
		if err != nil {
			return false
		}
		g2 := g.Clone()
		if err := g2.AddEdge(u, v); err != nil {
			return false
		}
		after, _, err := Value(g2, delta, Options{})
		if err != nil {
			return false
		}
		return after >= before-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLPFailureInjection: a crippled simplex pivot budget must surface as
// an error from Value (never a silently wrong value).
func TestLPFailureInjection(t *testing.T) {
	g := generate.Cycle(6) // no leaves, no degree-1 spanning forest: LP must run
	_, _, err := Value(g, 1, Options{
		DisableFastPath: true,
		LP:              lp.Options{MaxPivots: 1},
	})
	if err == nil {
		t.Fatal("starved simplex should propagate an error")
	}
}
