package privacy

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestSequentialReserveRefund(t *testing.T) {
	a, err := NewSequential(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.Reserve(0.25); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if err := a.Reserve(0.01); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget reserve: err = %v, want ErrBudgetExhausted", err)
	}
	spent, remaining := a.Snapshot()
	if spent != 1 || remaining != 0 {
		t.Fatalf("snapshot = (%v, %v), want (1, 0)", spent, remaining)
	}
	a.Refund(0.25)
	if a.Spent() != 0.75 {
		t.Fatalf("spent after refund = %v, want 0.75", a.Spent())
	}
	if err := a.Reserve(0.25); err != nil {
		t.Fatalf("reserve after refund: %v", err)
	}
	if a.Name() != "sequential" || a.Delta() != 0 || a.EpsilonBudget() != 1 {
		t.Fatalf("identity = (%s, %v, %v)", a.Name(), a.Delta(), a.EpsilonBudget())
	}
}

func TestSequentialRefundClampsAtZero(t *testing.T) {
	a, _ := NewSequential(1)
	a.Refund(5)
	if a.Spent() != 0 {
		t.Fatalf("spent = %v, want 0", a.Spent())
	}
}

// TestAdvancedAdmitsMoreQueries is the point of the accountant: at equal
// ε_total, advanced composition admits strictly more fixed-ε queries than
// sequential composition once the query ε is small.
func TestAdvancedAdmitsMoreQueries(t *testing.T) {
	const total, eps, delta = 2.0, 0.01, 1e-9
	count := func(a Accountant) int {
		n := 0
		for a.Reserve(eps) == nil {
			n++
			if n > 100000 {
				t.Fatal("accountant admitted unboundedly many queries")
			}
		}
		return n
	}
	seq, err := NewSequential(total)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdvanced(total, delta)
	if err != nil {
		t.Fatal(err)
	}
	nSeq, nAdv := count(seq), count(adv)
	// Rounding may reject the marginal last query (never admit an extra).
	if want := int(total / eps); nSeq < want-1 || nSeq > want {
		t.Fatalf("sequential admitted %d, want %d or %d", nSeq, want-1, want)
	}
	if nAdv <= nSeq {
		t.Fatalf("advanced admitted %d, want > sequential's %d", nAdv, nSeq)
	}
}

// TestAdvancedNeverWorseThanSequential: the accountant charges
// min(sequential, advanced), so a single large query that fits ε_total is
// always admitted, exactly as under sequential composition.
func TestAdvancedNeverWorseThanSequential(t *testing.T) {
	a, err := NewAdvanced(1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(1); err != nil {
		t.Fatalf("reserve ε=ε_total: %v", err)
	}
	if err := a.Reserve(1e-6); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-exhaustion reserve: err = %v, want ErrBudgetExhausted", err)
	}
}

// TestAdvancedRefundRestoresLedger: refund after reserve leaves the exact
// ledger the query never touched, so the admission sequence that follows is
// identical.
func TestAdvancedRefundRestoresLedger(t *testing.T) {
	a, err := NewAdvanced(1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(0.3); err != nil {
		t.Fatal(err)
	}
	before := a.Spent()
	if err := a.Reserve(0.2); err != nil {
		t.Fatal(err)
	}
	a.Refund(0.2)
	if got := a.Spent(); got != before {
		t.Fatalf("spent after reserve+refund = %v, want %v", got, before)
	}
}

func TestAdvancedSnapshotConsistent(t *testing.T) {
	a, err := NewAdvanced(3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Reserve(0.1); err != nil {
			t.Fatal(err)
		}
	}
	spent, remaining := a.Snapshot()
	if math.Abs(spent+remaining-3) > 1e-12 {
		t.Fatalf("spent %v + remaining %v != total 3", spent, remaining)
	}
	if spent <= 0 || spent > 1+1e-12 {
		t.Fatalf("advanced spent = %v, want in (0, Σε]=(0,1]", spent)
	}
}

// TestAccountantConcurrentNoOverspend hammers both accountants from many
// goroutines and asserts the invariant the serving layer depends on: the
// global privacy loss never exceeds ε_total, and the number of admissions
// matches what the final ledger accounts for.
func TestAccountantConcurrentNoOverspend(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Accountant
	}{
		{"sequential", func() Accountant { a, _ := NewSequential(1); return a }},
		{"advanced", func() Accountant { a, _ := NewAdvanced(1, 1e-9); return a }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk()
			const workers, perWorker, eps = 8, 50, 0.01
			var wg sync.WaitGroup
			var mu sync.Mutex
			admitted := 0
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						if a.Reserve(eps) == nil {
							mu.Lock()
							admitted++
							mu.Unlock()
						}
					}
				}()
			}
			wg.Wait()
			if spent := a.Spent(); spent > a.EpsilonBudget()+1e-12 {
				t.Fatalf("overspent: %v > %v", spent, a.EpsilonBudget())
			}
			if admitted == 0 {
				t.Fatal("no queries admitted")
			}
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, total := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewSequential(total); err == nil {
			t.Errorf("NewSequential(%v) should fail", total)
		}
		if _, err := NewAdvanced(total, 1e-9); err == nil {
			t.Errorf("NewAdvanced(%v, δ) should fail", total)
		}
	}
	for _, delta := range []float64{0, -1, 1, 2, math.NaN()} {
		if _, err := NewAdvanced(1, delta); err == nil {
			t.Errorf("NewAdvanced(1, %v) should fail", delta)
		}
	}
}

func TestCompositionSelector(t *testing.T) {
	if c, err := ParseComposition(""); err != nil || c != Sequential {
		t.Fatalf("ParseComposition(\"\") = %v, %v", c, err)
	}
	if c, err := ParseComposition("advanced"); err != nil || c != Advanced {
		t.Fatalf("ParseComposition(advanced) = %v, %v", c, err)
	}
	if _, err := ParseComposition("renyi"); err == nil {
		t.Fatal("unknown composition name should fail")
	}
	if _, err := New(Sequential, 1, 0.5); err == nil {
		t.Fatal("sequential with nonzero delta should fail")
	}
	if a, err := New(Advanced, 1, 1e-9); err != nil || a.Name() != "advanced" {
		t.Fatalf("New(Advanced) = %v, %v", a, err)
	}
	if a, err := New(Sequential, 1, 0); err != nil || a.Name() != "sequential" {
		t.Fatalf("New(Sequential) = %v, %v", a, err)
	}
	if Sequential.String() != "sequential" || Advanced.String() != "advanced" {
		t.Fatal("Composition.String mismatch")
	}
}
