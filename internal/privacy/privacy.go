// Package privacy implements pluggable composition accountants for the
// serving layer: thread-safe ledgers that decide whether one more query, at
// its requested per-query ε, still fits a session's global privacy
// guarantee.
//
// Two accountants are provided:
//
//   - Sequential composition (Lemma 2.4 of the paper): k queries of budgets
//     ε_1…ε_k compose to Σε_i, and a query is admitted while
//     Σε_i ≤ ε_total. Pure ε-DP, no δ. This is the accountant the session
//     layer has always used.
//
//   - Advanced composition (Dwork–Rothblum–Vadhan, in the heterogeneous
//     form): for any δ' > 0, queries of budgets ε_1…ε_k compose to
//
//     ε_global = √(2 ln(1/δ') · Σε_i²) + Σ ε_i·(e^{ε_i} − 1)
//
//     with failure probability δ'. A query is admitted while
//     min(Σε_i, ε_global) ≤ ε_total — sequential composition remains valid
//     simultaneously, so the accountant charges whichever bound is tighter
//     and the guarantee is (ε_total, δ')-DP. For many small queries the
//     quadratic term dominates and the admitted count grows roughly like
//     (ε_total/ε_0)² instead of ε_total/ε_0, the reason a long-lived
//     endpoint wants this accountant (cf. the repeated-release accounting
//     in Sealfon–Ullman's node-private Erdős–Rényi estimation).
//
// Both accountants support Refund, used by the serving layer to return a
// reservation whose query provably drew no noise (context cancelation
// before any release). Comparisons are exact float64 arithmetic on
// monotonically maintained sums: rounding error can only reject a marginal
// query, never admit an over-budget one.
package privacy

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"nodedp/internal/fault"
)

// ErrBudgetExhausted is returned (wrapped, with the requested and remaining
// budgets) by Reserve calls that would overdraw the global guarantee. The
// failing reservation spends nothing; test with errors.Is.
var ErrBudgetExhausted = errors.New("privacy budget exhausted")

// Accountant is a thread-safe composition ledger. Reserve admits a query's
// ε or rejects it with ErrBudgetExhausted, atomically; Refund returns a
// reservation whose query released nothing. Spent/Remaining are reported in
// global-ε terms: Spent is the privacy loss already guaranteed-against,
// Remaining is EpsilonBudget() − Spent, and Snapshot reads both under one
// lock so the pair is consistent.
type Accountant interface {
	Reserve(eps float64) error
	Refund(eps float64)
	Spent() float64
	Remaining() float64
	Snapshot() (spent, remaining float64)
	// EpsilonBudget returns ε_total, the global cap Reserve enforces.
	EpsilonBudget() float64
	// Delta returns the accountant's failure probability δ (0 for pure ε
	// accountants).
	Delta() float64
	// Name identifies the composition rule ("sequential" or "advanced");
	// the HTTP API and CLI use it as the accountant selector.
	Name() string
}

// CheckBudget validates an ε_total; both constructors and the serving layer
// share it so error text stays consistent.
func CheckBudget(total float64) error {
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return fmt.Errorf("privacy: total budget %v must be positive and finite", total)
	}
	return nil
}

// NewSequential returns the pure-ε sequential-composition accountant:
// queries are admitted while Σε_i ≤ total.
func NewSequential(total float64) (Accountant, error) {
	if err := CheckBudget(total); err != nil {
		return nil, err
	}
	return &sequential{total: total}, nil
}

// sequential is the Lemma 2.4 ledger.
type sequential struct {
	mu    sync.Mutex
	total float64
	spent float64
}

func (a *sequential) Reserve(eps float64) error {
	// The failpoint sits before the ledger mutation: an injected reserve
	// failure (or panic) charges nothing, mirroring every real admission
	// failure.
	if err := fault.Hit("privacy.reserve"); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent+eps > a.total {
		return fmt.Errorf("privacy: %w: requested ε=%g with %g of %g remaining (sequential composition)",
			ErrBudgetExhausted, eps, a.total-a.spent, a.total)
	}
	a.spent += eps
	return nil
}

func (a *sequential) Refund(eps float64) {
	// A firing refund failpoint deliberately drops the refund — the one
	// injected fault that violates the accounting invariant on purpose, so
	// tests can prove the chaos suite's balance check would catch a real
	// refund bug. Never armed in the conformance schedules.
	if fault.Hit("privacy.refund") != nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent -= eps
	if a.spent < 0 {
		a.spent = 0
	}
}

func (a *sequential) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

func (a *sequential) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.spent
}

func (a *sequential) Snapshot() (spent, remaining float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent, a.total - a.spent
}

func (a *sequential) EpsilonBudget() float64 { return a.total }
func (a *sequential) Delta() float64         { return 0 }
func (a *sequential) Name() string           { return "sequential" }

// NewAdvanced returns the (ε_total, δ) advanced-composition accountant:
// queries are admitted while the heterogeneous advanced-composition bound
// (or the sequential sum, whichever is smaller) stays within total. delta
// must lie in (0, 1); cryptographically small values (1e-9 and below) are
// the intended range.
func NewAdvanced(total, delta float64) (Accountant, error) {
	if err := CheckBudget(total); err != nil {
		return nil, err
	}
	if delta <= 0 || delta >= 1 || math.IsNaN(delta) {
		return nil, fmt.Errorf("privacy: advanced composition delta %v must be in (0, 1)", delta)
	}
	return &advanced{total: total, delta: delta, ln1d: math.Log(1 / delta)}, nil
}

// advanced maintains the two sums the heterogeneous bound needs: Σε_i and
// Σε_i², plus Σε_i(e^{ε_i}−1). Refund subtracts the same three terms, so
// the ledger after a refund equals the ledger that never saw the query.
type advanced struct {
	mu    sync.Mutex
	total float64
	delta float64
	ln1d  float64
	sum   float64 // Σ ε_i
	sumSq float64 // Σ ε_i²
	sumEx float64 // Σ ε_i·(e^{ε_i} − 1)
}

// globalEps is the privacy loss guaranteed for the given sums: the tighter
// of sequential and heterogeneous advanced composition (both are
// simultaneously valid bounds on the same ledger).
func (a *advanced) globalEps(sum, sumSq, sumEx float64) float64 {
	adv := math.Sqrt(2*a.ln1d*sumSq) + sumEx
	return math.Min(sum, adv)
}

func (a *advanced) Reserve(eps float64) error {
	if err := fault.Hit("privacy.reserve"); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	next := a.globalEps(a.sum+eps, a.sumSq+eps*eps, a.sumEx+eps*(math.Expm1(eps)))
	if next > a.total {
		cur := a.globalEps(a.sum, a.sumSq, a.sumEx)
		return fmt.Errorf("privacy: %w: requested ε=%g would raise the advanced-composition loss to %g > ε_total=%g (currently %g, δ=%g)",
			ErrBudgetExhausted, eps, next, a.total, cur, a.delta)
	}
	a.sum += eps
	a.sumSq += eps * eps
	a.sumEx += eps * math.Expm1(eps)
	return nil
}

func (a *advanced) Refund(eps float64) {
	if fault.Hit("privacy.refund") != nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum -= eps
	a.sumSq -= eps * eps
	a.sumEx -= eps * math.Expm1(eps)
	if a.sum < 0 {
		a.sum = 0
	}
	if a.sumSq < 0 {
		a.sumSq = 0
	}
	if a.sumEx < 0 {
		a.sumEx = 0
	}
}

func (a *advanced) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.globalEps(a.sum, a.sumSq, a.sumEx)
}

func (a *advanced) Remaining() float64 {
	_, remaining := a.Snapshot()
	return remaining
}

func (a *advanced) Snapshot() (spent, remaining float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	spent = a.globalEps(a.sum, a.sumSq, a.sumEx)
	return spent, a.total - spent
}

func (a *advanced) EpsilonBudget() float64 { return a.total }
func (a *advanced) Delta() float64         { return a.delta }
func (a *advanced) Name() string           { return "advanced" }

// Composition selects an accountant implementation by name; the zero value
// is sequential composition, so existing SessionOptions keep their meaning.
type Composition int

const (
	// Sequential is pure-ε sequential composition (Lemma 2.4).
	Sequential Composition = iota
	// Advanced is (ε, δ) heterogeneous advanced composition.
	Advanced
)

func (c Composition) String() string {
	switch c {
	case Sequential:
		return "sequential"
	case Advanced:
		return "advanced"
	default:
		return fmt.Sprintf("Composition(%d)", int(c))
	}
}

// ParseComposition maps an accountant name (as carried by the HTTP API and
// CLI) to its Composition; the empty string selects Sequential.
func ParseComposition(name string) (Composition, error) {
	switch name {
	case "", "sequential":
		return Sequential, nil
	case "advanced":
		return Advanced, nil
	default:
		return Sequential, fmt.Errorf("privacy: unknown accountant %q (want sequential or advanced)", name)
	}
}

// New builds the accountant for a Composition. delta is required (in (0,1))
// for Advanced and must be zero for Sequential.
func New(c Composition, total, delta float64) (Accountant, error) {
	switch c {
	case Sequential:
		if delta != 0 {
			return nil, fmt.Errorf("privacy: sequential composition takes no delta (got %v); use the advanced accountant", delta)
		}
		return NewSequential(total)
	case Advanced:
		return NewAdvanced(total, delta)
	default:
		return nil, fmt.Errorf("privacy: unknown composition %v", c)
	}
}
