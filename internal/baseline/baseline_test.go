package baseline

import (
	"math"
	"testing"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
)

func TestEdgeDPUnbiased(t *testing.T) {
	g := generate.Matching(25) // f_cc = 25
	rng := generate.NewRand(1)
	const n = 4000
	sum := 0.0
	for i := 0; i < n; i++ {
		v, err := EdgeDPComponentCount(rng, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if math.Abs(sum/n-25) > 0.5 {
		t.Fatalf("edge-DP mean %v, want ≈25", sum/n)
	}
}

func TestNaiveNodeDPScale(t *testing.T) {
	// The naive baseline's noise has scale n/ε: on a 100-vertex graph at
	// ε=1, E|noise| = 100, so average absolute error must be large.
	g := generate.Matching(50)
	rng := generate.NewRand(2)
	const n = 2000
	sumAbs := 0.0
	for i := 0; i < n; i++ {
		v, err := NaiveNodeDPComponentCount(rng, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(v - 50)
	}
	if sumAbs/n < 50 {
		t.Fatalf("naive node-DP mean error %v suspiciously small", sumAbs/n)
	}
	// Empty graph must not panic (n=0 clamps to 1).
	if _, err := NaiveNodeDPComponentCount(rng, generate.Path(0), 1); err != nil {
		t.Fatal(err)
	}
}

func TestFixedDeltaSF(t *testing.T) {
	g := generate.Matching(40) // f_1 = f_sf = 40
	rng := generate.NewRand(3)
	const n = 2000
	sum := 0.0
	for i := 0; i < n; i++ {
		v, err := FixedDeltaSF(rng, g, 1, 1, forestlp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if math.Abs(sum/n-40) > 0.5 {
		t.Fatalf("fixed-Δ mean %v, want ≈40", sum/n)
	}
	if _, err := FixedDeltaSF(rng, g, -1, 1, forestlp.Options{}); err == nil {
		t.Fatal("negative delta should fail")
	}
}

func TestFixedDeltaComponentCountKnownN(t *testing.T) {
	g := generate.Matching(40)
	rng := generate.NewRand(4)
	v, err := FixedDeltaComponentCountKnownN(rng, g, 1, 5, forestlp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-40) > 20 {
		t.Fatalf("estimate %v too far from 40", v)
	}
}

func TestTruncate(t *testing.T) {
	// Matching plus one hub adjacent to everything: truncation at D=2
	// removes exactly the hub.
	base := generate.Matching(10)
	g := generate.WithHubs(base, 1, 1.0, generate.NewRand(5))
	tr := Truncate(g, 2)
	if tr.N() != 20 {
		t.Fatalf("truncated n=%d, want 20", tr.N())
	}
	if tr.CountComponents() != 10 {
		t.Fatalf("truncated f_cc=%d, want 10", tr.CountComponents())
	}
	// Truncating below every degree empties the graph.
	if Truncate(g, -1).N() != 0 {
		t.Fatal("truncate at -1 should remove everything")
	}
}

func TestTruncationComponentCount(t *testing.T) {
	g := generate.Matching(30)
	rng := generate.NewRand(6)
	v, err := TruncationComponentCount(rng, g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-30) > 30 {
		t.Fatalf("truncation estimate %v too far", v)
	}
	if _, err := TruncationComponentCount(rng, g, -1, 1); err == nil {
		t.Fatal("negative maxDeg should fail")
	}
}

func TestNonPrivate(t *testing.T) {
	if NonPrivateComponentCount(generate.Matching(7)) != 7 {
		t.Fatal("non-private reference is wrong")
	}
}
