// Package baseline implements the comparison estimators for the experiment
// suite (E10): what one would use for the number of connected components
// without the paper's machinery.
//
//   - EdgeDP: the trivial edge-private estimator (sensitivity 1 under edge
//     changes — Section 1.2 notes f_cc "is easy to release with additive
//     error Θ(1/ε)" under edge-privacy). It satisfies only edge-DP, a much
//     weaker guarantee than node-DP.
//   - NaiveNodeDP: the Laplace mechanism with the worst-case node
//     sensitivity of f_cc on n-vertex graphs, which is Θ(n) (one inserted
//     hub can connect everything). Node-private but useless — exactly the
//     obstacle described in the paper's introduction.
//   - FixedDeltaSF: the paper's extension with a FIXED Δ (no GEM): an
//     ablation showing what adaptive selection buys.
//   - Truncation: delete all vertices of degree > D, count components,
//     add Lap((D+1)/ε). This mirrors the max-degree-based approaches of
//     prior work, but the deterministic projection is NOT worst-case
//     node-private (one node can push many others across the threshold);
//     it is included as an accuracy yardstick only and is labeled
//     heuristic in every table.
//   - NonPrivate: the exact count, the reference for all error columns.
package baseline

import (
	"fmt"
	"math/rand/v2"

	"nodedp/internal/forestlp"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// EdgeDPComponentCount releases f_cc + Lap(1/ε): ε-edge-private (NOT
// node-private).
func EdgeDPComponentCount(rng *rand.Rand, g *graph.Graph, eps float64) (float64, error) {
	return mechanism.LaplaceRelease(rng, float64(g.CountComponents()), 1, eps)
}

// NaiveNodeDPComponentCount releases f_cc + Lap(n/ε), the Laplace mechanism
// with the worst-case node sensitivity bound GS = n (inserting one vertex
// adjacent to everything collapses all components into one).
func NaiveNodeDPComponentCount(rng *rand.Rand, g *graph.Graph, eps float64) (float64, error) {
	n := g.N()
	if n == 0 {
		n = 1
	}
	return mechanism.LaplaceRelease(rng, float64(g.CountComponents()), float64(n), eps)
}

// FixedDeltaSF releases f_Δ(G) + Lap(Δ/ε) for a caller-chosen Δ: the
// paper's mechanism without the GEM selection step (the whole ε goes to the
// release). ε-node-private since f_Δ is Δ-Lipschitz (Lemma 3.3).
func FixedDeltaSF(rng *rand.Rand, g *graph.Graph, delta, eps float64, opts forestlp.Options) (float64, error) {
	v, _, err := forestlp.Value(g, delta, opts)
	if err != nil {
		return 0, err
	}
	return mechanism.LaplaceRelease(rng, v, delta, eps)
}

// FixedDeltaComponentCountKnownN is FixedDeltaSF transported to f_cc via
// Equation (1) with a public vertex count.
func FixedDeltaComponentCountKnownN(rng *rand.Rand, g *graph.Graph, delta, eps float64, opts forestlp.Options) (float64, error) {
	v, err := FixedDeltaSF(rng, g, delta, eps, opts)
	if err != nil {
		return 0, err
	}
	return float64(g.N()) - v, nil
}

// Truncate returns the subgraph of g induced by the vertices of degree at
// most maxDeg (the deterministic degree projection used by the truncation
// baseline).
func Truncate(g *graph.Graph, maxDeg int) *graph.Graph {
	keep := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		keep[v] = g.Degree(v) <= maxDeg
	}
	sub, _, err := g.InducedSubgraphByMask(keep)
	if err != nil {
		panic(err) // mask length always matches
	}
	return sub
}

// TruncationComponentCount counts the components of the degree-≤D
// projection and adds Lap((D+1)/ε). HEURISTIC: the deterministic
// projection's node sensitivity is not bounded by D+1 in the worst case
// (removing one vertex can move many neighbors across the degree
// threshold), so this baseline does NOT carry a rigorous node-DP
// guarantee. It stands in for the max-degree-based approaches the paper
// compares against analytically (Section 1.2).
func TruncationComponentCount(rng *rand.Rand, g *graph.Graph, maxDeg int, eps float64) (float64, error) {
	if maxDeg < 0 {
		return 0, fmt.Errorf("baseline: maxDeg %d must be nonnegative", maxDeg)
	}
	t := Truncate(g, maxDeg)
	return mechanism.LaplaceRelease(rng, float64(t.CountComponents()), float64(maxDeg)+1, eps)
}

// NonPrivateComponentCount returns the exact f_cc, the reference value in
// every experiment table.
func NonPrivateComponentCount(g *graph.Graph) float64 {
	return float64(g.CountComponents())
}
