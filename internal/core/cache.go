package core

// This file implements PlanCache, a bounded LRU cache of grid evaluations
// keyed by canonical graph fingerprint plus a digest of the plan-relevant
// options. The Δ-grid of Lipschitz-extension LPs is the expensive half of
// Algorithm 1 and is fully deterministic per (graph, grid, LP options), so
// a serving deployment pays it once per distinct graph: opening a session
// on an identical graph — same *Graph, a re-read copy, or one built in a
// different edge order — reuses the cached evaluation and goes straight to
// the cheap per-query noise. Any one-edge difference changes the
// fingerprint and misses.
//
// Cached GridEvals are immutable and shared by reference; the cache only
// bounds how many distinct (graph, options) evaluations it retains, not
// their lifetime in sessions that already hold one.

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"nodedp/internal/fault"
	"nodedp/internal/graph"
	"nodedp/internal/obs"
)

// DefaultPlanCacheCapacity is the entry bound used when NewPlanCache is
// given a non-positive capacity.
const DefaultPlanCacheCapacity = 16

// CacheStats reports a PlanCache's counters. Hits and Misses count GridEval
// lookups; Evictions counts entries dropped by the LRU bounds (entry count
// or weight); Invalidations counts entries removed by Invalidate; Coalesced
// counts lookups that joined another caller's in-flight evaluation of the
// same key instead of duplicating it (single-flight).
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations, Coalesced int64
	// SnapshotSaves and SnapshotLoads count Save/Load passes;
	// SnapshotEntriesSaved, SnapshotEntriesLoaded, and
	// SnapshotEntriesSkipped count the entries they wrote, merged in, and
	// had to drop (corrupt, unknown version, or invariant-violating — see
	// LoadReport). Together they make warm-restart behavior observable in
	// /metrics without reading daemon logs.
	SnapshotSaves, SnapshotLoads                                        int64
	SnapshotEntriesSaved, SnapshotEntriesLoaded, SnapshotEntriesSkipped int64
	// SnapshotSavesSkipped counts periodic saves elided by the dirty-bit
	// check (SaveFileIfChanged): nothing touched the cache since the last
	// successful save, so rewriting identical bytes — and the atomic
	// rename — was skipped.
	SnapshotSavesSkipped int64
	// SubPlanHits and SubPlanMisses count per-component lookups in the
	// sub-plan layer (see subplan.go): every whole-graph miss resolves each
	// non-trivial component against it, so after a graph mutation the hit
	// count shows exactly how much planning the delta reused.
	// SubPlanEvictions counts sub-plans dropped by the sub-plan LRU bound.
	SubPlanHits, SubPlanMisses, SubPlanEvictions int64
	// SubPlanEntries is the current number of cached component sub-plans.
	SubPlanEntries int
	// EngineRefactorizations, EngineParametricSlides,
	// EngineParametricCheapSolves, and EngineIncrementalFallbacks sum the
	// parametric LP engine's solver-depth counters (see forestlp.Stats)
	// over the currently cached grid evaluations, making the new engine's
	// behavior visible in /metrics without reading per-plan stats.
	EngineRefactorizations, EngineParametricSlides          int64
	EngineParametricCheapSolves, EngineIncrementalFallbacks int64
	// Entries is the current number of cached evaluations.
	Entries int
	// Weight is the summed grid-evaluation cost of the cached entries (see
	// GridEval.Cost) and WeightCapacity the admission bound on it (0 =
	// bounded by entry count only). EntryWeights lists the per-entry costs
	// in most-recently-used-first order, so one huge plan is visibly not
	// interchangeable with many trivial ones.
	Weight, WeightCapacity int64
	EntryWeights           []int64
}

// cacheKey identifies one cached evaluation: the graph's canonical
// fingerprint plus a digest of every option that changes the grid values.
type cacheKey struct {
	fp   graph.Fingerprint
	opts string
}

// planOptionsDigest captures the options that alter a grid evaluation's
// values: the grid itself (DeltaMax) and the evaluator's numeric knobs,
// normalized so zero-valued and explicitly-default configurations digest
// identically. Workers, SepWorkers, ShardTimings, and Trace change only
// scheduling and diagnostics, never values, and are deliberately excluded
// so sessions with different concurrency settings share entries.
// DisableWarmStart, DisableIncremental, SepExhaustive, and SepWaveWidth
// are included conservatively: they are value-neutral on converging
// instances, but they change the oracle schedule (or, for the incremental
// knob, the solve trajectory), so a stalled piece can return a different
// path-dependent relaxation bound, and they also change the work counters
// stored with the cached evaluation.
func planOptionsDigest(o Options) string {
	f := o.ForestLP.Normalize()
	return fmt.Sprintf("dmax=%g tol=%g rounds=%d cuts=%d drop=%d stall=%d nofast=%t nopeel=%t nowarm=%t noincr=%t exh=%t wave=%d lp=%+v",
		o.DeltaMax, f.Tol, f.MaxRounds, f.MaxCutsPerRound, f.DropSlackAfter, f.StallRounds,
		f.DisableFastPath, f.DisablePeel, f.DisableWarmStart, f.DisableIncremental, f.SepExhaustive, f.SepWaveWidth, f.LP)
}

type cacheEntry struct {
	key cacheKey
	ge  *GridEval
	// h is the entry's GreedyDual-Size credit (weighted caches only):
	// the eviction clock at the last touch plus the entry's cost, so
	// expensive plans out-survive parades of cheap ones while the rising
	// clock ages every entry toward eviction eventually.
	h float64
}

// flight is one in-progress evaluation that concurrent misses of the same
// key wait on instead of duplicating. ge and err are written before done is
// closed, so waiters read them without further synchronization.
type flight struct {
	done chan struct{}
	ge   *GridEval
	err  error
	// invalidated is set (under the cache mutex) by Invalidate while the
	// evaluation is still in flight. The leader reads it under the same
	// mutex when it finishes: a marked flight's result is neither admitted
	// to the cache nor handed to waiters as a hit — waiters are released
	// with a cancelation so the single-flight loop makes them re-evaluate
	// against the post-invalidation cache instead of adopting a plan the
	// invalidator believes is gone.
	invalidated bool
}

// PlanCache is a bounded, thread-safe LRU cache of grid evaluations keyed
// by graph fingerprint. A single PlanCache may back any number of
// concurrent sessions; the zero value is not usable — construct with
// NewPlanCache.
type PlanCache struct {
	mu        sync.Mutex
	cap       int
	weightCap int64      // 0 = no weight bound
	weight    int64      // summed Cost of cached entries
	clock     float64    // GreedyDual-Size eviction clock (weighted mode)
	ll        *list.List // front = most recently used
	entries   map[cacheKey]*list.Element
	inflight  map[cacheKey]*flight
	stats     CacheStats

	// Sub-plan layer (see subplan.go): per-component grid evaluations
	// keyed by component fingerprint + options digest, bounded by a
	// separate entry-count LRU. Not persisted in snapshots.
	subCap     int
	subLL      *list.List // front = most recently used
	subEntries map[subPlanKey]*list.Element

	// gen counts persisted-state changes — inserts, loads, evictions,
	// invalidations, and hits (a hit refreshes the recency order and the
	// GreedyDual-Size credit, both of which Save writes out) — and
	// savedGen records gen at the last successful save. Equal values mean
	// a snapshot taken now would be byte-identical to the one on disk, so
	// SaveFileIfChanged skips it (the daemon's periodic-save dirty bit).
	gen, savedGen uint64
}

// NewPlanCache returns an empty cache bounded to capacity entries
// (DefaultPlanCacheCapacity if capacity <= 0).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &PlanCache{
		cap:        capacity,
		ll:         list.New(),
		entries:    make(map[cacheKey]*list.Element),
		inflight:   make(map[cacheKey]*flight),
		subCap:     DefaultSubPlanCapacity,
		subLL:      list.New(),
		subEntries: make(map[subPlanKey]*list.Element),
	}
}

// NewPlanCacheWeighted returns a cache bounded by summed grid-evaluation
// cost (GridEval.Cost units) instead of raw entry count, with
// GreedyDual-Size eviction: every entry holds a credit of (eviction clock
// at last touch) + cost, the victim is always the minimum-credit entry, and
// the clock rises to the victim's credit. Cheap plans therefore go first —
// one huge plan cannot be evicted by a parade of trivial ones, the failure
// mode of raw entry counting — while the rising clock still ages a stale
// huge plan out once the cache has moved on. A single entry heavier than
// maxWeight is still cached (evicting it immediately would thrash the one
// plan the deployment needs most); it then has the cache to itself.
// maxWeight must be positive.
func NewPlanCacheWeighted(maxWeight int64) *PlanCache {
	if maxWeight <= 0 {
		maxWeight = 1
	}
	c := NewPlanCache(int(^uint(0) >> 1)) // weight-bounded: no entry bound
	c.weightCap = maxWeight
	return c
}

// GridEval returns the grid evaluation for g under opts, computing and
// caching it on a miss. hit reports whether planning was skipped. Options
// handling matches EvaluateGrid: Epsilon is irrelevant to the result and
// may be zero.
//
// Concurrent misses on the same key are single-flighted: the first caller
// evaluates, the rest wait on its result and report a cache hit (they did
// no planning). A waiter whose own ctx expires leaves with ctx.Err(); if
// the evaluating caller is canceled, a surviving waiter takes over the
// evaluation rather than inheriting the cancelation.
func (c *PlanCache) GridEval(ctx context.Context, g *graph.Graph, opts Options) (ge *GridEval, hit bool, err error) {
	// Tracing (internal/obs): a "core.plan" span brackets the lookup; on a
	// miss the forestlp sweep span nests under it. cache_hit mirrors the
	// returned hit flag so a trace alone answers "did this query plan?".
	sp, ctx := obs.StartSpan(ctx, "core.plan")
	defer func() {
		if sp != nil {
			if hit {
				sp.SetCounter("cache_hit", 1)
			} else {
				sp.SetCounter("cache_hit", 0)
			}
			sp.End()
		}
	}()
	if opts.Epsilon == 0 {
		opts.Epsilon = 1 // as in EvaluateGrid: ε does not enter grid values
	}
	opts, err = opts.withDefaults(g.N())
	if err != nil {
		return nil, false, err
	}
	csr := graph.NewCSR(g)
	key := cacheKey{fp: csr.Fingerprint(), opts: planOptionsDigest(opts)}

	// Each logical lookup counts exactly once — Hits, Misses, or Coalesced
	// — even when a canceled leader makes a waiter loop and take over.
	counted := false
	count := func(counter *int64) {
		if !counted {
			*counter++
			counted = true
		}
	}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			entry := el.Value.(*cacheEntry)
			entry.h = c.clock + float64(entry.ge.Cost())
			c.gen++ // recency and credit are persisted state
			count(&c.stats.Hits)
			c.mu.Unlock()
			return entry.ge, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			count(&c.stats.Coalesced)
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.ge, true, nil
			}
			if errIsCancel(f.err) {
				continue // the evaluator bailed, not us: take over
			}
			return nil, false, f.err
		}
		count(&c.stats.Misses)
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		// The miss path assembles the evaluation component-wise from the
		// sub-plan layer (subplan.go) — bit-identical to the monolithic
		// evaluateGridCSR, but after a graph mutation only the touched
		// components re-plan.
		f.ge, f.err = c.assembleGridCSR(ctx, csr, key.fp, opts)
		// Failpoint between evaluation and admission: a firing site turns a
		// finished evaluation into an error *before* the insert gate below,
		// proving no partial or fault-tainted plan can enter the cache (the
		// chaos suite's save→load round trip checks the same invariant from
		// the outside).
		if f.err == nil {
			f.err = fault.Hit("core.cache.admit")
		}

		c.mu.Lock()
		delete(c.inflight, key)
		stale := f.invalidated
		if f.err == nil && !stale {
			c.insertLocked(key, f.ge)
		}
		c.mu.Unlock()
		ge, evalErr := f.ge, f.err
		if evalErr == nil && stale {
			// Invalidate ran while this evaluation was in flight. The result
			// is still correct for the snapshot this caller evaluated —
			// return it to them — but it is not admitted above, and waiters
			// must not adopt it as a hit: hand them a cancelation so the
			// single-flight loop sends each one back through a fresh lookup.
			f.ge = nil
			f.err = fmt.Errorf("core: plan-cache flight invalidated mid-evaluation: %w", context.Canceled)
		}
		close(f.done)
		if evalErr != nil {
			return nil, false, evalErr
		}
		return ge, false, nil
	}
}

// insertLocked adds an evaluation (c.mu held), evicting entries past the
// capacity bounds: least-recently-used under the entry-count bound,
// minimum GreedyDual-Size credit under the weight bound. A racing insert of
// the same key keeps the existing entry. The newly inserted entry itself is
// never evicted: a plan heavier than the whole weight budget is more
// valuable alone than an empty cache.
func (c *PlanCache) insertLocked(key cacheKey, ge *GridEval) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.admitLocked(key, ge, c.clock+float64(ge.Cost()))
}

// admitLocked pushes a new entry (key must be absent; c.mu held) with the
// given GreedyDual-Size credit and runs the eviction loop. Snapshot loading
// enters here directly so reloaded entries keep their saved credit instead
// of being treated as freshly touched.
func (c *PlanCache) admitLocked(key cacheKey, ge *GridEval, h float64) {
	c.gen++ // one bump covers the insert and any evictions it causes
	inserted := c.ll.PushFront(&cacheEntry{key: key, ge: ge, h: h})
	c.entries[key] = inserted
	c.weight += ge.Cost()
	for c.ll.Len() > 1 && (c.ll.Len() > c.cap || (c.weightCap > 0 && c.weight > c.weightCap)) {
		victim := c.ll.Back()
		if c.weightCap > 0 {
			// Weight pressure: evict the minimum-credit entry (LRU order
			// breaks credit ties), sparing the entry just inserted, and
			// advance the clock to the departing credit.
			for el := c.ll.Back(); el != nil; el = el.Prev() {
				if el == inserted {
					continue
				}
				if el.Value.(*cacheEntry).h < victim.Value.(*cacheEntry).h || victim == inserted {
					victim = el
				}
			}
			c.clock = victim.Value.(*cacheEntry).h
		}
		c.ll.Remove(victim)
		entry := victim.Value.(*cacheEntry)
		delete(c.entries, entry.key)
		c.weight -= entry.ge.Cost()
		c.stats.Evictions++
	}
}

// errIsCancel reports whether err is a context cancelation or deadline.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Invalidate removes every cached evaluation of the graph with the given
// fingerprint (across all option digests) and returns how many entries were
// dropped. Mutating a graph already changes its fingerprint, so future
// lookups would miss anyway; Invalidate exists to reclaim the memory of
// evaluations that can no longer be hit and to give mutation sites an
// explicit hook.
func (c *PlanCache) Invalidate(fp graph.Fingerprint) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Mark in-flight evaluations of the fingerprint: their leaders finish,
	// see the mark under this same mutex, and neither admit the result nor
	// let waiters adopt it (see the flight type). Without the mark, a
	// leader finishing after Invalidate returned would quietly re-insert an
	// entry the caller was promised is gone.
	for key, f := range c.inflight {
		if key.fp == fp {
			f.invalidated = true
		}
	}
	// Component sub-plans are deliberately not touched: they are keyed by
	// component content shared across graphs, and the point of a mutation
	// is that untouched components keep their cached work.
	removed := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if entry := el.Value.(*cacheEntry); entry.key.fp == fp {
			c.ll.Remove(el)
			delete(c.entries, entry.key)
			c.weight -= entry.ge.Cost()
			c.stats.Invalidations++
			removed++
		}
		el = next
	}
	if removed > 0 {
		c.gen++
	}
	return removed
}

// Stats returns a snapshot of the cache counters, including the per-entry
// grid-evaluation weights in most-recently-used-first order.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.SubPlanEntries = c.subLL.Len()
	s.Weight = c.weight
	s.WeightCapacity = c.weightCap
	s.EntryWeights = make([]int64, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*cacheEntry)
		s.EntryWeights = append(s.EntryWeights, entry.ge.Cost())
		es := &entry.ge.stats
		s.EngineRefactorizations += int64(es.Refactorizations)
		s.EngineParametricSlides += int64(es.ParametricSlides)
		s.EngineParametricCheapSolves += int64(es.ParametricCheapSolves)
		s.EngineIncrementalFallbacks += int64(es.IncrementalFallbacks)
	}
	return s
}

// Len returns the current number of cached evaluations.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
