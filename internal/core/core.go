// Package core implements Algorithm 1 of the paper: the ε-node-private
// estimator for the size of a spanning forest (f_sf) and, through
// Equation (1) f_cc = |V| − f_sf, for the number of connected components.
//
// The pipeline is exactly the paper's:
//
//  1. Evaluate the Lipschitz extensions f_Δ (Definition 3.1) on the grid
//     I = {1, 2, 4, …, 2^⌊log₂ Δmax⌋} with Δmax = n.
//  2. Use the Generalized Exponential Mechanism (Algorithm 4) with budget
//     ε/2 and failure probability β to select Δ̂ approximately minimizing
//     err(Δ, G) = |f_Δ(G) − f_sf(G)| + 2Δ/ε.
//  3. Release f_Δ̂(G) + Lap(2Δ̂/ε), spending the remaining ε/2.
//
// Privacy: step 2 is (ε/2)-node-private (Theorem 3.5); step 3 is
// (ε/2)-node-private because f_Δ̂ is Δ̂-Lipschitz (Lemma 3.3) and the noise
// scale is Δ̂/(ε/2); composition (Lemma 2.4) gives ε overall.
//
// Accuracy: Theorem 1.3 — with probability 1−o(1) the error is
// Δ*·Õ(ln ln n / ε), where Δ* is the smallest possible maximum degree of a
// spanning forest of G; Theorem 1.5 rephrases this as DS_fsf(G)·Õ(ln ln n/ε).
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"nodedp/internal/dpnoise"
	"nodedp/internal/forestlp"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// Options configures the private estimators.
type Options struct {
	// Epsilon is the total privacy budget ε > 0. Required.
	Epsilon float64
	// Beta is the failure probability of the GEM selection step. If zero,
	// the paper's choice 1/ln(ln n) is used (clamped into (0, 1/2]).
	Beta float64
	// Rand is the noise source. If nil, a crypto/rand-backed source is
	// used; experiments pass a seeded PRNG for reproducibility.
	Rand *rand.Rand
	// DeltaMax overrides the top of the Δ grid (default: n, as in the
	// paper; values below 1 are rejected).
	DeltaMax float64
	// ForestLP configures the extension evaluator.
	ForestLP forestlp.Options
	// CountBudgetFraction is the share of ε spent on releasing the vertex
	// count when estimating f_cc (Equation (1) needs a private |V|).
	// Default 0.2: the count's noise scale is 1/(ρε) against the forest
	// estimate's ≈ Δ̂·lnln(n)/((1−ρ)ε), so a one-fifth share keeps the
	// count term from dominating on small graphs while costing little on
	// large ones. Ignored by EstimateSpanningForestSize and by
	// EstimateComponentCountKnownN.
	CountBudgetFraction float64
	// DiscreteRelease replaces the float64 Laplace release with an exact
	// integer mechanism: round(f_Δ̂) plus discrete Laplace noise sampled
	// without floating-point arithmetic (internal/dpnoise). Rounding
	// raises the release sensitivity from Δ̂ to Δ̂+1, so the noise scale is
	// 2(Δ̂+1)/ε (rounded up to a nearby rational); the output lattice is
	// the integers. Use this when float64 noise side channels matter.
	DiscreteRelease bool
}

func (o Options) withDefaults(n int) (Options, error) {
	if o.Epsilon <= 0 || math.IsNaN(o.Epsilon) || math.IsInf(o.Epsilon, 0) {
		return o, fmt.Errorf("core: epsilon %v must be positive and finite", o.Epsilon)
	}
	if o.Beta == 0 {
		// β = 1/ln(ln n) (the Theorem 1.3 setting), clamped to (0, 1/2].
		b := 0.5
		if n > 15 { // ln ln n > 1 ⟺ n > e^e ≈ 15.15
			b = 1 / math.Log(math.Log(float64(n)))
		}
		if b > 0.5 {
			b = 0.5
		}
		o.Beta = b
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		return o, fmt.Errorf("core: beta %v must be in (0,1)", o.Beta)
	}
	if o.Rand == nil {
		o.Rand = dpnoise.NewCryptoRand()
	}
	if o.DeltaMax == 0 {
		o.DeltaMax = float64(n)
		if o.DeltaMax < 1 {
			o.DeltaMax = 1
		}
	}
	if o.DeltaMax < 1 {
		return o, fmt.Errorf("core: deltaMax %v must be ≥ 1", o.DeltaMax)
	}
	if o.CountBudgetFraction == 0 {
		o.CountBudgetFraction = 0.2
	}
	if o.CountBudgetFraction <= 0 || o.CountBudgetFraction >= 1 {
		return o, fmt.Errorf("core: countBudgetFraction %v must be in (0,1)", o.CountBudgetFraction)
	}
	return o, nil
}

// DeltaEval records one extension evaluation, for experiment diagnostics.
// These values are data-dependent and must not be released as-is.
//
//privacy:secret — FDelta and Q are exact data-dependent evaluations, pre-noise.
type DeltaEval struct {
	Delta  float64
	FDelta float64
	// Q is the GEM quality q_Δ(G) = |f_Δ(G) − f_sf(G)| + 2Δ/ε.
	Q float64
}

// Result is the outcome of a private estimation.
type Result struct {
	// Value is the private release (an estimate of f_sf or f_cc).
	Value float64
	// Delta is the Δ̂ chosen by GEM.
	Delta float64
	// FDelta is f_Δ̂(G) before noise (diagnostic; not private).
	//privacy:secret — exact f_Δ̂(G), pre-noise.
	FDelta float64
	// NoiseScale is the Laplace scale used in the release step.
	NoiseScale float64
	// NHat is the private vertex-count estimate (component-count mode
	// only; zero otherwise).
	NHat float64
	// Evaluations are the per-Δ diagnostics (not private).
	Evaluations []DeltaEval
	// Stats aggregates the extension evaluator's work.
	Stats forestlp.Stats
}

// NoiseInterval returns the half-width t such that the Laplace noise added
// in the release step lies in [−t, t] with probability 1−beta (Lemma 2.3:
// Pr[|Lap(b)| ≥ b·ln(1/beta)] = beta). It quantifies only the injected
// noise — the extension's approximation error |f_Δ̂ − f_sf| is a separate,
// data-dependent quantity bounded by Theorem 1.3. The interval is a
// post-processing of released values and safe to publish.
func (r Result) NoiseInterval(beta float64) (float64, error) {
	if beta <= 0 || beta >= 1 {
		return 0, fmt.Errorf("core: confidence beta %v must be in (0,1)", beta)
	}
	if r.NoiseScale <= 0 {
		return 0, fmt.Errorf("core: result carries no noise scale")
	}
	width := r.NoiseScale * math.Log(1/beta)
	// Component-count mode adds the vertex-count noise; its scale is
	// recoverable from NHat only if the caller tracked it, so we expose
	// the forest-release interval and document the composition.
	return width, nil
}

// EstimateSpanningForestSize runs Algorithm 1: an ε-node-private estimate
// of f_sf(G).
func EstimateSpanningForestSize(g *graph.Graph, opts Options) (Result, error) {
	return EstimateSpanningForestSizeCtx(context.Background(), g, opts)
}

// EstimateSpanningForestSizeCtx is EstimateSpanningForestSize with
// cancelation and deadline support: the extension evaluations — the only
// long-running part of Algorithm 1 — abort promptly with ctx.Err() when
// ctx is done. A canceled run releases nothing and spends no budget.
func EstimateSpanningForestSizeCtx(ctx context.Context, g *graph.Graph, opts Options) (Result, error) {
	opts, err := opts.withDefaults(g.N())
	if err != nil {
		return Result{}, err
	}
	return estimateSF(ctx, g, opts, opts.Epsilon)
}

// GridEval is the deterministic, expensive half of Algorithm 1: the values
// f_Δ(G) over the whole GEM grid, evaluated once on the sharded parallel
// engine, together with the exact f_sf(G) they are scored against. A
// GridEval is ε-independent (ε only enters the GEM qualities and the noise,
// both computed per release), immutable, and safe to share between any
// number of concurrent sessions — this is what the PlanCache stores and
// what the serving layer in internal/serve fans queries onto.
//
//privacy:secret — holds the exact f_Δ evaluations and f_sf; snapshots of it must be protected like the graph itself, and none of it may reach the wire.
type GridEval struct {
	n           int
	m           int
	deltaMax    float64
	optsDigest  string
	fingerprint graph.Fingerprint
	grid        []float64
	fdeltas     []float64
	fsf         float64
	stats       forestlp.Stats
}

// N returns the vertex count of the evaluated graph.
func (ge *GridEval) N() int { return ge.n }

// Cost is the deterministic grid-evaluation cost estimate used by the
// PlanCache's weight-based admission: (n + m + 1) CSR units per grid point,
// the size of the work each evaluation walks. It is a relative weight, not
// a wall-clock measurement, so identical graphs always weigh the same.
func (ge *GridEval) Cost() int64 {
	return int64(ge.n+ge.m+1) * int64(len(ge.grid))
}

// Fingerprint returns the canonical fingerprint of the evaluated graph.
// Evaluations produced by EvaluateGrid or the PlanCache always carry one;
// the one-shot estimators skip the hashing pass (they never consult a
// cache) and leave it zero.
func (ge *GridEval) Fingerprint() graph.Fingerprint { return ge.fingerprint }

// SpanningForestSize returns the exact (non-private) f_sf of the evaluated
// graph.
func (ge *GridEval) SpanningForestSize() float64 { return ge.fsf }

// Stats aggregates the extension evaluator's work across the grid.
func (ge *GridEval) Stats() forestlp.Stats { return ge.stats }

// EvaluateGrid runs the deterministic half of Algorithm 1 for g: one CSR
// snapshot, one shard plan, and one extension evaluation per grid point.
// The result is independent of Options.Epsilon (which may be left zero
// here); every other plan-relevant option — DeltaMax and the ForestLP
// configuration — is baked into the returned evaluation.
func EvaluateGrid(ctx context.Context, g *graph.Graph, opts Options) (*GridEval, error) {
	if opts.Epsilon == 0 {
		opts.Epsilon = 1 // ε does not enter the grid values; see doc comment
	}
	opts, err := opts.withDefaults(g.N())
	if err != nil {
		return nil, err
	}
	csr := graph.NewCSR(g)
	return evaluateGridCSR(ctx, csr, csr.Fingerprint(), opts)
}

// evaluateGridCSR is EvaluateGrid on an existing snapshot with a
// precomputed fingerprint; opts must already carry defaults.
func evaluateGridCSR(ctx context.Context, csr *graph.CSR, fp graph.Fingerprint, opts Options) (*GridEval, error) {
	grid, err := mechanism.PowerOfTwoGrid(opts.DeltaMax)
	if err != nil {
		return nil, err
	}
	// One CSR snapshot and shard plan serve the whole Δ-grid: the component
	// decomposition, the per-component subgraphs, and the delta-independent
	// fast-path certificates are derived once instead of once per grid
	// point. Each grid evaluation then runs on the shared worker pool
	// configured by opts.ForestLP.Workers.
	plan := forestlp.NewPlanCSR(csr)
	values, stats, err := plan.GridValues(ctx, grid, opts.ForestLP)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &GridEval{
		n:           csr.N(),
		m:           csr.M(),
		deltaMax:    opts.DeltaMax,
		optsDigest:  planOptionsDigest(opts),
		fingerprint: fp,
		grid:        grid,
		fdeltas:     values,
		fsf:         float64(plan.SpanningForestSize()),
		stats:       stats,
	}, nil
}

// Prepared caches the deterministic, expensive part of Algorithm 1 — the
// extension evaluations f_Δ(G) over the GEM grid — so that repeated
// releases on the same graph skip the LP work. The random steps (GEM
// selection and the Laplace release) happen per call to Release.
//
// Composition accounting is the caller's job at this layer: Epsilon,
// Releases, and SpentBudget expose what has been spent so far, and the
// session API in internal/serve enforces a total budget on top. Release and
// the introspection methods are safe for concurrent use only when the
// underlying noise source is (the default crypto source is not; guard a
// shared *rand.Rand yourself or use a Session).
type Prepared struct {
	ge          *GridEval
	qs          []float64
	evaluations []DeltaEval
	eps         float64
	beta        float64
	rand        *rand.Rand
	discrete    bool
	releases    atomic.Int64
}

// Evaluations returns the cached per-Δ diagnostics (not private).
func (p *Prepared) Evaluations() []DeltaEval {
	return append([]DeltaEval(nil), p.evaluations...)
}

// Epsilon returns ε, the privacy budget each Release spends.
func (p *Prepared) Epsilon() float64 { return p.eps }

// Releases returns how many Release calls have run so far. Calls that
// returned an error still count: noise may have been drawn before the
// failure, and budget accounting must stay conservative.
func (p *Prepared) Releases() int { return int(p.releases.Load()) }

// SpentBudget returns Releases()·Epsilon(), the total privacy cost of this
// estimator so far under sequential composition (Lemma 2.4). Callers with a
// hard budget should prefer the Session API, which enforces one.
func (p *Prepared) SpentBudget() float64 { return float64(p.Releases()) * p.eps }

// PrepareSpanningForest evaluates the extension family once for g under the
// given options.
func PrepareSpanningForest(g *graph.Graph, opts Options) (*Prepared, error) {
	return PrepareSpanningForestCtx(context.Background(), g, opts)
}

// PrepareSpanningForestCtx is PrepareSpanningForest with cancelation and
// deadline support.
func PrepareSpanningForestCtx(ctx context.Context, g *graph.Graph, opts Options) (*Prepared, error) {
	opts, err := opts.withDefaults(g.N())
	if err != nil {
		return nil, err
	}
	return prepareSF(ctx, g, opts, opts.Epsilon)
}

func prepareSF(ctx context.Context, g *graph.Graph, opts Options, eps float64) (*Prepared, error) {
	csr := graph.NewCSR(g)
	ge, err := evaluateGridCSR(ctx, csr, graph.Fingerprint{}, opts) // one-shot path: no cache, skip hashing
	if err != nil {
		return nil, err
	}
	return newPrepared(ge, opts, eps), nil
}

// newPrepared performs the ε-dependent scoring of a grid evaluation: the
// GEM qualities q_Δ(G) = |f_Δ(G) − f_sf(G)| + Δ/(ε/2) (Algorithm 4 Step 4,
// with GEM's own budget ε/2). It is cheap — O(grid) float ops — which is
// why one cached GridEval can serve queries with different ε.
func newPrepared(ge *GridEval, opts Options, eps float64) *Prepared {
	epsHalf := eps / 2
	p := &Prepared{
		ge:          ge,
		qs:          make([]float64, len(ge.grid)),
		evaluations: make([]DeltaEval, len(ge.grid)),
		eps:         eps,
		beta:        opts.Beta,
		rand:        opts.Rand,
		discrete:    opts.DiscreteRelease,
	}
	for i, d := range ge.grid {
		v := ge.fdeltas[i]
		p.qs[i] = math.Abs(v-ge.fsf) + d/epsHalf
		p.evaluations[i] = DeltaEval{Delta: d, FDelta: v, Q: p.qs[i]}
	}
	return p
}

// Release performs the random half of Algorithm 1: GEM selection at ε/2 and
// a Laplace release at ε/2, where ε = Epsilon() is the budget this
// estimator was prepared with (for the component-count path that is the
// forest share of the total, not the caller's whole budget). Each call is
// an independent ε-node-private release: k calls compose to k·ε by
// Lemma 2.4, tracked by Releases and SpentBudget but not enforced — use the
// Session API for a hard budget.
func (p *Prepared) Release() (Result, error) {
	p.releases.Add(1)
	res := Result{Evaluations: p.evaluations, Stats: p.ge.stats}
	epsHalf := p.eps / 2
	sel, err := mechanism.GEM(p.rand, p.ge.grid, p.qs, epsHalf, p.beta)
	if err != nil {
		return res, fmt.Errorf("core: GEM selection: %w", err)
	}
	res.Delta = sel.Delta
	res.FDelta = p.evaluations[sel.Index].FDelta
	res.NoiseScale = sel.Delta / epsHalf

	if p.discrete {
		// Integer mechanism: rounding raises sensitivity to Δ̂+1.
		scale := (sel.Delta + 1) / epsHalf
		res.NoiseScale = scale
		noise, err := dpnoise.DiscreteLaplaceScaled(p.rand, scale)
		if err != nil {
			return res, fmt.Errorf("core: discrete release: %w", err)
		}
		res.Value = math.Round(res.FDelta) + float64(noise)
		return res, nil
	}

	release, err := mechanism.LaplaceRelease(p.rand, res.FDelta, sel.Delta, epsHalf)
	if err != nil {
		return res, fmt.Errorf("core: release: %w", err)
	}
	res.Value = release
	return res, nil
}

// estimateSF implements Algorithm 1 with total budget eps (callers may pass
// a partial budget when composing).
func estimateSF(ctx context.Context, g *graph.Graph, opts Options, eps float64) (Result, error) {
	csr := graph.NewCSR(g)
	ge, err := evaluateGridCSR(ctx, csr, graph.Fingerprint{}, opts) // one-shot path: no cache, skip hashing
	if err != nil {
		return Result{}, err
	}
	return estimateSFFromGrid(ctx, ge, opts, eps)
}

// estimateSFFromGrid is the release half of estimateSF on a precomputed
// grid evaluation. The one-shot estimators and the session serving layer
// both funnel through here, which is what makes a seeded session query
// bit-for-bit identical to the equivalent one-shot call.
func estimateSFFromGrid(ctx context.Context, ge *GridEval, opts Options, eps float64) (Result, error) {
	p := newPrepared(ge, opts, eps)
	// A cancelation landing after the last grid evaluation must still
	// abort before any noise is drawn — the contract is that a canceled
	// run spends no budget.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return p.Release()
}

// checkGrid rejects a grid evaluation that was computed under a different
// Δ-grid or different value-affecting evaluator options than the
// (defaulted) options ask for — silently releasing from a mismatched
// evaluation would be an accuracy bug, not a privacy bug, but still a bug.
func checkGrid(ge *GridEval, opts Options) error {
	//detlint:allow floatorder — exact config-identity check: DeltaMax is copied from Options, never computed, so bit equality is the correct test
	if ge.deltaMax != opts.DeltaMax {
		return fmt.Errorf("core: grid evaluation has DeltaMax %v, options ask for %v", ge.deltaMax, opts.DeltaMax)
	}
	if ge.optsDigest != planOptionsDigest(opts) {
		return fmt.Errorf("core: grid evaluation was computed under different evaluator options (%s) than requested (%s)",
			ge.optsDigest, planOptionsDigest(opts))
	}
	return nil
}

// EstimateSpanningForestSizeFromGrid is EstimateSpanningForestSizeCtx with
// the deterministic half replaced by a precomputed (possibly cached) grid
// evaluation: only GEM selection and the Laplace release run here. With the
// same options and noise source, the release is bit-for-bit identical to
// the one-shot call on the same graph.
func EstimateSpanningForestSizeFromGrid(ctx context.Context, ge *GridEval, opts Options) (Result, error) {
	opts, err := opts.withDefaults(ge.n)
	if err != nil {
		return Result{}, err
	}
	if err := checkGrid(ge, opts); err != nil {
		return Result{}, err
	}
	return estimateSFFromGrid(ctx, ge, opts, opts.Epsilon)
}

// EstimateComponentCountFromGrid is EstimateComponentCountCtx on a
// precomputed grid evaluation; see EstimateSpanningForestSizeFromGrid.
func EstimateComponentCountFromGrid(ctx context.Context, ge *GridEval, opts Options) (Result, error) {
	opts, err := opts.withDefaults(ge.n)
	if err != nil {
		return Result{}, err
	}
	if err := checkGrid(ge, opts); err != nil {
		return Result{}, err
	}
	return estimateCCFromGrid(ctx, ge, opts)
}

// estimateCCFromGrid splits the (defaulted) budget between the private
// vertex count and the forest estimate, drawing the count noise first —
// the same draw order as the one-shot path, so seeded runs agree.
func estimateCCFromGrid(ctx context.Context, ge *GridEval, opts Options) (Result, error) {
	epsCount := opts.Epsilon * opts.CountBudgetFraction
	epsSF := opts.Epsilon - epsCount
	p := newPrepared(ge, opts, epsSF)
	// As in estimateSF: no noise draws once ctx is done.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	nHat, err := mechanism.LaplaceRelease(opts.Rand, float64(ge.n), 1, epsCount)
	if err != nil {
		return Result{}, err
	}
	res, err := p.Release()
	if err != nil {
		return res, err
	}
	res.NHat = nHat
	res.Value = nHat - res.Value
	return res, nil
}

// EstimateComponentCountKnownNFromGrid is EstimateComponentCountKnownNCtx
// on a precomputed grid evaluation; see EstimateSpanningForestSizeFromGrid.
func EstimateComponentCountKnownNFromGrid(ctx context.Context, ge *GridEval, opts Options) (Result, error) {
	opts, err := opts.withDefaults(ge.n)
	if err != nil {
		return Result{}, err
	}
	if err := checkGrid(ge, opts); err != nil {
		return Result{}, err
	}
	res, err := estimateSFFromGrid(ctx, ge, opts, opts.Epsilon)
	if err != nil {
		return res, err
	}
	res.NHat = float64(ge.n)
	res.Value = float64(ge.n) - res.Value
	return res, nil
}

// EstimateComponentCount releases an ε-node-private estimate of f_cc(G)
// via Equation (1): f_cc = |V| − f_sf. A CountBudgetFraction share of ε
// buys the private vertex count (sensitivity 1 under node-privacy); the
// rest runs Algorithm 1 for f_sf.
func EstimateComponentCount(g *graph.Graph, opts Options) (Result, error) {
	return EstimateComponentCountCtx(context.Background(), g, opts)
}

// EstimateComponentCountCtx is EstimateComponentCount with cancelation and
// deadline support. The noisy vertex count is drawn only after the
// extension evaluations succeed, so a canceled run spends no budget.
func EstimateComponentCountCtx(ctx context.Context, g *graph.Graph, opts Options) (Result, error) {
	opts, err := opts.withDefaults(g.N())
	if err != nil {
		return Result{}, err
	}
	csr := graph.NewCSR(g)
	ge, err := evaluateGridCSR(ctx, csr, graph.Fingerprint{}, opts) // one-shot path: no cache, skip hashing
	if err != nil {
		return Result{}, err
	}
	return estimateCCFromGrid(ctx, ge, opts)
}

// EstimateComponentCountKnownN is EstimateComponentCount for settings where
// the vertex count is public information (it is then subtracted exactly and
// the entire ε goes to f_sf). NOTE: under strict node-DP the vertex count
// is itself sensitive; use this variant only when n is released through
// some other channel.
func EstimateComponentCountKnownN(g *graph.Graph, opts Options) (Result, error) {
	return EstimateComponentCountKnownNCtx(context.Background(), g, opts)
}

// EstimateComponentCountKnownNCtx is EstimateComponentCountKnownN with
// cancelation and deadline support.
func EstimateComponentCountKnownNCtx(ctx context.Context, g *graph.Graph, opts Options) (Result, error) {
	opts, err := opts.withDefaults(g.N())
	if err != nil {
		return Result{}, err
	}
	res, err := estimateSF(ctx, g, opts, opts.Epsilon)
	if err != nil {
		return res, err
	}
	res.NHat = float64(g.N())
	res.Value = float64(g.N()) - res.Value
	return res, nil
}
