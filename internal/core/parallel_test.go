package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"nodedp/internal/forestlp"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

// TestWorkerCountDeterminism is the end-to-end determinism property test:
// with a seeded PRNG, Algorithm 1 must produce an identical release and an
// identical GEM selection whether the extension engine runs on 1 worker or
// 8. The parallel engine merges shard values in component order, so the
// q-vector fed to GEM — and therefore the whole random trajectory — is
// bit-for-bit the same.
func TestWorkerCountDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := generate.NewRand(seed * 977)
		graphs := []*graph.Graph{
			generate.ErdosRenyi(70, 2.2/70, rng),
			generate.PlantedComponents([]int{14, 10, 18, 8}, 0.3, rng),
			generate.WithHubs(generate.ErdosRenyi(60, 1.8/60, rng), 2, 0.25, rng),
		}
		for gi, g := range graphs {
			run := func(workers int) Result {
				opts := Options{Epsilon: 1, Rand: generate.NewRand(seed)}
				opts.ForestLP.Workers = workers
				res, err := EstimateComponentCount(g, opts)
				if err != nil {
					t.Fatalf("seed %d graph %d workers %d: %v", seed, gi, workers, err)
				}
				return res
			}
			serial, parallel := run(1), run(8)
			if math.Float64bits(serial.Value) != math.Float64bits(parallel.Value) {
				t.Errorf("seed %d graph %d: estimate %v (1 worker) != %v (8 workers)",
					seed, gi, serial.Value, parallel.Value)
			}
			if serial.Delta != parallel.Delta {
				t.Errorf("seed %d graph %d: GEM selected Δ̂=%v (1 worker) != Δ̂=%v (8 workers)",
					seed, gi, serial.Delta, parallel.Delta)
			}
			if math.Float64bits(serial.FDelta) != math.Float64bits(parallel.FDelta) ||
				math.Float64bits(serial.NHat) != math.Float64bits(parallel.NHat) {
				t.Errorf("seed %d graph %d: diagnostics diverge across worker counts", seed, gi)
			}
			for i := range serial.Evaluations {
				s, p := serial.Evaluations[i], parallel.Evaluations[i]
				if math.Float64bits(s.FDelta) != math.Float64bits(p.FDelta) ||
					math.Float64bits(s.Q) != math.Float64bits(p.Q) {
					t.Errorf("seed %d graph %d: grid point Δ=%v diverges across worker counts",
						seed, gi, s.Delta)
				}
			}
		}
	}
}

// TestSepWorkersWarmStartReleaseDeterminism extends the end-to-end
// determinism contract to the intra-component knobs: with a seeded PRNG,
// the release, the GEM selection, and every grid diagnostic must be
// bit-identical across SepWorkers settings and with warm starts disabled —
// both knobs move work counters, never the random trajectory.
func TestSepWorkersWarmStartReleaseDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rng := generate.NewRand(seed * 389)
		graphs := []*graph.Graph{
			generate.PlantedComponents([]int{50}, 4.0/50, rng), // one giant component
			generate.WithHubs(generate.PlantedComponents([]int{25, 25}, 3.5/25, rng), 2, 0.3, rng),
		}
		for gi, g := range graphs {
			run := func(sepWorkers int, noWarm bool) Result {
				opts := Options{Epsilon: 1, Rand: generate.NewRand(seed)}
				opts.ForestLP.SepWorkers = sepWorkers
				opts.ForestLP.DisableWarmStart = noWarm
				res, err := EstimateComponentCount(g, opts)
				if err != nil {
					t.Fatalf("seed %d graph %d sepWorkers %d noWarm %v: %v", seed, gi, sepWorkers, noWarm, err)
				}
				return res
			}
			base := run(1, false)
			if base.Stats.StalledPieces > 0 {
				t.Fatalf("seed %d graph %d stalled; the bit-identity contract needs a converging instance", seed, gi)
			}
			for _, cfg := range []struct {
				sepWorkers int
				noWarm     bool
			}{{4, false}, {8, false}, {1, true}, {8, true}} {
				got := run(cfg.sepWorkers, cfg.noWarm)
				if math.Float64bits(got.Value) != math.Float64bits(base.Value) {
					t.Errorf("seed %d graph %d: release %v (SepWorkers=%d noWarm=%v) != %v (baseline)",
						seed, gi, got.Value, cfg.sepWorkers, cfg.noWarm, base.Value)
				}
				if got.Delta != base.Delta {
					t.Errorf("seed %d graph %d: GEM Δ̂=%v (SepWorkers=%d noWarm=%v) != Δ̂=%v",
						seed, gi, got.Delta, cfg.sepWorkers, cfg.noWarm, base.Delta)
				}
				for i := range base.Evaluations {
					b, o := base.Evaluations[i], got.Evaluations[i]
					if math.Float64bits(b.FDelta) != math.Float64bits(o.FDelta) ||
						math.Float64bits(b.Q) != math.Float64bits(o.Q) {
						t.Errorf("seed %d graph %d: grid point Δ=%v diverges (SepWorkers=%d noWarm=%v)",
							seed, gi, b.Delta, cfg.sepWorkers, cfg.noWarm)
					}
				}
				if !cfg.noWarm && !reflect.DeepEqual(got.Stats, base.Stats) {
					// Same warm configuration must also reproduce the exact
					// work counters regardless of SepWorkers.
					t.Errorf("seed %d graph %d: stats diverge across SepWorkers: %+v != %+v",
						seed, gi, got.Stats, base.Stats)
				}
			}
		}
	}
}

// TestEstimateCtxCanceled checks that every Ctx estimator aborts cleanly on
// a pre-canceled context without touching the noise source.
func TestEstimateCtxCanceled(t *testing.T) {
	g := generate.ErdosRenyi(50, 2.0/50, generate.NewRand(3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Epsilon: 1, Rand: generate.NewRand(4)}

	if _, err := EstimateSpanningForestSizeCtx(ctx, g, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateSpanningForestSizeCtx: want context.Canceled, got %v", err)
	}
	if _, err := EstimateComponentCountCtx(ctx, g, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateComponentCountCtx: want context.Canceled, got %v", err)
	}
	if _, err := EstimateComponentCountKnownNCtx(ctx, g, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateComponentCountKnownNCtx: want context.Canceled, got %v", err)
	}
	if _, err := PrepareSpanningForestCtx(ctx, g, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("PrepareSpanningForestCtx: want context.Canceled, got %v", err)
	}
}

// TestPreparedCarriesShardDiagnostics checks that the snapshot-reusing grid
// evaluation surfaces per-shard timings for every grid point.
func TestPreparedCarriesShardDiagnostics(t *testing.T) {
	g := generate.PlantedComponents([]int{12, 9, 15}, 0.35, generate.NewRand(5))
	opts := Options{Epsilon: 1, Rand: generate.NewRand(6)}
	opts.ForestLP.Workers = 2
	opts.ForestLP.ShardTimings = true
	res, err := EstimateComponentCount(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := forestlp.NewPlan(g)
	grid := len(res.Evaluations)
	if want := plan.Shards() * grid; len(res.Stats.Shards) != want {
		t.Fatalf("got %d shard records, want %d (%d shards × %d grid points)",
			len(res.Stats.Shards), want, plan.Shards(), grid)
	}
	if res.Stats.Workers != 2 {
		t.Errorf("stats.Workers = %d, want 2", res.Stats.Workers)
	}
}
