package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"nodedp/internal/graph"
)

// cacheTestGraph builds a fixed multi-component graph from the given edge
// order.
func cacheTestGraph(t *testing.T, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var cacheTestEdges = []graph.Edge{
	{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle
	{U: 3, V: 4}, {U: 4, V: 5}, // path
	{U: 6, V: 7}, {U: 7, V: 8}, {U: 8, V: 6}, {U: 6, V: 8},
}

func TestPlanCacheHitOnIdenticalGraphDifferentOrder(t *testing.T) {
	// Drop the duplicate edge {6,8} (FromEdges rejects duplicates).
	edges := cacheTestEdges[:8]
	g1 := cacheTestGraph(t, edges)
	reversed := make([]graph.Edge, len(edges))
	for i, e := range edges {
		reversed[len(edges)-1-i] = e
	}
	g2 := cacheTestGraph(t, reversed)

	cache := NewPlanCache(4)
	ctx := context.Background()
	ge1, hit, err := cache.GridEval(ctx, g1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup must miss")
	}
	ge2, hit, err := cache.GridEval(ctx, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("identical graph built in a different edge order must hit")
	}
	if ge1 != ge2 {
		t.Fatal("hit must return the shared cached evaluation")
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestPlanCacheOneEdgeMutationMisses(t *testing.T) {
	edges := cacheTestEdges[:8]
	g := cacheTestGraph(t, edges)
	cache := NewPlanCache(4)
	ctx := context.Background()
	if _, _, err := cache.GridEval(ctx, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(5, 9); err != nil {
		t.Fatal(err)
	}
	_, hit, err := cache.GridEval(ctx, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("one-edge mutation must miss the cache")
	}
	if s := cache.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one per graph version)", s.Entries)
	}
}

func TestPlanCacheOptionsChangeMisses(t *testing.T) {
	g := cacheTestGraph(t, cacheTestEdges[:8])
	cache := NewPlanCache(4)
	ctx := context.Background()
	if _, _, err := cache.GridEval(ctx, g, Options{}); err != nil {
		t.Fatal(err)
	}
	// A different grid is a different plan.
	if _, hit, err := cache.GridEval(ctx, g, Options{DeltaMax: 4}); err != nil || hit {
		t.Fatalf("DeltaMax change: hit=%v err=%v, want miss", hit, err)
	}
	// Workers only changes scheduling; same values, must hit.
	opts := Options{}
	opts.ForestLP.Workers = 3
	if _, hit, err := cache.GridEval(ctx, g, opts); err != nil || !hit {
		t.Fatalf("Workers change: hit=%v err=%v, want hit", hit, err)
	}
	// Explicitly spelling out a documented default asks for the same
	// evaluation as leaving it zero; the digest normalizes, so it must hit.
	opts = Options{}
	opts.ForestLP.Tol = 1e-7
	opts.ForestLP.MaxRounds = 1000
	if _, hit, err := cache.GridEval(ctx, g, opts); err != nil || !hit {
		t.Fatalf("explicit-default options: hit=%v err=%v, want hit", hit, err)
	}
	// A genuinely different solver tolerance is a different plan.
	opts = Options{}
	opts.ForestLP.Tol = 1e-3
	if _, hit, err := cache.GridEval(ctx, g, opts); err != nil || hit {
		t.Fatalf("Tol change: hit=%v err=%v, want miss", hit, err)
	}
}

func TestPlanCacheLRUEvicts(t *testing.T) {
	cache := NewPlanCache(2)
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(3, 4))
	graphs := make([]*graph.Graph, 3)
	for i := range graphs {
		g := graph.New(6)
		for k := 0; k < 5; k++ {
			u, v := rng.IntN(6), rng.IntN(6)
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Make the graphs pairwise distinct for sure.
		if i > 0 {
			g.RemoveEdge(g.Edges()[0].U, g.Edges()[0].V)
		}
		graphs[i] = g
	}
	for _, g := range graphs {
		if _, _, err := cache.GridEval(ctx, g, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	s := cache.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", s)
	}
	// graphs[0] was least recently used and must have been evicted.
	if _, hit, err := cache.GridEval(ctx, graphs[0], Options{}); err != nil || hit {
		t.Fatalf("evicted entry: hit=%v err=%v, want miss", hit, err)
	}
	// graphs[2] is still resident.
	if _, hit, err := cache.GridEval(ctx, graphs[2], Options{}); err != nil || !hit {
		t.Fatalf("resident entry: hit=%v err=%v, want hit", hit, err)
	}
}

func TestPlanCacheInvalidate(t *testing.T) {
	g := cacheTestGraph(t, cacheTestEdges[:8])
	cache := NewPlanCache(4)
	ctx := context.Background()
	// Two option digests for the same fingerprint.
	if _, _, err := cache.GridEval(ctx, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.GridEval(ctx, g, Options{DeltaMax: 4}); err != nil {
		t.Fatal(err)
	}
	if removed := cache.Invalidate(g.Fingerprint()); removed != 2 {
		t.Fatalf("Invalidate removed %d entries, want 2", removed)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache still holds %d entries after Invalidate", cache.Len())
	}
	if _, hit, err := cache.GridEval(ctx, g, Options{}); err != nil || hit {
		t.Fatalf("post-invalidate lookup: hit=%v err=%v, want miss", hit, err)
	}
	if removed := cache.Invalidate(g.Fingerprint()); removed != 1 {
		t.Fatalf("second Invalidate removed %d, want 1", removed)
	}
}

// TestGridEvalMatchesOneShot pins the refactoring invariant: a release from
// a cached grid evaluation is bit-for-bit the release of the one-shot
// estimator with the same seed.
func TestGridEvalMatchesOneShot(t *testing.T) {
	g := cacheTestGraph(t, cacheTestEdges[:8])
	ctx := context.Background()
	cache := NewPlanCache(2)
	ge, _, err := cache.GridEval(ctx, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for name, pair := range map[string][2]func(*rand.Rand) (Result, error){
			"sf": {
				func(r *rand.Rand) (Result, error) {
					return EstimateSpanningForestSize(g, Options{Epsilon: 1.5, Rand: r})
				},
				func(r *rand.Rand) (Result, error) {
					return EstimateSpanningForestSizeFromGrid(ctx, ge, Options{Epsilon: 1.5, Rand: r})
				},
			},
			"cc": {
				func(r *rand.Rand) (Result, error) {
					return EstimateComponentCount(g, Options{Epsilon: 1.5, Rand: r})
				},
				func(r *rand.Rand) (Result, error) {
					return EstimateComponentCountFromGrid(ctx, ge, Options{Epsilon: 1.5, Rand: r})
				},
			},
			"cc-known-n": {
				func(r *rand.Rand) (Result, error) {
					return EstimateComponentCountKnownN(g, Options{Epsilon: 1.5, Rand: r})
				},
				func(r *rand.Rand) (Result, error) {
					return EstimateComponentCountKnownNFromGrid(ctx, ge, Options{Epsilon: 1.5, Rand: r})
				},
			},
		} {
			oneShot, err := pair[0](rand.New(rand.NewPCG(seed, seed)))
			if err != nil {
				t.Fatal(err)
			}
			fromGrid, err := pair[1](rand.New(rand.NewPCG(seed, seed)))
			if err != nil {
				t.Fatal(err)
			}
			if oneShot.Value != fromGrid.Value || oneShot.Delta != fromGrid.Delta || oneShot.NHat != fromGrid.NHat {
				t.Fatalf("%s seed %d: one-shot (%v, Δ=%v, n̂=%v) != from-grid (%v, Δ=%v, n̂=%v)",
					name, seed, oneShot.Value, oneShot.Delta, oneShot.NHat,
					fromGrid.Value, fromGrid.Delta, fromGrid.NHat)
			}
		}
	}
}

func TestEstimateFromGridRejectsMismatchedGrid(t *testing.T) {
	g := cacheTestGraph(t, cacheTestEdges[:8])
	ge, err := EvaluateGrid(context.Background(), g, Options{DeltaMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = EstimateSpanningForestSizeFromGrid(context.Background(), ge,
		Options{Epsilon: 1, DeltaMax: 8})
	if err == nil {
		t.Fatal("mismatched DeltaMax must be rejected")
	}
	// Value-affecting evaluator options are part of the grid identity too.
	mismatched := Options{Epsilon: 1, DeltaMax: 4}
	mismatched.ForestLP.Tol = 1e-3
	if _, err = EstimateSpanningForestSizeFromGrid(context.Background(), ge, mismatched); err == nil {
		t.Fatal("mismatched evaluator options must be rejected")
	}
	// Spelling out the defaults the evaluation was computed under is fine.
	matching := Options{Epsilon: 1, DeltaMax: 4, Rand: rand.New(rand.NewPCG(1, 1))}
	matching.ForestLP.Tol = 1e-7
	if _, err = EstimateSpanningForestSizeFromGrid(context.Background(), ge, matching); err != nil {
		t.Fatalf("explicit-default options rejected: %v", err)
	}
}

// TestPlanCacheSingleFlight launches many concurrent cold lookups of the
// same graph and checks that exactly one evaluates (one miss), the rest
// coalesce onto it, and everyone receives the same evaluation.
func TestPlanCacheSingleFlight(t *testing.T) {
	g := cacheTestGraph(t, cacheTestEdges[:8])
	cache := NewPlanCache(4)
	opts := Options{Epsilon: 1, Rand: rand.New(rand.NewPCG(1, 2))}

	const callers = 16
	type outcome struct {
		ge  *GridEval
		hit bool
		err error
	}
	results := make([]outcome, callers)
	start := make(chan struct{})
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			<-start
			ge, hit, err := cache.GridEval(context.Background(), g, opts)
			results[i] = outcome{ge, hit, err}
			done <- i
		}(i)
	}
	close(start)
	for i := 0; i < callers; i++ {
		<-done
	}

	first := results[0].ge
	misses := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if r.ge == nil {
			t.Fatalf("caller %d: nil evaluation", i)
		}
		if r.ge != first {
			t.Errorf("caller %d received a different evaluation pointer", i)
		}
		if !r.hit {
			misses++
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (single-flight)", st.Misses)
	}
	if misses != 1 {
		t.Errorf("%d callers report doing the planning, want 1", misses)
	}
	if st.Coalesced+st.Hits != callers-1 {
		t.Errorf("coalesced %d + hits %d != %d", st.Coalesced, st.Hits, callers-1)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestPlanCacheSingleFlightLeaderCanceled cancels the first (evaluating)
// caller and checks that a waiting caller takes over instead of inheriting
// the cancelation.
func TestPlanCacheSingleFlightLeaderCanceled(t *testing.T) {
	g := cacheTestGraph(t, cacheTestEdges[:8])
	cache := NewPlanCache(4)
	opts := Options{Epsilon: 1, Rand: rand.New(rand.NewPCG(3, 4))}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	cancelLeader() // the leader is doomed before it starts
	_, _, err := cache.GridEval(leaderCtx, g, opts)
	if err == nil {
		t.Fatal("canceled leader should fail")
	}
	// A fresh caller must still be able to evaluate.
	ge, hit, err := cache.GridEval(context.Background(), g, opts)
	if err != nil || ge == nil {
		t.Fatalf("follow-up evaluation failed: %v", err)
	}
	if hit {
		t.Fatal("follow-up after canceled leader cannot be a hit")
	}
}

// weightTestGraph builds a path on n vertices (n−1 edges), giving graphs of
// controllable, strictly ordered grid-evaluation cost.
func weightTestGraph(t *testing.T, n int, mark int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		// Skip one edge identified by mark so equal-size graphs differ.
		if v == mark {
			continue
		}
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestPlanCacheWeightedAdmission: a weight-bounded cache evicts by summed
// grid-evaluation cost, so a stream of trivial plans cannot displace one
// huge plan the way it would under a raw entry bound.
func TestPlanCacheWeightedAdmission(t *testing.T) {
	ctx := context.Background()
	big := weightTestGraph(t, 120, -1)
	bigCost := func() int64 {
		ge, err := EvaluateGrid(ctx, big, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ge.Cost()
	}()

	// Budget: the big plan plus a little slack, far below 2× the big plan.
	cache := NewPlanCacheWeighted(bigCost + bigCost/4)
	if _, hit, err := cache.GridEval(ctx, big, Options{}); err != nil || hit {
		t.Fatalf("big plan first insert: hit=%v err=%v", hit, err)
	}

	// A parade of trivial plans: each is admitted, but eviction pressure
	// must fall on the older trivial plans, never on the big plan — its
	// weight dominates the ledger, so the trivial ones go first.
	for i := 0; i < 12; i++ {
		small := weightTestGraph(t, 16, i)
		if _, _, err := cache.GridEval(ctx, small, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, hit, err := cache.GridEval(ctx, big, Options{}); err != nil || !hit {
		t.Fatalf("big plan evicted by trivial plans: hit=%v err=%v, want hit", hit, err)
	}

	s := cache.Stats()
	if s.WeightCapacity != bigCost+bigCost/4 {
		t.Fatalf("WeightCapacity = %d, want %d", s.WeightCapacity, bigCost+bigCost/4)
	}
	if s.Weight <= 0 || s.Weight > s.WeightCapacity {
		t.Fatalf("Weight = %d, want in (0, %d]", s.Weight, s.WeightCapacity)
	}
	if len(s.EntryWeights) != s.Entries {
		t.Fatalf("EntryWeights has %d entries, cache has %d", len(s.EntryWeights), s.Entries)
	}
	// The big plan was just touched: it must be the MRU entry and its
	// weight must dwarf every trivial one.
	if s.EntryWeights[0] != bigCost {
		t.Fatalf("MRU weight = %d, want the big plan's %d", s.EntryWeights[0], bigCost)
	}
	for _, w := range s.EntryWeights[1:] {
		if w >= bigCost {
			t.Fatalf("trivial plan weight %d ≥ big plan %d", w, bigCost)
		}
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions: the weight bound never engaged")
	}
}

// TestPlanCacheWeightedOversizedEntry: a single plan heavier than the whole
// weight budget is still cached (and alone).
func TestPlanCacheWeightedOversizedEntry(t *testing.T) {
	ctx := context.Background()
	cache := NewPlanCacheWeighted(1)
	g := weightTestGraph(t, 40, -1)
	if _, hit, err := cache.GridEval(ctx, g, Options{}); err != nil || hit {
		t.Fatalf("oversized insert: hit=%v err=%v", hit, err)
	}
	if _, hit, err := cache.GridEval(ctx, g, Options{}); err != nil || !hit {
		t.Fatalf("oversized entry not resident: hit=%v err=%v", hit, err)
	}
	if s := cache.Stats(); s.Entries != 1 || s.Weight <= s.WeightCapacity {
		t.Fatalf("stats = %+v, want exactly the oversized entry", s)
	}
}

// TestPlanCacheInvalidateUpdatesWeight: invalidation returns an entry's
// weight to the ledger.
func TestPlanCacheInvalidateUpdatesWeight(t *testing.T) {
	ctx := context.Background()
	cache := NewPlanCacheWeighted(1 << 40)
	g := weightTestGraph(t, 30, -1)
	h := weightTestGraph(t, 20, -1)
	for _, gr := range []*graph.Graph{g, h} {
		if _, _, err := cache.GridEval(ctx, gr, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	before := cache.Stats().Weight
	if removed := cache.Invalidate(graph.NewCSR(g).Fingerprint()); removed != 1 {
		t.Fatalf("Invalidate removed %d, want 1", removed)
	}
	after := cache.Stats().Weight
	if after >= before || after <= 0 {
		t.Fatalf("weight %d → %d after invalidation, want a strict drop to > 0", before, after)
	}
}
