package core

// This file implements plan-cache persistence: Save serializes every cached
// grid evaluation through the versioned codec in internal/snapshot, and
// Load merges a snapshot back into a (possibly warm) cache. Together with
// the daemon wiring in cmd/ccdp this is what survives the expensive half of
// Algorithm 1 — the Δ-grid of Lipschitz-extension LPs — across process
// restarts: a reloaded entry is bit-for-bit the evaluation that was saved,
// so a seeded release from a reloaded plan is bit-identical to one from the
// live cache that produced it (certified by the conformance tests in this
// package and internal/serve).
//
// Load is deliberately forgiving about the file and strict about the
// entries: corrupt or unknown-version entries are skipped with typed errors
// (a daemon boot must never be held hostage by one damaged record), but an
// entry that decodes is still re-validated against the format's invariants
// — the grid must be exactly the power-of-two grid of its DeltaMax, values
// must lie in [0, f_sf], the fingerprint must be set — before it can ever
// serve a query, so a silently-wrong plan cannot enter the cache.

import (
	"fmt"
	"io"
	"math"

	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
	"nodedp/internal/snapshot"
)

// LoadReport describes what PlanCache.Load salvaged and skipped. Errs
// carries one typed error per skipped entry (snapshot.CorruptEntryError,
// snapshot.EntryVersionError, snapshot.TruncatedError, or *InvalidEntryError),
// so callers can log exactly what was lost.
type LoadReport struct {
	// Loaded counts entries inserted into the cache; Duplicates counts
	// decoded entries whose key was already cached (the live entry wins —
	// it is at least as fresh).
	Loaded, Duplicates int
	// SkippedCorrupt and SkippedVersion mirror the codec's report;
	// SkippedInvalid counts entries that decoded but failed the grid
	// evaluation invariants.
	SkippedCorrupt, SkippedVersion, SkippedInvalid int
	// Truncated reports that the snapshot ended before its declared
	// entries (the prefix still loads).
	Truncated bool
	// Errs holds one typed error per skipped entry.
	Errs []error
}

// Skipped returns the total number of snapshot entries that did not make it
// into the cache (duplicates excluded: those were not lost, just already
// present).
func (r *LoadReport) Skipped() int {
	return r.SkippedCorrupt + r.SkippedVersion + r.SkippedInvalid
}

// InvalidEntryError reports a snapshot entry that decoded cleanly but
// violates a grid-evaluation invariant; loading it could serve wrong
// values, so it is skipped instead.
type InvalidEntryError struct {
	Index  int
	Reason string
}

func (e *InvalidEntryError) Error() string {
	return fmt.Sprintf("core: snapshot entry %d invalid: %s; skipped", e.Index, e.Reason)
}

// Save serializes the cache's current entries to w in most-recently-used-
// first order, including each entry's GreedyDual-Size credit so eviction
// priority survives a reload. It returns the number of entries written.
// Cached GridEvals are immutable, so Save holds the cache lock only long
// enough to snapshot the entry list — concurrent lookups and inserts
// proceed while the bytes are written.
func (c *PlanCache) Save(w io.Writer) (int, error) {
	return c.save(func(snap *snapshot.Snapshot) error { return snapshot.Encode(w, snap) })
}

// SaveFile is Save with atomic write-then-rename file semantics: a crash or
// error mid-save leaves any previous snapshot at path intact.
func (c *PlanCache) SaveFile(path string) (int, error) {
	return c.save(func(snap *snapshot.Snapshot) error { return snapshot.WriteFileAtomic(path, snap) })
}

// SaveFileIfChanged is SaveFile gated by the cache's generation counter:
// when nothing that a snapshot persists has changed since the last
// successful save — no inserts, loads, hits, evictions, or invalidations —
// the serialization and the atomic rename are skipped entirely and the
// skip is counted in Stats().SnapshotSavesSkipped. saved reports whether a
// file was written. This is the daemon's periodic-save path; explicit
// saves (drain, admin endpoint) keep using SaveFile, which always writes.
func (c *PlanCache) SaveFileIfChanged(path string) (entries int, saved bool, err error) {
	c.mu.Lock()
	dirty := c.gen != c.savedGen
	if !dirty {
		c.stats.SnapshotSavesSkipped++
	}
	c.mu.Unlock()
	if !dirty {
		return 0, false, nil
	}
	entries, err = c.SaveFile(path)
	return entries, err == nil, err
}

// save snapshots the entry list under the lock, hands it to write, and
// counts a successful pass.
func (c *PlanCache) save(write func(*snapshot.Snapshot) error) (int, error) {
	c.mu.Lock()
	snapGen := c.gen
	snap := &snapshot.Snapshot{Entries: make([]snapshot.Entry, 0, c.ll.Len())}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*cacheEntry)
		snap.Entries = append(snap.Entries, entryToSnapshot(entry, c.clock))
	}
	c.mu.Unlock()

	if err := write(snap); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.stats.SnapshotSaves++
	c.stats.SnapshotEntriesSaved += int64(len(snap.Entries))
	// The bytes on disk now reflect generation snapGen. Changes that raced
	// the write keep the cache dirty (snapGen < gen), so the next periodic
	// save still runs.
	c.savedGen = snapGen
	c.mu.Unlock()
	return len(snap.Entries), nil
}

// entryToSnapshot renders one cache entry for the codec. The GreedyDual-
// Size credit is stored relative to the cache clock (clamped into
// [0, cost]) so it stays meaningful in the loading cache, whose clock
// differs. Stats.Shards — wall-clock diagnostics, not reproducible — is
// stripped.
func entryToSnapshot(entry *cacheEntry, clock float64) snapshot.Entry {
	ge := entry.ge
	credit := entry.h - clock
	if credit < 0 {
		credit = 0
	}
	if cost := float64(ge.Cost()); credit > cost {
		credit = cost
	}
	stats := ge.stats
	stats.Shards = nil
	return snapshot.Entry{
		Fingerprint: entry.key.fp,
		OptsDigest:  entry.key.opts,
		N:           ge.n,
		M:           ge.m,
		DeltaMax:    ge.deltaMax,
		FSF:         ge.fsf,
		Grid:        ge.grid,
		FDeltas:     ge.fdeltas,
		Credit:      credit,
		Stats:       stats,
	}
}

// Load decodes a snapshot from r and merges its entries into the cache,
// respecting the cache's entry and weight bounds (loading into a small
// cache evicts exactly as live inserts would). Entries already present are
// left untouched. Corrupt, unknown-version, and invariant-violating entries
// are skipped with typed errors in the report — never a panic, never a
// silently-wrong plan, and never a failed load of the healthy entries. The
// returned error is non-nil only when the file itself is unreadable (bad
// magic, unsupported format version, truncated header); the daemon treats
// that as "continue with a cold cache", not a boot failure.
func (c *PlanCache) Load(r io.Reader) (LoadReport, error) {
	snap, codecRep, err := snapshot.Decode(r)
	return c.load(snap, codecRep, err)
}

// LoadFile is Load reading from path. A missing file surfaces as the open
// error (errors.Is(err, fs.ErrNotExist)), which callers treat as a cold
// first boot rather than damage.
func (c *PlanCache) LoadFile(path string) (LoadReport, error) {
	snap, codecRep, err := snapshot.ReadFile(path)
	return c.load(snap, codecRep, err)
}

// load maps the codec's outcome to a LoadReport and, when the file itself
// was readable, merges the decoded entries.
func (c *PlanCache) load(snap *snapshot.Snapshot, codecRep *snapshot.Report, err error) (LoadReport, error) {
	rep := LoadReport{}
	if codecRep != nil {
		rep.SkippedCorrupt = codecRep.SkippedCorrupt
		rep.SkippedVersion = codecRep.SkippedVersion
		rep.Truncated = codecRep.Truncated
		rep.Errs = codecRep.Errs
	}
	if err != nil {
		return rep, err
	}
	c.mergeEntries(snap, &rep)
	return rep, nil
}

// mergeEntries validates and inserts decoded entries. The snapshot lists
// entries most-recently-used first; inserting in reverse order reproduces
// that recency order in the loading cache.
func (c *PlanCache) mergeEntries(snap *snapshot.Snapshot, rep *LoadReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.SnapshotLoads++
	for i := len(snap.Entries) - 1; i >= 0; i-- {
		e := &snap.Entries[i]
		ge, err := gridEvalFromSnapshot(e)
		if err != nil {
			rep.SkippedInvalid++
			rep.Errs = append(rep.Errs, &InvalidEntryError{Index: i, Reason: err.Error()})
			c.stats.SnapshotEntriesSkipped++
			continue
		}
		key := cacheKey{fp: e.Fingerprint, opts: e.OptsDigest}
		if _, ok := c.entries[key]; ok {
			rep.Duplicates++
			continue
		}
		credit := e.Credit
		if credit < 0 || math.IsNaN(credit) {
			credit = 0
		}
		if cost := float64(ge.Cost()); credit > cost {
			credit = cost
		}
		c.admitLocked(key, ge, c.clock+credit)
		rep.Loaded++
		c.stats.SnapshotEntriesLoaded++
	}
	c.stats.SnapshotEntriesSkipped += int64(rep.SkippedCorrupt + rep.SkippedVersion)
}

// gridEvalFromSnapshot reconstructs a GridEval from a decoded entry,
// enforcing the invariants every live evaluation satisfies. The grid check
// is exact — the stored grid must be bit-identical to the power-of-two grid
// its DeltaMax implies — so a plan that somehow decodes under the wrong
// geometry can never serve releases.
func gridEvalFromSnapshot(e *snapshot.Entry) (*GridEval, error) {
	if e.Fingerprint.IsZero() {
		return nil, fmt.Errorf("zero fingerprint")
	}
	if e.OptsDigest == "" {
		return nil, fmt.Errorf("empty options digest")
	}
	if e.N < 0 || e.M < 0 {
		return nil, fmt.Errorf("negative dimensions n=%d m=%d", e.N, e.M)
	}
	if !(e.DeltaMax >= 1) || math.IsInf(e.DeltaMax, 0) {
		return nil, fmt.Errorf("deltaMax %v out of range", e.DeltaMax)
	}
	wantGrid, err := mechanism.PowerOfTwoGrid(e.DeltaMax)
	if err != nil {
		return nil, fmt.Errorf("deltaMax %v yields no grid: %v", e.DeltaMax, err)
	}
	if len(e.Grid) != len(wantGrid) {
		return nil, fmt.Errorf("grid has %d points, deltaMax %v implies %d", len(e.Grid), e.DeltaMax, len(wantGrid))
	}
	for i, v := range e.Grid {
		if math.Float64bits(v) != math.Float64bits(wantGrid[i]) {
			return nil, fmt.Errorf("grid point %d is %v, want %v", i, v, wantGrid[i])
		}
	}
	if len(e.FDeltas) != len(e.Grid) {
		return nil, fmt.Errorf("grid has %d points but %d values", len(e.Grid), len(e.FDeltas))
	}
	maxFSF := float64(e.N - 1)
	if e.N == 0 {
		maxFSF = 0
	}
	if !(e.FSF >= 0 && e.FSF <= maxFSF) {
		return nil, fmt.Errorf("fsf %v outside [0, %v]", e.FSF, maxFSF)
	}
	for i, v := range e.FDeltas {
		if !(v >= 0 && v <= e.FSF) {
			return nil, fmt.Errorf("f_%v value %v outside [0, fsf=%v]", e.Grid[i], v, e.FSF)
		}
	}
	return &GridEval{
		n:           e.N,
		m:           e.M,
		deltaMax:    e.DeltaMax,
		optsDigest:  e.OptsDigest,
		fingerprint: e.Fingerprint,
		grid:        e.Grid,
		fdeltas:     e.FDeltas,
		fsf:         e.FSF,
		stats:       e.Stats,
	}, nil
}

// Fingerprints returns the distinct graph fingerprints currently cached, in
// most-recently-used-first order of their first appearance — introspection
// for tests and for operators deciding what a snapshot would persist.
func (c *PlanCache) Fingerprints() []graph.Fingerprint {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[graph.Fingerprint]bool, c.ll.Len())
	var out []graph.Fingerprint
	for el := c.ll.Front(); el != nil; el = el.Next() {
		fp := el.Value.(*cacheEntry).key.fp
		if !seen[fp] {
			seen[fp] = true
			out = append(out, fp)
		}
	}
	return out
}
