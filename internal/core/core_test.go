package core

import (
	"math"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
)

func TestOptionsValidation(t *testing.T) {
	g := generate.Path(4)
	if _, err := EstimateSpanningForestSize(g, Options{}); err == nil {
		t.Error("missing epsilon should fail")
	}
	if _, err := EstimateSpanningForestSize(g, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Beta: 2}); err == nil {
		t.Error("beta >= 1 should fail")
	}
	if _, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, DeltaMax: 0.5}); err == nil {
		t.Error("deltaMax < 1 should fail")
	}
	if _, err := EstimateComponentCount(g, Options{Epsilon: 1, CountBudgetFraction: 1.5}); err == nil {
		t.Error("bad budget fraction should fail")
	}
}

func TestEstimateSFAccuracyOnPath(t *testing.T) {
	// A path has Δ* = 2: the estimate should concentrate near f_sf with
	// error O(Δ*·lnln n/ε). We assert a generous bound over repetitions.
	g := generate.Path(200)
	fsf := float64(g.SpanningForestSize())
	rng := generate.NewRand(1)
	const trials = 30
	maxErr := 0.0
	for i := 0; i < trials; i++ {
		res, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(res.Value - fsf); e > maxErr {
			maxErr = e
		}
		if res.Delta < 1 {
			t.Fatalf("selected Δ̂=%v < 1", res.Delta)
		}
	}
	if maxErr > 120 {
		t.Fatalf("max error %v too large for a path at ε=1", maxErr)
	}
}

func TestEstimateSFSelectsSmallDeltaOnMatching(t *testing.T) {
	// A perfect matching has a spanning 1-forest, so f_1 = f_sf and GEM
	// should pick Δ̂ = 1 or 2 almost always.
	g := generate.Matching(100)
	rng := generate.NewRand(2)
	small := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		res, err := EstimateSpanningForestSize(g, Options{Epsilon: 2, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delta <= 2 {
			small++
		}
	}
	if small < trials*3/4 {
		t.Fatalf("GEM picked Δ̂ ≤ 2 only %d/%d times", small, trials)
	}
}

func TestEstimateSFDiagnostics(t *testing.T) {
	g := generate.Star(10)
	res, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: generate.NewRand(3)})
	if err != nil {
		t.Fatal(err)
	}
	// Grid for n=11: {1,2,4,8} (Δmax = 11).
	if len(res.Evaluations) != 4 {
		t.Fatalf("grid size %d, want 4", len(res.Evaluations))
	}
	// f_Δ(K_{1,10}) = min(10, Δ); check the recorded diagnostics.
	for _, ev := range res.Evaluations {
		want := math.Min(10, ev.Delta)
		if math.Abs(ev.FDelta-want) > 1e-5 {
			t.Fatalf("f_%v = %v, want %v", ev.Delta, ev.FDelta, want)
		}
	}
	if res.NoiseScale <= 0 {
		t.Fatal("noise scale must be positive")
	}
}

func TestEstimateComponentCount(t *testing.T) {
	// 50 planted triangles: f_cc = 50. ε=2 should land nearby.
	sizes := make([]int, 50)
	for i := range sizes {
		sizes[i] = 3
	}
	g := generate.PlantedComponents(sizes, 1.0, generate.NewRand(4))
	rng := generate.NewRand(5)
	res, err := EstimateComponentCount(g, Options{Epsilon: 2, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-50) > 40 {
		t.Fatalf("estimate %v too far from 50", res.Value)
	}
	if res.NHat == 0 {
		t.Fatal("NHat should be set in component-count mode")
	}
}

func TestEstimateComponentCountKnownN(t *testing.T) {
	g := generate.Matching(30) // f_cc = 30, n = 60
	rng := generate.NewRand(6)
	res, err := EstimateComponentCountKnownN(g, Options{Epsilon: 2, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.NHat != 60 {
		t.Fatalf("known n should be exact, got %v", res.NHat)
	}
	if math.Abs(res.Value-30) > 25 {
		t.Fatalf("estimate %v too far from 30", res.Value)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.New(0), graph.New(1), graph.New(5)} {
		res, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: generate.NewRand(7)})
		if err != nil {
			t.Fatalf("n=%d: %v", g.N(), err)
		}
		// f_sf = 0; the noisy estimate should at least be finite and the
		// extension value exactly 0.
		if res.FDelta != 0 {
			t.Fatalf("n=%d: f_Δ̂ = %v, want 0", g.N(), res.FDelta)
		}
		if math.IsNaN(res.Value) {
			t.Fatalf("n=%d: NaN release", g.N())
		}
	}
}

func TestDeterministicWithSeededRand(t *testing.T) {
	g := generate.ErdosRenyi(40, 0.05, generate.NewRand(8))
	a, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: generate.NewRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: generate.NewRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Delta != b.Delta {
		t.Fatal("same seed must reproduce the release exactly")
	}
}

func TestCryptoRandDefault(t *testing.T) {
	// With no Rand supplied, the crypto source is used; just a smoke test.
	g := generate.Path(5)
	if _, err := EstimateSpanningForestSize(g, Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaDefaultClamped(t *testing.T) {
	opts, err := Options{Epsilon: 1}.withDefaults(10)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Beta != 0.5 {
		t.Fatalf("beta for n=10 should clamp to 0.5, got %v", opts.Beta)
	}
	opts, err = Options{Epsilon: 1}.withDefaults(100000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Log(math.Log(100000))
	if math.Abs(opts.Beta-want) > 1e-12 {
		t.Fatalf("beta = %v, want %v", opts.Beta, want)
	}
}

func TestNoiseInterval(t *testing.T) {
	g := generate.Matching(20)
	res, err := EstimateSpanningForestSize(g, Options{Epsilon: 1, Rand: generate.NewRand(11)})
	if err != nil {
		t.Fatal(err)
	}
	w50, err := res.NoiseInterval(0.5)
	if err != nil {
		t.Fatal(err)
	}
	w05, err := res.NoiseInterval(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if w50 <= 0 || w05 <= w50 {
		t.Fatalf("interval widths: 50%%=%v 95%%=%v", w50, w05)
	}
	// Lemma 2.3: width at confidence 1-beta is scale*ln(1/beta).
	if math.Abs(w05-res.NoiseScale*math.Log(20)) > 1e-9 {
		t.Fatalf("w05 = %v, want %v", w05, res.NoiseScale*math.Log(20))
	}
	if _, err := res.NoiseInterval(0); err == nil {
		t.Error("beta=0 should fail")
	}
	if _, err := res.NoiseInterval(1); err == nil {
		t.Error("beta=1 should fail")
	}
	if _, err := (Result{}).NoiseInterval(0.5); err == nil {
		t.Error("zero result should fail")
	}
}

// TestNoiseIntervalCoverage checks empirically that the injected noise
// falls inside the interval at the advertised rate.
func TestNoiseIntervalCoverage(t *testing.T) {
	g := generate.Matching(50)
	prep, err := PrepareSpanningForest(g, Options{Epsilon: 1, Rand: generate.NewRand(12)})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2000
	beta := 0.2
	covered := 0
	for i := 0; i < trials; i++ {
		res, err := prep.Release()
		if err != nil {
			t.Fatal(err)
		}
		w, err := res.NoiseInterval(beta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-res.FDelta) <= w {
			covered++
		}
	}
	rate := float64(covered) / trials
	if math.Abs(rate-(1-beta)) > 0.04 {
		t.Fatalf("coverage %v, want ≈ %v", rate, 1-beta)
	}
}

func TestDiscreteRelease(t *testing.T) {
	g := generate.Matching(30)
	res, err := EstimateSpanningForestSize(g, Options{
		Epsilon: 1, Rand: generate.NewRand(13), DiscreteRelease: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != math.Round(res.Value) {
		t.Fatalf("discrete release produced non-integer %v", res.Value)
	}
	// The discrete scale is (Δ̂+1)/(ε/2), strictly above the float scale.
	if res.NoiseScale <= res.Delta/(0.5) {
		t.Fatalf("discrete noise scale %v should exceed %v", res.NoiseScale, res.Delta/0.5)
	}
}

func TestDiscreteReleaseConcentrates(t *testing.T) {
	g := generate.Matching(50) // f_sf = 50, Δ* = 1
	prep, err := PrepareSpanningForest(g, Options{
		Epsilon: 2, Rand: generate.NewRand(14), DiscreteRelease: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := prep.Release()
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Value
	}
	if mean := sum / trials; math.Abs(mean-50) > 3 {
		t.Fatalf("discrete release mean %v, want ≈ 50", mean)
	}
}
