package core

// Fault-injection tests for the plan cache: a save torn between write and
// rename must leave a cold start on the previous snapshot clean and
// complete, and an injected admission failure must never install a
// partial entry.

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"nodedp/internal/fault"
	"nodedp/internal/generate"
)

// TestTornSnapshotColdStart is the satellite's crash-mid-save drill: a
// snapshot exists, a later save dies between writing the temp file and the
// rename, and the next daemon boot must load the intact previous snapshot
// with zero skipped entries.
func TestTornSnapshotColdStart(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "cache.snap")

	live := NewPlanCacheWeighted(1 << 30)
	if _, _, err := live.GridEval(ctx, generate.Grid(4, 4), Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if n, err := live.SaveFile(path); err != nil || n != 1 {
		t.Fatalf("first save = %d, %v", n, err)
	}

	// Grow the cache, then tear the second save at the rename.
	if _, _, err := live.GridEval(ctx, generate.ErdosRenyi(30, 0.05, generate.NewRand(7)), Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("snapshot.write.rename=always"); err != nil {
		t.Fatal(err)
	}
	if _, err := live.SaveFile(path); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn save err = %v, want injected", err)
	}
	fault.Reset()

	// Cold start: a fresh cache must load the first snapshot, whole.
	warm := NewPlanCacheWeighted(1 << 30)
	rep, err := warm.LoadFile(path)
	if err != nil {
		t.Fatalf("cold start after torn save: %v", err)
	}
	if rep.Loaded != 1 || rep.Skipped() != 0 {
		t.Fatalf("cold start salvaged %d entries, skipped %d; want 1 loaded, 0 skipped", rep.Loaded, rep.Skipped())
	}
	// The reloaded plan serves the original lookup as a hit.
	if _, hit, err := warm.GridEval(ctx, generate.Grid(4, 4), Options{Epsilon: 1}); err != nil || !hit {
		t.Fatalf("reloaded lookup: hit=%v, %v", hit, err)
	}
}

// TestAdmissionFaultInstallsNothing: an injected failure at the cache
// admission site fails the GridEval call AND leaves the cache empty — no
// partial or poisoned plan may be observable afterwards.
func TestAdmissionFaultInstallsNothing(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	g := generate.Grid(4, 4)

	c := NewPlanCacheWeighted(1 << 30)
	if err := fault.Arm("core.cache.admit=nth:1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GridEval(ctx, g, Options{Epsilon: 1}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("GridEval err = %v, want injected", err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Weight != 0 {
		t.Fatalf("failed admission left state behind: %+v", st)
	}

	// The failure is not sticky: the next evaluation (failpoint spent)
	// computes and admits normally, bit-identical to an uncontaminated
	// cache's plan.
	ge, hit, err := c.GridEval(ctx, g, Options{Epsilon: 1})
	if err != nil || hit {
		t.Fatalf("retry after injected admission failure: hit=%v, %v", hit, err)
	}
	fault.Reset()
	clean := NewPlanCacheWeighted(1 << 30)
	geClean, _, err := clean.GridEval(ctx, g, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := releaseTriple(t, ge, 5)
	b := releaseTriple(t, geClean, 5)
	for i := range a {
		if !sameBits(a[i].Value, b[i].Value) {
			t.Fatalf("release %d after recovery differs: %v vs %v", i, a[i].Value, b[i].Value)
		}
	}
}
