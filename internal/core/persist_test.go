package core

// Conformance tests for plan-cache persistence: a snapshot-reloaded plan
// must be indistinguishable — bit for bit, including seeded private
// releases, plan digests, and admission weights — from the live plan that
// was saved, across graph families and separation-worker configurations;
// and damaged snapshots must degrade by skipping entries, never by loading
// a wrong plan or panicking.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/snapshot"
)

// persistFamilies spans the structurally distinct regimes: a sparse ER
// graph (many components, fast paths), a grid (one structured component),
// and a supercritical ER giant component (LP-heavy, the case warm starts
// and cut pools exist for).
func persistFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"er-sparse": generate.ErdosRenyi(60, 0.02, generate.NewRand(11)),
		"grid":      generate.Grid(7, 7),
		"er-giant":  generate.ErdosRenyi(40, 0.12, generate.NewRand(12)),
	}
}

// releaseTriple runs the three seeded release paths on one grid evaluation.
func releaseTriple(t *testing.T, ge *GridEval, seed uint64) [3]Result {
	t.Helper()
	var out [3]Result
	for i, run := range []func(context.Context, *GridEval, Options) (Result, error){
		EstimateComponentCountFromGrid,
		EstimateComponentCountKnownNFromGrid,
		EstimateSpanningForestSizeFromGrid,
	} {
		res, err := run(context.Background(), ge, Options{Epsilon: 0.7, Rand: generate.NewRand(seed + uint64(i))})
		if err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestPlanCacheSaveLoadBitIdentity is the core of the conformance suite:
// for every graph family and SepWorkers ∈ {1, 8}, a cache saved and
// reloaded into a fresh cache serves the lookup as a hit, with the same
// plan digest and admission weight, and seeded releases from the reloaded
// plan are bit-identical to releases from the live plan.
func TestPlanCacheSaveLoadBitIdentity(t *testing.T) {
	ctx := context.Background()
	for name, g := range persistFamilies(t) {
		for _, sepWorkers := range []int{1, 8} {
			opts := Options{Epsilon: 1}
			opts.ForestLP.SepWorkers = sepWorkers

			live := NewPlanCacheWeighted(1 << 30)
			geLive, hit, err := live.GridEval(ctx, g, opts)
			if err != nil {
				t.Fatalf("%s/sep=%d: %v", name, sepWorkers, err)
			}
			if hit {
				t.Fatalf("%s/sep=%d: first lookup was a hit", name, sepWorkers)
			}

			var buf bytes.Buffer
			n, err := live.Save(&buf)
			if err != nil || n != 1 {
				t.Fatalf("%s/sep=%d: Save = %d, %v", name, sepWorkers, n, err)
			}

			warm := NewPlanCacheWeighted(1 << 30)
			rep, err := warm.Load(bytes.NewReader(buf.Bytes()))
			if err != nil || rep.Loaded != 1 || rep.Skipped() != 0 {
				t.Fatalf("%s/sep=%d: Load report %+v, err %v", name, sepWorkers, rep, err)
			}

			geWarm, hit, err := warm.GridEval(ctx, g, opts)
			if err != nil {
				t.Fatalf("%s/sep=%d: warm lookup: %v", name, sepWorkers, err)
			}
			if !hit {
				t.Fatalf("%s/sep=%d: reloaded cache missed — the restart would replan", name, sepWorkers)
			}

			// The reloaded evaluation IS the saved one, field for field.
			if geWarm.optsDigest != geLive.optsDigest {
				t.Fatalf("%s/sep=%d: plan digest changed across reload:\nlive %s\nwarm %s",
					name, sepWorkers, geLive.optsDigest, geWarm.optsDigest)
			}
			if geWarm.fingerprint != geLive.fingerprint || geWarm.n != geLive.n || geWarm.m != geLive.m {
				t.Fatalf("%s/sep=%d: identity fields changed across reload", name, sepWorkers)
			}
			if !sameBits(geWarm.fsf, geLive.fsf) || !sameBits(geWarm.deltaMax, geLive.deltaMax) {
				t.Fatalf("%s/sep=%d: fsf/deltaMax changed across reload", name, sepWorkers)
			}
			for i := range geLive.fdeltas {
				if !sameBits(geWarm.fdeltas[i], geLive.fdeltas[i]) || !sameBits(geWarm.grid[i], geLive.grid[i]) {
					t.Fatalf("%s/sep=%d: grid value %d changed across reload", name, sepWorkers, i)
				}
			}
			geWarm.stats.Shards = nil // durations are deliberately not persisted
			stripped := geLive.stats
			stripped.Shards = nil
			if !reflect.DeepEqual(geWarm.stats, stripped) {
				t.Fatalf("%s/sep=%d: engine counters changed across reload:\nlive %+v\nwarm %+v",
					name, sepWorkers, stripped, geWarm.stats)
			}

			// Seeded releases from the reloaded plan are bit-identical.
			for _, seed := range []uint64{1, 42, 9999} {
				want := releaseTriple(t, geLive, seed)
				got := releaseTriple(t, geWarm, seed)
				for i := range want {
					if !sameBits(got[i].Value, want[i].Value) || !sameBits(got[i].Delta, want[i].Delta) ||
						!sameBits(got[i].NoiseScale, want[i].NoiseScale) || !sameBits(got[i].NHat, want[i].NHat) ||
						!sameBits(got[i].FDelta, want[i].FDelta) {
						t.Fatalf("%s/sep=%d seed=%d release %d differs after reload:\nlive %+v\nwarm %+v",
							name, sepWorkers, seed, i, want[i], got[i])
					}
				}
			}

			// CacheStats weights — the GreedyDual-Size admission state — carry
			// across: same entry weights, same total.
			ls, ws := live.Stats(), warm.Stats()
			if ls.Weight != ws.Weight || !reflect.DeepEqual(ls.EntryWeights, ws.EntryWeights) {
				t.Fatalf("%s/sep=%d: weights changed across reload: live %v/%v warm %v/%v",
					name, sepWorkers, ls.Weight, ls.EntryWeights, ws.Weight, ws.EntryWeights)
			}
			if ws.SnapshotLoads != 1 || ws.SnapshotEntriesLoaded != 1 || ls.SnapshotSaves != 1 || ls.SnapshotEntriesSaved != 1 {
				t.Fatalf("%s/sep=%d: snapshot counters wrong: live %+v warm %+v", name, sepWorkers, ls, ws)
			}
		}
	}
}

// TestSaveLoadMultiEntryOrderAndCredit: a multi-entry cache round-trips its
// recency order and eviction credits, so the reloaded cache evicts in the
// same order the live one would have.
func TestSaveLoadMultiEntryOrderAndCredit(t *testing.T) {
	ctx := context.Background()
	live := NewPlanCacheWeighted(1 << 30)
	for name, g := range persistFamilies(t) {
		if _, _, err := live.GridEval(ctx, g, Options{Epsilon: 1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	var buf bytes.Buffer
	if _, err := live.Save(&buf); err != nil {
		t.Fatal(err)
	}
	warm := NewPlanCacheWeighted(1 << 30)
	if rep, err := warm.Load(bytes.NewReader(buf.Bytes())); err != nil || rep.Loaded != 3 {
		t.Fatalf("load: %+v, %v", rep, err)
	}

	if got, want := warm.Fingerprints(), live.Fingerprints(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recency order changed across reload:\nlive %v\nwarm %v", want, got)
	}
	// Per-entry GreedyDual-Size credits survive: compare the internal h
	// values relative to each cache's clock.
	liveCredits := entryCredits(live)
	warmCredits := entryCredits(warm)
	if !reflect.DeepEqual(liveCredits, warmCredits) {
		t.Fatalf("eviction credits changed across reload:\nlive %v\nwarm %v", liveCredits, warmCredits)
	}
}

// entryCredits returns each entry's credit above the cache clock in MRU
// order (clamped the way Save clamps).
func entryCredits(c *PlanCache) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []float64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		credit := e.h - c.clock
		if credit < 0 {
			credit = 0
		}
		if cost := float64(e.ge.Cost()); credit > cost {
			credit = cost
		}
		out = append(out, credit)
	}
	return out
}

// TestLoadRespectsBounds: loading a big snapshot into a small cache evicts
// exactly as live inserts would — the bound holds, nothing overflows.
func TestLoadRespectsBounds(t *testing.T) {
	ctx := context.Background()
	live := NewPlanCacheWeighted(1 << 30)
	for _, g := range persistFamilies(t) {
		if _, _, err := live.GridEval(ctx, g, Options{Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := live.Save(&buf); err != nil {
		t.Fatal(err)
	}

	small := NewPlanCache(2) // entry-bounded
	rep, err := small.Load(bytes.NewReader(buf.Bytes()))
	if err != nil || rep.Loaded != 3 {
		t.Fatalf("load: %+v, %v", rep, err)
	}
	if small.Len() != 2 {
		t.Fatalf("entry bound violated after load: %d entries", small.Len())
	}
	if s := small.Stats(); s.Evictions != 1 {
		t.Fatalf("expected 1 eviction during bounded load, got %+v", s)
	}
}

// TestLoadSkipsDamagedEntries: a snapshot with one bit-flipped entry loads
// the healthy entries and reports the damage with a typed error; nothing
// wrong enters the cache and nothing panics.
func TestLoadSkipsDamagedEntries(t *testing.T) {
	ctx := context.Background()
	live := NewPlanCacheWeighted(1 << 30)
	for _, g := range persistFamilies(t) {
		if _, _, err := live.GridEval(ctx, g, Options{Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := live.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte inside the first entry's payload (after 16-byte header +
	// 4-byte length prefix + a few fields).
	raw[16+4+20] ^= 0x10

	warm := NewPlanCacheWeighted(1 << 30)
	rep, err := warm.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rep.Loaded != 2 || rep.SkippedCorrupt != 1 {
		t.Fatalf("report %+v, want 2 loaded + 1 corrupt", rep)
	}
	var cerr *snapshot.CorruptEntryError
	if len(rep.Errs) == 0 || !errors.As(rep.Errs[0], &cerr) {
		t.Fatalf("errs %v, want a typed CorruptEntryError", rep.Errs)
	}
	if s := warm.Stats(); s.SnapshotEntriesSkipped != 1 || s.SnapshotEntriesLoaded != 2 {
		t.Fatalf("snapshot counters %+v", s)
	}
}

// TestLoadRejectsInvariantViolations: an entry that passes its checksum but
// violates a grid-evaluation invariant (here: a value above f_sf, and a
// grid that disagrees with its DeltaMax) is skipped with a typed
// *InvalidEntryError — the "never load a silently-wrong plan" half of the
// contract that checksums alone cannot give.
func TestLoadRejectsInvariantViolations(t *testing.T) {
	mk := func(mutate func(*snapshot.Entry)) []byte {
		e := snapshot.Entry{
			Fingerprint: graph.Fingerprint{Hi: 3, Lo: 4},
			OptsDigest:  "dmax=4 …",
			N:           4, M: 3,
			DeltaMax: 4,
			FSF:      3,
			Grid:     []float64{1, 2, 4},
			FDeltas:  []float64{2, 3, 3},
		}
		mutate(&e)
		var buf bytes.Buffer
		if err := snapshot.Encode(&buf, &snapshot.Snapshot{Entries: []snapshot.Entry{e}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := map[string]func(*snapshot.Entry){
		"value above fsf":     func(e *snapshot.Entry) { e.FDeltas[1] = 5 },
		"negative value":      func(e *snapshot.Entry) { e.FDeltas[0] = -1 },
		"grid/deltaMax clash": func(e *snapshot.Entry) { e.Grid = []float64{1, 3, 4} },
		"fsf above n-1":       func(e *snapshot.Entry) { e.FSF = 9; e.FDeltas = []float64{2, 3, 3} },
		"zero fingerprint":    func(e *snapshot.Entry) { e.Fingerprint = graph.Fingerprint{} },
		"empty digest":        func(e *snapshot.Entry) { e.OptsDigest = "" },
		"NaN value":           func(e *snapshot.Entry) { e.FDeltas[0] = math.NaN() },
	}
	for name, mutate := range cases {
		c := NewPlanCache(4)
		rep, err := c.Load(bytes.NewReader(mk(mutate)))
		if err != nil {
			t.Fatalf("%s: Load: %v", name, err)
		}
		if rep.Loaded != 0 || rep.SkippedInvalid != 1 {
			t.Fatalf("%s: report %+v, want the entry skipped as invalid", name, rep)
		}
		var ierr *InvalidEntryError
		if len(rep.Errs) != 1 || !errors.As(rep.Errs[0], &ierr) {
			t.Fatalf("%s: errs %v, want InvalidEntryError", name, rep.Errs)
		}
		if c.Len() != 0 {
			t.Fatalf("%s: invalid entry entered the cache", name)
		}
	}

	// The control encodes cleanly.
	c := NewPlanCache(4)
	if rep, err := c.Load(bytes.NewReader(mk(func(*snapshot.Entry) {}))); err != nil || rep.Loaded != 1 {
		t.Fatalf("control entry did not load: %+v, %v", rep, err)
	}
}

// TestLoadDuplicateKeepsLiveEntry: loading a snapshot over a cache that
// already holds the key keeps the live entry and reports a duplicate.
func TestLoadDuplicateKeepsLiveEntry(t *testing.T) {
	ctx := context.Background()
	g := generate.Grid(5, 5)
	c := NewPlanCacheWeighted(1 << 30)
	geLive, _, err := c.GridEval(ctx, g, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Load(bytes.NewReader(buf.Bytes()))
	if err != nil || rep.Loaded != 0 || rep.Duplicates != 1 {
		t.Fatalf("report %+v, err %v, want 1 duplicate", rep, err)
	}
	geAgain, hit, err := c.GridEval(ctx, g, Options{Epsilon: 1})
	if err != nil || !hit || geAgain != geLive {
		t.Fatalf("live entry was displaced by the loaded duplicate")
	}
}

// TestLoadFileMissingAndCorruptHeader: the daemon's two cold-start cases —
// no file yet (fs.ErrNotExist) and an unreadable file (typed error) — both
// leave the cache empty and usable.
func TestLoadFileMissingAndCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	c := NewPlanCache(4)

	if _, err := c.LoadFile(filepath.Join(dir, "absent.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}

	bad := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(bad, []byte("this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadFile(bad); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("garbage file: err = %v, want ErrBadMagic", err)
	}

	future := filepath.Join(dir, "future.snap")
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, &snapshot.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[8:12], snapshot.FormatVersion+3)
	if err := os.WriteFile(future, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var verr *snapshot.UnsupportedVersionError
	if _, err := c.LoadFile(future); !errors.As(err, &verr) {
		t.Fatalf("future file: err = %v, want UnsupportedVersionError", err)
	}

	if c.Len() != 0 {
		t.Fatal("failed loads left entries behind")
	}
}

// TestSaveFileAtomic: SaveFile writes a decodable file, and a failed save
// (nonexistent directory) neither creates the file nor counts a save.
func TestSaveFileAtomic(t *testing.T) {
	ctx := context.Background()
	c := NewPlanCacheWeighted(1 << 30)
	if _, _, err := c.GridEval(ctx, generate.Grid(4, 4), Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cache.snap")
	if n, err := c.SaveFile(path); err != nil || n != 1 {
		t.Fatalf("SaveFile = %d, %v", n, err)
	}
	warm := NewPlanCacheWeighted(1 << 30)
	if rep, err := warm.LoadFile(path); err != nil || rep.Loaded != 1 {
		t.Fatalf("reload: %+v, %v", rep, err)
	}

	before := c.Stats().SnapshotSaves
	if _, err := c.SaveFile(filepath.Join(t.TempDir(), "no-such", "cache.snap")); err == nil {
		t.Fatal("save into nonexistent directory succeeded")
	}
	if after := c.Stats().SnapshotSaves; after != before {
		t.Fatalf("failed save still counted: %d → %d", before, after)
	}
}
