package core

// Regression test for the Invalidate-vs-single-flight race: an Invalidate
// that returns while a leader is still evaluating the same fingerprint
// must prevent that leader's finished plan from (a) being admitted to the
// cache behind the invalidator's back and (b) being adopted as a hit by
// coalesced waiters. Run under -race in CI (chaos-smoke covers this
// package's dependents; the lint/test job runs the full tree with -race).

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"nodedp/internal/graph"
)

// invalidateRaceGraph is a connected ~110-vertex graph dense enough that
// one grid evaluation takes long enough to orchestrate against.
func invalidateRaceGraph(t *testing.T) *graph.Graph {
	t.Helper()
	const n = 110
	g := graph.New(n)
	rng := rand.New(rand.NewPCG(7, 13))
	for v := 1; v < n; v++ {
		if err := g.AddEdge(rng.IntN(v), v); err != nil { // spanning, connected
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestPlanCacheInvalidateCancelsInflightLeader(t *testing.T) {
	g := invalidateRaceGraph(t)
	cache := NewPlanCache(4)
	opts := Options{Epsilon: 1}

	type outcome struct {
		ge  *GridEval
		hit bool
		err error
	}
	leaderDone := make(chan outcome, 1)
	waiterDone := make(chan outcome, 1)

	go func() {
		ge, hit, err := cache.GridEval(context.Background(), g, opts)
		leaderDone <- outcome{ge, hit, err}
	}()
	// The leader registers its flight before evaluating, so a populated
	// inflight map means the evaluation window is open.
	waitFor(t, "leader flight registration", func() bool {
		cache.mu.Lock()
		defer cache.mu.Unlock()
		return len(cache.inflight) > 0
	})
	go func() {
		ge, hit, err := cache.GridEval(context.Background(), g, opts)
		waiterDone <- outcome{ge, hit, err}
	}()
	waitFor(t, "waiter coalescing", func() bool {
		cache.mu.Lock()
		defer cache.mu.Unlock()
		return cache.stats.Coalesced >= 1
	})
	if len(leaderDone) != 0 {
		t.Skip("evaluation finished before Invalidate could race it; graph too small for this machine")
	}

	if removed := cache.Invalidate(g.Fingerprint()); removed != 0 {
		t.Fatalf("Invalidate removed %d cached entries mid-flight, want 0 (nothing admitted yet)", removed)
	}

	// The leader keeps its own result — it is correct for the snapshot it
	// evaluated — but the result must not have been admitted.
	leader := <-leaderDone
	if leader.err != nil || leader.ge == nil {
		t.Fatalf("leader: hit=%v err=%v", leader.hit, leader.err)
	}
	if leader.hit {
		t.Fatal("leader reports a hit; it evaluated")
	}

	// The waiter must not adopt the invalidated flight's plan: it loops,
	// takes over as a fresh miss, and evaluates its own plan.
	waiter := <-waiterDone
	if waiter.err != nil || waiter.ge == nil {
		t.Fatalf("waiter: hit=%v err=%v", waiter.hit, waiter.err)
	}
	if waiter.hit {
		t.Fatal("waiter adopted the invalidated leader's result as a hit")
	}
	if waiter.ge == leader.ge {
		t.Fatal("waiter received the invalidated leader's evaluation pointer")
	}

	st := cache.Stats()
	// Each logical lookup counts once: the leader as the miss, the waiter
	// as coalesced (its takeover re-run does not recount). The leak would
	// show up above as waiter.hit with the leader's pointer.
	if st.Misses != 1 || st.Coalesced != 1 {
		t.Errorf("(misses, coalesced) = (%d, %d), want (1, 1)", st.Misses, st.Coalesced)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (only the waiter's post-invalidation plan)", st.Entries)
	}

	// The surviving entry is the waiter's: a fresh lookup hits it.
	ge, hit, err := cache.GridEval(context.Background(), g, opts)
	if err != nil || !hit {
		t.Fatalf("post-race lookup: hit=%v err=%v", hit, err)
	}
	if ge != waiter.ge {
		t.Error("cache serves a different plan than the waiter's re-evaluation")
	}
}
