package core

// Tests for the dirty-bit snapshot gate: SaveFileIfChanged must skip the
// write when nothing a snapshot persists has changed since the last save,
// and must write again after any persisted mutation — an insert, a hit
// (recency and credit are persisted state), or an invalidation.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"nodedp/internal/generate"
)

// mtime-free helper: read the snapshot bytes so "file rewritten" can be
// asserted by content identity rather than timestamps (which have coarse
// granularity on some filesystems).
func snapBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSaveFileIfChangedSkipsWhenClean(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "plans.snap")
	c := NewPlanCacheWeighted(1 << 30)
	g := generate.ErdosRenyi(40, 0.05, generate.NewRand(5))
	if _, _, err := c.GridEval(ctx, g, Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}

	n, saved, err := c.SaveFileIfChanged(path)
	if err != nil || !saved || n != 1 {
		t.Fatalf("first save: n=%d saved=%v err=%v, want a real write of 1 entry", n, saved, err)
	}

	// Nothing changed: the next two periodic saves must be skipped, counted,
	// and leave the file untouched.
	before := snapBytes(t, path)
	for i := 0; i < 2; i++ {
		n, saved, err = c.SaveFileIfChanged(path)
		if err != nil || saved || n != 0 {
			t.Fatalf("clean save %d: n=%d saved=%v err=%v, want skip", i, n, saved, err)
		}
	}
	if got := c.Stats().SnapshotSavesSkipped; got != 2 {
		t.Fatalf("SnapshotSavesSkipped = %d, want 2", got)
	}
	if got := c.Stats().SnapshotSaves; got != 1 {
		t.Fatalf("SnapshotSaves = %d, want 1 (skips must not count as saves)", got)
	}
	if string(snapBytes(t, path)) != string(before) {
		t.Fatal("skipped save rewrote the snapshot file")
	}
}

func TestSaveFileIfChangedDirtyTriggers(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "plans.snap")
	c := NewPlanCacheWeighted(1 << 30)
	g1 := generate.ErdosRenyi(40, 0.05, generate.NewRand(5))
	g2 := generate.Grid(6, 6)
	if _, _, err := c.GridEval(ctx, g1, Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, saved, err := c.SaveFileIfChanged(path); err != nil || !saved {
		t.Fatalf("initial save: saved=%v err=%v", saved, err)
	}

	// A cache hit is a persisted mutation: it refreshes the entry's recency
	// and GreedyDual-Size credit, both of which Save serializes.
	if _, hit, err := c.GridEval(ctx, g1, Options{Epsilon: 1}); err != nil || !hit {
		t.Fatalf("expected hit: hit=%v err=%v", hit, err)
	}
	if _, saved, err := c.SaveFileIfChanged(path); err != nil || !saved {
		t.Fatalf("save after hit: saved=%v err=%v, want a write", saved, err)
	}

	// An insert dirties the cache.
	if _, _, err := c.GridEval(ctx, g2, Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	n, saved, err := c.SaveFileIfChanged(path)
	if err != nil || !saved || n != 2 {
		t.Fatalf("save after insert: n=%d saved=%v err=%v, want 2 entries", n, saved, err)
	}

	// An invalidation dirties the cache; invalidating a fingerprint that is
	// not cached does not.
	fp := c.Fingerprints()[0]
	if removed := c.Invalidate(fp); removed == 0 {
		t.Fatal("Invalidate removed nothing")
	}
	if _, saved, err := c.SaveFileIfChanged(path); err != nil || !saved {
		t.Fatalf("save after invalidate: saved=%v err=%v, want a write", saved, err)
	}
	if removed := c.Invalidate(fp); removed != 0 {
		t.Fatalf("second Invalidate removed %d", removed)
	}
	if _, saved, err := c.SaveFileIfChanged(path); err != nil || saved {
		t.Fatalf("save after no-op invalidate: saved=%v err=%v, want skip", saved, err)
	}
}

// TestSaveFileIfChangedLoadDirties: merging snapshot entries into a cache
// is an insert, so a freshly loaded cache saves once and then goes quiet.
func TestSaveFileIfChangedLoadDirties(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	src := filepath.Join(dir, "src.snap")
	dst := filepath.Join(dir, "dst.snap")

	c := NewPlanCacheWeighted(1 << 30)
	g := generate.ErdosRenyi(40, 0.05, generate.NewRand(5))
	if _, _, err := c.GridEval(ctx, g, Options{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveFile(src); err != nil {
		t.Fatal(err)
	}

	warm := NewPlanCacheWeighted(1 << 30)
	if rep, err := warm.LoadFile(src); err != nil || rep.Loaded != 1 {
		t.Fatalf("load: %+v, %v", rep, err)
	}
	if _, saved, err := warm.SaveFileIfChanged(dst); err != nil || !saved {
		t.Fatalf("save after load: saved=%v err=%v, want a write", saved, err)
	}
	if _, saved, err := warm.SaveFileIfChanged(dst); err != nil || saved {
		t.Fatalf("second save after load: saved=%v err=%v, want skip", saved, err)
	}
}
