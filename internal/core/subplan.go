package core

// This file implements the component-keyed sub-plan layer of the PlanCache.
// f_Δ is additive over connected components, so a whole-graph grid
// evaluation is the per-grid-point sum of independent per-component
// evaluations — and those per-component results are cacheable under the
// component's own canonical fingerprint. The cache's miss path therefore
// assembles evaluations component-wise: each non-trivial component either
// hits the sub-plan cache or is evaluated as a single-shard forestlp plan,
// and the per-component value vectors are merged in deterministic shard
// order. After a graph mutation (Session.ApplyDelta) only the touched
// components have new fingerprints; every untouched component hits, so a
// delta-open re-plans O(touched) instead of O(graph).
//
// Bit-identity is the load-bearing property: the assembled evaluation must
// equal the monolithic forestlp sweep bit for bit, in values and counters,
// or a delta-open would diverge from a cold open of the same graph. It
// holds by construction:
//
//   - Values: the monolithic engine evaluates each shard independently
//     (per-shard clamp to [0, n_i−1] inside planShard.eval), sums the
//     per-shard values in shard-index order, and clamps the total to
//     [0, f_sf]. A single-component plan's outer clamp to its own f_sf is
//     a no-op re-clamp, so the stored sub-plan vector is exactly the
//     per-shard contribution, and the merge below repeats the monolithic
//     sum — same addends, same order, same final clamp.
//   - Warm state: a grid sweep's warm-start state is strictly per-shard
//     and the grid points run sequentially in both shapes, so each shard
//     sees the identical (Δ, warm-state) sequence.
//   - Stats: integer counters are additive and max-gauges commute, so
//     summing per-component grid aggregates equals aggregating the
//     monolithic per-round sums; the only two fields that depend on the
//     evaluation's shape rather than its content — Workers and Components
//     — are overwritten with the values the monolithic sweep would have
//     reported. (Per-shard timing records are the one diagnostic that is
//     not propagated: their shard indices are meaningless across cache
//     reuse, so stored sub-plans drop them.)
//
// Sub-plans are bounded by a simple entry-count LRU, separate from the
// whole-graph entry bounds, and are not persisted in snapshots: they are
// derived state, cheap to refill, and keyed by fingerprints that a snapshot
// of whole-graph evaluations cannot validate.

import (
	"context"
	"fmt"

	"nodedp/internal/fault"
	"nodedp/internal/forestlp"
	"nodedp/internal/graph"
	"nodedp/internal/mechanism"
)

// DefaultSubPlanCapacity bounds the number of cached per-component
// sub-plans. Components are much smaller than whole graphs (their value
// vectors are one float per grid point), so the sub-plan cache affords a
// larger entry count than the whole-graph bound.
const DefaultSubPlanCapacity = 256

// subPlanKey identifies one component's grid evaluation: the component's
// canonical fingerprint (local-rank renumbering, see
// graph.CSR.ComponentFingerprints) plus the same options digest that keys
// whole-graph entries. The digest pins DeltaMax and therefore the grid, so
// a stored value vector is always aligned with the grid of any lookup that
// hits it.
type subPlanKey struct {
	fp   graph.Fingerprint
	opts string
}

// subPlan is one non-trivial component's cached share of a grid
// evaluation. It is immutable after insertion and shared by reference.
//
//privacy:secret — values are exact per-component f_Δ evaluations, pre-noise (see GridEval).
type subPlan struct {
	n, m int
	// values[j] is the component's contribution to f_Δ at grid point j,
	// clamped to [0, n−1] by the per-shard evaluator.
	values []float64
	// stats is the component's grid-aggregated work, with Shards timings
	// stripped (see the file comment).
	stats forestlp.Stats
}

// subLookupLocked returns the cached sub-plan for key and refreshes its
// recency, or nil. c.mu must be held. Sub-plan recency is not persisted
// state, so no gen bump.
func (c *PlanCache) subLookupLocked(key subPlanKey) *subPlan {
	el, ok := c.subEntries[key]
	if !ok {
		return nil
	}
	c.subLL.MoveToFront(el)
	return el.Value.(*subPlanEntry).sub
}

type subPlanEntry struct {
	key subPlanKey
	sub *subPlan
}

// subInsertLocked admits a sub-plan (c.mu held), evicting the
// least-recently-used entry past the capacity bound. A racing insert of
// the same key keeps the existing entry — both computed identical values.
func (c *PlanCache) subInsertLocked(key subPlanKey, sp *subPlan) {
	if el, ok := c.subEntries[key]; ok {
		c.subLL.MoveToFront(el)
		return
	}
	c.subEntries[key] = c.subLL.PushFront(&subPlanEntry{key: key, sub: sp})
	for c.subLL.Len() > c.subCap {
		victim := c.subLL.Back()
		c.subLL.Remove(victim)
		delete(c.subEntries, victim.Value.(*subPlanEntry).key)
		c.stats.SubPlanEvictions++
	}
}

// assembleGridCSR is the cache's evaluation path: a whole-graph grid
// evaluation assembled from per-component sub-plans, bit-identical to
// evaluateGridCSR on the same snapshot (see the file comment for why).
// Both cold opens and delta-opens funnel through here, which is what makes
// "delta-open ≡ cold open" hold by construction rather than by parallel
// maintenance of two evaluation paths. opts must already carry defaults.
func (c *PlanCache) assembleGridCSR(ctx context.Context, csr *graph.CSR, fp graph.Fingerprint, opts Options) (*GridEval, error) {
	grid, err := mechanism.PowerOfTwoGrid(opts.DeltaMax)
	if err != nil {
		return nil, err
	}
	digest := planOptionsDigest(opts)
	shards := csr.ComponentShards()
	fps := csr.ComponentFingerprints()

	// Non-trivial components in shard order. Singletons contribute zero to
	// every grid value and to f_sf and carry no stats; they enter only the
	// Components count.
	type compSlot struct {
		shard *graph.Shard
		key   subPlanKey
		sub   *subPlan
	}
	slots := make([]compSlot, 0, len(shards))
	fsf := 0
	for i, sh := range shards {
		if sh.N() < 2 {
			continue
		}
		fsf += sh.N() - 1
		slots = append(slots, compSlot{shard: sh, key: subPlanKey{fp: fps[i], opts: digest}})
	}

	c.mu.Lock()
	for i := range slots {
		if sp := c.subLookupLocked(slots[i].key); sp != nil {
			slots[i].sub = sp
			c.stats.SubPlanHits++
		} else {
			c.stats.SubPlanMisses++
		}
	}
	c.mu.Unlock()

	// Evaluate the missing components sequentially in shard order. Grid
	// points inside each component still run on the configured SepWorkers
	// pool, and sequential component order keeps span creation — and
	// therefore the trace tree — deterministic, exactly like the
	// monolithic sweep's sequential grid loop. A completed component is
	// admitted immediately: if a later component fails (error, fault,
	// cancelation), the finished sub-plans are complete, correct
	// evaluations and stay cached for the retry, while the whole-graph
	// entry is never formed.
	for i := range slots {
		if slots[i].sub != nil {
			continue
		}
		sh := slots[i].shard
		values, stats, err := forestlp.NewPlanCSR(&sh.CSR).GridValues(ctx, grid, opts.ForestLP)
		if err != nil {
			return nil, fmt.Errorf("core: component %d (n=%d): %w", i, sh.N(), err)
		}
		// Failpoint between a component's evaluation and its admission: a
		// firing site proves a fault-tainted sub-plan never enters the
		// sub-plan cache and never reaches the merge below.
		if err := fault.Hit("core.subplan.admit"); err != nil {
			return nil, err
		}
		stats.Shards = nil // timing indices are meaningless across reuse
		sp := &subPlan{n: sh.N(), m: sh.M(), values: values, stats: stats}
		slots[i].sub = sp
		c.mu.Lock()
		c.subInsertLocked(slots[i].key, sp)
		c.mu.Unlock()
	}

	// Failpoint before the merge: every sub-plan is admitted, but the
	// whole-graph evaluation must still fail atomically — no partial
	// GridEval, no whole-graph cache entry.
	if err := fault.Hit("core.subplan.merge"); err != nil {
		return nil, err
	}

	// Deterministic merge: per grid point, sum the component contributions
	// in shard-index order and clamp to [0, f_sf] — the exact arithmetic of
	// the monolithic engine's merge loop.
	values := make([]float64, len(grid))
	for j := range grid {
		total := 0.0
		for i := range slots {
			//detlint:allow floatorder — deterministic merge: components are summed in shard-index order, the same fixed order as the monolithic engine, so the result is bit-identical regardless of which sub-plans were cached
			total += slots[i].sub.values[j]
		}
		if f := float64(fsf); total > f {
			total = f
		}
		if total < 0 {
			total = 0
		}
		values[j] = total
	}
	var merged forestlp.Stats
	for i := range slots {
		merged.MergeComponent(slots[i].sub.stats)
	}
	// The two shape-dependent fields, stamped as the monolithic sweep
	// would have: Workers resolves against the non-trivial shard count,
	// Components counts every component including singletons.
	merged.Workers = forestlp.ResolveWorkers(opts.ForestLP.Workers, len(slots))
	merged.Components = len(shards)

	return &GridEval{
		n:           csr.N(),
		m:           csr.M(),
		deltaMax:    opts.DeltaMax,
		optsDigest:  digest,
		fingerprint: fp,
		grid:        grid,
		fdeltas:     values,
		fsf:         float64(fsf),
		stats:       merged,
	}, nil
}
