// Package dpnoise provides the noise primitives behind the paper's
// mechanisms: the continuous Laplace distribution of Theorem 2.2 (sampled
// by inverse CDF from a seedable PRNG, so experiment tables are exactly
// reproducible) and an exact discrete Laplace sampler in the style of
// Canonne–Kamath–Steinke ("The Discrete Gaussian for Differential
// Privacy", 2020), built from rational Bernoulli and Bernoulli(exp(−γ))
// primitives with no floating-point arithmetic on the sampling path. The
// discrete sampler can be driven by crypto/rand for deployments where
// float64 side channels matter.
package dpnoise

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
)

// NewCryptoRand returns a *rand.Rand whose source draws from crypto/rand.
// It trades reproducibility for cryptographic randomness; use it for real
// releases, and seeded PRNGs for experiments.
func NewCryptoRand() *rand.Rand {
	return rand.New(cryptoSource{})
}

type cryptoSource struct{}

func (cryptoSource) Uint64() uint64 {
	var buf [8]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		// crypto/rand failure means the platform's entropy source is
		// broken; there is no meaningful recovery for a privacy mechanism.
		panic(fmt.Sprintf("dpnoise: crypto/rand failed: %v", err))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Laplace samples Lap(b): density exp(−|z|/b)/(2b) (Section 2). b must be
// positive.
func Laplace(rng *rand.Rand, b float64) float64 {
	if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		panic(fmt.Sprintf("dpnoise: Laplace scale %v must be positive and finite", b))
	}
	// Inverse CDF: u uniform in (-1/2, 1/2), z = -b·sgn(u)·ln(1-2|u|).
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// Gumbel samples the standard Gumbel distribution, the noise view of the
// exponential mechanism (argmax of score/sens·ε/2 + Gumbel is an exact EM
// draw).
func Gumbel(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 {
			return -math.Log(-math.Log(u))
		}
	}
}

// Bernoulli returns true with probability num/den, exactly. Requires
// 0 ≤ num ≤ den and den > 0.
func Bernoulli(rng *rand.Rand, num, den uint64) bool {
	if den == 0 || num > den {
		panic(fmt.Sprintf("dpnoise: Bernoulli(%d/%d) out of range", num, den))
	}
	return rng.Uint64N(den) < num
}

// BernoulliExp returns true with probability exp(−num/den), exactly
// (Canonne–Kamath–Steinke Algorithm 1). den must be positive.
func BernoulliExp(rng *rand.Rand, num, den uint64) bool {
	if den == 0 {
		panic("dpnoise: BernoulliExp with zero denominator")
	}
	// Reduce γ > 1 to repeated Bernoulli(exp(−1)) trials.
	for num > den {
		if !bernoulliExpLeqOne(rng, 1, 1) {
			return false
		}
		num -= den
	}
	return bernoulliExpLeqOne(rng, num, den)
}

// bernoulliExpLeqOne samples Bernoulli(exp(−γ)) for γ = num/den ∈ [0,1]:
// draw K = the first k ≥ 1 with Bernoulli(γ/k) = 0; accept iff K is odd.
func bernoulliExpLeqOne(rng *rand.Rand, num, den uint64) bool {
	if num == 0 {
		return true
	}
	k := uint64(1)
	for {
		// Bernoulli(γ/k) = Bernoulli(num / (den·k)).
		if !Bernoulli(rng, num, den*k) {
			return k%2 == 1
		}
		k++
		// den·k overflow guard: γ/k has fallen below 2^-40, the loop ends
		// with probability 1 − 2^-40 per step; a false here is safe
		// because Bernoulli(p) with p ≈ 0 is false almost surely.
		if den*k < den {
			return k%2 == 1
		}
	}
}

// DiscreteLaplace samples the discrete Laplace distribution with scale
// t = num/den: Pr[Z = z] ∝ exp(−|z|·den/num) over the integers, exactly
// (Canonne–Kamath–Steinke Algorithm 2). Both parameters must be positive.
func DiscreteLaplace(rng *rand.Rand, num, den uint64) int64 {
	if num == 0 || den == 0 {
		panic(fmt.Sprintf("dpnoise: DiscreteLaplace(%d/%d) needs positive parameters", num, den))
	}
	t, s := num, den
	for {
		u := rng.Uint64N(t)
		if !BernoulliExp(rng, u, t) {
			continue
		}
		v := uint64(0)
		for BernoulliExp(rng, 1, 1) {
			v++
		}
		x := u + t*v
		y := int64(x / s)
		negative := Bernoulli(rng, 1, 2)
		if negative && y == 0 {
			continue
		}
		if negative {
			return -y
		}
		return y
	}
}

// LaplaceQuantile returns the q-quantile magnitude of |Lap(b)|:
// Pr[|X| ≥ t·b] = e^{−t} (Lemma 2.3), so the magnitude below which a
// fraction q of the mass lies is b·ln(1/(1−q)). Used by experiments to
// draw theoretical reference curves.
func LaplaceQuantile(b, q float64) float64 {
	if q <= 0 || q >= 1 || b <= 0 {
		panic(fmt.Sprintf("dpnoise: LaplaceQuantile(b=%v, q=%v) out of range", b, q))
	}
	return b * math.Log(1/(1-q))
}
