package dpnoise

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// RationalApprox returns a rational num/den ≈ x with den ≤ maxDen and,
// crucially for privacy calibration, num/den ≥ x (never below): a noise
// scale rounded UP yields at least the target privacy. The approximation
// uses the Stern–Brocot walk (equivalently, continued fractions) and then
// bumps the numerator if needed.
//
// x must be positive and finite; maxDen ≥ 1.
func RationalApprox(x float64, maxDen uint64) (num, den uint64, err error) {
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, 0, fmt.Errorf("dpnoise: RationalApprox target %v must be positive and finite", x)
	}
	if maxDen < 1 {
		return 0, 0, fmt.Errorf("dpnoise: maxDen must be ≥ 1")
	}
	if x > 1e15 {
		return 0, 0, fmt.Errorf("dpnoise: target %v too large for exact rational sampling", x)
	}
	// Continued-fraction convergents of x with denominator cap.
	var (
		p0, q0 uint64 = 0, 1
		p1, q1 uint64 = 1, 0
		val           = x
	)
	for i := 0; i < 64; i++ {
		a := uint64(math.Floor(val))
		// p2 = a*p1 + p0, q2 = a*q1 + q0 with overflow / cap checks.
		if q1 != 0 && a > (maxDen-q0)/q1 {
			break
		}
		p2 := a*p1 + p0
		q2 := a*q1 + q0
		p0, q0, p1, q1 = p1, q1, p2, q2
		frac := val - math.Floor(val)
		if frac < 1e-12 {
			break
		}
		val = 1 / frac
	}
	num, den = p1, q1
	if den == 0 {
		num, den = uint64(math.Ceil(x)), 1
	}
	// Round up: privacy allows more noise, never less.
	for float64(num)/float64(den) < x {
		num++
	}
	return num, den, nil
}

// DiscreteLaplaceScaled samples the discrete Laplace distribution with a
// real-valued target scale b: Pr[Z = z] ∝ exp(−|z|/b'), where b' ≥ b is a
// rational approximation with denominator ≤ 1000 that never undershoots
// (undershooting would weaken the privacy guarantee).
func DiscreteLaplaceScaled(rng *rand.Rand, b float64) (int64, error) {
	num, den, err := RationalApprox(b, 1000)
	if err != nil {
		return 0, err
	}
	return DiscreteLaplace(rng, num, den), nil
}
