package dpnoise

import (
	"math"
	"math/rand/v2"
	"testing"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
}

func TestLaplaceMoments(t *testing.T) {
	rng := testRNG(1)
	const n = 200000
	b := 2.5
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := Laplace(rng, b)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	// E[X]=0, E[|X|]=b. Std errors ~ b·sqrt(2/n) and b/sqrt(n).
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	if math.Abs(meanAbs-b) > 0.05 {
		t.Fatalf("E|X| = %v, want %v", meanAbs, b)
	}
}

func TestLaplaceTailLemma23(t *testing.T) {
	// Lemma 2.3: Pr[|X| ≥ t·b] = e^{−t}.
	rng := testRNG(2)
	const n = 100000
	b := 1.0
	for _, tt := range []float64{0.5, 1, 2} {
		count := 0
		for i := 0; i < n; i++ {
			if math.Abs(Laplace(rng, b)) >= tt*b {
				count++
			}
		}
		got := float64(count) / n
		want := math.Exp(-tt)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pr[|X| ≥ %v] = %v, want %v", tt, got, want)
		}
	}
}

func TestLaplacePanics(t *testing.T) {
	for _, b := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v should panic", b)
				}
			}()
			Laplace(testRNG(3), b)
		}()
	}
}

func TestLaplaceDeterministic(t *testing.T) {
	a := Laplace(testRNG(7), 1)
	b := Laplace(testRNG(7), 1)
	if a != b {
		t.Fatal("same seed must give same sample")
	}
}

func TestBernoulliExact(t *testing.T) {
	rng := testRNG(4)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 3, 7) {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-3.0/7) > 0.01 {
		t.Fatalf("Bernoulli(3/7) rate %v", got)
	}
	if Bernoulli(rng, 0, 5) {
		t.Fatal("Bernoulli(0) must be false")
	}
	if !Bernoulli(rng, 5, 5) {
		t.Fatal("Bernoulli(1) must be true")
	}
}

func TestBernoulliPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("num > den should panic")
		}
	}()
	Bernoulli(testRNG(5), 6, 5)
}

func TestBernoulliExpRates(t *testing.T) {
	rng := testRNG(6)
	const n = 80000
	cases := []struct{ num, den uint64 }{
		{0, 1}, // exp(0) = 1
		{1, 4}, // exp(-0.25)
		{1, 1}, // exp(-1)
		{5, 2}, // exp(-2.5), exercises the γ>1 reduction
		{7, 3}, // exp(-7/3)
	}
	for _, tc := range cases {
		count := 0
		for i := 0; i < n; i++ {
			if BernoulliExp(rng, tc.num, tc.den) {
				count++
			}
		}
		got := float64(count) / n
		want := math.Exp(-float64(tc.num) / float64(tc.den))
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("BernoulliExp(%d/%d) rate %v, want %v", tc.num, tc.den, got, want)
		}
	}
}

func TestDiscreteLaplacePMF(t *testing.T) {
	rng := testRNG(8)
	const n = 200000
	// Scale t = 2 (num=2, den=1): Pr[z] = (e^{1/2}−1)/(e^{1/2}+1)·e^{−|z|/2}.
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[DiscreteLaplace(rng, 2, 1)]++
	}
	norm := (math.Exp(0.5) - 1) / (math.Exp(0.5) + 1)
	for z := int64(-4); z <= 4; z++ {
		want := norm * math.Exp(-math.Abs(float64(z))/2)
		got := float64(counts[z]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pr[Z=%d] = %v, want %v", z, got, want)
		}
	}
}

func TestDiscreteLaplaceSymmetry(t *testing.T) {
	rng := testRNG(9)
	const n = 100000
	sum := int64(0)
	for i := 0; i < n; i++ {
		sum += DiscreteLaplace(rng, 3, 2)
	}
	mean := float64(sum) / n
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean %v too far from 0", mean)
	}
}

func TestDiscreteLaplacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero scale should panic")
		}
	}()
	DiscreteLaplace(testRNG(10), 0, 1)
}

func TestGumbelMedian(t *testing.T) {
	rng := testRNG(11)
	const n = 100000
	count := 0
	median := -math.Log(math.Ln2)
	for i := 0; i < n; i++ {
		if Gumbel(rng) > median {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("Pr[G > median] = %v", got)
	}
}

func TestLaplaceQuantile(t *testing.T) {
	// Median of |Lap(b)| is b·ln 2.
	if got, want := LaplaceQuantile(2, 0.5), 2*math.Ln2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("q=1 should panic")
		}
	}()
	LaplaceQuantile(1, 1)
}

func TestCryptoRand(t *testing.T) {
	rng := NewCryptoRand()
	// Smoke test: samples in range, not all equal.
	a := rng.Uint64N(1 << 30)
	different := false
	for i := 0; i < 8; i++ {
		if rng.Uint64N(1<<30) != a {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("crypto source produced nine identical draws")
	}
	// The exact samplers must run on the crypto source too.
	_ = DiscreteLaplace(rng, 5, 1)
	_ = Laplace(rng, 1)
}
