package dpnoise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRationalApproxBasics(t *testing.T) {
	cases := []struct {
		x       float64
		wantNum uint64
		wantDen uint64
	}{
		{0.5, 1, 2},
		{2, 2, 1},
		{1.0 / 3, 1, 3},
		{7, 7, 1},
	}
	for _, tc := range cases {
		num, den, err := RationalApprox(tc.x, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if num != tc.wantNum || den != tc.wantDen {
			t.Fatalf("RationalApprox(%v) = %d/%d, want %d/%d", tc.x, num, den, tc.wantNum, tc.wantDen)
		}
	}
}

func TestRationalApproxErrors(t *testing.T) {
	for _, x := range []float64{0, -1, math.NaN(), math.Inf(1), 1e16} {
		if _, _, err := RationalApprox(x, 100); err == nil {
			t.Errorf("x=%v should fail", x)
		}
	}
	if _, _, err := RationalApprox(1, 0); err == nil {
		t.Error("maxDen=0 should fail")
	}
}

// TestRationalApproxNeverUndershoots is the privacy-critical property:
// the approximation must always round the scale UP.
func TestRationalApproxNeverUndershoots(t *testing.T) {
	f := func(seed int64) bool {
		x := math.Abs(float64(seed%100000))/1000 + 0.001
		num, den, err := RationalApprox(x, 1000)
		if err != nil {
			return false
		}
		approx := float64(num) / float64(den)
		// Never below, and within 1% plus one ulp of granularity above.
		return approx >= x && approx <= x*1.01+1.0/float64(den)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteLaplaceScaledMoments(t *testing.T) {
	rng := testRNG(31)
	const n = 100000
	b := 2.5
	sumAbs := 0.0
	for i := 0; i < n; i++ {
		z, err := DiscreteLaplaceScaled(rng, b)
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(float64(z))
	}
	// E|Z| for discrete Laplace with scale t is 2q/(1-q^2) with q=e^{-1/t}
	// ≈ t for t ≫ 1; accept a generous band around the continuous value.
	if sumAbs/n < b*0.7 || sumAbs/n > b*1.4 {
		t.Fatalf("E|Z| = %v for scale %v", sumAbs/n, b)
	}
}

func TestDiscreteLaplaceScaledErrors(t *testing.T) {
	if _, err := DiscreteLaplaceScaled(testRNG(32), -1); err == nil {
		t.Fatal("negative scale should fail")
	}
}
