package httpapi

// Fuzz tests for the wire decoding: whatever bytes arrive, the decoder
// must fail cleanly (never panic), and anything it accepts must survive a
// marshal→unmarshal round trip unchanged — the property the determinism
// contract leans on, since a seeded query's response is compared
// bit-for-bit after a JSON round trip.

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func FuzzDecodeCreateSessionRequest(f *testing.F) {
	f.Add(`{"n":4,"edges":[[0,1],[2,3]],"budget":1}`)
	f.Add(`{"edge_list":"n 3\n0 1\n","budget":0.5,"accountant":"advanced","delta":1e-9}`)
	f.Add(`{"n":-1}`)
	f.Add(`{"budget":1,"edges":[[0,0]]}`)
	f.Add(`{"n":2,"budget":1,"unknown":true}`)
	f.Add(`not json at all`)
	f.Add(`{"n":1,"budget":1}{"trailing":1}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var req CreateSessionRequest
		if err := decodeStrict(strings.NewReader(raw), &req); err != nil {
			return // rejected cleanly
		}
		// Accepted: graph construction must not panic either.
		if err := sanitizeTenant(req.Tenant); err != nil {
			return
		}
		_, _ = buildGraph(&req)
	})
}

func FuzzDecodeQueryRequest(f *testing.F) {
	f.Add(`{"op":"cc","epsilon":0.5,"seed":7}`)
	f.Add(`{"op":"sf","epsilon":1e-300}`)
	f.Add(`{"op":"cc-known-n","epsilon":-1}`)
	f.Add(`{"op":"cc","epsilon":0.1,"seed":18446744073709551615}`)
	f.Add(`{"epsilon":null}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, raw string) {
		var req QueryRequest
		if err := decodeStrict(strings.NewReader(raw), &req); err != nil {
			return
		}
		_, _, _ = parseOp(req.Op)
		// Round trip: an accepted request re-encodes to an equivalent one.
		out, err := json.Marshal(req)
		if err != nil {
			// Go's encoder rejects only non-finite floats here; those came
			// from the wire, so the decoder accepted what the encoder
			// cannot represent — acceptable (serve validation rejects
			// non-finite ε before any spend), but nothing to round-trip.
			if math.IsNaN(req.Epsilon) || math.IsInf(req.Epsilon, 0) {
				return
			}
			t.Fatalf("re-encoding accepted request: %v", err)
		}
		var back QueryRequest
		if err := decodeStrict(bytes.NewReader(out), &back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Op != req.Op || back.Seed != req.Seed ||
			math.Float64bits(back.Epsilon) != math.Float64bits(req.Epsilon) {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, back)
		}
	})
}

func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(`{"queries":[{"op":"cc","epsilon":0.5}]}`)
	f.Add(`{"queries":[]}`)
	f.Add(`{"queries":[{"op":"cc","epsilon":0.1},{"op":"sf","epsilon":0.2,"seed":3}]}`)
	f.Add(`{"queries":null}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var req BatchRequest
		if err := decodeStrict(strings.NewReader(raw), &req); err != nil {
			return
		}
		for _, q := range req.Queries {
			_, _, _ = parseOp(q.Op)
		}
	})
}

// FuzzQueryResponseRoundTrip: every finite response the server could emit
// survives the JSON wire bit-for-bit — the encoding half of the
// determinism contract.
func FuzzQueryResponseRoundTrip(f *testing.F) {
	f.Add(3.75, 2.0, 4.0, 9.25, 0.5)
	f.Add(-0.0, 1.0, 2.0, 0.0, 0.25)
	f.Add(1e-308, 5e300, 1e17, -7.1, 1e-9)
	f.Fuzz(func(t *testing.T, value, deltaHat, scale, nhat, eps float64) {
		in := QueryResponse{Value: value, DeltaHat: deltaHat, NoiseScale: scale, NHat: nhat, Epsilon: eps, Op: "cc"}
		for _, v := range []float64{value, deltaHat, scale, nhat, eps} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return // not representable in JSON; the mechanism never emits these
			}
		}
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out QueryResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out.Value) != math.Float64bits(in.Value) ||
			math.Float64bits(out.DeltaHat) != math.Float64bits(in.DeltaHat) ||
			math.Float64bits(out.NoiseScale) != math.Float64bits(in.NoiseScale) ||
			math.Float64bits(out.Epsilon) != math.Float64bits(in.Epsilon) {
			t.Fatalf("JSON round trip moved bits: %+v -> %+v", in, out)
		}
		// NHat uses omitempty: 0 and -0 may drop, never change magnitude.
		if out.NHat != in.NHat && !(in.NHat == 0 && out.NHat == 0) {
			t.Fatalf("NHat changed: %v -> %v", in.NHat, out.NHat)
		}
	})
}
