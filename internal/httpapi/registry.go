package httpapi

// This file implements the daemon's multi-tenant session registry: a
// bounded map of live serving sessions with idle-TTL eviction and
// per-tenant caps. The registry stores only handles — the expensive plan
// state lives in the shared PlanCache and is reference-counted by Go's GC,
// so evicting a session frees its budget ledger and identity, while a
// re-upload of the same graph reuses the cached plan.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"nodedp/internal/serve"
)

// Registry defaults; chosen so a laptop demo and a small deployment both
// work untuned.
const (
	DefaultMaxSessions  = 256
	DefaultMaxPerTenant = 32
	DefaultIdleTTL      = 30 * time.Minute
)

// RegistryConfig bounds the session registry. Zero fields take the
// defaults above; a negative IdleTTL disables idle eviction.
type RegistryConfig struct {
	MaxSessions  int
	MaxPerTenant int
	IdleTTL      time.Duration
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxPerTenant <= 0 {
		c.MaxPerTenant = DefaultMaxPerTenant
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = DefaultIdleTTL
	}
	return c
}

// session is one registered serving session.
type session struct {
	id      string
	tenant  string
	sess    *serve.Session
	created time.Time

	// dedup is the session's request-ID replay table (idempotent query
	// retries); the zero value is ready.
	dedup dedupTable

	mu       sync.Mutex
	lastUsed time.Time
	// mutating counts in-flight ApplyDelta calls. A mutating session is
	// active by definition: the idle-TTL sweep must not evict it (dropping
	// its budget ledger mid-mutation), and DELETE answers 409 instead of
	// pulling the session out from under the delta.
	mutating int
}

func (s *session) touch(now time.Time) {
	s.mu.Lock()
	if now.After(s.lastUsed) {
		s.lastUsed = now
	}
	s.mu.Unlock()
}

func (s *session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed
}

// beginMutation marks an ApplyDelta in flight; endMutation unmarks it and
// restamps the idle clock, so a long mutation counts as activity for the
// whole window it ran, not just its start.
func (s *session) beginMutation() {
	s.mu.Lock()
	s.mutating++
	s.mu.Unlock()
}

func (s *session) endMutation(now time.Time) {
	s.mu.Lock()
	s.mutating--
	if now.After(s.lastUsed) {
		s.lastUsed = now
	}
	s.mu.Unlock()
}

func (s *session) isMutating() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mutating > 0
}

// registry is the bounded, thread-safe session table.
type registry struct {
	cfg RegistryConfig
	now func() time.Time
	// onTenantGone, when set, is called (outside the registry lock) with
	// each tenant whose last session — live or reserved — just left the
	// table; the server uses it to drop the tenant's plan cache.
	onTenantGone func(tenant string)

	mu       sync.Mutex
	sessions map[string]*session
	byTenant map[string]int // live + reserved sessions per tenant
	pending  int            // reserved-but-uncommitted slots
	evicted  int64          // idle-TTL evictions, for /metrics
}

func newRegistry(cfg RegistryConfig, now func() time.Time) *registry {
	if now == nil {
		now = time.Now
	}
	return &registry{
		cfg:      cfg.withDefaults(),
		now:      now,
		sessions: make(map[string]*session),
		byTenant: make(map[string]int),
	}
}

// errCapacity distinguishes registry-full conditions (mapped to 429) from
// validation failures.
type errCapacity struct{ msg string }

func (e errCapacity) Error() string { return e.msg }

// reserve claims a session slot for tenant BEFORE the expensive plan build
// runs, enforcing the global and per-tenant caps after sweeping idle
// sessions — a full registry must shed an upload in O(1), not after paying
// the whole Δ-grid evaluation. The returned commit registers the built
// session under a fresh id; abort releases the slot. Exactly one of the
// two must be called.
func (r *registry) reserve(tenant string) (commit func(*serve.Session) (*session, error), abort func(), err error) {
	now := r.now()
	r.mu.Lock()
	gone := r.sweepLocked(now)
	var capErr error
	switch {
	case len(r.sessions)+r.pending >= r.cfg.MaxSessions:
		capErr = errCapacity{fmt.Sprintf("session registry full (%d sessions); retry after idle sessions expire or DELETE one", len(r.sessions)+r.pending)}
	case r.byTenant[tenant] >= r.cfg.MaxPerTenant:
		capErr = errCapacity{fmt.Sprintf("tenant %q at its session cap (%d); retry later or DELETE a session", tenant, r.cfg.MaxPerTenant)}
	default:
		r.pending++
		r.byTenant[tenant]++
	}
	r.mu.Unlock()
	r.announceGone(gone)
	if capErr != nil {
		return nil, nil, capErr
	}

	release := func() []string {
		// r.mu held. Returns tenants to announce gone.
		r.pending--
		if r.byTenant[tenant]--; r.byTenant[tenant] <= 0 {
			delete(r.byTenant, tenant)
			return []string{tenant}
		}
		return nil
	}
	commit = func(s *serve.Session) (*session, error) {
		id, err := newSessionID()
		if err != nil {
			r.mu.Lock()
			gone := release()
			r.mu.Unlock()
			r.announceGone(gone)
			return nil, err
		}
		entry := &session{id: id, tenant: tenant, sess: s, created: r.now(), lastUsed: r.now()}
		r.mu.Lock()
		r.pending--
		r.sessions[id] = entry
		r.mu.Unlock()
		return entry, nil
	}
	abort = func() {
		r.mu.Lock()
		gone := release()
		r.mu.Unlock()
		r.announceGone(gone)
	}
	return commit, abort, nil
}

// get returns the live session with the given id, touching its idle clock.
// Only the looked-up entry is TTL-checked here — the full sweep runs on
// reserve and on the daemon's timer, so a hot path never walks the whole
// table.
func (r *registry) get(id string) (*session, bool) {
	now := r.now()
	r.mu.Lock()
	entry, ok := r.sessions[id]
	var gone []string
	if ok && r.cfg.IdleTTL >= 0 && !entry.isMutating() && now.Sub(entry.idleSince()) > r.cfg.IdleTTL {
		gone = r.deleteLocked(entry)
		r.evicted++
		ok = false
	}
	r.mu.Unlock()
	r.announceGone(gone)
	if ok {
		entry.touch(now)
	}
	return entry, ok
}

// removeOutcome is the tri-state result of registry.remove, so the DELETE
// handler can distinguish "gone" (404) from "busy mutating" (409).
type removeOutcome int

const (
	removeOK removeOutcome = iota
	removeMissing
	removeBusy
)

// remove deletes a session by id (DELETE /v1/sessions/{id}). A session
// with a graph mutation in flight is refused, not deleted: evicting it
// would drop the budget ledger and the serving snapshot out from under
// ApplyDelta's commit.
func (r *registry) remove(id string) removeOutcome {
	r.mu.Lock()
	entry, ok := r.sessions[id]
	if ok && entry.isMutating() {
		r.mu.Unlock()
		return removeBusy
	}
	var gone []string
	if ok {
		gone = r.deleteLocked(entry)
	}
	r.mu.Unlock()
	r.announceGone(gone)
	if !ok {
		return removeMissing
	}
	return removeOK
}

// sweepLocked evicts sessions idle past the TTL; called with r.mu held.
// The caller is responsible for announcing the returned tenants.
func (r *registry) sweepLocked(now time.Time) []string {
	if r.cfg.IdleTTL < 0 {
		return nil
	}
	var gone []string
	for _, entry := range r.sessions {
		// A mutating session is active no matter what its idle clock says:
		// ApplyDelta restamps the clock only when it finishes.
		if entry.isMutating() {
			continue
		}
		if now.Sub(entry.idleSince()) > r.cfg.IdleTTL {
			gone = append(gone, r.deleteLocked(entry)...)
			r.evicted++
		}
	}
	// The sweep visits r.sessions in random map order; sort so tenant-gone
	// callbacks (and anything they log) fire in a stable order.
	sort.Strings(gone)
	return gone
}

// deleteLocked removes an entry (r.mu held) and returns the tenant if this
// was its last session.
func (r *registry) deleteLocked(entry *session) []string {
	delete(r.sessions, entry.id)
	if r.byTenant[entry.tenant]--; r.byTenant[entry.tenant] <= 0 {
		delete(r.byTenant, entry.tenant)
		return []string{entry.tenant}
	}
	return nil
}

// announceGone invokes the tenant-gone hook outside the registry lock.
func (r *registry) announceGone(tenants []string) {
	if r.onTenantGone == nil {
		return
	}
	for _, t := range tenants {
		r.onTenantGone(t)
	}
}

// sweep is the timer entry point.
func (r *registry) sweep() {
	now := r.now()
	r.mu.Lock()
	gone := r.sweepLocked(now)
	r.mu.Unlock()
	r.announceGone(gone)
}

// snapshot returns the live-session count and cumulative evictions.
func (r *registry) snapshot() (live int, evicted int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions), r.evicted
}

// newSessionID returns a 128-bit random identifier ("s" + 32 hex digits).
// Randomness here is operational, not privacy-relevant: ids only need to be
// unguessable enough not to collide.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("generating session id: %w", err)
	}
	return "s" + hex.EncodeToString(b[:]), nil
}
