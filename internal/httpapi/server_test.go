package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodedp/internal/core"
	"nodedp/internal/generate"
	"nodedp/internal/graph"
	"nodedp/internal/serve"
)

// testServer starts an httptest server over a fresh Server.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// testGraph is the workload shared by the HTTP tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return generate.PlantedComponents([]int{8, 8, 8}, 0.4, generate.NewRand(11))
}

// edgePairs renders g's edges for a JSON upload.
func edgePairs(g *graph.Graph) [][2]int {
	var pairs [][2]int
	for _, e := range g.Edges() {
		pairs = append(pairs, [2]int{e.U, e.V})
	}
	return pairs
}

// doJSON posts body to url and decodes the response into out, returning
// the HTTP status.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		buf = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response (%d: %s): %v", method, url, resp.StatusCode, raw, err)
		}
	}
	return resp.StatusCode
}

// openSession uploads the test graph and returns its session id.
func openSession(t *testing.T, url string, req CreateSessionRequest) CreateSessionResponse {
	t.Helper()
	var out CreateSessionResponse
	if code := doJSON(t, "POST", url+"/v1/graphs", req, &out); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if out.SessionID == "" || out.Fingerprint == "" {
		t.Fatalf("create session response incomplete: %+v", out)
	}
	return out
}

// TestHTTPSeededQueryMatchesInProcess is the determinism contract of the
// ISSUE: a seeded query issued over HTTP returns a release bit-identical
// to the equivalent in-process Session call on the same graph.
func TestHTTPSeededQueryMatchesInProcess(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	created := openSession(t, ts.URL, CreateSessionRequest{
		N: g.N(), Edges: edgePairs(g), Budget: 10,
	})

	inproc, err := serve.Open(context.Background(), g, serve.SessionOptions{TotalBudget: 10})
	if err != nil {
		t.Fatal(err)
	}

	for i, tc := range []struct {
		op   string
		mode serve.Mode
		sf   bool
	}{
		{op: "cc"},
		{op: "cc-known-n", mode: serve.KnownN},
		{op: "sf", sf: true},
	} {
		seed := uint64(100 + i)
		eps := 0.25 * float64(i+1)
		var want core.Result
		q := serve.QueryOptions{Epsilon: eps, Mode: tc.mode, Seed: seed}
		if tc.sf {
			want, err = inproc.SpanningForestSize(context.Background(), q)
		} else {
			want, err = inproc.ComponentCount(context.Background(), q)
		}
		if err != nil {
			t.Fatal(err)
		}

		var got QueryResponse
		code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
			QueryRequest{Op: tc.op, Epsilon: eps, Seed: seed}, &got)
		if code != http.StatusOK {
			t.Fatalf("op %s: status %d", tc.op, code)
		}
		if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Errorf("op %s: HTTP value %v != in-process %v (bit difference)", tc.op, got.Value, want.Value)
		}
		if got.DeltaHat != want.Delta || got.NoiseScale != want.NoiseScale {
			t.Errorf("op %s: HTTP (Δ̂=%v scale=%v) != in-process (Δ̂=%v scale=%v)",
				tc.op, got.DeltaHat, got.NoiseScale, want.Delta, want.NoiseScale)
		}
		if !tc.sf && math.Float64bits(got.NHat) != math.Float64bits(want.NHat) {
			t.Errorf("op %s: HTTP n̂ %v != in-process %v", tc.op, got.NHat, want.NHat)
		}
	}
}

// TestHTTPBatchMatchesSequential: a batch equals the same queries issued
// one at a time on a fresh session over the same graph.
func TestHTTPBatchMatchesSequential(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})

	one := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 10})
	queries := []QueryRequest{
		{Op: "cc", Epsilon: 0.5, Seed: 1},
		{Op: "sf", Epsilon: 0.25, Seed: 2},
		{Op: "cc-known-n", Epsilon: 0.25, Seed: 3},
	}
	sequential := make([]QueryResponse, len(queries))
	for i, q := range queries {
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+one.SessionID+"/query", q, &sequential[i]); code != http.StatusOK {
			t.Fatalf("sequential query %d: status %d", i, code)
		}
	}

	two := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 10})
	if !two.CacheHit {
		t.Error("second upload of an identical graph should hit the plan cache")
	}
	var batch BatchResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+two.SessionID+"/batch",
		BatchRequest{Queries: queries}, &batch); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Responses) != len(queries) {
		t.Fatalf("batch returned %d responses for %d queries", len(batch.Responses), len(queries))
	}
	for i, item := range batch.Responses {
		if item.Error != nil {
			t.Fatalf("batch item %d failed: %+v", i, item.Error)
		}
		if math.Float64bits(item.Result.Value) != math.Float64bits(sequential[i].Value) {
			t.Errorf("batch item %d value %v != sequential %v", i, item.Result.Value, sequential[i].Value)
		}
	}
}

// TestHTTPErrorTaxonomy drives each typed error code.
func TestHTTPErrorTaxonomy(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	check := func(name string, wantStatus int, wantCode ErrorCode, gotStatus int, body ErrorBody) {
		t.Helper()
		if gotStatus != wantStatus || body.Error.Code != wantCode {
			t.Errorf("%s: got (%d, %q), want (%d, %q) — %s",
				name, gotStatus, body.Error.Code, wantStatus, wantCode, body.Error.Message)
		}
	}

	var eb ErrorBody
	code := doJSON(t, "POST", ts.URL+"/v1/sessions/nope/query",
		QueryRequest{Op: "cc", Epsilon: 0.1}, &eb)
	check("unknown session", http.StatusNotFound, CodeNotFound, code, eb)

	eb = ErrorBody{}
	code = doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
		QueryRequest{Op: "cc", Epsilon: 5}, &eb)
	check("budget exhausted", http.StatusForbidden, CodeBudgetExhausted, code, eb)

	eb = ErrorBody{}
	code = doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
		QueryRequest{Op: "bogus", Epsilon: 0.1}, &eb)
	check("bad op", http.StatusBadRequest, CodeInvalidRequest, code, eb)

	eb = ErrorBody{}
	code = doJSON(t, "POST", ts.URL+"/v1/graphs",
		map[string]any{"n": 4, "edges": [][2]int{{0, 1}}, "budget": 1, "bogus_field": true}, &eb)
	check("unknown field", http.StatusBadRequest, CodeInvalidRequest, code, eb)

	eb = ErrorBody{}
	code = doJSON(t, "POST", ts.URL+"/v1/graphs",
		CreateSessionRequest{N: 4, Edges: [][2]int{{0, 1}}, Budget: 1, Accountant: "renyi"}, &eb)
	check("bad accountant", http.StatusBadRequest, CodeInvalidRequest, code, eb)

	// Budget exhaustion spent nothing: a query that fits still succeeds.
	var qr QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
		QueryRequest{Op: "cc", Epsilon: 1, Seed: 9}, &qr); code != http.StatusOK {
		t.Fatalf("affordable query after rejection: status %d", code)
	}
}

// TestHTTPLoadShedding: requests beyond MaxInflight are rejected with 429,
// Retry-After, and the overloaded code — while a slot is freed they
// succeed again.
func TestHTTPLoadShedding(t *testing.T) {
	g := testGraph(t)
	s, ts := testServer(t, Config{MaxInflight: 1})
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 100})

	// Hold the single inflight slot by parking a request inside the
	// handler: simplest is to saturate via the inflight counter directly
	// plus a real request to observe the 429 path end to end.
	s.inflight.Add(1)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions/"+created.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != CodeOverloaded {
		t.Errorf("shed body = %s (err %v), want overloaded code", body, err)
	}
	s.inflight.Add(-1)

	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("after shedding cleared: status %d", code)
	}

	// /healthz and /metrics bypass admission: they must answer even at
	// saturation, or the orchestrator kills a merely busy daemon.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz at saturation: %d", hr.StatusCode)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics at saturation: %d", mr.StatusCode)
	}
	for _, want := range []string{
		"nodedp_http_requests_total",
		"nodedp_http_requests_shed_total 1",
		"nodedp_sessions_live 1",
		"nodedp_plan_cache_misses_total 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestHTTPRegistryLimits: per-tenant caps and idle-TTL eviction, on an
// injected clock.
func TestHTTPRegistryLimits(t *testing.T) {
	g := testGraph(t)
	var now atomic.Int64
	base := time.Unix(1700000000, 0)
	clock := func() time.Time { return base.Add(time.Duration(now.Load())) }
	_, ts := testServer(t, Config{
		Registry: RegistryConfig{MaxSessions: 3, MaxPerTenant: 2, IdleTTL: time.Minute},
		Now:      clock,
	})
	upload := CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1, Tenant: "acme"}

	a := openSession(t, ts.URL, upload)
	_ = openSession(t, ts.URL, upload)

	// Third session for the same tenant: per-tenant cap → overloaded.
	var eb ErrorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", upload, &eb); code != http.StatusTooManyRequests || eb.Error.Code != CodeOverloaded {
		t.Fatalf("tenant cap: got (%d, %q)", code, eb.Error.Code)
	}
	// A different tenant still fits.
	other := upload
	other.Tenant = "globex"
	_ = openSession(t, ts.URL, other)

	// Global cap now full.
	eb = ErrorBody{}
	third := upload
	third.Tenant = "initech"
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", third, &eb); code != http.StatusTooManyRequests {
		t.Fatalf("global cap: got %d", code)
	}

	// Advance past the TTL: every session expires, slots free, and the
	// expired id answers 404.
	now.Store(int64(2 * time.Minute))
	_ = openSession(t, ts.URL, third)
	eb = ErrorBody{}
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+a.SessionID, nil, &eb); code != http.StatusNotFound || eb.Error.Code != CodeNotFound {
		t.Fatalf("expired session: got (%d, %q), want (404, not_found)", code, eb.Error.Code)
	}
}

// TestHTTPDeleteSession: DELETE frees the slot and subsequent queries 404.
func TestHTTPDeleteSession(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+created.SessionID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	var eb ErrorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
		QueryRequest{Op: "cc", Epsilon: 0.1}, &eb); code != http.StatusNotFound {
		t.Fatalf("query after delete: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+created.SessionID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
}

// TestHTTPEdgeListUpload: the text exchange format round-trips to the same
// fingerprint as the JSON edges encoding.
func TestHTTPEdgeListUpload(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	viaEdges := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	var list strings.Builder
	fmt.Fprintf(&list, "n %d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(&list, "%d %d\n", e.U, e.V)
	}
	viaList := openSession(t, ts.URL, CreateSessionRequest{EdgeList: list.String(), Budget: 1})
	if viaEdges.Fingerprint != viaList.Fingerprint {
		t.Fatalf("fingerprints differ across encodings: %s vs %s", viaEdges.Fingerprint, viaList.Fingerprint)
	}
	if !viaList.CacheHit {
		t.Error("identical graph via edge_list should hit the plan cache")
	}

	var eb ErrorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		CreateSessionRequest{N: g.N(), Edges: edgePairs(g), EdgeList: list.String(), Budget: 1}, &eb); code != http.StatusBadRequest {
		t.Fatalf("both encodings at once: status %d", code)
	}
}

// TestHTTPSessionInfo checks the introspection endpoint's budget and cache
// bookkeeping after a known sequence of queries.
func TestHTTPSessionInfo(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	created := openSession(t, ts.URL, CreateSessionRequest{
		N: g.N(), Edges: edgePairs(g), Budget: 2, Accountant: "advanced", Delta: 1e-9,
	})
	if created.Accountant != "advanced" || created.Delta != 1e-9 {
		t.Fatalf("create response accountant = (%s, %v)", created.Accountant, created.Delta)
	}
	for i := 0; i < 3; i++ {
		var qr QueryResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
			QueryRequest{Op: "cc", Epsilon: 0.1, Seed: uint64(i + 1)}, &qr); code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, code)
		}
	}
	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Budget.Accountant != "advanced" || info.Budget.Delta != 1e-9 {
		t.Errorf("info accountant = (%s, %v)", info.Budget.Accountant, info.Budget.Delta)
	}
	if info.Admitted != 3 || info.Queries != 3 || info.Rejected != 0 {
		t.Errorf("admission counters = %d/%d/%d, want 3/3/0", info.Admitted, info.Queries, info.Rejected)
	}
	if info.Budget.Spent <= 0 || info.Budget.Spent > 0.3+1e-9 {
		t.Errorf("advanced spent = %v, want in (0, 0.3]", info.Budget.Spent)
	}
	if info.Budget.Total != 2 {
		t.Errorf("total = %v, want 2", info.Budget.Total)
	}
	if info.PlansBuilt != 1 || info.CacheHit {
		t.Errorf("plan bookkeeping = (%d, %v), want (1, false)", info.PlansBuilt, info.CacheHit)
	}
	if info.Cache.Misses != 1 || info.Cache.Entries != 1 || info.Cache.Weight <= 0 {
		t.Errorf("cache info %+v, want one weighted entry from one miss", info.Cache)
	}
}

// TestHTTPConcurrentClientsNeverOverspend is the -race stress test of the
// ISSUE: N concurrent HTTP clients hammer one session under each
// accountant; the budget is never overspent, and every seeded HTTP release
// matches the in-process release with the same seed.
func TestHTTPConcurrentClientsNeverOverspend(t *testing.T) {
	g := testGraph(t)
	for _, acct := range []struct {
		name  string
		delta float64
	}{{"sequential", 0}, {"advanced", 1e-9}} {
		t.Run(acct.name, func(t *testing.T) {
			_, ts := testServer(t, Config{MaxInflight: 128})
			created := openSession(t, ts.URL, CreateSessionRequest{
				N: g.N(), Edges: edgePairs(g), Budget: 1,
				Accountant: acct.name, Delta: acct.delta,
			})

			// In-process twin for the bit-identity check.
			inproc, err := serve.Open(context.Background(), g, serve.SessionOptions{TotalBudget: 1000})
			if err != nil {
				t.Fatal(err)
			}

			const clients, perClient = 8, 12
			const eps = 0.02
			var wg sync.WaitGroup
			var admitted, rejected, mismatched atomic.Int64
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						seed := uint64(c*perClient + i + 1)
						body, _ := json.Marshal(QueryRequest{Op: "cc", Epsilon: eps, Seed: seed})
						resp, err := http.Post(ts.URL+"/v1/sessions/"+created.SessionID+"/query",
							"application/json", bytes.NewReader(body))
						if err != nil {
							t.Error(err)
							return
						}
						raw, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						switch resp.StatusCode {
						case http.StatusOK:
							admitted.Add(1)
							var qr QueryResponse
							if err := json.Unmarshal(raw, &qr); err != nil {
								t.Errorf("decoding OK response: %v", err)
								return
							}
							want, err := inproc.ComponentCount(context.Background(),
								serve.QueryOptions{Epsilon: eps, Seed: seed})
							if err != nil {
								t.Error(err)
								return
							}
							if math.Float64bits(qr.Value) != math.Float64bits(want.Value) {
								mismatched.Add(1)
							}
						case http.StatusForbidden:
							rejected.Add(1)
						default:
							t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
							return
						}
					}
				}(c)
			}
			wg.Wait()

			if mismatched.Load() != 0 {
				t.Errorf("%d HTTP releases differ from in-process releases", mismatched.Load())
			}
			var info SessionInfo
			if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &info); code != http.StatusOK {
				t.Fatalf("info: status %d", code)
			}
			if info.Budget.Spent > info.Budget.Total+1e-12 {
				t.Errorf("budget overspent under %s: %v > %v", acct.name, info.Budget.Spent, info.Budget.Total)
			}
			if info.Admitted != admitted.Load() || info.Rejected != rejected.Load() {
				t.Errorf("server counters (%d adm, %d rej) != client view (%d, %d)",
					info.Admitted, info.Rejected, admitted.Load(), rejected.Load())
			}
			if admitted.Load() == 0 {
				t.Error("no queries admitted")
			}
			// The advanced accountant must beat sequential's ε/ε₀ = 50
			// admissions; sequential must stop at it.
			if acct.name == "sequential" && admitted.Load() > 50 {
				t.Errorf("sequential admitted %d > 50 = ε_total/ε₀", admitted.Load())
			}
			if acct.name == "advanced" && admitted.Load() <= 50 {
				t.Errorf("advanced admitted %d, want > 50", admitted.Load())
			}
		})
	}
}

// TestHTTPDrain: after StartDrain, /healthz flips to 503 while /v1 routes
// still answer (the connection lifecycle belongs to http.Server.Shutdown).
func TestHTTPDrain(t *testing.T) {
	g := testGraph(t)
	s, ts := testServer(t, Config{})
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})
	s.StartDrain()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: %d, want 503", hr.StatusCode)
	}
	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("in-flight work while draining: status %d", code)
	}
}

// TestHTTPReadLimit: a body over the limit is rejected, not buffered.
func TestHTTPReadLimit(t *testing.T) {
	_, ts := testServer(t, Config{ReadLimit: 512})
	huge := CreateSessionRequest{EdgeList: strings.Repeat("# padding\n", 200), Budget: 1}
	var eb ErrorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", huge, &eb); code != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", code)
	}
}

// TestHTTPTenantCacheIsolation pins the fix for the cross-tenant cache
// oracle: an identical graph uploaded by a DIFFERENT tenant must not
// report a cache hit (that bit would be a non-private equality test on the
// first tenant's sensitive graph), while re-uploads by the same tenant
// still skip planning. Dropping a tenant's last session drops its cache.
func TestHTTPTenantCacheIsolation(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	upload := func(tenant string) CreateSessionResponse {
		return openSession(t, ts.URL, CreateSessionRequest{
			N: g.N(), Edges: edgePairs(g), Budget: 1, Tenant: tenant,
		})
	}

	first := upload("acme")
	if first.CacheHit {
		t.Fatal("first upload reported a cache hit")
	}
	// Same tenant, identical graph: hit (the intended amortization).
	if again := upload("acme"); !again.CacheHit {
		t.Error("same-tenant re-upload missed the cache")
	}
	// Different tenant, identical graph: MISS, or tenant B has learned
	// that tenant A holds exactly this graph.
	other := upload("globex")
	if other.CacheHit {
		t.Error("cross-tenant upload hit the cache: graph-membership oracle")
	}
	// And B's introspection shows only B's cache activity.
	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+other.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Cache.Entries != 1 || info.Cache.Hits != 0 {
		t.Errorf("tenant-scoped cache info %+v, want only globex's single miss", info.Cache)
	}

	// Deleting a tenant's only session drops its cache: the next upload
	// plans from scratch.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+other.SessionID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if back := upload("globex"); back.CacheHit {
		t.Error("globex's cache survived its last session")
	}
}

// TestHTTPFullRegistryShedsBeforePlanning pins the ordering fix: when the
// registry is full, an upload is refused without paying the plan build —
// observable through the tenant cache, which must see no new miss.
func TestHTTPFullRegistryShedsBeforePlanning(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{Registry: RegistryConfig{MaxSessions: 1}})
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	// Registry is full: a fresh graph (same tenant) must be shed...
	big := generate.PlantedComponents([]int{12, 12}, 0.4, generate.NewRand(99))
	var eb ErrorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		CreateSessionRequest{N: big.N(), Edges: edgePairs(big), Budget: 1}, &eb); code != http.StatusTooManyRequests {
		t.Fatalf("full registry: status %d, want 429", code)
	}
	// ...and the shed upload must not have planned anything: the tenant's
	// cache still holds exactly the first graph's single miss.
	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Cache.Misses != 1 || info.Cache.Entries != 1 {
		t.Errorf("cache after shed upload: %+v, want untouched single entry", info.Cache)
	}
}
