package httpapi

// This file defines the wire types of the HTTP/JSON front end: request and
// response bodies for every /v1 route plus the typed error taxonomy. The
// API releases only private values (the release, the GEM-selected Δ̂, and
// the noise scale — all ε-node-private or post-processing thereof); the
// non-private diagnostics that the in-process API exposes for testing
// (FDelta, per-Δ evaluations, exact n) are deliberately absent from the
// wire format, because a network endpoint cannot see who is asking.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"nodedp/internal/serve"
)

// ErrorCode is the machine-readable error taxonomy of the API.
type ErrorCode string

const (
	// CodeInvalidRequest: malformed JSON, unknown fields, bad parameters.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeNotFound: no session with the given id (possibly evicted).
	CodeNotFound ErrorCode = "not_found"
	// CodeBudgetExhausted: the session accountant rejected the query; the
	// query spent nothing.
	CodeBudgetExhausted ErrorCode = "budget_exhausted"
	// CodeOverloaded: load shedding (inflight cap) or session-registry
	// capacity; retry after the indicated delay.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInternal: unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
	// CodeDeadlineExceeded: the query's context was canceled or its
	// deadline passed before the release completed (client disconnect or
	// HTTP timeout). The reserved ε was refunded in full; retrying is
	// budget-safe. HTTP 504.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeConflict: the operation races a conflicting one on the same
	// session — today, DELETE while a PATCH mutation is in flight. The
	// session is unchanged; retry once the mutation completes. HTTP 409.
	CodeConflict ErrorCode = "conflict"
)

// ErrorBody is the JSON envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries one typed error.
type ErrorInfo struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// CreateSessionRequest is the body of POST /v1/graphs: upload a graph and
// open a named serving session over it. Exactly one of Edges or EdgeList
// must be provided (EdgeList is the package's text exchange format, for
// clients that already store graphs that way).
type CreateSessionRequest struct {
	// Tenant scopes the session for the per-tenant registry cap; empty
	// means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// N is the vertex count (vertices are 0..N-1). Required with Edges;
	// ignored with EdgeList (the header carries it).
	N int `json:"n,omitempty"`
	// Edges lists the undirected edges as [u, v] pairs.
	//privacy:secret — the raw edge list of the uploaded graph; inbound only, must never be echoed on a response.
	Edges [][2]int `json:"edges,omitempty"`
	// EdgeList is the text exchange format ("n <count>" header plus one
	// "u v" pair per line), mutually exclusive with Edges.
	//privacy:secret — the raw edge list of the uploaded graph; inbound only, must never be echoed on a response.
	EdgeList string `json:"edge_list,omitempty"`
	// Budget is ε_total for the session's accountant. Required.
	Budget float64 `json:"budget"`
	// Accountant selects the composition rule: "sequential" (default) or
	// "advanced" (Delta then required).
	Accountant string `json:"accountant,omitempty"`
	// Delta is the advanced-composition failure probability δ.
	Delta float64 `json:"delta,omitempty"`
	// Workers / SepWorkers / SepWaveWidth tune the one-time plan build
	// (0 = defaults); they never change the released values.
	Workers      int `json:"workers,omitempty"`
	SepWorkers   int `json:"sep_workers,omitempty"`
	SepWaveWidth int `json:"sep_wave_width,omitempty"`
	// DiscreteRelease selects the exact integer release mechanism.
	DiscreteRelease bool `json:"discrete_release,omitempty"`
	// RequestID, when non-empty, names the upload for tracing and privacy
	// auditing (the session-open audit record and the upload's trace are
	// keyed by it). Uploads are not idempotent: retrying with the same ID
	// opens a second session.
	RequestID string `json:"request_id,omitempty"`
}

// CreateSessionResponse answers POST /v1/graphs.
type CreateSessionResponse struct {
	SessionID string `json:"session_id"`
	// Fingerprint is the canonical 128-bit digest of the uploaded graph.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the plan was served from the plan cache —
	// scoped to the uploading tenant's own cache, so it can only reveal
	// that THIS tenant uploaded an identical graph before (a cache shared
	// across tenants would be an equality oracle on other tenants'
	// sensitive graphs).
	CacheHit bool `json:"cache_hit"`
	// Accountant and Budget echo the session's composition configuration.
	Accountant string  `json:"accountant"`
	Budget     float64 `json:"budget"`
	Delta      float64 `json:"delta,omitempty"`
}

// PatchRequest is the body of PATCH /v1/graphs/{id}: a live-graph delta
// against the session's served graph. Deltas have idempotent set
// semantics — adds ensure presence, removes ensure absence — and both
// lists are canonicalized exactly like an upload body (endpoints
// normalized, self-loops dropped, duplicates collapsed), so semantically
// identical deltas always produce fingerprint-identical graphs. An edge
// listed in both adds and removes is rejected. The vertex set is fixed at
// upload; endpoints must be in [0, n).
//
// PATCH is deliberately NOT request-ID deduplicated: the set semantics
// already make a retry of a committed delta a harmless no-op (it reports
// zero applied edges), and a delta spends no privacy budget, so there is
// no double-charge to guard against. RequestID still names the mutation
// for tracing and for the audit ledger's "delta" records.
type PatchRequest struct {
	// Adds lists edges to insert as [u, v] pairs.
	//privacy:secret — raw edges of the sensitive graph; inbound only, must never be echoed on a response.
	Adds [][2]int `json:"adds,omitempty"`
	// Removes lists edges to delete as [u, v] pairs.
	//privacy:secret — raw edges of the sensitive graph; inbound only, must never be echoed on a response.
	Removes [][2]int `json:"removes,omitempty"`
	// RequestID names the mutation for tracing and privacy auditing.
	RequestID string `json:"request_id,omitempty"`
}

// PatchResponse answers PATCH /v1/graphs/{id}. It deliberately excludes
// the exact component counts the in-process DeltaResult exposes: the
// number of connected components is the very quantity this system
// releases privately, so it never travels the wire un-noised. What is
// exposed mirrors the existing upload surface — the canonical fingerprint
// (CreateSessionResponse exposes it too) and tenant-scoped plan-cache
// behavior (SessionInfo already exposes the same counters).
type PatchResponse struct {
	// Added and Removed count the edges actually inserted and deleted;
	// an add already present or a remove already absent counts zero.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// NoOp reports that the delta changed nothing: the fingerprint, the
	// plan, and every future release are unchanged.
	NoOp bool `json:"no_op,omitempty"`
	// Fingerprint is the canonical 128-bit digest of the post-delta graph
	// (the digest a fresh upload of the mutated graph would report).
	Fingerprint string `json:"fingerprint"`
	// PlanCacheHit reports the whole post-delta evaluation was already
	// cached — e.g. a delta returning to a previously served graph.
	// Tenant-scoped, like CreateSessionResponse.CacheHit.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// SubPlanHits and SubPlanMisses count component sub-plans reused
	// verbatim vs re-evaluated by this delta's re-planning — the
	// observable half of component-local plan reuse.
	SubPlanHits   int64 `json:"subplan_hits"`
	SubPlanMisses int64 `json:"subplan_misses"`
}

// QueryRequest is the body of POST /v1/sessions/{id}/query and one element
// of a batch. Op uses the CLI's mode names: "cc", "cc-known-n", "sf".
type QueryRequest struct {
	Op      string  `json:"op"`
	Epsilon float64 `json:"epsilon"`
	// Seed, when nonzero, makes the release reproducible (testing only —
	// reproducible releases are not private) and bit-identical to the
	// equivalent in-process Session query with the same seed.
	Seed uint64 `json:"seed,omitempty"`
	// RequestID, when non-empty, makes the query idempotent on the single
	// query endpoint: the first attempt with a given ID executes and its
	// release is recorded; any retry with the same ID replays the recorded
	// response without charging the budget again. Retrying clients (see
	// internal/client) rely on this to survive a connection lost after
	// the budget was charged but before the response arrived. Ignored on
	// the batch endpoint.
	RequestID string `json:"request_id,omitempty"`
}

// QueryResponse is one private release.
type QueryResponse struct {
	// Value is the ε-node-private estimate.
	Value float64 `json:"value"`
	// DeltaHat is the Lipschitz parameter selected by the Generalized
	// Exponential Mechanism (itself a private release).
	DeltaHat float64 `json:"delta_hat"`
	// NoiseScale is the Laplace scale of the release step (post-processing
	// of DeltaHat and the public ε).
	NoiseScale float64 `json:"noise_scale"`
	// NHat is the private vertex-count estimate (op "cc" only; for
	// "cc-known-n" it echoes the public count).
	NHat float64 `json:"n_hat,omitempty"`
	// Epsilon echoes the query budget this release spent.
	Epsilon float64 `json:"epsilon"`
	Op      string  `json:"op"`
}

// BatchRequest is the body of POST /v1/sessions/{id}/batch.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
	// RequestID, when non-empty, names the batch for tracing and privacy
	// auditing: the trace's identity derives from it, and audit records
	// attribute item i as "<RequestID>#<i>". It does NOT make the batch
	// idempotent (only the single-query endpoint replays).
	RequestID string `json:"request_id,omitempty"`
}

// BatchItem is one outcome of a batch: exactly one of Result or Error is
// set, at the index of the corresponding query.
type BatchItem struct {
	Result *QueryResponse `json:"result,omitempty"`
	Error  *ErrorInfo     `json:"error,omitempty"`
}

// BatchResponse answers POST /v1/sessions/{id}/batch.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
}

// BudgetInfo describes a session accountant's state.
type BudgetInfo struct {
	Total      float64 `json:"total"`
	Spent      float64 `json:"spent"`
	Remaining  float64 `json:"remaining"`
	Accountant string  `json:"accountant"`
	Delta      float64 `json:"delta,omitempty"`
}

// SessionInfo answers GET /v1/sessions/{id}: budget and serving
// introspection for one session.
type SessionInfo struct {
	SessionID   string     `json:"session_id"`
	Tenant      string     `json:"tenant,omitempty"`
	Fingerprint string     `json:"fingerprint"`
	Budget      BudgetInfo `json:"budget"`
	// Queries/Admitted/Rejected are the session's admission counters;
	// PlansBuilt and CacheHit describe the one-time plan construction.
	Queries    int64 `json:"queries"`
	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	PlansBuilt int   `json:"plans_built"`
	CacheHit   bool  `json:"cache_hit"`
	// Deltas and DeltasRejected count committed and refused PATCH
	// mutations on this session (deltas never spend ε).
	Deltas         int64 `json:"deltas,omitempty"`
	DeltasRejected int64 `json:"deltas_rejected,omitempty"`
	// CreatedUnix and IdleSeconds support capacity planning against the
	// registry's idle TTL.
	CreatedUnix int64   `json:"created_unix"`
	IdleSeconds float64 `json:"idle_seconds"`
	// Cache is a snapshot of the session's tenant-scoped plan cache
	// (hit/coalesce/weight counters), the introspection the ROADMAP's
	// serving follow-on asks for. Other tenants' cache state is never
	// visible here.
	Cache CacheInfo `json:"cache"`
}

// CacheInfo mirrors core.CacheStats on the wire.
type CacheInfo struct {
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	Coalesced      int64   `json:"coalesced"`
	Evictions      int64   `json:"evictions"`
	Invalidations  int64   `json:"invalidations"`
	Entries        int     `json:"entries"`
	Weight         int64   `json:"weight"`
	WeightCapacity int64   `json:"weight_capacity,omitempty"`
	EntryWeights   []int64 `json:"entry_weights,omitempty"`
	// SubPlan* mirror the component-keyed sub-plan layer: hits are
	// components whose grid values were reused verbatim during a delta
	// re-plan (or an assembly-backed cold open), misses were evaluated.
	SubPlanHits      int64 `json:"subplan_hits,omitempty"`
	SubPlanMisses    int64 `json:"subplan_misses,omitempty"`
	SubPlanEvictions int64 `json:"subplan_evictions,omitempty"`
	SubPlanEntries   int   `json:"subplan_entries,omitempty"`
	// Snapshot* mirror the persistence counters: save/load passes and the
	// entries they wrote, merged in, and skipped (corrupt, unknown
	// version, or invariant-violating).
	SnapshotSaves          int64 `json:"snapshot_saves,omitempty"`
	SnapshotLoads          int64 `json:"snapshot_loads,omitempty"`
	SnapshotEntriesSaved   int64 `json:"snapshot_entries_saved,omitempty"`
	SnapshotEntriesLoaded  int64 `json:"snapshot_entries_loaded,omitempty"`
	SnapshotEntriesSkipped int64 `json:"snapshot_entries_skipped,omitempty"`
}

// ReplayedHeader marks a single-query response served from the idempotency
// table: the budget was charged exactly once, on the original attempt.
const ReplayedHeader = "Nodedp-Replayed"

// SpanItem is one span of a trace on the wire. Counters and labels carry
// only work attribution (pivot counts, cache hits, stage names) — span
// attributes never hold graph data or raw releases, a contract detlint's
// wireleak analyzer enforces at the Span.SetAny sink.
type SpanItem struct {
	ID       string `json:"id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// DurationSeconds is operational wall-clock timing; it never feeds a
	// released value and is excluded from determinism comparisons.
	DurationSeconds float64           `json:"duration_seconds"`
	Counters        map[string]int64  `json:"counters,omitempty"`
	Labels          map[string]string `json:"labels,omitempty"`
}

// TraceItem is one finished request trace on the wire.
type TraceItem struct {
	TraceID   string     `json:"trace_id"`
	Name      string     `json:"name"`
	Tenant    string     `json:"tenant,omitempty"`
	RequestID string     `json:"request_id,omitempty"`
	Spans     []SpanItem `json:"spans"`
}

// TracesResponse answers GET /v1/admin/traces: the most recent finished
// traces of the requesting tenant, newest first.
type TracesResponse struct {
	Traces []TraceItem `json:"traces"`
}

// SaveCacheResponse answers POST /v1/admin/cache/save. The server-side
// snapshot path is deliberately not echoed: until tenants are
// authenticated, any client can reach the admin route, and filesystem
// layout is nothing a network caller needs.
type SaveCacheResponse struct {
	// Entries is how many cached plans were written to the snapshot.
	Entries int `json:"entries"`
}

// parseOp maps a wire op to the serving layer's (Op, Mode) pair.
func parseOp(op string) (serve.Op, serve.Mode, error) {
	switch op {
	case "cc":
		return serve.OpComponentCount, serve.PrivateN, nil
	case "cc-known-n":
		return serve.OpComponentCount, serve.KnownN, nil
	case "sf":
		return serve.OpSpanningForestSize, serve.PrivateN, nil
	default:
		return 0, 0, fmt.Errorf("unknown op %q (want cc, cc-known-n or sf)", op)
	}
}

// decodeStrict decodes one JSON body rejecting unknown fields and trailing
// garbage — a query with a misspelled field must fail loudly, not silently
// run with defaults (and silently spend budget).
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// sanitizeTenant rejects tenants that would break logs or metrics labels.
func sanitizeTenant(t string) error {
	if len(t) > 128 {
		return fmt.Errorf("tenant name longer than 128 bytes")
	}
	if strings.ContainsAny(t, "\n\r\"\\") {
		return fmt.Errorf("tenant name contains forbidden characters")
	}
	return nil
}
