package httpapi

// Fault-injection and recovery tests for the HTTP layer: panic
// containment, the deadline_exceeded taxonomy mapping, the seeded
// Retry-After jitter, and the delete-vs-query race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"nodedp/internal/fault"
)

// TestHTTPPanicContainment: a handler panic (here injected below the
// privacy layer) answers with a typed 500, increments the recovered-panic
// counter, and leaves the daemon fully serviceable.
func TestHTTPPanicContainment(t *testing.T) {
	defer fault.Reset()
	_, ts := testServer(t, Config{})
	g := testGraph(t)
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	if err := fault.Arm("privacy.reserve=nth:1:panic"); err != nil {
		t.Fatal(err)
	}
	var errBody ErrorBody
	code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
		QueryRequest{Op: "cc", Epsilon: 0.5, Seed: 1}, &errBody)
	if code != http.StatusInternalServerError || errBody.Error.Code != CodeInternal {
		t.Fatalf("panicked query → %d %q, want 500 %q", code, errBody.Error.Code, CodeInternal)
	}
	fault.Reset()

	// The daemon survived: the next query succeeds, and the panic fired
	// before the ledger mutation so only the success is charged.
	var qr QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+created.SessionID+"/query",
		QueryRequest{Op: "cc", Epsilon: 0.5, Seed: 1}, &qr); code != http.StatusOK {
		t.Fatalf("query after recovered panic → %d", code)
	}
	var info SessionInfo
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &info)
	if info.Budget.Spent != 0.5 {
		t.Fatalf("spent = %v, want 0.5 (panicked attempt charged nothing)", info.Budget.Spent)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodedp_panics_recovered_total 1\n") {
		t.Fatal("metrics missing nodedp_panics_recovered_total 1")
	}
}

// TestHTTPCanceledQueryMaps504: a query whose context is already dead maps
// to 504 deadline_exceeded, spends nothing, and leaves the tenant's cache
// counters untouched.
func TestHTTPCanceledQueryMaps504(t *testing.T) {
	s, ts := testServer(t, Config{})
	g := testGraph(t)
	created := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	var before SessionInfo
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &before)

	body, _ := json.Marshal(QueryRequest{Op: "cc", Epsilon: 0.5, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/sessions/"+created.SessionID+"/query",
		bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("canceled query → %d, want 504 (body %s)", rec.Code, rec.Body.Bytes())
	}
	var errBody ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("error code %q, want %q", errBody.Error.Code, CodeDeadlineExceeded)
	}

	var after SessionInfo
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+created.SessionID, nil, &after)
	if after.Budget.Spent != before.Budget.Spent {
		t.Fatalf("canceled query moved the ledger: %v → %v", before.Budget.Spent, after.Budget.Spent)
	}
	if !reflect.DeepEqual(after.Cache, before.Cache) {
		t.Fatalf("canceled query moved cache counters:\n before %+v\n after  %+v", before.Cache, after.Cache)
	}
}

// TestHTTPCanceledUploadMaps504: an upload whose client went away mid-plan
// maps to 504 and releases its registry slot.
func TestHTTPCanceledUploadMaps504(t *testing.T) {
	s, _ := testServer(t, Config{Registry: RegistryConfig{MaxSessions: 1}})
	g := testGraph(t)
	body, _ := json.Marshal(CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/graphs", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("canceled upload → %d, want 504 (body %s)", rec.Code, rec.Body.Bytes())
	}

	// The aborted upload's slot was released: the 1-slot registry accepts
	// a fresh upload.
	req = httptest.NewRequest("POST", "/v1/graphs", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload after aborted upload → %d, want 201 (slot leaked?)", rec.Code)
	}
}

// TestHTTPRetryAfterJitterGolden pins the seeded jitter sequence on shed
// responses: seed 5 must always produce this exact Retry-After schedule,
// and re-creating the server replays it.
func TestHTTPRetryAfterJitterGolden(t *testing.T) {
	want := []string{"3", "2", "1", "1", "1", "2", "1", "2"}
	sequence := func() []string {
		s := New(Config{RetryJitterSeed: 5})
		s.TestingHoldSlot(int64(DefaultMaxInflight))
		defer s.TestingHoldSlot(-int64(DefaultMaxInflight))
		var got []string
		for range want {
			req := httptest.NewRequest("GET", "/v1/sessions/x", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusTooManyRequests {
				t.Fatalf("held-slot request → %d, want 429", rec.Code)
			}
			got = append(got, rec.Header().Get("Retry-After"))
		}
		return got
	}
	first := sequence()
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Fatalf("jitter sequence %v, want %v", first, want)
	}
	if second := sequence(); fmt.Sprint(second) != fmt.Sprint(first) {
		t.Fatalf("jitter not reproducible: %v vs %v", second, first)
	}
}

// TestHTTPDeleteRaceTypedOutcomes races a session DELETE against in-flight
// queries under -race: every query must finish with a typed outcome (a
// release before the delete landed, or a clean 404 after), the daemon must
// not panic, and the session must be gone afterwards. The ledger-balance
// half of this satellite lives in internal/serve's
// TestQueryStormBalancesLedgerExactly, where the ledger is observable
// after teardown.
func TestHTTPDeleteRaceTypedOutcomes(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		s, _ := testServer(t, Config{})
		g := testGraph(t)
		body, _ := json.Marshal(CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1 << 20})
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/graphs", bytes.NewReader(body)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("upload → %d", rec.Code)
		}
		var created CreateSessionResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
			t.Fatal(err)
		}

		const workers = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 6; i++ {
					q, _ := json.Marshal(QueryRequest{Op: "cc", Epsilon: 0.25, Seed: uint64(w*8 + i + 1)})
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest("POST",
						"/v1/sessions/"+created.SessionID+"/query", bytes.NewReader(q)))
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
						t.Errorf("mid-delete query → %d (%s)", rec.Code, rec.Body.Bytes())
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("DELETE", "/v1/sessions/"+created.SessionID, nil))
			if rec.Code != http.StatusNoContent && rec.Code != http.StatusNotFound {
				t.Errorf("delete → %d", rec.Code)
			}
		}()
		close(start)
		wg.Wait()

		rec = httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/"+created.SessionID, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("session survived its delete: %d", rec.Code)
		}
	}
}
