package httpapi

// The observability determinism contract, end to end: two identically-
// seeded daemons serving the same workload must write byte-identical
// privacy audit logs and expose identical span trees (durations excluded —
// wall-clock is operational, never part of the contract), and turning the
// whole observability stack off must not move a single bit of any seeded
// release.

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nodedp/internal/fault"
	"nodedp/internal/obs"
)

// obsWorkload drives one daemon through the canonical serial workload:
// upload, two seeded queries, a dedup replay, a rejected over-budget query,
// and a batch. Serial execution makes ring order and audit sequence
// deterministic. Returns every released value in order.
func obsWorkload(t *testing.T, url string) []float64 {
	t.Helper()
	g := testGraph(t)
	sess := openSession(t, url, CreateSessionRequest{
		Tenant: "acme", N: g.N(), Edges: edgePairs(g), Budget: 2, RequestID: "upload-1",
	})
	base := url + "/v1/sessions/" + sess.SessionID

	var vals []float64
	query := func(id string, eps float64, seed uint64) {
		var qr QueryResponse
		if code := doJSON(t, "POST", base+"/query", QueryRequest{Op: "cc", Epsilon: eps, Seed: seed, RequestID: id}, &qr); code != http.StatusOK {
			t.Fatalf("query %s: status %d", id, code)
		}
		vals = append(vals, qr.Value)
	}
	query("q-1", 0.5, 41)
	query("q-2", 0.25, 42)
	query("q-1", 0.5, 41) // dedup replay: recorded release, no new charge

	var eb ErrorBody
	if code := doJSON(t, "POST", base+"/query", QueryRequest{Op: "cc", Epsilon: 10, Seed: 43, RequestID: "q-big"}, &eb); code == http.StatusOK {
		t.Fatal("over-budget query admitted")
	}

	var br BatchResponse
	breq := BatchRequest{RequestID: "b-1", Queries: []QueryRequest{
		{Op: "sf", Epsilon: 0.25, Seed: 44},
		{Op: "cc", Epsilon: 0.25, Seed: 45},
	}}
	if code := doJSON(t, "POST", base+"/batch", breq, &br); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	for i, item := range br.Responses {
		if item.Result == nil {
			t.Fatalf("batch item %d failed: %+v", i, item.Error)
		}
		vals = append(vals, item.Result.Value)
	}
	return vals
}

// tenantTraces fetches and normalizes a tenant's traces: durations are
// operational (wall-clock) and excluded from every determinism comparison.
func tenantTraces(t *testing.T, url, tenant string) TracesResponse {
	t.Helper()
	var out TracesResponse
	if code := doJSON(t, "GET", url+"/v1/admin/traces?tenant="+tenant+"&limit=100", nil, &out); code != http.StatusOK {
		t.Fatalf("traces: status %d", code)
	}
	for ti := range out.Traces {
		for si := range out.Traces[ti].Spans {
			out.Traces[ti].Spans[si].DurationSeconds = 0
		}
	}
	return out
}

func TestSeededDaemonsByteIdenticalObservability(t *testing.T) {
	dir := t.TempDir()
	run := func(name string) ([]float64, TracesResponse, []byte) {
		logPath := filepath.Join(dir, name+".audit")
		audit, err := obs.OpenAuditLog(logPath)
		if err != nil {
			t.Fatal(err)
		}
		defer audit.Close()
		_, ts := testServer(t, Config{TraceSeed: 1, Audit: audit})
		vals := obsWorkload(t, ts.URL)
		traces := tenantTraces(t, ts.URL, "acme")
		raw, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return vals, traces, raw
	}

	valsA, tracesA, auditA := run("a")
	valsB, tracesB, auditB := run("b")

	if len(valsA) == 0 || len(valsA) != len(valsB) {
		t.Fatalf("release counts diverge: %d vs %d", len(valsA), len(valsB))
	}
	for i := range valsA {
		if math.Float64bits(valsA[i]) != math.Float64bits(valsB[i]) {
			t.Fatalf("release %d diverges: %v vs %v", i, valsA[i], valsB[i])
		}
	}
	if !bytes.Equal(auditA, auditB) {
		t.Fatalf("audit logs diverge:\n--- a ---\n%s\n--- b ---\n%s", auditA, auditB)
	}
	if len(auditA) == 0 {
		t.Fatal("empty audit logs — the comparison tested nothing")
	}
	if !reflect.DeepEqual(tracesA, tracesB) {
		t.Fatalf("span trees diverge:\n--- a ---\n%+v\n--- b ---\n%+v", tracesA, tracesB)
	}
	if len(tracesA.Traces) == 0 {
		t.Fatal("empty trace rings — the comparison tested nothing")
	}
}

// TestChaosScheduleObservabilityDeterminism re-runs the byte-identity check
// under an injected connection abort: the first query's response write is
// killed, the manual retry replays the recorded release, and both daemons
// must still produce identical audit logs and span trees.
func TestChaosScheduleObservabilityDeterminism(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	g := testGraph(t)

	run := func(name string) (TracesResponse, []byte) {
		fault.Reset()
		logPath := filepath.Join(dir, name+".audit")
		audit, err := obs.OpenAuditLog(logPath)
		if err != nil {
			t.Fatal(err)
		}
		defer audit.Close()
		_, ts := testServer(t, Config{TraceSeed: 1, Audit: audit})
		sess := openSession(t, ts.URL, CreateSessionRequest{
			Tenant: "acme", N: g.N(), Edges: edgePairs(g), Budget: 2, RequestID: "upload-1",
		})
		qURL := ts.URL + "/v1/sessions/" + sess.SessionID + "/query"

		// Abort the next response write: the release is recorded and
		// charged server-side, but the client never sees it.
		if err := fault.Arm("httpapi.write=nth:1"); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(qURL, "application/json",
			bytes.NewReader([]byte(`{"op":"cc","epsilon":0.5,"seed":41,"request_id":"q-1"}`)))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				t.Fatal("aborted write still delivered a response")
			}
		}
		if fault.Fired("httpapi.write") == 0 {
			t.Fatal("write failpoint never fired — the schedule tested nothing")
		}

		// The retry must replay the recorded release without re-charging.
		retry := postJSON(t, qURL, QueryRequest{Op: "cc", Epsilon: 0.5, Seed: 41, RequestID: "q-1"})
		defer retry.Body.Close()
		if retry.StatusCode != http.StatusOK || retry.Header.Get(ReplayedHeader) != "1" {
			t.Fatalf("retry: status %d, replayed=%q", retry.StatusCode, retry.Header.Get(ReplayedHeader))
		}

		traces := tenantTraces(t, ts.URL, "acme")
		raw, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return traces, raw
	}

	tracesA, auditA := run("a")
	tracesB, auditB := run("b")
	if !bytes.Equal(auditA, auditB) {
		t.Fatalf("audit logs diverge under chaos:\n--- a ---\n%s\n--- b ---\n%s", auditA, auditB)
	}
	if !bytes.Contains(auditA, []byte("op=replay")) {
		t.Fatalf("no replay event in audit log:\n%s", auditA)
	}
	if !reflect.DeepEqual(tracesA, tracesB) {
		t.Fatalf("span trees diverge under chaos:\n--- a ---\n%+v\n--- b ---\n%+v", tracesA, tracesB)
	}
}

// TestObservabilityOffBitIdenticalReleases: the full observability stack —
// tracing ring, audit log, slow-query log — must be pure observation. The
// same seeded workload with everything disabled returns bit-identical
// releases.
func TestObservabilityOffBitIdenticalReleases(t *testing.T) {
	audit, err := obs.OpenAuditLog(filepath.Join(t.TempDir(), "on.audit"))
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	_, on := testServer(t, Config{TraceSeed: 1, Audit: audit, SlowQueryThreshold: 1, SlowQueryLog: io.Discard})
	_, off := testServer(t, Config{TraceRing: -1})

	valsOn := obsWorkload(t, on.URL)
	valsOff := obsWorkload(t, off.URL)
	if len(valsOn) != len(valsOff) {
		t.Fatalf("release counts diverge: %d vs %d", len(valsOn), len(valsOff))
	}
	for i := range valsOn {
		if math.Float64bits(valsOn[i]) != math.Float64bits(valsOff[i]) {
			t.Fatalf("release %d: observability moved a release: %v vs %v", i, valsOn[i], valsOff[i])
		}
	}
}
