package httpapi

// This file implements the daemon's hand-rolled Prometheus text exposition
// (no external dependencies, per the repo's no-new-deps rule). Counters are
// keyed by route pattern and status code — never by raw URL, whose
// cardinality an adversarial client controls.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics aggregates request counters, latencies, and shed counts.
type metrics struct {
	mu sync.Mutex
	// requests[route][code] counts completed requests.
	requests map[string]map[int]int64
	// latencySum/latencyCount per route, in seconds (Prometheus summary
	// convention: _sum and _count suffixes).
	latencySum   map[string]float64
	latencyCount map[string]int64
	// shed counts requests rejected by the inflight admission cap.
	shed int64
	// queriesServed counts private releases (single + batch items).
	queriesServed int64
	// panicsRecovered counts handler panics contained by route()'s
	// recovery wrapper (the daemon answered 500 and kept serving).
	panicsRecovered int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[string]map[int]int64),
		latencySum:   make(map[string]float64),
		latencyCount: make(map[string]int64),
	}
}

func (m *metrics) observe(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[route] = byCode
	}
	byCode[code]++
	m.latencySum[route] += elapsed.Seconds()
	m.latencyCount[route]++
}

func (m *metrics) addShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

func (m *metrics) addQueries(n int64) {
	m.mu.Lock()
	m.queriesServed += n
	m.mu.Unlock()
}

func (m *metrics) addPanic() {
	m.mu.Lock()
	m.panicsRecovered++
	m.mu.Unlock()
}

// write renders the exposition text. The caller supplies the gauges owned
// elsewhere (registry and plan cache state).
func (m *metrics) write(w io.Writer, gauges map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP nodedp_http_requests_total Completed HTTP requests by route pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_requests_total counter\n")
	for _, route := range sortedKeys(m.requests) {
		byCode := m.requests[route]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "nodedp_http_requests_total{route=%q,code=\"%d\"} %d\n", route, c, byCode[c])
		}
	}

	fmt.Fprintf(w, "# HELP nodedp_http_request_seconds Request latency summary by route pattern.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_request_seconds summary\n")
	for _, route := range sortedKeys(m.latencySum) {
		fmt.Fprintf(w, "nodedp_http_request_seconds_sum{route=%q} %g\n", route, m.latencySum[route])
		fmt.Fprintf(w, "nodedp_http_request_seconds_count{route=%q} %d\n", route, m.latencyCount[route])
	}

	fmt.Fprintf(w, "# HELP nodedp_http_requests_shed_total Requests rejected by the inflight admission cap.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_requests_shed_total counter\n")
	fmt.Fprintf(w, "nodedp_http_requests_shed_total %d\n", m.shed)

	fmt.Fprintf(w, "# HELP nodedp_queries_served_total Private releases served (single queries plus batch items).\n")
	fmt.Fprintf(w, "# TYPE nodedp_queries_served_total counter\n")
	fmt.Fprintf(w, "nodedp_queries_served_total %d\n", m.queriesServed)

	fmt.Fprintf(w, "# HELP nodedp_panics_recovered_total Handler panics contained by the per-request recovery wrapper.\n")
	fmt.Fprintf(w, "# TYPE nodedp_panics_recovered_total counter\n")
	fmt.Fprintf(w, "nodedp_panics_recovered_total %d\n", m.panicsRecovered)

	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %g\n", name, gauges[name])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
