package httpapi

// This file implements the daemon's hand-rolled Prometheus text exposition
// (no external dependencies, per the repo's no-new-deps rule). Counters are
// keyed by route pattern and status code — never by raw URL, whose
// cardinality an adversarial client controls. Latency histograms use the
// fixed bucket layout of obs.DefaultLatencyBuckets so expositions from any
// two daemons are merge- and diff-compatible; stage histograms are keyed by
// span name ("serve.admit", "forestlp.grid", ...), the cross-layer stage
// vocabulary the tracer establishes.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"nodedp/internal/obs"
)

// Version labels nodedp_build_info. Overridable at link time
// (-ldflags "-X nodedp/internal/httpapi.Version=v1.2.3").
var Version = "dev"

// metrics aggregates request counters, latencies, and shed counts.
type metrics struct {
	mu sync.Mutex
	// requests[route][code] counts completed requests.
	requests map[string]map[int]int64
	// latencySum/latencyCount per route, in seconds (Prometheus summary
	// convention: _sum and _count suffixes).
	latencySum   map[string]float64
	latencyCount map[string]int64
	// latencyMax tracks the worst-observed latency per route since boot —
	// the number an operator wants next to the average the summary gives.
	latencyMax map[string]float64
	// inflightByRoute gauges requests currently executing per route (the
	// global inflight gauge cannot say WHICH route is slow).
	inflightByRoute map[string]int64
	// requestHist is the per-route latency histogram
	// (nodedp_request_duration_seconds), fixed obs.DefaultLatencyBuckets.
	requestHist map[string]*obs.Histogram
	// stageHist is the per-stage latency histogram
	// (nodedp_stage_duration_seconds), keyed by span name and fed from
	// finished trace snapshots.
	stageHist map[string]*obs.Histogram
	// shed counts requests rejected by the inflight admission cap.
	shed int64
	// queriesServed counts private releases (single + batch items).
	queriesServed int64
	// deltasApplied counts committed PATCH graph mutations.
	deltasApplied int64
	// panicsRecovered counts handler panics contained by route()'s
	// recovery wrapper (the daemon answered 500 and kept serving).
	panicsRecovered int64
	// buildInfo is the label set of nodedp_build_info, fixed at boot
	// (tests overwrite it to pin expositions).
	buildInfo string
}

func newMetrics() *metrics {
	return &metrics{
		requests:        make(map[string]map[int]int64),
		latencySum:      make(map[string]float64),
		latencyCount:    make(map[string]int64),
		latencyMax:      make(map[string]float64),
		inflightByRoute: make(map[string]int64),
		requestHist:     make(map[string]*obs.Histogram),
		stageHist:       make(map[string]*obs.Histogram),
		buildInfo:       fmt.Sprintf("version=%q,gomaxprocs=\"%d\"", Version, runtime.GOMAXPROCS(0)),
	}
}

func (m *metrics) observe(route string, code int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[route] = byCode
	}
	byCode[code]++
	m.latencySum[route] += sec
	m.latencyCount[route]++
	if sec > m.latencyMax[route] {
		m.latencyMax[route] = sec
	}
	h := m.requestHist[route]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.requestHist[route] = h
	}
	h.Observe(sec)
}

// routeInflight adjusts the per-route in-flight gauge; route() pairs the
// +1 at admission with a deferred −1 (shed requests never count — they are
// refused, not in flight).
func (m *metrics) routeInflight(route string, delta int64) {
	m.mu.Lock()
	m.inflightByRoute[route] += delta
	m.mu.Unlock()
}

// observeStages folds a finished trace's span durations into the per-stage
// histograms. Durations here are operational wall-clock only — they feed
// monitoring, never a released value.
func (m *metrics) observeStages(snap obs.TraceSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sp := range snap.Spans {
		h := m.stageHist[sp.Name]
		if h == nil {
			h = obs.NewHistogram(nil)
			m.stageHist[sp.Name] = h
		}
		h.Observe(sp.Duration.Seconds())
	}
}

func (m *metrics) addShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

func (m *metrics) addQueries(n int64) {
	m.mu.Lock()
	m.queriesServed += n
	m.mu.Unlock()
}

func (m *metrics) addDeltas(n int64) {
	m.mu.Lock()
	m.deltasApplied += n
	m.mu.Unlock()
}

func (m *metrics) addPanic() {
	m.mu.Lock()
	m.panicsRecovered++
	m.mu.Unlock()
}

// write renders the exposition text. The caller supplies the gauges owned
// elsewhere (registry and plan cache state).
func (m *metrics) write(w io.Writer, gauges map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP nodedp_http_requests_total Completed HTTP requests by route pattern and status code.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_requests_total counter\n")
	for _, route := range sortedKeys(m.requests) {
		byCode := m.requests[route]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "nodedp_http_requests_total{route=%q,code=\"%d\"} %d\n", route, c, byCode[c])
		}
	}

	fmt.Fprintf(w, "# HELP nodedp_http_request_seconds Request latency summary by route pattern.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_request_seconds summary\n")
	for _, route := range sortedKeys(m.latencySum) {
		fmt.Fprintf(w, "nodedp_http_request_seconds_sum{route=%q} %g\n", route, m.latencySum[route])
		fmt.Fprintf(w, "nodedp_http_request_seconds_count{route=%q} %d\n", route, m.latencyCount[route])
	}

	fmt.Fprintf(w, "# HELP nodedp_http_request_max_seconds Worst-observed request latency per route since boot.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_request_max_seconds gauge\n")
	for _, route := range sortedKeys(m.latencyMax) {
		fmt.Fprintf(w, "nodedp_http_request_max_seconds{route=%q} %g\n", route, m.latencyMax[route])
	}

	fmt.Fprintf(w, "# HELP nodedp_http_inflight Requests currently executing, by route pattern.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_inflight gauge\n")
	for _, route := range sortedKeys(m.inflightByRoute) {
		fmt.Fprintf(w, "nodedp_http_inflight{route=%q} %d\n", route, m.inflightByRoute[route])
	}

	fmt.Fprintf(w, "# HELP nodedp_request_duration_seconds Request latency histogram by route pattern.\n")
	fmt.Fprintf(w, "# TYPE nodedp_request_duration_seconds histogram\n")
	for _, route := range sortedKeys(m.requestHist) {
		m.requestHist[route].Snapshot().WriteProm(w, "nodedp_request_duration_seconds", fmt.Sprintf("route=%q", route))
	}

	fmt.Fprintf(w, "# HELP nodedp_stage_duration_seconds Span latency histogram by pipeline stage (span name).\n")
	fmt.Fprintf(w, "# TYPE nodedp_stage_duration_seconds histogram\n")
	for _, stage := range sortedKeys(m.stageHist) {
		m.stageHist[stage].Snapshot().WriteProm(w, "nodedp_stage_duration_seconds", fmt.Sprintf("stage=%q", stage))
	}

	fmt.Fprintf(w, "# HELP nodedp_http_requests_shed_total Requests rejected by the inflight admission cap.\n")
	fmt.Fprintf(w, "# TYPE nodedp_http_requests_shed_total counter\n")
	fmt.Fprintf(w, "nodedp_http_requests_shed_total %d\n", m.shed)

	fmt.Fprintf(w, "# HELP nodedp_queries_served_total Private releases served (single queries plus batch items).\n")
	fmt.Fprintf(w, "# TYPE nodedp_queries_served_total counter\n")
	fmt.Fprintf(w, "nodedp_queries_served_total %d\n", m.queriesServed)

	fmt.Fprintf(w, "# HELP nodedp_deltas_applied_total Committed PATCH graph mutations (deltas spend no privacy budget).\n")
	fmt.Fprintf(w, "# TYPE nodedp_deltas_applied_total counter\n")
	fmt.Fprintf(w, "nodedp_deltas_applied_total %d\n", m.deltasApplied)

	fmt.Fprintf(w, "# HELP nodedp_panics_recovered_total Handler panics contained by the per-request recovery wrapper.\n")
	fmt.Fprintf(w, "# TYPE nodedp_panics_recovered_total counter\n")
	fmt.Fprintf(w, "nodedp_panics_recovered_total %d\n", m.panicsRecovered)

	fmt.Fprintf(w, "# HELP nodedp_build_info Build metadata (constant 1).\n")
	fmt.Fprintf(w, "# TYPE nodedp_build_info gauge\n")
	fmt.Fprintf(w, "nodedp_build_info{%s} 1\n", m.buildInfo)

	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %g\n", name, gauges[name])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
