package httpapi

// Regression tests for the determinism contract on the daemon's ordered
// outputs: the /metrics exposition must be byte-stable regardless of map
// population order, tenant-gone callbacks must fire in sorted order, and
// cross-tenant cache aggregation must not depend on map iteration. These
// pin the PR 7 fixes that detlint's maporder analyzer now guards
// statically.

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"nodedp/internal/core"
	"nodedp/internal/obs"
)

// TestMetricsExpositionGolden pins the exact exposition text for a small
// fixed population: any reordering or format drift is a contract break for
// scrape-diffing tooling.
func TestMetricsExpositionGolden(t *testing.T) {
	m := newMetrics()
	// The build-info label set embeds the host's GOMAXPROCS; pin it so the
	// golden is machine-independent.
	m.buildInfo = `version="test",gomaxprocs="8"`
	// Observe deliberately out of sorted order.
	m.observe("POST /v1/sessions/{id}/query", 200, 2*time.Millisecond)
	m.observe("GET /healthz", 200, 1*time.Millisecond)
	m.observe("POST /v1/graphs", 429, 1*time.Millisecond)
	m.observe("POST /v1/graphs", 201, 4*time.Millisecond)
	m.routeInflight("POST /v1/graphs", 1)
	m.observeStages(stageSnap("serve.admit", 1500*time.Microsecond))
	m.addShed()
	m.addQueries(3)
	m.addDeltas(2)
	m.addPanic()

	var buf bytes.Buffer
	m.write(&buf, map[string]float64{
		"nodedp_sessions_live":     2,
		"nodedp_inflight_requests": 1,
	})

	const golden = `# HELP nodedp_http_requests_total Completed HTTP requests by route pattern and status code.
# TYPE nodedp_http_requests_total counter
nodedp_http_requests_total{route="GET /healthz",code="200"} 1
nodedp_http_requests_total{route="POST /v1/graphs",code="201"} 1
nodedp_http_requests_total{route="POST /v1/graphs",code="429"} 1
nodedp_http_requests_total{route="POST /v1/sessions/{id}/query",code="200"} 1
# HELP nodedp_http_request_seconds Request latency summary by route pattern.
# TYPE nodedp_http_request_seconds summary
nodedp_http_request_seconds_sum{route="GET /healthz"} 0.001
nodedp_http_request_seconds_count{route="GET /healthz"} 1
nodedp_http_request_seconds_sum{route="POST /v1/graphs"} 0.005
nodedp_http_request_seconds_count{route="POST /v1/graphs"} 2
nodedp_http_request_seconds_sum{route="POST /v1/sessions/{id}/query"} 0.002
nodedp_http_request_seconds_count{route="POST /v1/sessions/{id}/query"} 1
# HELP nodedp_http_request_max_seconds Worst-observed request latency per route since boot.
# TYPE nodedp_http_request_max_seconds gauge
nodedp_http_request_max_seconds{route="GET /healthz"} 0.001
nodedp_http_request_max_seconds{route="POST /v1/graphs"} 0.004
nodedp_http_request_max_seconds{route="POST /v1/sessions/{id}/query"} 0.002
# HELP nodedp_http_inflight Requests currently executing, by route pattern.
# TYPE nodedp_http_inflight gauge
nodedp_http_inflight{route="POST /v1/graphs"} 1
# HELP nodedp_request_duration_seconds Request latency histogram by route pattern.
# TYPE nodedp_request_duration_seconds histogram
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="1e-05"} 0
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="2.5e-05"} 0
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="5e-05"} 0
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.0001"} 0
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.00025"} 0
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.0005"} 0
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.001"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.0025"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.005"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.01"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.025"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.05"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.1"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.25"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="0.5"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="1"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="2.5"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="5"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="10"} 1
nodedp_request_duration_seconds_bucket{route="GET /healthz",le="+Inf"} 1
nodedp_request_duration_seconds_sum{route="GET /healthz"} 0.001
nodedp_request_duration_seconds_count{route="GET /healthz"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="1e-05"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="2.5e-05"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="5e-05"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.0001"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.00025"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.0005"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.001"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.0025"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.005"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.01"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.025"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.05"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.1"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.25"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="0.5"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="1"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="2.5"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="5"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="10"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/graphs",le="+Inf"} 2
nodedp_request_duration_seconds_sum{route="POST /v1/graphs"} 0.005
nodedp_request_duration_seconds_count{route="POST /v1/graphs"} 2
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="1e-05"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="2.5e-05"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="5e-05"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.0001"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.00025"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.0005"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.001"} 0
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.0025"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.005"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.01"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.025"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.05"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.1"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.25"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="0.5"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="1"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="2.5"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="5"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="10"} 1
nodedp_request_duration_seconds_bucket{route="POST /v1/sessions/{id}/query",le="+Inf"} 1
nodedp_request_duration_seconds_sum{route="POST /v1/sessions/{id}/query"} 0.002
nodedp_request_duration_seconds_count{route="POST /v1/sessions/{id}/query"} 1
# HELP nodedp_stage_duration_seconds Span latency histogram by pipeline stage (span name).
# TYPE nodedp_stage_duration_seconds histogram
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="1e-05"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="2.5e-05"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="5e-05"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.0001"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.00025"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.0005"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.001"} 0
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.0025"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.005"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.01"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.025"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.05"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.1"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.25"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="0.5"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="1"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="2.5"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="5"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="10"} 1
nodedp_stage_duration_seconds_bucket{stage="serve.admit",le="+Inf"} 1
nodedp_stage_duration_seconds_sum{stage="serve.admit"} 0.0015
nodedp_stage_duration_seconds_count{stage="serve.admit"} 1
# HELP nodedp_http_requests_shed_total Requests rejected by the inflight admission cap.
# TYPE nodedp_http_requests_shed_total counter
nodedp_http_requests_shed_total 1
# HELP nodedp_queries_served_total Private releases served (single queries plus batch items).
# TYPE nodedp_queries_served_total counter
nodedp_queries_served_total 3
# HELP nodedp_deltas_applied_total Committed PATCH graph mutations (deltas spend no privacy budget).
# TYPE nodedp_deltas_applied_total counter
nodedp_deltas_applied_total 2
# HELP nodedp_panics_recovered_total Handler panics contained by the per-request recovery wrapper.
# TYPE nodedp_panics_recovered_total counter
nodedp_panics_recovered_total 1
# HELP nodedp_build_info Build metadata (constant 1).
# TYPE nodedp_build_info gauge
nodedp_build_info{version="test",gomaxprocs="8"} 1
# TYPE nodedp_inflight_requests gauge
nodedp_inflight_requests 1
# TYPE nodedp_sessions_live gauge
nodedp_sessions_live 2
`
	if got := buf.String(); got != golden {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// stageSnap builds a one-span trace snapshot with the given duration, for
// feeding observeStages deterministically.
func stageSnap(stage string, d time.Duration) obs.TraceSnapshot {
	return obs.TraceSnapshot{Spans: []obs.SpanSnapshot{{Name: stage, Duration: d}}}
}

// TestMetricsExpositionByteStable renders the same logical state, populated
// in two different orders, and requires bit-identical bytes — the property
// a scrape differ relies on.
func TestMetricsExpositionByteStable(t *testing.T) {
	routes := make([]string, 40)
	for i := range routes {
		routes[i] = fmt.Sprintf("GET /v1/r%02d", i)
	}
	populate := func(order []string) *metrics {
		m := newMetrics()
		for _, r := range order {
			m.observe(r, 200, time.Millisecond)
			m.observe(r, 500, 2*time.Millisecond)
		}
		return m
	}
	reversed := make([]string, len(routes))
	for i, r := range routes {
		reversed[len(routes)-1-i] = r
	}
	gauges := map[string]float64{"nodedp_sessions_live": 1, "nodedp_inflight_requests": 0, "nodedp_plan_cache_entries": 7}

	var a, b, c bytes.Buffer
	populate(routes).write(&a, gauges)
	populate(reversed).write(&b, gauges)
	populate(routes).write(&c, gauges)
	if a.String() != b.String() {
		t.Error("exposition depends on observation order")
	}
	if a.String() != c.String() {
		t.Error("exposition not stable across renders of identical state")
	}
}

// TestSweepTenantGoneOrderSorted: idle eviction visits the session map in
// random order, but the tenant-gone callbacks (which drop per-tenant plan
// caches and may log) must fire in sorted tenant order.
func TestSweepTenantGoneOrderSorted(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		clock := time.Unix(1700000000, 0)
		r := newRegistry(RegistryConfig{IdleTTL: time.Minute, MaxSessions: 64, MaxPerTenant: 4}, func() time.Time { return clock })
		var fired []string
		r.onTenantGone = func(tenant string) { fired = append(fired, tenant) }

		// Register tenants in scrambled order.
		tenants := []string{"zeta", "alpha", "mike", "echo", "kilo", "bravo", "x-ray", "golf"}
		for _, tenant := range tenants {
			commit, _, err := r.reserve(tenant)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := commit(nil); err != nil {
				t.Fatal(err)
			}
		}

		clock = clock.Add(2 * time.Minute) // everyone idle past TTL
		r.sweep()

		want := []string{"alpha", "bravo", "echo", "golf", "kilo", "mike", "x-ray", "zeta"}
		if got := strings.Join(fired, ","); got != strings.Join(want, ",") {
			t.Fatalf("trial %d: tenant-gone order %q, want sorted %q", trial, got, strings.Join(want, ","))
		}
	}
}

// TestCacheTotalsStableAcrossTenantOrder aggregates per-tenant cache stats
// and requires the result to be identical however the tenant map was
// populated and however often it is read.
func TestCacheTotalsStableAcrossTenantOrder(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 16; i++ {
		s.caches[fmt.Sprintf("tenant-%02d", 15-i)] = core.NewPlanCache(4)
	}
	first := s.cacheTotals()
	for i := 0; i < 8; i++ {
		if got := s.cacheTotals(); !reflect.DeepEqual(got, first) {
			t.Fatalf("cacheTotals not stable across calls: %+v vs %+v", got, first)
		}
	}
	if first.Entries != 0 {
		t.Fatalf("fresh caches report %d entries", first.Entries)
	}
}
