// Package httpapi exposes the session serving layer (internal/serve) over
// HTTP/JSON: a multi-tenant network front end for the node-private
// component-count estimator, so queries no longer require linking the Go
// package. The API is
//
//	POST   /v1/graphs              upload a graph, open a budgeted session
//	PATCH  /v1/graphs/{id}         apply a live edge delta to a session's graph
//	POST   /v1/sessions/{id}/query one private query
//	POST   /v1/sessions/{id}/batch a Do-backed batch of queries
//	GET    /v1/sessions/{id}       budget + plan-cache introspection
//	DELETE /v1/sessions/{id}       close a session, freeing its slot
//	GET    /healthz                liveness (503 while draining)
//	GET    /metrics                Prometheus text exposition
//
// Determinism contract: a query with an explicit seed returns a release
// bit-identical to the same seeded query on an in-process serve.Session —
// the handler calls the identical code path and encoding/json round-trips
// float64 exactly — which is what keeps the network layer honest with the
// release path underneath it.
//
// Load shedding: at most Config.MaxInflight /v1 requests run concurrently;
// excess requests are rejected immediately with 429, a Retry-After header,
// and a typed "overloaded" JSON error, so an overloaded daemon degrades by
// refusing work it cannot start instead of queueing unboundedly. Sessions
// live in a bounded multi-tenant registry with idle-TTL eviction.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nodedp/internal/core"
	"nodedp/internal/fault"
	"nodedp/internal/graph"
	"nodedp/internal/obs"
	"nodedp/internal/privacy"
	"nodedp/internal/serve"
)

// Defaults for Config's zero fields.
const (
	DefaultMaxInflight = 64
	DefaultReadLimit   = 8 << 20 // 8 MiB of JSON per request
	// DefaultCacheWeight is the per-tenant plan-cache budget in
	// GridEval.Cost units (≈ (n+m)·grid points per plan) — a few hundred
	// mid-sized plans.
	DefaultCacheWeight = 1 << 22
)

// Config tunes the server. The zero value is ready for production-shaped
// defaults; tests inject Now for deterministic TTL behavior.
type Config struct {
	// MaxInflight caps concurrently executing /v1 requests; excess
	// requests are shed with 429 + Retry-After.
	MaxInflight int
	// ReadLimit caps the request body size in bytes.
	ReadLimit int64
	// Registry bounds the session table.
	Registry RegistryConfig
	// Cache, when non-nil, is ONE plan cache shared by every tenant —
	// only safe when all tenants are mutually trusting (a shared cache's
	// hit/miss behavior is an equality oracle on other tenants' graphs).
	// When nil (the default), each tenant gets its own cost-weighted
	// cache, dropped when the tenant's last session leaves the registry:
	// repeated uploads of the same graph by the SAME tenant skip
	// planning, and no tenant can observe another's cache state.
	Cache *core.PlanCache
	// CacheWeight bounds each per-tenant cache (GridEval.Cost units);
	// 0 means DefaultCacheWeight. Ignored when Cache is injected.
	CacheWeight int64
	// CacheFile, when non-empty, names the snapshot file behind SaveCache
	// and POST /v1/admin/cache/save: the daemon persists the shared plan
	// cache there on drain and on its periodic timer, and reloads it on
	// the next boot (warm restarts). Requires Cache — per-tenant caches
	// are ephemeral by design, because their lifetime is tied to tenant
	// presence. A snapshot holds exact data-dependent values; protect the
	// file like the graphs themselves.
	CacheFile string
	// RetryJitterSeed seeds the deterministic jitter added to 429
	// Retry-After values, so shed clients spread their retries instead of
	// returning in lockstep. 0 means a fixed default seed; tests pin it
	// for golden assertions. The jitter PRNG never touches the release
	// path.
	RetryJitterSeed uint64
	// TraceSeed seeds the identities of traces whose requests carry no
	// request ID (a request ID always wins — its trace identity is derived
	// from the ID itself, so identically-seeded daemons serving the same
	// query file agree on every trace). 0 means a fixed default seed.
	// Trace identity is bookkeeping, never noise: it cannot influence a
	// release.
	TraceSeed uint64
	// TraceRing bounds the in-memory ring of recent traces behind
	// GET /v1/admin/traces: 0 means DefaultTraceRing, negative disables
	// retention (requests are still traced for stage metrics).
	TraceRing int
	// SlowQueryThreshold, when positive, logs any /v1 request slower than
	// this to SlowQueryLog (one line per offense, with route, status,
	// duration, and trace ID for cross-referencing the trace ring).
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines; nil means os.Stderr.
	SlowQueryLog io.Writer
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ on this
	// server's mux (never the global DefaultServeMux). Profiles expose
	// operational timing only; gate the port accordingly.
	EnablePprof bool
	// Audit, when non-nil, receives every privacy-accountant event of
	// every session opened by this server (see serve.SessionOptions.Audit
	// and internal/obs.AuditLog).
	Audit obs.AuditSink
	// Now overrides the clock (tests). It also drives span timing, so a
	// test-injected deterministic clock pins stage histograms exactly.
	Now func() time.Time
}

// DefaultTraceRing is the trace-ring capacity when Config.TraceRing is 0.
const DefaultTraceRing = 128

// Server is the HTTP front end. Create with New; it implements
// http.Handler.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	registry *registry
	metrics  *metrics
	now      func() time.Time

	// shared is the injected all-tenant cache (Config.Cache), nil in the
	// default per-tenant mode.
	shared *core.PlanCache
	// caches maps tenant → its private plan cache (per-tenant mode). A
	// tenant's cache lives exactly as long as it has a session in the
	// registry, which bounds memory to live tenants × CacheWeight.
	cachesMu sync.Mutex
	caches   map[string]*core.PlanCache

	inflight atomic.Int64
	draining atomic.Bool

	// retryRng drives the Retry-After jitter (seeded, mutex-guarded; not
	// on the release path).
	retryMu  sync.Mutex
	retryRng *rand.Rand

	// traces retains recent finished traces for GET /v1/admin/traces (nil
	// when retention is disabled); traceSeq disambiguates traces of
	// requests that carry no request ID.
	traces   *obs.Ring
	traceSeq atomic.Uint64
	// slowMu serializes slow-query log lines (the writer is shared).
	slowMu sync.Mutex
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.ReadLimit <= 0 {
		cfg.ReadLimit = DefaultReadLimit
	}
	if cfg.CacheWeight <= 0 {
		cfg.CacheWeight = DefaultCacheWeight
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	jitterSeed := cfg.RetryJitterSeed
	if jitterSeed == 0 {
		jitterSeed = 1
	}
	if cfg.TraceSeed == 0 {
		cfg.TraceSeed = 1
	}
	if cfg.SlowQueryLog == nil {
		cfg.SlowQueryLog = os.Stderr
	}
	s := &Server{
		cfg:      cfg,
		registry: newRegistry(cfg.Registry, now),
		metrics:  newMetrics(),
		now:      now,
		shared:   cfg.Cache,
		caches:   make(map[string]*core.PlanCache),
		retryRng: rand.New(rand.NewPCG(jitterSeed, jitterSeed)),
	}
	switch {
	case cfg.TraceRing == 0:
		s.traces = obs.NewRing(DefaultTraceRing)
	case cfg.TraceRing > 0:
		s.traces = obs.NewRing(cfg.TraceRing)
	}
	if s.shared == nil {
		s.registry.onTenantGone = s.dropTenantCache
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/graphs", s.handleCreateSession)
	s.route("PATCH /v1/graphs/{id}", s.handlePatchGraph)
	s.route("POST /v1/admin/cache/save", s.handleCacheSave)
	s.route("GET /v1/admin/traces", s.handleTraces)
	s.route("POST /v1/sessions/{id}/query", s.handleQuery)
	s.route("POST /v1/sessions/{id}/batch", s.handleBatch)
	s.route("GET /v1/sessions/{id}", s.handleSessionInfo)
	s.route("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		// Mounted on this mux only — importing net/http/pprof also
		// registers on http.DefaultServeMux, which this server never
		// serves.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, while in-flight and follow-up requests
// on existing connections still complete (http.Server.Shutdown handles the
// connection lifecycle).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Sweep evicts idle sessions once; the daemon calls it on a timer so slots
// free even with zero traffic.
func (s *Server) Sweep() { s.registry.sweep() }

// TestingHoldSlot adjusts the inflight counter directly, as if delta
// requests were executing. It exists for tests and experiments that need
// to observe the load-shedding path deterministically instead of racing a
// real slow request; production code must never call it.
func (s *Server) TestingHoldSlot(delta int64) { s.inflight.Add(delta) }

// ErrPersistenceNotConfigured is returned by SaveCache when the server has
// no shared cache or no snapshot path to save it to.
var ErrPersistenceNotConfigured = errors.New("httpapi: cache persistence not configured (a shared Cache and a CacheFile are both required)")

// SaveCache persists the shared plan cache to Config.CacheFile (atomic
// write-then-rename) and returns how many entries were written. The daemon
// calls it on drain and on its periodic save timer; the admin endpoint
// exposes it on demand.
func (s *Server) SaveCache() (int, error) {
	if s.shared == nil || s.cfg.CacheFile == "" {
		return 0, ErrPersistenceNotConfigured
	}
	return s.shared.SaveFile(s.cfg.CacheFile)
}

// SaveCacheIfChanged is SaveCache gated by the cache's dirty bit: when no
// persisted state changed since the last successful save, the write is
// skipped (and counted in the cache's SnapshotSavesSkipped). The daemon's
// periodic save timer uses this; drain and the admin endpoint keep the
// unconditional SaveCache.
func (s *Server) SaveCacheIfChanged() (entries int, saved bool, err error) {
	if s.shared == nil || s.cfg.CacheFile == "" {
		return 0, false, ErrPersistenceNotConfigured
	}
	return s.shared.SaveFileIfChanged(s.cfg.CacheFile)
}

// handleCacheSave implements POST /v1/admin/cache/save: an on-demand
// snapshot of the shared plan cache, so operators can persist warm state
// before a planned restart without waiting for the periodic timer.
func (s *Server) handleCacheSave(w http.ResponseWriter, _ *http.Request) {
	n, err := s.SaveCache()
	switch {
	case errors.Is(err, ErrPersistenceNotConfigured):
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"cache persistence not configured (start the daemon with -cache-file)")
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, "saving plan-cache snapshot: "+err.Error())
	default:
		writeJSON(w, http.StatusOK, SaveCacheResponse{Entries: n})
	}
}

// handleTraces implements GET /v1/admin/traces?tenant=&limit=: the most
// recent finished traces of exactly the named tenant, newest first. Scoping
// matches the rest of the unauthenticated admin surface (a tenant name
// reveals only that tenant's own operational telemetry); span attributes
// carry work counters and stage labels, never graph data or releases.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "trace retention is disabled on this daemon")
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if err := sanitizeTenant(tenant); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	limit := 32
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	snaps := s.traces.Recent(tenant, limit)
	out := TracesResponse{Traces: make([]TraceItem, len(snaps))}
	for i, sn := range snaps {
		out.Traces[i] = toTraceItem(sn)
	}
	writeJSON(w, http.StatusOK, out)
}

// toTraceItem maps a trace snapshot to the wire (span IDs as fixed-width
// hex; maps are fine — encoding/json emits sorted keys).
func toTraceItem(sn obs.TraceSnapshot) TraceItem {
	item := TraceItem{
		TraceID:   fmt.Sprintf("%016x", sn.TraceID),
		Name:      sn.Name,
		Tenant:    sn.Tenant,
		RequestID: sn.RequestID,
		Spans:     make([]SpanItem, len(sn.Spans)),
	}
	for i, sp := range sn.Spans {
		si := SpanItem{
			ID:              fmt.Sprintf("%016x", sp.ID),
			Name:            sp.Name,
			DurationSeconds: sp.Duration.Seconds(),
		}
		if sp.ParentID != 0 {
			si.ParentID = fmt.Sprintf("%016x", sp.ParentID)
		}
		if len(sp.Counters) > 0 {
			si.Counters = make(map[string]int64, len(sp.Counters))
			for _, a := range sp.Counters {
				si.Counters[a.Key] = a.Value
			}
		}
		if len(sp.Labels) > 0 {
			si.Labels = make(map[string]string, len(sp.Labels))
			for _, l := range sp.Labels {
				si.Labels[l.Key] = l.Value
			}
		}
		item.Spans[i] = si
	}
	return item
}

// tenantCache returns the plan cache serving a tenant: the injected
// shared cache, or the tenant's private cache (created on demand).
func (s *Server) tenantCache(tenant string) *core.PlanCache {
	if s.shared != nil {
		return s.shared
	}
	s.cachesMu.Lock()
	defer s.cachesMu.Unlock()
	c, ok := s.caches[tenant]
	if !ok {
		c = core.NewPlanCacheWeighted(s.cfg.CacheWeight)
		s.caches[tenant] = c
	}
	return c
}

// dropTenantCache releases a tenant's cache once its last session leaves
// the registry (registry.onTenantGone).
func (s *Server) dropTenantCache(tenant string) {
	s.cachesMu.Lock()
	delete(s.caches, tenant)
	s.cachesMu.Unlock()
}

// cacheTotals aggregates plan-cache counters across tenants for /metrics;
// per-tenant detail is visible only to that tenant's session holders.
func (s *Server) cacheTotals() core.CacheStats {
	if s.shared != nil {
		return s.shared.Stats()
	}
	var total core.CacheStats
	s.cachesMu.Lock()
	caches := make([]*core.PlanCache, 0, len(s.caches))
	// Tenant order is sorted so the aggregation (and any future
	// order-sensitive field) is byte-stable run to run, not map-ordered.
	for _, tenant := range sortedKeys(s.caches) {
		caches = append(caches, s.caches[tenant])
	}
	s.cachesMu.Unlock()
	for _, c := range caches {
		st := c.Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Coalesced += st.Coalesced
		total.Evictions += st.Evictions
		total.Invalidations += st.Invalidations
		total.Entries += st.Entries
		total.Weight += st.Weight
		total.SubPlanHits += st.SubPlanHits
		total.SubPlanMisses += st.SubPlanMisses
		total.SubPlanEvictions += st.SubPlanEvictions
		total.SubPlanEntries += st.SubPlanEntries
		total.SnapshotSaves += st.SnapshotSaves
		total.SnapshotLoads += st.SnapshotLoads
		total.SnapshotEntriesSaved += st.SnapshotEntriesSaved
		total.SnapshotEntriesLoaded += st.SnapshotEntriesLoaded
		total.SnapshotEntriesSkipped += st.SnapshotEntriesSkipped
		total.SnapshotSavesSkipped += st.SnapshotSavesSkipped
		total.EngineRefactorizations += st.EngineRefactorizations
		total.EngineParametricSlides += st.EngineParametricSlides
		total.EngineParametricCheapSolves += st.EngineParametricCheapSolves
		total.EngineIncrementalFallbacks += st.EngineIncrementalFallbacks
	}
	return total
}

// statusRecorder captures the response code for metrics and whether
// anything was written yet (panic containment can only substitute a typed
// 500 while the header is still open).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.wrote = true
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(b)
}

// retryAfterSeconds renders base plus a seeded jitter in [0, spread] for
// a 429's Retry-After header, de-synchronizing shed clients.
func (s *Server) retryAfterSeconds(base, spread int) string {
	s.retryMu.Lock()
	j := s.retryRng.IntN(spread + 1)
	s.retryMu.Unlock()
	return strconv.Itoa(base + j)
}

// route registers a /v1 handler wrapped with admission control, body
// limiting, and metrics. pattern must be "METHOD /path".
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		// Load shedding before any work: a request beyond the cap costs
		// one atomic increment and an immediate 429.
		if n := s.inflight.Add(1); n > int64(s.cfg.MaxInflight) {
			s.inflight.Add(-1)
			s.metrics.addShed()
			// Jittered so a burst of shed clients spreads its retries
			// instead of stampeding back on the same second.
			w.Header().Set("Retry-After", s.retryAfterSeconds(1, 2))
			writeError(w, http.StatusTooManyRequests, CodeOverloaded,
				fmt.Sprintf("at inflight capacity (%d); retry after the indicated delay", s.cfg.MaxInflight))
			s.metrics.observe(pattern, http.StatusTooManyRequests, 0)
			return
		}
		defer s.inflight.Add(-1)
		s.metrics.routeInflight(pattern, 1)
		defer s.metrics.routeInflight(pattern, -1)

		start := s.now()
		// Every admitted /v1 request gets a trace. The provisional identity
		// comes from the configured seed plus a boot-local sequence; a
		// handler that learns its request ID rekeys the trace so identity
		// derives from the ID alone (deterministic across daemons). Span
		// timing runs on s.now — the same injectable clock as the latency
		// metrics — and is operational telemetry only: no released value
		// ever reads it.
		tr := obs.NewTraceWithClock(pattern, s.cfg.TraceSeed+s.traceSeq.Add(1), s.now)
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		// Finalization must run even when the handler aborts the connection
		// (http.ErrAbortHandler): the trace and its stage durations are how
		// an operator sees the aborted request at all.
		finalize := func(code int) {
			tr.Root().SetCounter("http_status", int64(code))
			tr.Root().End()
			snap := tr.Snapshot()
			if s.traces != nil {
				s.traces.Add(snap)
			}
			s.metrics.observeStages(snap)
			elapsed := s.now().Sub(start)
			s.metrics.observe(pattern, code, elapsed)
			if t := s.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
				s.slowMu.Lock()
				fmt.Fprintf(s.cfg.SlowQueryLog, "slow-query route=%q code=%d elapsed=%s trace=%016x request=%q\n",
					pattern, code, elapsed, snap.TraceID, snap.RequestID)
				s.slowMu.Unlock()
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.ReadLimit)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		// Panic containment: a panic below this frame answers with a typed
		// `internal` error (when the header is still open), increments
		// nodedp_panics_recovered_total, and lets the daemon keep serving.
		// http.ErrAbortHandler is re-raised — it is the sanctioned
		// "abort this connection" signal and net/http handles it quietly.
		func() {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					finalize(rec.code)
					panic(p)
				}
				s.metrics.addPanic()
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, CodeInternal,
						fmt.Sprintf("internal error: request handler panicked: %v", p))
				}
			}()
			h(rec, r)
		}()
		finalize(rec.code)
	})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if err := sanitizeTenant(req.Tenant); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	r = s.identifyRequest(r, req.Tenant, req.RequestID)
	g, err := buildGraph(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	comp, err := privacy.ParseComposition(req.Accountant)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	// Claim the registry slot BEFORE the plan build: a full registry must
	// refuse the upload in O(1), not after paying the Δ-grid evaluation
	// (and thrashing live tenants' cache entries with a plan nobody can
	// use).
	commit, abort, err := s.registry.reserve(req.Tenant)
	if err != nil {
		var full errCapacity
		if errors.As(err, &full) {
			w.Header().Set("Retry-After", s.retryAfterSeconds(5, 2))
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, full.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	opts := serve.SessionOptions{
		TotalBudget:     req.Budget,
		Composition:     comp,
		Delta:           req.Delta,
		DiscreteRelease: req.DiscreteRelease,
		Cache:           s.tenantCache(req.Tenant),
		Audit:           s.cfg.Audit,
	}
	opts.ForestLP.Workers = req.Workers
	opts.ForestLP.SepWorkers = req.SepWorkers
	opts.ForestLP.SepWaveWidth = req.SepWaveWidth
	sess, err := serve.Open(r.Context(), g, opts)
	if err != nil {
		abort()
		code, ec := http.StatusBadRequest, CodeInvalidRequest
		switch {
		case errors.Is(err, fault.ErrInjected):
			// Injected internal failure during the plan build: transient,
			// retryable, not the uploader's fault.
			code, ec = http.StatusInternalServerError, CodeInternal
		case errIsCancel(err):
			// The uploader went away (or its deadline passed) mid-plan:
			// that's the client's timeout, not a server fault.
			code, ec = http.StatusGatewayTimeout, CodeDeadlineExceeded
		}
		writeError(w, code, ec, err.Error())
		return
	}
	entry, err := commit(sess)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	st := sess.Stats()
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		SessionID:   entry.id,
		Fingerprint: sess.Fingerprint().String(),
		CacheHit:    st.CacheHit,
		Accountant:  st.Accountant,
		Budget:      st.TotalBudget,
		Delta:       st.Delta,
	})
}

// buildGraph materializes the uploaded graph from whichever encoding the
// request used.
func buildGraph(req *CreateSessionRequest) (*graph.Graph, error) {
	switch {
	case len(req.Edges) > 0 && req.EdgeList != "":
		return nil, fmt.Errorf("edges and edge_list are mutually exclusive")
	case req.EdgeList != "":
		g, err := graph.ReadEdgeList(strings.NewReader(req.EdgeList))
		if err != nil {
			return nil, fmt.Errorf("parsing edge_list: %w", err)
		}
		return g, nil
	case req.N <= 0:
		return nil, fmt.Errorf("n must be positive (got %d)", req.N)
	default:
		// Canonical ingress: duplicate edges and self-loops in the upload
		// body collapse silently, so two uploads of the same simple graph
		// always fingerprint identically and share a plan-cache entry,
		// however noisy their edge lists were. (The edge_list text format
		// stays strict — a duplicate line there is corruption of an exact
		// exchange format, and a rejected upload builds no graph at all, so
		// it can never produce a divergent fingerprint.)
		edges := make([]graph.Edge, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = graph.NewEdge(e[0], e[1])
		}
		g, err := graph.FromEdgesCanonical(req.N, edges)
		if err != nil {
			return nil, fmt.Errorf("building graph: %w", err)
		}
		return g, nil
	}
}

// handlePatchGraph implements PATCH /v1/graphs/{id}: a live-graph delta on
// the session's served graph. The handler is admission-controlled and
// traced like every /v1 route; the serve layer serializes concurrent
// deltas, audits each one in the privacy ledger, and swaps the serving
// snapshot atomically, so racing queries see the pre- or post-delta graph,
// never a torn one. While the delta runs, the session is held against the
// idle-TTL sweep and DELETE (409) — a mutation must never lose its ledger
// mid-commit.
func (s *Server) handlePatchGraph(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req PatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if len(req.Adds) == 0 && len(req.Removes) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "delta has no adds and no removes")
		return
	}
	r = s.identifyRequest(r, entry.tenant, req.RequestID)

	adds := make([]graph.Edge, len(req.Adds))
	for i, e := range req.Adds {
		adds[i] = graph.NewEdge(e[0], e[1])
	}
	removes := make([]graph.Edge, len(req.Removes))
	for i, e := range req.Removes {
		removes[i] = graph.NewEdge(e[0], e[1])
	}

	entry.beginMutation()
	res, err := entry.sess.ApplyDelta(r.Context(), adds, removes)
	entry.endMutation(s.now())
	if err != nil {
		// The taxonomy mirrors queries: injected faults are retryable 500s,
		// cancelations 504 (the delta rolled back fully — retry-safe),
		// validation 400. Deltas never spend ε on any path.
		writeQueryError(w, err)
		return
	}
	s.metrics.addDeltas(1)
	writeJSON(w, http.StatusOK, PatchResponse{
		Added:         res.Added,
		Removed:       res.Removed,
		NoOp:          res.NoOp,
		Fingerprint:   res.Fingerprint.String(),
		PlanCacheHit:  res.PlanCacheHit,
		SubPlanHits:   res.SubPlanHits,
		SubPlanMisses: res.SubPlanMisses,
	})
}

// identifyRequest attaches the request's serving identity once the handler
// has parsed its body: the trace is rekeyed onto the request ID (when one
// was sent — identity then derives from the ID alone, so identically-seeded
// daemons serving the same query file agree on every trace and audit line),
// tagged with the tenant, and the (tenant, request ID) pair is placed in
// the context for the serve layer's audit records.
func (s *Server) identifyRequest(r *http.Request, tenant, requestID string) *http.Request {
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		if requestID != "" {
			tr.Rekey(requestID)
		}
		tr.SetTenant(tenant)
	}
	ctx := obs.ContextWithRequestInfo(r.Context(), obs.RequestInfo{Tenant: tenant, RequestID: requestID})
	return r.WithContext(ctx)
}

// lookup resolves the {id} path segment to a live session or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	entry, ok := s.registry.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no session %q (expired, deleted, or never created)", id))
		return nil, false
	}
	return entry, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	op, mode, err := parseOp(req.Op)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	r = s.identifyRequest(r, entry.tenant, req.RequestID)

	// Idempotent replay: a request ID claims a slot in the session's
	// dedup table. Duplicates of a recorded release replay it without
	// re-charging; duplicates racing an in-flight leader wait for its
	// outcome. The leader MUST finish its entry on every exit path —
	// including a panic — or waiters and future retries would hang.
	var de *dedupEntry
	finished := false
	if req.RequestID != "" {
		var leader bool
		de, leader = entry.dedup.begin(req.RequestID)
		if !leader {
			select {
			case <-de.done:
			case <-r.Context().Done():
				writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
					"query canceled while waiting for the original attempt: "+r.Context().Err().Error())
				return
			}
			if de.errInfo != nil {
				writeError(w, de.status, de.errInfo.Code, de.errInfo.Message)
				return
			}
			// A replayed release: the budget was charged and the query
			// served exactly once, on the original attempt. The header lets
			// retrying clients count replays (client.Telemetry) and
			// operators distinguish replays from fresh charges.
			w.Header().Set(ReplayedHeader, "1")
			if tr := obs.TraceFrom(r.Context()); tr != nil {
				tr.Root().SetCounter("dedup_replayed", 1)
			}
			entry.sess.RecordReplay(obs.RequestInfoFrom(r.Context()), req.RequestID)
			writeJSON(w, http.StatusOK, de.resp)
			return
		}
		defer func() {
			if !finished {
				entry.dedup.finishError(req.RequestID, de, http.StatusInternalServerError,
					ErrorInfo{Code: CodeInternal, Message: "internal error: query attempt aborted"})
			}
		}()
	}

	q := serve.QueryOptions{Epsilon: req.Epsilon, Mode: mode, Seed: req.Seed}
	var res core.Result
	if op == serve.OpSpanningForestSize {
		res, err = entry.sess.SpanningForestSize(r.Context(), q)
	} else {
		res, err = entry.sess.ComponentCount(r.Context(), q)
	}
	if err != nil {
		if de != nil {
			// Every error path charges nothing durable (rejections spend
			// nothing; cancellations refund), so the ID is forgotten and a
			// retry re-executes.
			info := toErrorInfo(err)
			entry.dedup.finishError(req.RequestID, de, queryErrorStatus(info.Code), info)
			finished = true
		}
		writeQueryError(w, err)
		return
	}
	qr := toQueryResponse(req, res)
	if de != nil {
		// Record before writing: if the response write dies (connection
		// abort), the retry must replay this exact release rather than
		// charge the budget a second time.
		entry.dedup.finishSuccess(req.RequestID, de, qr)
		finished = true
	}
	s.metrics.addQueries(1)
	writeJSON(w, http.StatusOK, qr)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req BatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "batch has no queries")
		return
	}
	r = s.identifyRequest(r, entry.tenant, req.RequestID)
	reqs := make([]serve.Request, len(req.Queries))
	for i, q := range req.Queries {
		op, mode, err := parseOp(q.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("query %d: %v", i, err))
			return
		}
		reqs[i] = serve.Request{Op: op, Epsilon: q.Epsilon, Mode: mode, Seed: q.Seed}
	}
	resps := entry.sess.Do(r.Context(), reqs)
	out := BatchResponse{Responses: make([]BatchItem, len(resps))}
	served := int64(0)
	for i, resp := range resps {
		if resp.Err != nil {
			info := toErrorInfo(resp.Err)
			out.Responses[i] = BatchItem{Error: &info}
			continue
		}
		served++
		qr := toQueryResponse(req.Queries[i], resp.Result)
		out.Responses[i] = BatchItem{Result: &qr}
	}
	s.metrics.addQueries(served)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := entry.sess.Stats()
	// The cache snapshot is the session's own tenant's cache: hit/miss
	// counters and entry weights over someone else's uploads would be an
	// equality oracle on their sensitive graphs.
	cs := s.tenantCache(entry.tenant).Stats()
	writeJSON(w, http.StatusOK, SessionInfo{
		SessionID:   entry.id,
		Tenant:      entry.tenant,
		Fingerprint: entry.sess.Fingerprint().String(),
		Budget: BudgetInfo{
			Total:      st.TotalBudget,
			Spent:      st.Spent,
			Remaining:  st.Remaining,
			Accountant: st.Accountant,
			Delta:      st.Delta,
		},
		Queries:        st.Queries,
		Admitted:       st.Admitted,
		Rejected:       st.Rejected,
		PlansBuilt:     st.PlansBuilt,
		CacheHit:       st.CacheHit,
		Deltas:         st.Deltas,
		DeltasRejected: st.DeltasRejected,
		CreatedUnix:    entry.created.Unix(),
		IdleSeconds:    s.now().Sub(entry.idleSince()).Seconds(),
		Cache: CacheInfo{
			Hits:                   cs.Hits,
			Misses:                 cs.Misses,
			Coalesced:              cs.Coalesced,
			Evictions:              cs.Evictions,
			Invalidations:          cs.Invalidations,
			Entries:                cs.Entries,
			Weight:                 cs.Weight,
			WeightCapacity:         cs.WeightCapacity,
			EntryWeights:           cs.EntryWeights,
			SubPlanHits:            cs.SubPlanHits,
			SubPlanMisses:          cs.SubPlanMisses,
			SubPlanEvictions:       cs.SubPlanEvictions,
			SubPlanEntries:         cs.SubPlanEntries,
			SnapshotSaves:          cs.SnapshotSaves,
			SnapshotLoads:          cs.SnapshotLoads,
			SnapshotEntriesSaved:   cs.SnapshotEntriesSaved,
			SnapshotEntriesLoaded:  cs.SnapshotEntriesLoaded,
			SnapshotEntriesSkipped: cs.SnapshotEntriesSkipped,
		},
	})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	switch s.registry.remove(r.PathValue("id")) {
	case removeMissing:
		writeError(w, http.StatusNotFound, CodeNotFound, "no such session")
	case removeBusy:
		writeError(w, http.StatusConflict, CodeConflict,
			"session has a graph mutation in flight; retry after it completes")
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	live, evicted := s.registry.snapshot()
	cs := s.cacheTotals()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, map[string]float64{
		"nodedp_sessions_live":                             float64(live),
		"nodedp_sessions_evicted_total":                    float64(evicted),
		"nodedp_inflight_requests":                         float64(s.inflight.Load()),
		"nodedp_plan_cache_hits_total":                     float64(cs.Hits),
		"nodedp_plan_cache_misses_total":                   float64(cs.Misses),
		"nodedp_plan_cache_coalesced_total":                float64(cs.Coalesced),
		"nodedp_plan_cache_evictions_total":                float64(cs.Evictions),
		"nodedp_plan_cache_entries":                        float64(cs.Entries),
		"nodedp_plan_cache_weight":                         float64(cs.Weight),
		"nodedp_plan_cache_subplan_hits_total":             float64(cs.SubPlanHits),
		"nodedp_plan_cache_subplan_misses_total":           float64(cs.SubPlanMisses),
		"nodedp_plan_cache_subplan_evictions_total":        float64(cs.SubPlanEvictions),
		"nodedp_plan_cache_subplan_entries":                float64(cs.SubPlanEntries),
		"nodedp_plan_cache_snapshot_saves_total":           float64(cs.SnapshotSaves),
		"nodedp_plan_cache_snapshot_loads_total":           float64(cs.SnapshotLoads),
		"nodedp_plan_cache_snapshot_entries_saved_total":   float64(cs.SnapshotEntriesSaved),
		"nodedp_plan_cache_snapshot_entries_loaded_total":  float64(cs.SnapshotEntriesLoaded),
		"nodedp_plan_cache_snapshot_entries_skipped_total": float64(cs.SnapshotEntriesSkipped),
		"nodedp_plan_cache_snapshot_saves_skipped_total":   float64(cs.SnapshotSavesSkipped),
		"nodedp_engine_refactorizations":                   float64(cs.EngineRefactorizations),
		"nodedp_engine_parametric_slides":                  float64(cs.EngineParametricSlides),
		"nodedp_engine_parametric_cheap_solves":            float64(cs.EngineParametricCheapSolves),
		"nodedp_engine_incremental_fallbacks":              float64(cs.EngineIncrementalFallbacks),
	})
}

// toQueryResponse maps a core.Result to the wire, exposing only private
// (or post-processed-private) fields.
func toQueryResponse(req QueryRequest, res core.Result) QueryResponse {
	return QueryResponse{
		Value:      res.Value,
		DeltaHat:   res.Delta,
		NoiseScale: res.NoiseScale,
		NHat:       res.NHat,
		Epsilon:    req.Epsilon,
		Op:         req.Op,
	}
}

// toErrorInfo maps a serving-layer error to the wire taxonomy.
func toErrorInfo(err error) ErrorInfo {
	switch {
	case errors.Is(err, serve.ErrBudgetExhausted):
		return ErrorInfo{Code: CodeBudgetExhausted, Message: err.Error()}
	case errors.Is(err, fault.ErrInjected):
		// An injected failure models an internal fault (I/O error, arena
		// exhaustion, numerical distress), not a bad request: answer 500 so
		// retrying clients treat it as transient.
		return ErrorInfo{Code: CodeInternal, Message: err.Error()}
	case errIsCancel(err):
		// The serving layer refunded the reserved ε (refund-on-cancel in
		// serve.Session.query), so this failure is retry-safe.
		return ErrorInfo{Code: CodeDeadlineExceeded, Message: "query canceled: " + err.Error()}
	default:
		return ErrorInfo{Code: CodeInvalidRequest, Message: err.Error()}
	}
}

// queryErrorStatus maps a taxonomy code to its HTTP status.
func queryErrorStatus(code ErrorCode) int {
	switch code {
	case CodeBudgetExhausted:
		return http.StatusForbidden
	case CodeInternal:
		return http.StatusInternalServerError
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// writeQueryError writes a single-query failure with its taxonomy status.
func writeQueryError(w http.ResponseWriter, err error) {
	info := toErrorInfo(err)
	writeError(w, queryErrorStatus(info.Code), info.Code, info.Message)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Injected response-write failure: aborts the connection the way a
	// mid-write TCP reset would, exercising the client retry + request-ID
	// replay contract end to end.
	if fault.Hit("httpapi.write") != nil {
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, ec ErrorCode, msg string) {
	writeJSON(w, code, ErrorBody{Error: ErrorInfo{Code: ec, Message: msg}})
}

// errIsCancel reports whether err is a context cancelation or deadline.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
