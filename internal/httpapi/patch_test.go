package httpapi

// Tests for the live-graph mutation surface: PATCH /v1/graphs/{id}
// semantics (apply, no-op, validation, canonicalization), the keystone
// bit-identity contract (a patched session releases exactly what a cold
// upload of the mutated graph releases), the component-level plan-reuse
// introspection, and the registry's mutation-hold (satellite: DELETE and
// the idle-TTL sweep versus an in-flight ApplyDelta).

import (
	"math"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"nodedp/internal/graph"
)

// patchGraph issues one PATCH and decodes the response.
func patchGraph(t *testing.T, url, id string, req PatchRequest, out *PatchResponse) int {
	t.Helper()
	return doJSON(t, "PATCH", url+"/v1/graphs/"+id, req, out)
}

// bitEqualResponses fails unless the two releases are bit-identical in
// every released float.
func bitEqualResponses(t *testing.T, label string, a, b QueryResponse) {
	t.Helper()
	for _, f := range []struct {
		name string
		x, y float64
	}{
		{"value", a.Value, b.Value},
		{"delta_hat", a.DeltaHat, b.DeltaHat},
		{"noise_scale", a.NoiseScale, b.NoiseScale},
		{"n_hat", a.NHat, b.NHat},
	} {
		if math.Float64bits(f.x) != math.Float64bits(f.y) {
			t.Errorf("%s: %s differs: %v (%016x) vs %v (%016x)",
				label, f.name, f.x, math.Float64bits(f.x), f.y, math.Float64bits(f.y))
		}
	}
}

// TestHTTPPatchBitIdenticalToColdOpen is the keystone contract over the
// wire: after a PATCH (one cross-component merge edge added, one existing
// edge removed), a seeded query on the mutated session must release
// bit-for-bit what the same seeded query releases on a fresh daemon that
// cold-uploaded the already-mutated graph.
func TestHTTPPatchBitIdenticalToColdOpen(t *testing.T) {
	g := testGraph(t) // three planted blocks: 0-7, 8-15, 16-23
	removed := g.Edges()[0]

	_, ts := testServer(t, Config{})
	sess := openSession(t, ts.URL, CreateSessionRequest{
		Tenant: "acme", N: g.N(), Edges: edgePairs(g), Budget: 10, RequestID: "up-live",
	})

	// The blocks are edge-disjoint, so {0, 8} is a guaranteed-new merge
	// edge between the first two blocks.
	var pr PatchResponse
	if code := patchGraph(t, ts.URL, sess.SessionID, PatchRequest{
		Adds:      [][2]int{{0, 8}},
		Removes:   [][2]int{{removed.U, removed.V}},
		RequestID: "delta-1",
	}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d: %+v", code, pr)
	}
	if pr.Added != 1 || pr.Removed != 1 || pr.NoOp {
		t.Fatalf("patch response %+v, want 1 added, 1 removed", pr)
	}
	if pr.Fingerprint == sess.Fingerprint {
		t.Fatal("fingerprint unchanged by a real delta")
	}
	// At least one block is untouched by the delta: its component
	// sub-plan(s) must be reused verbatim rather than re-evaluated.
	if pr.SubPlanHits == 0 {
		t.Errorf("delta re-plan reused no component sub-plans: %+v", pr)
	}
	if pr.SubPlanMisses == 0 {
		t.Errorf("delta touching two blocks re-evaluated no components: %+v", pr)
	}

	// Cold control: a fresh daemon uploads the mutated graph directly.
	mutated := [][2]int{{0, 8}}
	for _, e := range g.Edges() {
		if e == removed {
			continue
		}
		mutated = append(mutated, [2]int{e.U, e.V})
	}
	_, cold := testServer(t, Config{})
	coldSess := openSession(t, cold.URL, CreateSessionRequest{
		Tenant: "acme", N: g.N(), Edges: mutated, Budget: 10,
	})
	if coldSess.Fingerprint != pr.Fingerprint {
		t.Fatalf("patched fingerprint %s != cold-open fingerprint %s", pr.Fingerprint, coldSess.Fingerprint)
	}

	for _, op := range []string{"cc", "cc-known-n", "sf"} {
		q := QueryRequest{Op: op, Epsilon: 0.25, Seed: 909}
		var live, ctrl QueryResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.SessionID+"/query", q, &live); code != http.StatusOK {
			t.Fatalf("%s on patched session: status %d", op, code)
		}
		if code := doJSON(t, "POST", cold.URL+"/v1/sessions/"+coldSess.SessionID+"/query", q, &ctrl); code != http.StatusOK {
			t.Fatalf("%s on cold session: status %d", op, code)
		}
		bitEqualResponses(t, op, live, ctrl)
	}

	// Introspection: the session counted its delta, and the tenant cache
	// exposes the sub-plan counters the PATCH response reported.
	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("session info: status %d", code)
	}
	if info.Deltas != 1 || info.DeltasRejected != 0 {
		t.Errorf("session deltas = (%d, %d), want (1, 0)", info.Deltas, info.DeltasRejected)
	}
	if info.Cache.SubPlanHits < pr.SubPlanHits || info.Cache.SubPlanEntries == 0 {
		t.Errorf("cache introspection missing sub-plan state: %+v", info.Cache)
	}
}

// TestHTTPPatchValidationAndNoOp covers the PATCH error taxonomy and the
// idempotent no-op path.
func TestHTTPPatchValidationAndNoOp(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	sess := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 2})
	existing := g.Edges()[0]

	var eb ErrorBody
	if code := doJSON(t, "PATCH", ts.URL+"/v1/graphs/s-missing", PatchRequest{Adds: [][2]int{{0, 1}}}, nil); code != http.StatusNotFound {
		t.Fatalf("patch on unknown session: status %d", code)
	}
	if code := doJSON(t, "PATCH", ts.URL+"/v1/graphs/"+sess.SessionID, PatchRequest{}, &eb); code != http.StatusBadRequest {
		t.Fatalf("empty delta: status %d", code)
	}
	eb = ErrorBody{}
	if code := doJSON(t, "PATCH", ts.URL+"/v1/graphs/"+sess.SessionID, PatchRequest{
		Adds: [][2]int{{3, 2}}, Removes: [][2]int{{2, 3}},
	}, &eb); code != http.StatusBadRequest || eb.Error.Code != CodeInvalidRequest {
		t.Fatalf("adds∩removes overlap: got (%d, %q)", code, eb.Error.Code)
	}
	eb = ErrorBody{}
	if code := doJSON(t, "PATCH", ts.URL+"/v1/graphs/"+sess.SessionID, PatchRequest{
		Adds: [][2]int{{0, g.N()}},
	}, &eb); code != http.StatusBadRequest {
		t.Fatalf("out-of-range endpoint: status %d", code)
	}

	// Delta noise canonicalizes exactly like an upload body: self-loops
	// drop, duplicates collapse, and re-adding a present edge is a silent
	// set no-op — so this entire delta applies nothing.
	var pr PatchResponse
	if code := patchGraph(t, ts.URL, sess.SessionID, PatchRequest{
		Adds: [][2]int{{5, 5}, {existing.U, existing.V}, {existing.V, existing.U}},
	}, &pr); code != http.StatusOK {
		t.Fatalf("no-op delta: status %d", code)
	}
	if !pr.NoOp || pr.Added != 0 || pr.Removed != 0 {
		t.Fatalf("canonical no-op delta response %+v", pr)
	}
	if pr.Fingerprint != sess.Fingerprint {
		t.Fatalf("no-op changed the fingerprint: %s → %s", sess.Fingerprint, pr.Fingerprint)
	}

	var info SessionInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("session info: status %d", code)
	}
	if info.Deltas != 1 {
		t.Errorf("committed deltas = %d, want 1 (the no-op commits)", info.Deltas)
	}
	if info.DeltasRejected != 2 {
		// The overlap and out-of-range rejections; the empty body and the
		// 404 never reached the session.
		t.Errorf("rejected deltas = %d, want 2", info.DeltasRejected)
	}
}

// TestHTTPUploadCanonicalizesEdgeNoise is the satellite regression: two
// uploads of the same simple graph — one clean, one littered with
// duplicate edges and self-loops — must fingerprint identically and share
// one plan-cache entry.
func TestHTTPUploadCanonicalizesEdgeNoise(t *testing.T) {
	g := testGraph(t)
	_, ts := testServer(t, Config{})
	clean := openSession(t, ts.URL, CreateSessionRequest{Tenant: "acme", N: g.N(), Edges: edgePairs(g), Budget: 1})

	noisy := [][2]int{{4, 4}} // self-loop
	for _, e := range g.Edges() {
		noisy = append(noisy, [2]int{e.V, e.U}) // reversed endpoints
		noisy = append(noisy, [2]int{e.U, e.V}) // and duplicated
	}
	dup := openSession(t, ts.URL, CreateSessionRequest{Tenant: "acme", N: g.N(), Edges: noisy, Budget: 1})
	if dup.Fingerprint != clean.Fingerprint {
		t.Fatalf("noisy upload fingerprints differently: %s vs %s", dup.Fingerprint, clean.Fingerprint)
	}
	if !dup.CacheHit {
		t.Error("noisy upload of an identical graph missed the plan cache")
	}

	// The same equality must hold for library callers' raw edge lists.
	ge, err := graph.FromEdgesCanonical(g.N(), func() []graph.Edge {
		var es []graph.Edge
		for _, p := range noisy {
			es = append(es, graph.NewEdge(p[0], p[1]))
		}
		return es
	}())
	if err != nil {
		t.Fatal(err)
	}
	if ge.Fingerprint() != g.Fingerprint() {
		t.Fatalf("FromEdgesCanonical fingerprint %v != clean %v", ge.Fingerprint(), g.Fingerprint())
	}
}

// TestHTTPDeleteAndSweepVersusMutation is the satellite outcome test: a
// session with an ApplyDelta in flight answers DELETE with a typed 409,
// survives the idle-TTL sweep however stale its idle clock, and deletes
// normally (204, then 404) once the mutation completes.
func TestHTTPDeleteAndSweepVersusMutation(t *testing.T) {
	g := testGraph(t)
	var now atomic.Int64
	base := time.Unix(1700000000, 0)
	clock := func() time.Time { return base.Add(time.Duration(now.Load())) }
	srv, ts := testServer(t, Config{
		Registry: RegistryConfig{IdleTTL: time.Minute},
		Now:      clock,
	})
	sess := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})

	// Pin the mutation hold directly — deterministic stand-in for a PATCH
	// body mid-ApplyDelta (the handler brackets ApplyDelta with exactly
	// this begin/end pair).
	entry, ok := srv.registry.get(sess.SessionID)
	if !ok {
		t.Fatal("session vanished")
	}
	entry.beginMutation()

	var eb ErrorBody
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.SessionID, nil, &eb); code != http.StatusConflict || eb.Error.Code != CodeConflict {
		t.Fatalf("DELETE during mutation: got (%d, %q), want (409, conflict)", code, eb.Error.Code)
	}

	// Idle far past the TTL: the sweep and the lazy per-lookup TTL check
	// must both treat the in-flight mutation as activity.
	now.Store(int64(10 * time.Minute))
	srv.Sweep()
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.SessionID, nil, nil); code != http.StatusOK {
		t.Fatalf("mutating session evicted by the idle sweep: status %d", code)
	}

	// The mutation ends and restamps the idle clock: the session is fresh
	// again, then deletable.
	entry.endMutation(clock())
	srv.Sweep()
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.SessionID, nil, nil); code != http.StatusOK {
		t.Fatalf("session evicted right after its mutation finished: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.SessionID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("DELETE after mutation: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.SessionID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double DELETE: status %d", code)
	}
}
