package httpapi

// Tests for plan-cache persistence over the HTTP surface: the admin save
// endpoint, warm restarts (a second server booted from the snapshot serves
// the first server's plans bit-identically), and the snapshot counters in
// /metrics and session introspection.

import (
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"nodedp/internal/core"
)

// TestHTTPWarmRestartBitIdentity is the daemon-restart half of the
// conformance suite at the HTTP layer: upload → seeded query → admin save,
// then a fresh server whose cache was loaded from the snapshot must (a)
// serve the re-upload as a plan-cache hit and (b) release bit-identical
// values for the same seeded queries.
func TestHTTPWarmRestartBitIdentity(t *testing.T) {
	g := testGraph(t)
	snap := filepath.Join(t.TempDir(), "plans.snap")

	cache1 := core.NewPlanCacheWeighted(1 << 30)
	_, ts1 := testServer(t, Config{Cache: cache1, CacheFile: snap})
	created1 := openSession(t, ts1.URL, CreateSessionRequest{
		N: g.N(), Edges: edgePairs(g), Budget: 10,
	})
	if created1.CacheHit {
		t.Fatal("first upload reported a cache hit")
	}

	queries := []QueryRequest{
		{Op: "cc", Epsilon: 0.5, Seed: 7},
		{Op: "sf", Epsilon: 0.25, Seed: 8},
		{Op: "cc-known-n", Epsilon: 0.5, Seed: 9},
	}
	var before []QueryResponse
	for _, q := range queries {
		var out QueryResponse
		if code := doJSON(t, "POST", ts1.URL+"/v1/sessions/"+created1.SessionID+"/query", q, &out); code != http.StatusOK {
			t.Fatalf("pre-restart query %+v: status %d", q, code)
		}
		before = append(before, out)
	}

	var saved SaveCacheResponse
	if code := doJSON(t, "POST", ts1.URL+"/v1/admin/cache/save", nil, &saved); code != http.StatusOK {
		t.Fatalf("admin save: status %d", code)
	}
	if saved.Entries != 1 {
		t.Fatalf("admin save response %+v, want 1 entry", saved)
	}

	// "Restart": a fresh cache loaded from the snapshot backs a new server.
	cache2 := core.NewPlanCacheWeighted(1 << 30)
	rep, err := cache2.LoadFile(snap)
	if err != nil || rep.Loaded != 1 || rep.Skipped() != 0 {
		t.Fatalf("reloading snapshot: %+v, %v", rep, err)
	}
	_, ts2 := testServer(t, Config{Cache: cache2, CacheFile: snap})

	created2 := openSession(t, ts2.URL, CreateSessionRequest{
		N: g.N(), Edges: edgePairs(g), Budget: 10,
	})
	if !created2.CacheHit {
		t.Fatal("post-restart upload of the same graph was not a plan-cache hit — the restart replanned")
	}
	if created2.Fingerprint != created1.Fingerprint {
		t.Fatalf("fingerprint changed across restart: %s vs %s", created1.Fingerprint, created2.Fingerprint)
	}

	for i, q := range queries {
		var out QueryResponse
		if code := doJSON(t, "POST", ts2.URL+"/v1/sessions/"+created2.SessionID+"/query", q, &out); code != http.StatusOK {
			t.Fatalf("post-restart query %+v: status %d", q, code)
		}
		if math.Float64bits(out.Value) != math.Float64bits(before[i].Value) ||
			math.Float64bits(out.DeltaHat) != math.Float64bits(before[i].DeltaHat) ||
			math.Float64bits(out.NoiseScale) != math.Float64bits(before[i].NoiseScale) ||
			math.Float64bits(out.NHat) != math.Float64bits(before[i].NHat) {
			t.Fatalf("seeded release differs across restart (query %d):\nbefore %+v\nafter  %+v", i, before[i], out)
		}
	}

	// Session introspection on the restarted server exposes the load.
	var info SessionInfo
	if code := doJSON(t, "GET", ts2.URL+"/v1/sessions/"+created2.SessionID, nil, &info); code != http.StatusOK {
		t.Fatalf("session info: status %d", code)
	}
	if info.Cache.SnapshotLoads != 1 || info.Cache.SnapshotEntriesLoaded != 1 {
		t.Fatalf("session cache info missing snapshot counters: %+v", info.Cache)
	}
}

// TestHTTPAdminCacheSaveNotConfigured: without a shared cache + snapshot
// path the endpoint refuses with the typed invalid_request error instead
// of pretending to persist.
func TestHTTPAdminCacheSaveNotConfigured(t *testing.T) {
	cases := map[string]Config{
		"per-tenant mode":   {},
		"cache but no file": {Cache: core.NewPlanCacheWeighted(1 << 20)},
	}
	for name, cfg := range cases {
		_, ts := testServer(t, cfg)
		var eb ErrorBody
		if code := doJSON(t, "POST", ts.URL+"/v1/admin/cache/save", nil, &eb); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, code)
		}
		if eb.Error.Code != CodeInvalidRequest {
			t.Fatalf("%s: error code %q, want %q", name, eb.Error.Code, CodeInvalidRequest)
		}
	}
}

// TestHTTPAdminCacheSaveFailure: an unwritable snapshot path surfaces as a
// typed internal error (the daemon's boot-time probe normally prevents
// this; the endpoint must still not lie about having saved).
func TestHTTPAdminCacheSaveFailure(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "plans.snap")
	_, ts := testServer(t, Config{Cache: core.NewPlanCacheWeighted(1 << 20), CacheFile: bad})
	var eb ErrorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/admin/cache/save", nil, &eb); code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	if eb.Error.Code != CodeInternal {
		t.Fatalf("error code %q, want %q", eb.Error.Code, CodeInternal)
	}
}

// TestHTTPMetricsSnapshotCounters: saves and loads show up in the
// Prometheus exposition so warm-restart behavior is observable.
func TestHTTPMetricsSnapshotCounters(t *testing.T) {
	g := testGraph(t)
	snap := filepath.Join(t.TempDir(), "plans.snap")
	cache := core.NewPlanCacheWeighted(1 << 30)
	_, ts := testServer(t, Config{Cache: cache, CacheFile: snap})

	openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 1})
	if code := doJSON(t, "POST", ts.URL+"/v1/admin/cache/save", nil, nil); code != http.StatusOK {
		t.Fatalf("admin save: status %d", code)
	}
	if _, err := cache.LoadFile(snap); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"nodedp_plan_cache_snapshot_saves_total 1",
		"nodedp_plan_cache_snapshot_entries_saved_total 1",
		"nodedp_plan_cache_snapshot_loads_total 1",
		"nodedp_plan_cache_snapshot_entries_loaded_total 0", // duplicate: live entry kept
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
