package httpapi

// This file implements per-session request-ID deduplication: the
// server-side half of the idempotent-retry contract. A retrying client
// cannot distinguish "connection died before the server executed my
// query" from "connection died after the release was computed and the
// budget charged" — so it resends the same request ID, and the table
// guarantees the charged case replays the recorded release instead of
// spending ε twice (a double-spend here would be a privacy bug, not just
// a billing one).
//
// The table is single-flight: the first arrival of an ID is the leader
// and executes the query; concurrent duplicates wait and replay the
// leader's outcome. Only successful releases are recorded durably —
// every failure path (budget rejection, validation, cancellation with
// its refund) charges nothing, so forgetting the ID and letting a retry
// re-execute is budget-safe and is what a retrying client wants.

import (
	"net/http"
	"sync"
)

// dedupCap bounds each session's recorded-release table. Eviction is
// FIFO: a client that retries a query more than dedupCap successful
// releases later re-executes it, which costs budget but never
// double-releases within the retry window any sane backoff policy uses.
const dedupCap = 256

// dedupEntry is the outcome of one logical query. resp/errInfo/status
// are written by the leader before done is closed and are immutable
// afterwards; waiters read them only after <-done.
type dedupEntry struct {
	done    chan struct{}
	resp    QueryResponse
	errInfo *ErrorInfo
	status  int
}

// dedupTable is the per-session replay table. The zero value is ready.
type dedupTable struct {
	mu      sync.Mutex
	entries map[string]*dedupEntry
	order   []string // FIFO of recorded successes, for bounded eviction
}

// begin claims id. leader=true means the caller must execute the query
// and finish the entry exactly once (finishSuccess or finishError);
// leader=false means the entry belongs to an earlier arrival — wait on
// done and replay.
func (d *dedupTable) begin(id string) (e *dedupEntry, leader bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.entries == nil {
		d.entries = make(map[string]*dedupEntry)
	}
	if e, ok := d.entries[id]; ok {
		return e, false
	}
	e = &dedupEntry{done: make(chan struct{})}
	d.entries[id] = e
	return e, true
}

// finishSuccess records a completed release durably: every future retry
// of id replays resp without executing or charging anything.
func (d *dedupTable) finishSuccess(id string, e *dedupEntry, resp QueryResponse) {
	e.resp = resp
	e.status = http.StatusOK
	d.mu.Lock()
	d.order = append(d.order, id)
	for len(d.order) > dedupCap {
		delete(d.entries, d.order[0])
		d.order = d.order[1:]
	}
	d.mu.Unlock()
	close(e.done)
}

// finishError hands the failure to the waiters already parked on the
// entry but forgets the ID: no failure path leaves budget spent, so a
// later retry may safely re-execute.
func (d *dedupTable) finishError(id string, e *dedupEntry, status int, info ErrorInfo) {
	e.errInfo = &info
	e.status = status
	d.mu.Lock()
	delete(d.entries, id)
	d.mu.Unlock()
	close(e.done)
}
