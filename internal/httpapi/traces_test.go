package httpapi

// Tests for the tracing surface of the HTTP layer: the /v1/admin/traces
// ring, tenant scoping, counter attribution from the solver layers, the
// dedup replay marker, and pprof mounting.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// postJSON posts body as JSON and returns the raw response (callers need
// the headers, which doJSON discards).
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// queryBody builds a seeded single-query request body.
func queryBody(requestID string) QueryRequest {
	return QueryRequest{Op: "cc", Epsilon: 0.25, Seed: 7, RequestID: requestID}
}

func TestAdminTracesTenantScopedSpanTree(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(t)
	sess := openSession(t, ts.URL, CreateSessionRequest{
		Tenant: "acme", N: g.N(), Edges: edgePairs(g), Budget: 4, RequestID: "upload-1",
	})

	var qr QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.SessionID+"/query", queryBody("q-1"), &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}

	var out TracesResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/admin/traces?tenant=acme", nil, &out); code != http.StatusOK {
		t.Fatalf("traces status %d", code)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("got %d acme traces, want 2 (upload + query)", len(out.Traces))
	}
	// Newest first: the query trace leads.
	q := out.Traces[0]
	if q.RequestID != "q-1" || q.Tenant != "acme" {
		t.Fatalf("query trace identity %+v", q)
	}
	// A query runs on the already-planned grid: its tree is root →
	// serve.admit + serve.execute.
	byName := map[string]SpanItem{}
	for _, sp := range q.Spans {
		byName[sp.Name] = sp
	}
	for _, name := range []string{"POST /v1/sessions/{id}/query", "serve.admit", "serve.execute"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing from query trace: %+v", name, q.Spans)
		}
	}
	if byName["serve.admit"].Counters["admitted"] != 1 {
		t.Fatalf("admit span counters %v", byName["serve.admit"].Counters)
	}
	// The upload trace carries the planning spans: core.plan (a cold
	// cache miss) over one forestlp sweep per non-trivial component — the
	// plan cache assembles evaluations component-wise — each with
	// populated work counters and one child span per grid point.
	up := out.Traces[1]
	if up.RequestID != "upload-1" {
		t.Fatalf("upload trace identity %+v", up)
	}
	var plan SpanItem
	var sweeps []SpanItem
	points := 0
	for _, sp := range up.Spans {
		switch sp.Name {
		case "core.plan":
			plan = sp
		case "forestlp.grid":
			sweeps = append(sweeps, sp)
		case "forestlp.point":
			points++
		}
	}
	if v, ok := plan.Counters["cache_hit"]; !ok || v != 0 {
		t.Fatalf("core.plan counters %v, want cache_hit=0 on a cold upload", plan.Counters)
	}
	if len(sweeps) == 0 {
		t.Fatalf("no forestlp.grid spans in upload trace: %+v", up.Spans)
	}
	var totalPoints int64
	for _, sweep := range sweeps {
		if sweep.Counters["grid_points"] == 0 {
			t.Fatalf("sweep counters %v, want grid_points > 0", sweep.Counters)
		}
		if sweep.Counters["components"] != 1 {
			t.Fatalf("per-component sweep components = %d, want 1", sweep.Counters["components"])
		}
		totalPoints += sweep.Counters["grid_points"]
	}
	if int64(points) != totalPoints {
		t.Fatalf("%d point spans, want %d (sum of the sweeps' grid_points)", points, totalPoints)
	}

	// Foreign tenants see nothing.
	if code := doJSON(t, "GET", ts.URL+"/v1/admin/traces?tenant=mallory", nil, &out); code != http.StatusOK {
		t.Fatalf("traces status %d", code)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("foreign tenant sees %d traces", len(out.Traces))
	}
}

func TestAdminTracesDisabledAndLimitValidation(t *testing.T) {
	_, ts := testServer(t, Config{TraceRing: -1})
	var eb ErrorBody
	if code := doJSON(t, "GET", ts.URL+"/v1/admin/traces", nil, &eb); code != http.StatusBadRequest {
		t.Fatalf("disabled ring: status %d", code)
	}

	_, ts2 := testServer(t, Config{})
	if code := doJSON(t, "GET", ts2.URL+"/v1/admin/traces?limit=zero", nil, &eb); code != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d", code)
	}
}

// TestReplayedHeaderOnDedupHit: the second identical request ID must replay
// the recorded release and say so via the Nodedp-Replayed header.
func TestReplayedHeaderOnDedupHit(t *testing.T) {
	_, ts := testServer(t, Config{})
	g := testGraph(t)
	sess := openSession(t, ts.URL, CreateSessionRequest{N: g.N(), Edges: edgePairs(g), Budget: 4})

	var first QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+sess.SessionID+"/query", queryBody("dup-1"), &first); code != http.StatusOK {
		t.Fatalf("first attempt status %d", code)
	}
	resp := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/query", queryBody("dup-1"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d", resp.StatusCode)
	}
	if resp.Header.Get(ReplayedHeader) != "1" {
		t.Fatalf("replay response missing %s header", ReplayedHeader)
	}
	resp2 := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/query", queryBody("dup-2"))
	defer resp2.Body.Close()
	if resp2.Header.Get(ReplayedHeader) != "" {
		t.Fatalf("fresh request carries %s header", ReplayedHeader)
	}
}

func TestPprofMountedOnlyWhenEnabled(t *testing.T) {
	_, off := testServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: %d", resp.StatusCode)
	}

	_, on := testServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline: status %d, %d bytes", resp.StatusCode, len(body))
	}
}
