// Package generate produces the graph workloads used throughout the
// experiment suite: the random models analyzed in Section 1.1.4 of the
// paper (Erdős–Rényi G(n,p) and random geometric graphs), classical
// structured families with known Δ* and s(G) (stars, paths, caterpillars,
// cliques, grids), and the adversarial families used by the baseline
// comparison (hub-augmented sparse graphs, planted components).
//
// All generators are deterministic given an explicit *rand.Rand, so every
// experiment table is reproducible bit for bit.
package generate

import (
	"fmt"
	"math"
	"math/rand/v2"

	"nodedp/internal/graph"
)

// NewRand returns a deterministic PRNG for the given seed. All experiment
// drivers funnel seeds through this helper so tables are reproducible.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// ErdosRenyi samples G(n,p): each of the C(n,2) edges present independently
// with probability p. For sparse p it uses geometric skipping, so the cost
// is O(n + m) rather than O(n^2).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	if p <= 0 || n < 2 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				mustAdd(g, u, v)
			}
		}
		return g
	}
	// Batagelj–Brandes geometric skipping: enumerate pairs (v,w) with
	// w < v and jump over non-edges with Geometric(p) skip lengths.
	logq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		skip := int(math.Floor(math.Log(1-rng.Float64()) / logq))
		w += 1 + skip
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			mustAdd(g, v, w)
		}
	}
	return g
}

// GNM samples a uniformly random graph with exactly n vertices and m
// distinct edges. It panics if m exceeds C(n,2).
func GNM(n, m int, rng *rand.Rand) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("generate: GNM m=%d exceeds C(%d,2)=%d", m, n, maxM))
	}
	g := graph.New(n)
	for g.M() < m {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		_, _ = g.EnsureEdge(u, v)
	}
	return g
}

// Point is a position in the unit square.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Geometric samples a random geometric graph: n points uniform in the unit
// square, edge iff Euclidean distance <= r (Section 1.1.4). Such graphs
// have no induced 6-stars and hence spanning 6-forests (Lemma 1.8).
func Geometric(n int, r float64, rng *rand.Rand) *graph.Graph {
	g, _ := GeometricWithPositions(n, r, rng)
	return g
}

// GeometricWithPositions is Geometric but also returns the sampled points.
// It grid-buckets the unit square with cell size r so the expected cost is
// O(n + m) for sparse radii.
func GeometricWithPositions(n int, r float64, rng *rand.Rand) (*graph.Graph, []Point) {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g := graph.New(n)
	if r <= 0 {
		return g, pts
	}
	cells := int(math.Ceil(1 / r))
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int)
	cellOf := func(p Point) [2]int {
		cx := int(p.X / r)
		cy := int(p.Y / r)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pts {
		bucket[cellOf(p)] = append(bucket[cellOf(p)], i)
	}
	for i, p := range pts {
		c := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					if p.Dist(pts[j]) <= r {
						mustAdd(g, i, j)
					}
				}
			}
		}
	}
	return g, pts
}

// Star returns the star K_{1,k}: vertex 0 is the center, vertices 1..k the
// leaves. Star(k) is an induced k-star, the extremal example of Lemma 1.7
// (DS_fsf = k) and Remark 3.4.
func Star(k int) *graph.Graph {
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		mustAdd(g, 0, i)
	}
	return g
}

// Path returns the path on n vertices (n-1 edges). Δ* = min(2, n-1).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(g, i, i+1)
	}
	return g
}

// Cycle returns the cycle on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("generate: cycle needs n >= 3")
	}
	g := Path(n)
	mustAdd(g, n-1, 0)
	return g
}

// Complete returns K_n. Every K_n with n >= 2 has a Hamiltonian path, so
// Δ*(K_n) = min(2, n-1); and s(K_n) = 1.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(g, u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
// s(K_{a,b}) = max(a,b).
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			mustAdd(g, u, v)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph. Grids have spanning forests of
// degree <= 3 (boustrophedon path gives degree 2 for a single row sweep
// with connectors; in general Δ* <= 3) and no induced 5-stars.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Caterpillar returns a caterpillar: a spine path of the given length where
// every spine vertex gets legsPer pendant leaves. An interior spine vertex
// together with its legsPer pendants and its two (non-adjacent) spine
// neighbors forms an induced (legsPer+2)-star, so s(G) = legsPer + 2 for
// spineLen >= 3. The graph is a tree, hence its own spanning forest, with
// max degree legsPer + 2.
func Caterpillar(spineLen, legsPer int) *graph.Graph {
	if spineLen < 1 {
		panic("generate: caterpillar needs spine >= 1")
	}
	n := spineLen + spineLen*legsPer
	g := graph.New(n)
	for i := 0; i+1 < spineLen; i++ {
		mustAdd(g, i, i+1)
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPer; l++ {
			mustAdd(g, i, next)
			next++
		}
	}
	return g
}

// Matching returns a perfect matching on 2k vertices: k disjoint edges,
// hence f_cc = k and Δ* = 1.
func Matching(k int) *graph.Graph {
	g := graph.New(2 * k)
	for i := 0; i < k; i++ {
		mustAdd(g, 2*i, 2*i+1)
	}
	return g
}

// PlantedComponents returns a disjoint union of ER clusters with the given
// sizes and intra-cluster edge probability p. The true component count is
// at least len(sizes) (more if a cluster falls apart internally).
func PlantedComponents(sizes []int, p float64, rng *rand.Rand) *graph.Graph {
	total := 0
	for _, s := range sizes {
		total += s
	}
	g := graph.New(total)
	base := 0
	for _, s := range sizes {
		c := ErdosRenyi(s, p, rng)
		for _, e := range c.Edges() {
			mustAdd(g, base+e.U, base+e.V)
		}
		base += s
	}
	return g
}

// SBM samples a stochastic block model: blocks of the given sizes, edge
// probability pIn within a block and pOut across blocks.
func SBM(sizes []int, pIn, pOut float64, rng *rand.Rand) *graph.Graph {
	total := 0
	starts := make([]int, len(sizes))
	for i, s := range sizes {
		starts[i] = total
		total += s
	}
	block := make([]int, total)
	for i, s := range sizes {
		for j := 0; j < s; j++ {
			block[starts[i]+j] = i
		}
	}
	g := graph.New(total)
	for u := 0; u < total; u++ {
		for v := u + 1; v < total; v++ {
			p := pOut
			if block[u] == block[v] {
				p = pIn
			}
			if p > 0 && rng.Float64() < p {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

// ChungLu samples a graph with the given expected degree weights: edge
// (u,v) present with probability min(1, w_u*w_v / sum(w)). Used to model
// heavy-tailed "social" degree sequences.
func ChungLu(weights []float64, rng *rand.Rand) *graph.Graph {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("generate: negative Chung-Lu weight")
		}
		total += w
	}
	g := graph.New(n)
	if total == 0 {
		return g
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := weights[u] * weights[v] / total
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

// PowerLawWeights returns n weights w_i proportional to (i+1)^(-1/(beta-1)),
// scaled so the average is avgDeg — the standard Chung–Lu recipe for a
// power-law degree distribution with exponent beta.
func PowerLawWeights(n int, beta, avgDeg float64) []float64 {
	if beta <= 2 {
		panic("generate: power-law exponent must exceed 2")
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -1/(beta-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// WithHubs adds hubCount new vertices to (a copy of) g, each adjacent to an
// independent uniform sample of about frac*n existing vertices. Hubs blow
// up the maximum degree to ≈ frac·n; what happens to Δ* depends on g: if g
// was connected (or the hubs' neighborhoods are), the hubs are shortcuts
// and Δ* stays small, whereas hubs bridging many components must carry that
// many spanning-forest edges, so Δ* rises to ≈ components/hubs — matching
// the down-sensitivity lower bound (a hub plus one vertex per bridged
// component is an induced star). Either way Δ* ≤ max degree, often by a
// large factor, which is the gap the paper's instance-based analysis
// exploits.
func WithHubs(g *graph.Graph, hubCount int, frac float64, rng *rand.Rand) *graph.Graph {
	h := g.Clone()
	n := g.N()
	for i := 0; i < hubCount; i++ {
		hub := h.AddVertex()
		for v := 0; v < n; v++ {
			if rng.Float64() < frac {
				mustAdd(h, hub, v)
			}
		}
	}
	return h
}

// DisjointUnion returns the disjoint union of the given graphs, renumbering
// vertices blockwise.
func DisjointUnion(gs ...*graph.Graph) *graph.Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	out := graph.New(total)
	base := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			mustAdd(out, base+e.U, base+e.V)
		}
		base += g.N()
	}
	return out
}

// RandomSubgraphMask returns a random induced-subgraph mask keeping each
// vertex independently with probability keepP. Used by down-sensitivity
// property tests.
func RandomSubgraphMask(n int, keepP float64, rng *rand.Rand) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Float64() < keepP
	}
	return mask
}

func mustAdd(g *graph.Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
