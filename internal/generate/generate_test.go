package generate

import (
	"math"
	"testing"

	"nodedp/internal/graph"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	// Mean edge count of G(n,p) is p*C(n,2); check within 5 sigma.
	rng := NewRand(1)
	n, p := 200, 0.05
	trials := 30
	total := 0
	for i := 0; i < trials; i++ {
		g := ErdosRenyi(n, p, rng)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		total += g.M()
	}
	pairs := float64(n * (n - 1) / 2)
	mean := float64(total) / float64(trials)
	want := p * pairs
	sigma := math.Sqrt(pairs*p*(1-p)) / math.Sqrt(float64(trials))
	if math.Abs(mean-want) > 5*sigma {
		t.Fatalf("mean edges %.1f, want %.1f ± %.1f", mean, want, 5*sigma)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := NewRand(2)
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Fatal("p=0 should have no edges")
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Fatalf("p=1 should be complete, got m=%d", g.M())
	}
	if g := ErdosRenyi(0, 0.5, rng); g.N() != 0 {
		t.Fatal("n=0 should be empty")
	}
	if g := ErdosRenyi(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Fatal("n=1 should be a single vertex")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 0.1, NewRand(42))
	b := ErdosRenyi(50, 0.1, NewRand(42))
	if !a.Equal(b) {
		t.Fatal("same seed must give same graph")
	}
}

func TestGNM(t *testing.T) {
	g := GNM(20, 30, NewRand(3))
	if g.N() != 20 || g.M() != 30 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GNM with too many edges should panic")
		}
	}()
	GNM(3, 4, NewRand(4))
}

func TestGeometricMatchesBruteForce(t *testing.T) {
	rng := NewRand(5)
	g, pts := GeometricWithPositions(150, 0.13, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			want := pts[i].Dist(pts[j]) <= 0.13
			if g.HasEdge(i, j) != want {
				t.Fatalf("edge (%d,%d) presence %v, want %v", i, j, g.HasEdge(i, j), want)
			}
		}
	}
}

func TestGeometricZeroRadius(t *testing.T) {
	g := Geometric(10, 0, NewRand(6))
	if g.M() != 0 {
		t.Fatal("r=0 should produce no edges")
	}
}

func TestStructuredFamilies(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		n, m, fcc int
	}{
		{"star5", Star(5), 6, 5, 1},
		{"path1", Path(1), 1, 0, 1},
		{"path4", Path(4), 4, 3, 1},
		{"cycle5", Cycle(5), 5, 5, 1},
		{"K4", Complete(4), 4, 6, 1},
		{"K23", CompleteBipartite(2, 3), 5, 6, 1},
		{"grid23", Grid(2, 3), 6, 7, 1},
		{"caterpillar", Caterpillar(3, 2), 9, 8, 1},
		{"matching4", Matching(4), 8, 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("got n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if got := tc.g.CountComponents(); got != tc.fcc {
				t.Fatalf("f_cc=%d, want %d", got, tc.fcc)
			}
		})
	}
}

func TestCaterpillarIsTree(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.M() != g.N()-1 || g.CountComponents() != 1 {
		t.Fatalf("caterpillar should be a tree: %v", g)
	}
	// Interior spine vertex degree: 2 spine + legs.
	if g.Degree(2) != 2+3 {
		t.Fatalf("spine degree %d, want 5", g.Degree(2))
	}
}

func TestPlantedComponents(t *testing.T) {
	g := PlantedComponents([]int{5, 7, 3}, 1.0, NewRand(7))
	if g.CountComponents() != 3 {
		t.Fatalf("planted p=1: f_cc=%d, want 3", g.CountComponents())
	}
	if g.N() != 15 {
		t.Fatalf("n=%d, want 15", g.N())
	}
	// No cross-cluster edges ever.
	for _, e := range g.Edges() {
		cu := clusterOf(e.U, []int{5, 7, 3})
		cv := clusterOf(e.V, []int{5, 7, 3})
		if cu != cv {
			t.Fatalf("cross-cluster edge %v", e)
		}
	}
}

func clusterOf(v int, sizes []int) int {
	base := 0
	for i, s := range sizes {
		if v < base+s {
			return i
		}
		base += s
	}
	return -1
}

func TestSBM(t *testing.T) {
	g := SBM([]int{10, 10}, 1, 0, NewRand(8))
	if g.CountComponents() != 2 {
		t.Fatalf("SBM pIn=1 pOut=0: f_cc=%d, want 2", g.CountComponents())
	}
	g2 := SBM([]int{10, 10}, 1, 1, NewRand(9))
	if g2.M() != 190 {
		t.Fatalf("SBM all-ones should be complete: m=%d", g2.M())
	}
}

func TestChungLu(t *testing.T) {
	w := PowerLawWeights(100, 2.5, 4)
	g := ChungLu(w, NewRand(10))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Fatal("Chung-Lu with avg degree 4 should have edges")
	}
	// Average of weights should be avgDeg.
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum/100-4) > 1e-9 {
		t.Fatalf("weights average %.3f, want 4", sum/100)
	}
}

func TestPowerLawWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta <= 2 should panic")
		}
	}()
	PowerLawWeights(10, 2.0, 3)
}

func TestWithHubs(t *testing.T) {
	base := Matching(20) // 40 vertices, max degree 1
	g := WithHubs(base, 2, 0.5, NewRand(11))
	if g.N() != 42 {
		t.Fatalf("n=%d, want 42", g.N())
	}
	if g.MaxDegree() < 10 {
		t.Fatalf("hub degree %d suspiciously small", g.MaxDegree())
	}
	// Base graph untouched.
	if base.N() != 40 || base.MaxDegree() != 1 {
		t.Fatal("WithHubs mutated its input")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Path(3), Cycle(3), graph.New(2))
	if g.N() != 8 || g.M() != 5 {
		t.Fatalf("union: %v", g)
	}
	if g.CountComponents() != 4 {
		t.Fatalf("f_cc=%d, want 4", g.CountComponents())
	}
}

func TestRandomSubgraphMask(t *testing.T) {
	mask := RandomSubgraphMask(1000, 0.3, NewRand(12))
	kept := 0
	for _, k := range mask {
		if k {
			kept++
		}
	}
	if kept < 200 || kept > 400 {
		t.Fatalf("kept %d of 1000 at p=0.3", kept)
	}
}
