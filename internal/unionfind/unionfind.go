// Package unionfind provides a disjoint-set union (DSU) structure with
// union by rank and path compression. It is the workhorse behind fast
// connected-component counting, forest/cycle detection in the spanning
// machinery, and the cutting-plane bookkeeping in the forest-polytope LP.
package unionfind

// DSU is a disjoint-set union over elements 0..n-1.
type DSU struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	root := int32(x)
	for d.parent[root] != root {
		root = d.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := d.parent[x]
		d.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Reset returns the DSU to n singleton sets without reallocating.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
	}
	d.sets = len(d.parent)
}
