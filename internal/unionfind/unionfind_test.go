package unionfind

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	d := New(5)
	if d.Len() != 5 || d.Sets() != 5 {
		t.Fatalf("fresh DSU: len=%d sets=%d", d.Len(), d.Sets())
	}
	if !d.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated union should not merge")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Fatal("Same is wrong")
	}
	if d.Sets() != 4 {
		t.Fatalf("sets=%d, want 4", d.Sets())
	}
}

func TestTransitivity(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(1, 2)
	for _, pair := range [][2]int{{0, 3}, {1, 3}, {0, 2}} {
		if !d.Same(pair[0], pair[1]) {
			t.Fatalf("%v should be connected", pair)
		}
	}
	if d.Same(0, 4) || d.Same(4, 5) {
		t.Fatal("4 and 5 should be singletons")
	}
	if d.Sets() != 3 {
		t.Fatalf("sets=%d, want 3 ({0..3},{4},{5})", d.Sets())
	}
}

func TestReset(t *testing.T) {
	d := New(4)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Reset()
	if d.Sets() != 4 || d.Same(0, 1) {
		t.Fatal("reset should restore singletons")
	}
}

// TestAgainstNaive compares DSU connectivity with a naive reachability
// structure over random union sequences.
func TestAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 2 + int(seed%20)
		d := New(n)
		// Naive: component label per element, relabel on union.
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for step := 0; step < 3*n; step++ {
			x, y := rng.IntN(n), rng.IntN(n)
			merged := d.Union(x, y)
			if merged == (label[x] == label[y]) {
				return false // DSU and naive disagree on whether merge happened
			}
			if merged {
				old, new_ := label[x], label[y]
				for i := range label {
					if label[i] == old {
						label[i] = new_
					}
				}
			}
		}
		// Final pairwise agreement.
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if d.Same(x, y) != (label[x] == label[y]) {
					return false
				}
			}
		}
		// Set count agreement.
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return d.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 14
	rng := rand.New(rand.NewPCG(5, 6))
	pairs := make([][2]int, 1<<16)
	for i := range pairs {
		pairs[i] = [2]int{rng.IntN(n), rng.IntN(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for _, p := range pairs {
			d.Union(p[0], p[1])
		}
	}
}
