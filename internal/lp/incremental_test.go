package lp

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// randomForestish builds a random feasible LP in the shape this package
// cares about: sparse 0/1-ish constraint rows, small nonnegative integer
// rhs, positive objective. Bounded by construction (every column appears
// in at least one row with a positive coefficient).
func randomForestish(rng *rand.Rand, n, m int) (c []float64, a [][]float64, b []float64) {
	c = make([]float64, n)
	for j := range c {
		c[j] = 1 + float64(rng.Intn(3))
	}
	a = make([][]float64, m)
	b = make([]float64, m)
	// Row 0 caps the sum of all variables so every row prefix containing
	// it is bounded — the append tests grow the row set incrementally and
	// must stay bounded at every step.
	cap0 := make([]float64, n)
	for j := range cap0 {
		cap0[j] = 1
	}
	a[0] = cap0
	b[0] = float64(2 + rng.Intn(n))
	for i := 1; i < m; i++ {
		row := make([]float64, n)
		nz := 0
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = float64(1 + rng.Intn(2))
				nz++
			}
		}
		if nz == 0 {
			row[rng.Intn(n)] = 1
			nz = 1
		}
		a[i] = row
		b[i] = float64(1 + rng.Intn(nz+2))
	}
	return c, a, b
}

func ratValue(t *testing.T, c []float64, a [][]float64, b []float64) float64 {
	t.Helper()
	cr := make([]*big.Rat, len(c))
	for j := range c {
		cr[j] = RatFromFloat(c[j])
	}
	ar := make([][]*big.Rat, len(a))
	for i := range a {
		ar[i] = make([]*big.Rat, len(a[i]))
		for j := range a[i] {
			ar[i][j] = RatFromFloat(a[i][j])
		}
	}
	br := make([]*big.Rat, len(b))
	for i := range b {
		br[i] = RatFromFloat(b[i])
	}
	sol, err := MaximizeRat(cr, ar, br, 0)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("exact solve failed: %v status %v", err, sol.Status)
	}
	v, _ := sol.Value.Float64()
	return v
}

// TestIncrementalAppendRowsAgainstRebuild grows random LPs row by row,
// comparing the standing solver against a from-scratch Maximize and the
// exact big.Rat simplex at every step.
func TestIncrementalAppendRowsAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		mTotal := 3 + rng.Intn(8)
		c, a, b := randomForestish(rng, n, mTotal)
		m0 := 1 + rng.Intn(mTotal)

		inc, err := NewIncremental(c, a[:m0], b[:m0], Options{})
		if err != nil {
			t.Fatalf("trial %d: NewIncremental: %v", trial, err)
		}
		for m := m0; m <= mTotal; m++ {
			if m > m0 {
				if err := inc.AppendRows(a[m-1:m], b[m-1:m]); err != nil {
					t.Fatalf("trial %d: AppendRows: %v", trial, err)
				}
			}
			got, err := inc.Solve()
			if err != nil {
				t.Fatalf("trial %d m=%d: incremental Solve: %v", trial, m, err)
			}
			want, err := Maximize(c, a[:m], b[:m], Options{})
			if err != nil {
				t.Fatalf("trial %d m=%d: Maximize: %v", trial, m, err)
			}
			if got.Status != Optimal || want.Status != Optimal {
				t.Fatalf("trial %d m=%d: statuses %v vs %v", trial, m, got.Status, want.Status)
			}
			if math.Abs(got.Value-want.Value) > 1e-7*(1+math.Abs(want.Value)) {
				t.Fatalf("trial %d m=%d: incremental %v vs rebuild %v", trial, m, got.Value, want.Value)
			}
			exact := ratValue(t, c, a[:m], b[:m])
			if math.Abs(got.Value-exact) > 1e-7*(1+math.Abs(exact)) {
				t.Fatalf("trial %d m=%d: incremental %v vs exact %v", trial, m, got.Value, exact)
			}
		}
	}
}

// TestIncrementalSetRHSSweep walks the rhs down and back up (the Δ-grid
// motion), checking the slid solver against cold solves and the exact
// oracle at every step.
func TestIncrementalSetRHSSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(5)
		m := 4 + rng.Intn(5)
		c, a, b := randomForestish(rng, n, m)

		inc, err := NewIncremental(c, a, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Solve(); err != nil {
			t.Fatal(err)
		}
		scales := []float64{0.5, 0.25, 1, 2, 0.75}
		for _, s := range scales {
			bs := make([]float64, m)
			for i := range bs {
				bs[i] = math.Floor(b[i] * s)
			}
			if err := inc.SetRHS(bs); err != nil {
				t.Fatalf("trial %d scale %v: SetRHS: %v", trial, s, err)
			}
			got, err := inc.Solve()
			if err != nil {
				t.Fatalf("trial %d scale %v: Solve: %v", trial, s, err)
			}
			exact := ratValue(t, c, a, bs)
			if math.Abs(got.Value-exact) > 1e-7*(1+math.Abs(exact)) {
				t.Fatalf("trial %d scale %v: incremental %v vs exact %v", trial, s, got.Value, exact)
			}
		}
	}
}

// TestIncrementalAppendColumns grows the column side, which the forest LP
// does not exercise but the solver advertises.
func TestIncrementalAppendColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(4)
		m := 4 + rng.Intn(4)
		nExtra := 1 + rng.Intn(3)
		c, a, b := randomForestish(rng, n+nExtra, m)

		inc, err := NewIncremental(c[:n], trimCols(a, n), b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Solve(); err != nil {
			t.Fatal(err)
		}
		for j := n; j < n+nExtra; j++ {
			col := make([]float64, m)
			for i := range col {
				col[i] = a[i][j]
			}
			if err := inc.AppendColumns([][]float64{col}, []float64{c[j]}); err != nil {
				t.Fatalf("trial %d: AppendColumns: %v", trial, err)
			}
			got, err := inc.Solve()
			if err != nil {
				t.Fatalf("trial %d col %d: Solve: %v", trial, j, err)
			}
			exact := ratValue(t, c[:j+1], trimCols(a, j+1), b)
			if math.Abs(got.Value-exact) > 1e-7*(1+math.Abs(exact)) {
				t.Fatalf("trial %d col %d: incremental %v vs exact %v", trial, j, got.Value, exact)
			}
		}
	}
}

func trimCols(a [][]float64, n int) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = a[i][:n]
	}
	return out
}

// TestIncrementalDegenerate hammers a highly degenerate family — many
// duplicated tight rows, ties everywhere — interleaving rhs changes and
// row appends. The Bland fallback must keep both paths terminating and
// agreeing with the exact oracle.
func TestIncrementalDegenerate(t *testing.T) {
	n := 6
	c := make([]float64, n)
	for j := range c {
		c[j] = 1
	}
	var a [][]float64
	var b []float64
	for i := 0; i < 4; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = 1
		}
		a = append(a, row)
		b = append(b, 2)
	}
	inc, err := NewIncremental(c, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	for step := 0; step < 20; step++ {
		switch step % 3 {
		case 0:
			row := make([]float64, n)
			lo := rng.Intn(n - 1)
			for j := lo; j < n; j++ {
				row[j] = 1
			}
			a = append(a, row)
			b = append(b, float64(1+rng.Intn(2)))
			if err := inc.AppendRows(a[len(a)-1:], b[len(b)-1:]); err != nil {
				t.Fatal(err)
			}
		default:
			b[rng.Intn(len(b))] = float64(1 + rng.Intn(3))
			if err := inc.SetRHS(b); err != nil {
				t.Fatal(err)
			}
		}
		got, err := inc.Solve()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		exact := ratValue(t, c, a, b)
		if math.Abs(got.Value-exact) > 1e-7*(1+math.Abs(exact)) {
			t.Fatalf("step %d: incremental %v vs exact %v", step, got.Value, exact)
		}
	}
}

// TestIncrementalWarmStartAccounting verifies NewIncremental's basis
// restoration mirrors Maximize's warm-start semantics and that the
// restoration work is reported by the first Solve only.
func TestIncrementalWarmStartAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	c, a, b := randomForestish(rng, 8, 6)
	cold, err := Maximize(c, a, b, Options{})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold: %v %v", err, cold.Status)
	}
	inc, err := NewIncremental(c, a, b, Options{Basis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	first, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !first.WarmStarted {
		t.Fatal("restored optimal basis should warm-start")
	}
	if first.Pivots != 0 {
		t.Fatalf("re-solving from the optimal basis should need 0 primal pivots, got %d", first.Pivots)
	}
	if math.Abs(first.Value-cold.Value) > 1e-9*(1+math.Abs(cold.Value)) {
		t.Fatalf("warm %v vs cold %v", first.Value, cold.Value)
	}
	second, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if second.WarmStarted || second.WarmPivots != 0 {
		t.Fatalf("warm accounting leaked into the second solve: %+v", second)
	}

	// A malformed basis must silently fall back to the all-slack start.
	badBasis := []int{0, 0, 0, 0, 0, 0}
	inc2, err := NewIncremental(c, a, b, Options{Basis: badBasis})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := inc2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s2.WarmStarted {
		t.Fatal("duplicate basis entries should be rejected")
	}
	if math.Abs(s2.Value-cold.Value) > 1e-9*(1+math.Abs(cold.Value)) {
		t.Fatalf("fallback %v vs cold %v", s2.Value, cold.Value)
	}
}

// TestIncrementalRefactorize forces the explicit refactorization path
// after heavy mutation traffic and checks it lands on the same optimum
// with zero extra primal pivots (the basis set is preserved).
func TestIncrementalRefactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	c, a, b := randomForestish(rng, 10, 5)
	inc, err := NewIncremental(c, a[:3], b[:3], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendRows(a[3:], b[3:]); err != nil {
		t.Fatal(err)
	}
	before, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	opts := inc.opts.withDefaults(inc.m, inc.n)
	inc.refactorize(opts)
	if inc.Refactorizations() != 1 {
		t.Fatalf("refactorizations = %d, want 1", inc.Refactorizations())
	}
	after, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if after.Pivots != 0 {
		t.Fatalf("refactorized basis should re-prove optimality in 0 pivots, got %d", after.Pivots)
	}
	if math.Abs(after.Value-before.Value) > 1e-9*(1+math.Abs(before.Value)) {
		t.Fatalf("refactorize changed the optimum: %v vs %v", after.Value, before.Value)
	}
}

// TestIncrementalPoison pins the distress contract: a poisoned solver
// fails every Solve with ErrNumericalDistress and stays failed.
func TestIncrementalPoison(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	c, a, b := randomForestish(rng, 6, 4)
	inc, err := NewIncremental(c, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	inc.Poison()
	if _, err := inc.Solve(); !errors.Is(err, ErrNumericalDistress) {
		t.Fatalf("poisoned Solve returned %v, want ErrNumericalDistress", err)
	}
	if _, err := inc.Solve(); !errors.Is(err, ErrNumericalDistress) {
		t.Fatal("distress must be sticky")
	}
}

// TestIncrementalResidualCheckHeals corrupts the standing tableau behind
// the solver's back (simulated fill-in drift) and verifies the residual
// self-check catches it and one refactorization heals it — the certified
// fast path's whole reason to exist.
func TestIncrementalResidualCheckHeals(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	c, a, b := randomForestish(rng, 8, 6)
	inc, err := NewIncremental(c, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the rhs column of every row holding a basic structural
	// variable: extractX reads exactly these cells, so the claimed point
	// drifts off the polytope while the basis stays intact.
	corrupted := false
	for i, bv := range inc.basis {
		if bv < inc.n && inc.tab[i][inc.n+inc.m] > 0 {
			inc.tab[i][inc.n+inc.m] *= 1.5
			corrupted = true
		}
	}
	if !corrupted {
		t.Skip("optimum has no positive basic structural variable to corrupt")
	}
	got, err := inc.Solve()
	if err != nil {
		t.Fatalf("self-check should heal via refactorization, got %v", err)
	}
	if got.Refactorizations == 0 {
		t.Fatal("corruption went unnoticed: no refactorization recorded")
	}
	if math.Abs(got.Value-want.Value) > 1e-9*(1+math.Abs(want.Value)) {
		t.Fatalf("healed value %v vs original %v", got.Value, want.Value)
	}
}

// TestIncrementalBadInput covers the validation surface.
func TestIncrementalBadInput(t *testing.T) {
	c := []float64{1, 1}
	a := [][]float64{{1, 1}}
	b := []float64{2}
	if _, err := NewIncremental(c, a, []float64{-1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatal("negative rhs must be rejected")
	}
	if _, err := NewIncremental(c, [][]float64{{1}}, b, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatal("ragged row must be rejected")
	}
	inc, err := NewIncremental(c, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetRHS([]float64{-1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("SetRHS negative rhs must be rejected")
	}
	if err := inc.SetRHS([]float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("SetRHS length mismatch must be rejected")
	}
	if err := inc.AppendRows([][]float64{{1}}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("AppendRows ragged row must be rejected")
	}
	if err := inc.AppendColumns([][]float64{{1, 1}}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatal("AppendColumns wrong height must be rejected")
	}
	if err := inc.AppendRows(nil, nil); err != nil {
		t.Fatalf("empty append must be a no-op, got %v", err)
	}
}
